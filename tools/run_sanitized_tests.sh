#!/usr/bin/env bash
# Configure, build, and run the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: tools/run_sanitized_tests.sh [build-dir] [sanitizer]
#   build-dir  defaults to <repo>/build-sanitize
#   sanitizer  ON (ASan+UBSan, default) or THREAD (TSan). TSan is the
#              opt-in job for exercising the thread-pool engine, the
#              online layer's lock-free MPSC ingest rings
#              (mpsc_ring_test's concurrent producer/drain hammer,
#              online_service_test's 1/2/8-thread sweeps incl. the
#              shed-policy and ring-full paths, campaign
#              online-differential and drop-accounting), the obs
#              metrics layer's sharded counter fold and per-slot
#              histogram merge (obs_test, obs_determinism_test), and
#              the durable store's group-commit WAL writes from the
#              poll loop (durable tests + the crash-recovery and
#              wal-torn-tail campaign corpus); it cannot be combined
#              with ASan in one build.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"
sanitizer="${2:-ON}"

cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSLEUTH_SANITIZE="$sanitizer"
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of
# printing and continuing.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Durable-store leg: repeat the WAL/recovery slice with its scratch
# directories on tmpfs. The WAL torture tests rewrite one small file
# thousands of times; /dev/shm keeps the sanitized pass CPU-bound
# instead of stalling on the build disk. (The full suite above already
# ran these once under the default TMPDIR, so this leg is pure signal
# on the I/O path.)
if [ -w /dev/shm ]; then
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ASAN_OPTIONS="detect_leaks=1" \
    TMPDIR=/dev/shm \
        ctest --test-dir "$build_dir" -L durable --output-on-failure
fi

# Synthesis leg: repeat the trace-driven app-synthesis slice (infer
# unit tests, the generate→serialize round trip, and the
# synth-clone-fidelity corpus pins) so the inference hot loops —
# call-tree reconstruction, stage detection, log-normal fitting — get
# a dedicated sanitized pass.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$build_dir" -L synth --output-on-failure

# Second leg: the same sanitizer with the AVX2 kernel bodies compiled
# out (-DSLEUTH_SIMD=OFF), proving the scalar mirrors and the
# dispatch-free build are just as clean. The simd-labelled equivalence
# tests run here too (avx2:: symbols forward to scalar).
nosimd_dir="$build_dir-nosimd"
cmake -S "$repo_root" -B "$nosimd_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSLEUTH_SANITIZE="$sanitizer" \
    -DSLEUTH_SIMD=OFF
cmake --build "$nosimd_dir" -j "$(nproc)"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$nosimd_dir" --output-on-failure -j "$(nproc)"
