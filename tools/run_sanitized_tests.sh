#!/usr/bin/env bash
# Configure, build, and run the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: tools/run_sanitized_tests.sh [build-dir] [sanitizer]
#   build-dir  defaults to <repo>/build-sanitize
#   sanitizer  ON (ASan+UBSan, default) or THREAD (TSan). TSan is the
#              opt-in job for exercising the thread-pool engine, the
#              online layer's lock-free MPSC ingest rings
#              (mpsc_ring_test's concurrent producer/drain hammer,
#              online_service_test's 1/2/8-thread sweeps incl. the
#              shed-policy and ring-full paths, campaign
#              online-differential and drop-accounting), and the obs
#              metrics layer's sharded counter fold and per-slot
#              histogram merge (obs_test, obs_determinism_test); it
#              cannot be combined with ASan in one build.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"
sanitizer="${2:-ON}"

cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSLEUTH_SANITIZE="$sanitizer"
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of
# printing and continuing.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Second leg: the same sanitizer with the AVX2 kernel bodies compiled
# out (-DSLEUTH_SIMD=OFF), proving the scalar mirrors and the
# dispatch-free build are just as clean. The simd-labelled equivalence
# tests run here too (avx2:: symbols forward to scalar).
nosimd_dir="$build_dir-nosimd"
cmake -S "$repo_root" -B "$nosimd_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSLEUTH_SANITIZE="$sanitizer" \
    -DSLEUTH_SIMD=OFF
cmake --build "$nosimd_dir" -j "$(nproc)"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$nosimd_dir" --output-on-failure -j "$(nproc)"
