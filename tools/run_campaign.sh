#!/usr/bin/env bash
# Nightly chaos-campaign driver: build, run a (larger) seeded campaign,
# collect shrunk repros and a BENCH-format summary.
#
#   tools/run_campaign.sh [--scenarios N] [--seed S] [--sanitize]
#
# --sanitize builds with -DSLEUTH_SANITIZE=ON (ASan+UBSan) in a
# separate build directory so instrumented campaigns do not pollute the
# regular build. Results land in campaign-results/: repro-*.json for
# every failing scenario (minimal, self-contained, replayable with
# `campaign_replay`) plus BENCH_campaign.json.
#
# Every scenario runs the full invariant registry, including
# synth-clone-fidelity: each drawn app is profiled from its own
# healthy traces, cloned via synth::inferAppModel, and the clone must
# reproduce the source's storm onset and top-3 RCA verdict under the
# same network-delay fault (DESIGN.md §3.16).
set -euo pipefail
cd "$(dirname "$0")/.."

SCENARIOS=100
SEED=1
SANITIZE=0
while [ $# -gt 0 ]; do
    case "$1" in
        --scenarios) SCENARIOS="$2"; shift 2 ;;
        --seed) SEED="$2"; shift 2 ;;
        --sanitize) SANITIZE=1; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

if [ "$SANITIZE" = 1 ]; then
    BUILD=build-sanitize
    cmake -B "$BUILD" -S . -DSLEUTH_SANITIZE=ON > /dev/null
else
    BUILD=build-release
    cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
fi
cmake --build "$BUILD" -j "$(nproc)" --target campaign_run > /dev/null

OUT=campaign-results
mkdir -p "$OUT"
echo "== campaign: $SCENARIOS scenarios, seed $SEED =="
"$BUILD/tools/campaign_run" \
    --scenarios "$SCENARIOS" --seed "$SEED" \
    --repro-dir "$OUT" --bench-out "$OUT/BENCH_campaign.json"
echo "== summary written to $OUT/BENCH_campaign.json =="
