// sleuth — command-line front end over the library's file formats.
//
// Subcommands:
//   generate  --rpcs N [--seed S] [--name NAME] [--out DIR]
//             Generate a synthetic benchmark; write config.json and the
//             deployable artifacts (proto / services / k8s / compose).
//   simulate  --config CONFIG.json --count N [--seed S] [--nodes K]
//             [--chaos EXPECTED_FAULTS] --out TRACES.json
//             Simulate traces (optionally under a chaos plan); SLOs are
//             calibrated and embedded per trace record.
//   train     --traces TRACES.json [--epochs E] [--embed D]
//             [--hidden H] --out MODEL.json
//             Train the Sleuth GNN unsupervised and save it.
//   analyze   --model MODEL.json --traces TRACES.json
//             [--normal NORMAL.json] [--threads N]
//             Run counterfactual RCA on every SLO-violating trace
//             (N worker threads; 0 = hardware concurrency; results
//             are identical at any thread count).
//   ingest    --traces IN.json [--protocol otel|zipkin|jaeger] [--slo US]
//             Run a trace file through the collector front end and
//             print acceptance plus per-reason drop counters.
//   metrics   --traces IN.json [--model MODEL.json] [--normal N.json]
//             [--threads N] [--out FILE]
//             Ingest the traces (and, with a model, analyze the
//             SLO-violating ones), then print the process metrics
//             registry in Prometheus text exposition format.
//   wal       --dir DIR [--verify] [--compact]
//             Inspect a durable data directory (DESIGN.md §3.15):
//             per-segment frame counts, CRC status, and record-kind
//             histograms, snapshot validity, and a config-free replay
//             summary. --verify exits non-zero on any corruption;
//             --compact folds the whole log into a fresh snapshot +
//             one near-empty segment.
//   infer     (--store DIR | --traces IN.json) --out MODEL.json
//             [--name NAME] [--max-traces N]
//             Infer an AppConfig from observed traces (DESIGN.md
//             §3.16): either replay a durable data directory and read
//             its store, or load a trace records file. The model
//             replays through `simulate` unmodified.
//
// Trace files are JSON arrays of {"slo": us, "trace": {...}} records
// (the "records" format) or bare arrays of traces (slo 0).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <system_error>

#include "collector/collector.h"
#include "core/anomaly.h"
#include "durable/durable_log.h"
#include "durable/snapshot.h"
#include "obs/metrics.h"
#include "core/counterfactual.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "online/durable_state.h"
#include "sim/simulator.h"
#include "synth/codegen.h"
#include "synth/generator.h"
#include "synth/infer.h"
#include "trace/trace_json.h"
#include "util/logging.h"

using namespace sleuth;

namespace {

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv, int from)
    {
        for (int i = from; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                util::fatal("unexpected argument '", key, "'");
            if (i + 1 >= argc)
                util::fatal("missing value for ", key);
            values_[key.substr(2)] = argv[++i];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values_.find(key);
        if (it != values_.end())
            return it->second;
        if (fallback.empty())
            util::fatal("missing required option --", key);
        return fallback;
    }

    std::string
    getOptional(const std::string &key,
                const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    int64_t
    getInt(const std::string &key, int64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::stoll(it->second);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stod(it->second);
    }

    bool has(const std::string &key) const
    {
        return values_.count(key) > 0;
    }

  private:
    std::map<std::string, std::string> values_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot read ", path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path);
    if (!out)
        util::fatal("cannot write ", path);
    out << contents;
}

util::Json
parseFile(const std::string &path)
{
    std::string err;
    util::Json doc = util::Json::parse(readFile(path), &err);
    if (!err.empty())
        util::fatal(path, ": ", err);
    return doc;
}

/**
 * Load and parse an app model through the recoverable path so a typo
 * in a hand-edited (or inferred) model exits with a message naming
 * the offending field instead of aborting.
 */
synth::AppConfig
loadAppConfig(const std::string &path)
{
    synth::AppConfig app;
    std::string err;
    if (!synth::tryAppFromJson(parseFile(path), &app, &err))
        util::fatal(path, ": ", err);
    return app;
}

/**
 * Require an existing directory before handing it to the durable
 * layer, which creates missing directories as a side effect of
 * opening a log — a typo'd path would otherwise be silently created
 * and reported as an empty (healthy) store.
 */
void
requireDataDir(const std::string &dir, const char *cmd)
{
    std::error_code ec;
    std::filesystem::file_status st = std::filesystem::status(dir, ec);
    if (ec || !std::filesystem::exists(st))
        util::fatal(cmd, ": data directory '", dir,
                    "' does not exist");
    if (!std::filesystem::is_directory(st))
        util::fatal(cmd, ": '", dir, "' is not a directory");
}

struct TraceRecord
{
    trace::Trace trace;
    int64_t sloUs = 0;
};

std::vector<TraceRecord>
loadRecords(const std::string &path)
{
    util::Json doc = parseFile(path);
    std::vector<TraceRecord> out;
    for (const util::Json &j : doc.asArray()) {
        TraceRecord r;
        if (j.has("trace")) {
            r.trace = trace::traceFromJson(j.at("trace"));
            r.sloUs = j.has("slo") ? j.at("slo").asInt() : 0;
        } else {
            r.trace = trace::traceFromJson(j);
        }
        out.push_back(std::move(r));
    }
    return out;
}

void
saveRecords(const std::string &path,
            const std::vector<TraceRecord> &records)
{
    util::Json arr = util::Json::array();
    for (const TraceRecord &r : records) {
        util::Json j = util::Json::object();
        j.set("slo", r.sloUs);
        j.set("trace", trace::toJson(r.trace));
        arr.push(std::move(j));
    }
    writeFile(path, arr.dump());
}

int
cmdGenerate(const Args &args)
{
    synth::GeneratorParams params = synth::syntheticParams(
        static_cast<int>(args.getInt("rpcs", 64)),
        static_cast<uint64_t>(args.getInt("seed", 1)));
    params.name = args.getOptional("name", params.name);
    synth::AppConfig app = synth::generateApp(params);
    std::string out = args.getOptional("out", "./" + params.name);
    synth::writeFiles(synth::generateCode(app), out);
    std::printf("generated '%s' (%zu services, %zu rpcs, %zu flows)"
                " under %s\n",
                app.name.c_str(), app.services.size(),
                app.rpcs.size(), app.flows.size(), out.c_str());
    return 0;
}

int
cmdSimulate(const Args &args)
{
    synth::AppConfig app = loadAppConfig(args.get("config"));
    uint64_t seed = static_cast<uint64_t>(args.getInt("seed", 1));
    int nodes = static_cast<int>(args.getInt("nodes", 100));
    size_t count = static_cast<size_t>(args.getInt("count", 1000));

    sim::ClusterModel cluster(app, nodes, seed);
    sim::Simulator::calibrateSlos(app, cluster, 300, 99.0, seed);

    chaos::FaultPlan plan;
    if (args.has("chaos")) {
        double expected = args.getDouble("chaos", 2.0);
        util::Rng rng(seed ^ 0xc4a05u);
        chaos::ChaosParams cp;
        cp.containerProb = std::min(
            1.0, expected / static_cast<double>(
                                cluster.allInstances().size()));
        plan = chaos::planFaults(cluster.allInstances(), cp, rng);
        std::printf("chaos plan: %zu faults\n", plan.faults.size());
        for (const chaos::FaultSpec &f : plan.faults)
            std::printf("  %s on %s %s\n", toString(f.type),
                        toString(f.scope), f.target.c_str());
    }

    sim::Simulator simulator(app, cluster, {.seed = seed ^ 0x515u},
                             plan);
    std::vector<TraceRecord> records;
    records.reserve(count);
    size_t anomalous = 0;
    for (size_t i = 0; i < count; ++i) {
        sim::SimResult r = simulator.simulateOne();
        TraceRecord rec;
        rec.sloUs =
            app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        if (r.violatesSlo(rec.sloUs))
            ++anomalous;
        rec.trace = std::move(r.trace);
        records.push_back(std::move(rec));
    }
    saveRecords(args.get("out"), records);
    std::printf("wrote %zu traces (%zu SLO-violating) to %s\n",
                records.size(), anomalous,
                args.get("out").c_str());
    return 0;
}

int
cmdTrain(const Args &args)
{
    std::vector<TraceRecord> records =
        loadRecords(args.get("traces"));
    std::vector<trace::Trace> corpus;
    for (TraceRecord &r : records)
        corpus.push_back(std::move(r.trace));

    core::GnnConfig gc;
    gc.embedDim = static_cast<size_t>(args.getInt("embed", 8));
    gc.hidden = static_cast<size_t>(args.getInt("hidden", 16));
    core::SleuthGnn model(gc);
    core::FeatureEncoder encoder(gc.embedDim);
    core::TrainConfig tc;
    tc.epochs = static_cast<int>(args.getInt("epochs", 10));
    core::Trainer trainer(model, encoder, tc);
    double loss = trainer.train(corpus);
    writeFile(args.get("out"), model.save().dump());
    std::printf("trained on %zu traces (%d epochs, final loss %.4f);"
                " model -> %s\n",
                corpus.size(), tc.epochs, loss,
                args.get("out").c_str());
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    core::SleuthGnn model =
        core::SleuthGnn::fromJson(parseFile(args.get("model")));
    core::FeatureEncoder encoder(model.config().embedDim);

    std::vector<TraceRecord> records =
        loadRecords(args.get("traces"));
    core::NormalProfile profile;
    if (args.has("normal")) {
        for (const TraceRecord &r :
             loadRecords(args.get("normal")))
            profile.add(r.trace);
    } else {
        // Fall back to profiling the non-violating input traces.
        for (const TraceRecord &r : records)
            if (!core::SloDetector::isAnomalous(r.trace, r.sloUs))
                profile.add(r.trace);
    }
    profile.finalize();

    // Per-trace RCA through the pipeline's clustering-off path: the
    // verdicts match a direct CounterfactualRca loop exactly, but the
    // batch fans out over --threads workers and malformed traces
    // degrade to per-trace error verdicts instead of killing the run.
    std::vector<trace::Trace> anomalous;
    std::vector<int64_t> slos;
    for (const TraceRecord &r : records) {
        if (!core::SloDetector::isAnomalous(r.trace, r.sloUs))
            continue;
        anomalous.push_back(r.trace);
        slos.push_back(r.sloUs);
    }
    core::PipelineConfig cfg;
    cfg.clustering = false;
    cfg.numThreads =
        static_cast<size_t>(args.getInt("threads", 1));
    core::SleuthPipeline pipeline(model, encoder, profile, cfg);
    core::PipelineResult res = pipeline.analyze(anomalous, slos);
    for (size_t i = 0; i < anomalous.size(); ++i) {
        const core::RcaResult &verdict = res.perTrace[i];
        std::printf("%s (%lld us / SLO %lld us): ",
                    anomalous[i].traceId.c_str(),
                    static_cast<long long>(
                        anomalous[i].rootDurationUs()),
                    static_cast<long long>(slos[i]));
        if (!verdict.error.empty()) {
            std::printf("(skipped: %s)\n", verdict.error.c_str());
            continue;
        }
        for (const std::string &svc : verdict.services)
            std::printf("%s ", svc.c_str());
        std::printf("%s\n",
                    verdict.resolved ? "" : "(unresolved)");
    }
    std::printf("analyzed %zu anomalous traces of %zu"
                " (%zu skipped as malformed)\n",
                anomalous.size() - res.skippedTraces, records.size(),
                res.skippedTraces);
    return 0;
}

int
cmdIngest(const Args &args)
{
    std::string proto_name = args.getOptional("protocol", "otel");
    collector::Protocol proto;
    if (proto_name == "otel")
        proto = collector::Protocol::Otel;
    else if (proto_name == "zipkin")
        proto = collector::Protocol::Zipkin;
    else if (proto_name == "jaeger")
        proto = collector::Protocol::Jaeger;
    else
        util::fatal("unknown protocol '", proto_name, "'");

    storage::TraceStore store;
    collector::TraceCollector coll(&store);

    util::Json doc = parseFile(args.get("traces"));
    bool records_format = proto == collector::Protocol::Otel &&
                          doc.asArray().size() > 0 &&
                          doc.asArray()[0].has("trace");
    if (records_format) {
        // The records format carries a per-trace SLO: ingest each
        // record as its own single-trace payload so the SLO sticks.
        for (const util::Json &j : doc.asArray()) {
            util::Json payload = util::Json::array();
            payload.push(j.at("trace"));
            coll.ingest(payload.dump(), proto,
                        j.has("slo") ? j.at("slo").asInt() : 0);
        }
    } else {
        coll.ingest(readFile(args.get("traces")), proto,
                    args.getInt("slo", 0));
    }

    const collector::CollectorStats &s = coll.stats();
    size_t anomalous = store.scan()
                           .filter([](const storage::Record *r) {
                               return r->anomalous();
                           })
                           .size();
    std::printf("ingested %s (%s): %zu traces accepted (%zu spans),"
                " %zu rejected (%zu spans)\n",
                args.get("traces").c_str(), proto_name.c_str(),
                s.tracesAccepted, s.spansAccepted, s.tracesRejected,
                s.spansRejected);
    std::printf("  drops: orphan=%zu duplicate=%zu"
                " late-after-eviction=%zu malformed=%zu"
                " backpressure=%zu\n",
                s.droppedOrphan, s.droppedDuplicate, s.droppedLate,
                s.droppedMalformed, s.droppedBackpressure);
    std::printf("  stored: %zu records, %zu spans, %zu SLO-violating\n",
                store.size(), store.totalSpans(), anomalous);
    return 0;
}

int
cmdMetrics(const Args &args)
{
    // Exercise the instrumented paths in this process, then dump the
    // registry: ingestion always, batch analysis when a model is given.
    storage::TraceStore store;
    collector::TraceCollector coll(&store);
    std::vector<TraceRecord> records =
        loadRecords(args.get("traces"));
    for (const TraceRecord &r : records) {
        util::Json payload = util::Json::array();
        payload.push(trace::toJson(r.trace));
        coll.ingest(payload.dump(), collector::Protocol::Otel,
                    r.sloUs);
    }

    if (args.has("model")) {
        core::SleuthGnn model =
            core::SleuthGnn::fromJson(parseFile(args.get("model")));
        core::FeatureEncoder encoder(model.config().embedDim);
        core::NormalProfile profile;
        if (args.has("normal")) {
            for (const TraceRecord &r :
                 loadRecords(args.get("normal")))
                profile.add(r.trace);
        } else {
            for (const TraceRecord &r : records)
                if (!core::SloDetector::isAnomalous(r.trace, r.sloUs))
                    profile.add(r.trace);
        }
        profile.finalize();
        std::vector<trace::Trace> anomalous;
        std::vector<int64_t> slos;
        for (const TraceRecord &r : records) {
            if (!core::SloDetector::isAnomalous(r.trace, r.sloUs))
                continue;
            anomalous.push_back(r.trace);
            slos.push_back(r.sloUs);
        }
        core::PipelineConfig cfg;
        cfg.numThreads =
            static_cast<size_t>(args.getInt("threads", 1));
        core::SleuthPipeline pipeline(model, encoder, profile, cfg);
        pipeline.analyze(anomalous, slos);
    }

    std::string text = obs::renderText();
    if (args.has("out")) {
        writeFile(args.get("out"), text);
        std::printf("metrics exposition -> %s\n",
                    args.get("out").c_str());
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

int
cmdInfer(const Args &args)
{
    synth::InferOptions opts;
    opts.name = args.getOptional("name", "inferred");
    opts.maxTraces =
        static_cast<size_t>(args.getInt("max-traces", 0));

    synth::InferStats stats;
    synth::AppConfig app;
    if (args.has("store")) {
        std::string dir = args.get("store");
        requireDataDir(dir, "infer");
        durable::DurableConfig cfg;
        cfg.dir = dir;
        online::RecoveryInfo info;
        online::DurableServingState state =
            online::recoverState(cfg, {}, &info);
        if (!info.haveData)
            util::fatal("infer: data directory '", dir,
                        "' holds no recoverable state");
        if (!info.ok)
            util::fatal("infer: cannot replay '", dir, "': ",
                        info.error);
        app = synth::inferAppModel(state.store, storage::Query{},
                                   opts, &stats);
    } else if (args.has("traces")) {
        std::vector<trace::Trace> traces;
        std::vector<int64_t> slos;
        for (TraceRecord &r : loadRecords(args.get("traces"))) {
            slos.push_back(r.sloUs);
            traces.push_back(std::move(r.trace));
        }
        app = synth::inferAppModel(traces, slos, opts, &stats);
    } else {
        util::fatal("infer requires --store DIR or --traces IN.json");
    }

    if (stats.tracesUsed == 0)
        util::fatal("infer: no usable traces (", stats.tracesSkipped,
                    " skipped as malformed)");
    writeFile(args.get("out"), toJson(app).dump(2) + "\n");
    std::printf("inferred '%s' from %zu traces / %zu spans"
                " (%zu skipped): %zu services, %zu rpcs, %zu flows"
                " -> %s\n",
                app.name.c_str(), stats.tracesUsed, stats.spans,
                stats.tracesSkipped, app.services.size(),
                app.rpcs.size(), app.flows.size(),
                args.get("out").c_str());
    return 0;
}

// Parses its own argv: --verify/--compact are value-less flags, which
// the shared Args parser (strictly --key value) does not model.
int
cmdWal(int argc, char **argv)
{
    std::string dir;
    bool verify = false;
    bool compact = false;
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--dir" && i + 1 < argc)
            dir = argv[++i];
        else if (a == "--verify")
            verify = true;
        else if (a == "--compact")
            compact = true;
        else
            util::fatal("unknown wal option '", a,
                        "' (want --dir DIR [--verify] [--compact])");
    }
    if (dir.empty())
        util::fatal("wal requires --dir DIR");
    requireDataDir(dir, "wal");

    bool corrupt = false;

    // Per-segment valid-prefix scan + record-kind histogram.
    for (const auto &[index, path] : durable::listSegments(dir)) {
        durable::SegmentScan scan = durable::scanSegment(path);
        std::map<std::string, size_t> kinds;
        for (const durable::WalFrame &f : scan.frames)
            ++kinds[durable::toString(f.kind)];
        std::printf("segment %010llu: %zu frames, %llu/%llu bytes",
                    static_cast<unsigned long long>(index),
                    scan.frames.size(),
                    static_cast<unsigned long long>(scan.validBytes),
                    static_cast<unsigned long long>(scan.fileBytes));
        if (scan.torn) {
            std::printf("  TORN (%s)", scan.tornReason.c_str());
            corrupt = true;
        }
        std::printf("\n ");
        for (const auto &[kind, count] : kinds)
            std::printf(" %s=%zu", kind.c_str(), count);
        std::printf("\n");
    }
    for (const auto &[index, path] : durable::listSnapshots(dir)) {
        std::string payload;
        std::string err;
        bool ok = durable::readSnapshotFile(path, &payload, &err);
        std::printf("snapshot %010llu: %s (%zu bytes)\n",
                    static_cast<unsigned long long>(index),
                    ok ? "valid" : err.c_str(), payload.size());
        if (!ok)
            corrupt = true;
    }

    // Config-free replay: the epoch records / snapshot carry the
    // detector configuration, so no model or service config is needed.
    durable::DurableConfig cfg;
    cfg.dir = dir;
    online::RecoveryInfo info;
    online::DurableServingState state =
        online::recoverState(cfg, {}, &info);
    if (!info.haveData) {
        std::printf("replay: empty data directory\n");
    } else if (info.ok) {
        std::printf(
            "replay: ok — snapshot=%s polls=%llu frames=%llu "
            "discarded-tail=%llu -> %zu records / %zu spans, "
            "%zu incidents, watermark %lld, store fingerprint "
            "%016llx\n",
            info.usedSnapshot ? "yes" : "no",
            static_cast<unsigned long long>(info.pollsReplayed),
            static_cast<unsigned long long>(info.framesReplayed),
            static_cast<unsigned long long>(info.discardedTailFrames),
            state.store.size(), state.store.totalSpans(),
            state.incidents.size(),
            static_cast<long long>(state.watermarkUs),
            static_cast<unsigned long long>(
                state.store.contentFingerprint()));
    } else {
        std::printf("replay: FAILED — %s\n", info.error.c_str());
        corrupt = true;
    }

    if (compact) {
        if (corrupt && !info.ok)
            util::fatal("refusing to compact: the log does not "
                        "replay cleanly");
        if (!info.haveData) {
            std::printf("nothing to compact\n");
        } else {
            durable::DurableLog log(cfg);
            durable::RecoveredLog recovered = log.recover();
            std::string epoch =
                online::encodeEpochPayload(state.detectorConfig);
            std::string err;
            if (!log.openForAppend(recovered, epoch, &err))
                util::fatal("cannot open log for compaction: ", err);
            if (!log.rotateWithSnapshot(
                    online::encodeSnapshotPayload(state), epoch, &err))
                util::fatal("compaction failed: ", err);
            std::printf("compacted -> snapshot %llu + segment %llu\n",
                        static_cast<unsigned long long>(
                            log.segmentIndex()),
                        static_cast<unsigned long long>(
                            log.segmentIndex()));
        }
    }
    return verify && corrupt ? 1 : 0;
}

void
usage()
{
    std::printf(
        "usage: sleuth <generate|simulate|train|analyze|ingest|"
        "metrics|wal|infer> [--opt value]...\n"
        "  generate --rpcs N [--seed S] [--name NAME] [--out DIR]\n"
        "  simulate --config CONFIG.json --count N --out OUT.json\n"
        "           [--seed S] [--nodes K] [--chaos EXPECTED]\n"
        "  train    --traces IN.json --out MODEL.json [--epochs E]\n"
        "           [--embed D] [--hidden H]\n"
        "  analyze  --model MODEL.json --traces IN.json\n"
        "           [--normal NORMAL.json] [--threads N]\n"
        "  ingest   --traces IN.json [--protocol otel|zipkin|jaeger]\n"
        "           [--slo US]  (validate + store; prints accept/drop\n"
        "           counters by reason)\n"
        "  metrics  --traces IN.json [--model MODEL.json]\n"
        "           [--normal N.json] [--threads N] [--out FILE]\n"
        "           (ingest, optionally analyze, then print the\n"
        "           Prometheus text exposition of process metrics)\n"
        "  wal      --dir DIR [--verify] [--compact]\n"
        "           (inspect a durable data directory: segment CRC\n"
        "           status, record-kind histograms, replay summary;\n"
        "           --verify exits non-zero on corruption; --compact\n"
        "           folds the log into a fresh snapshot)\n"
        "  infer    (--store DIR | --traces IN.json) --out MODEL.json\n"
        "           [--name NAME] [--max-traces N]\n"
        "           (infer an app model from observed traces; the\n"
        "           model replays through `simulate` unmodified)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "wal")
        return cmdWal(argc, argv);
    Args args(argc, argv, 2);
    if (cmd == "generate")
        return cmdGenerate(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "train")
        return cmdTrain(args);
    if (cmd == "analyze")
        return cmdAnalyze(args);
    if (cmd == "ingest")
        return cmdIngest(args);
    if (cmd == "metrics")
        return cmdMetrics(args);
    if (cmd == "infer")
        return cmdInfer(args);
    usage();
    return 2;
}
