// Campaign driver: draw N seeded scenarios, run every metamorphic
// invariant over each, shrink failures to minimal repro JSONs, and
// optionally emit a BENCH-format summary. Exit status is non-zero when
// any invariant failed (repro files are written first).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "campaign/campaign.h"
#include "util/logging.h"

using namespace sleuth;

namespace {

void
usage()
{
    std::printf(
        "usage: campaign_run [options]\n"
        "  --scenarios N    scenarios to draw (default 20)\n"
        "  --seed S         master seed (default 1)\n"
        "  --mutation M     test-only invariant mutation\n"
        "  --no-shrink      skip failing-scenario minimization\n"
        "  --shrink-runs N  per-failure shrink budget (default 140)\n"
        "  --repro-dir DIR  write shrunk repros as DIR/repro-*.json\n"
        "  --bench-out FILE write BENCH-format JSON summary\n"
        "  --prune-ablation N  instead of invariants, sweep N scenarios\n"
        "                   comparing full vs aggressive-pruned accuracy\n"
        "  --aggressiveness A  prune aggressiveness for the ablation\n"
        "                   (default 0.5)\n"
        "  --list           list registered invariants and exit\n");
}

/** Fraction of storm traces whose verdict hits the ground truth. */
double
hitRate(const core::PipelineResult &res,
        const std::vector<std::set<std::string>> &truth)
{
    if (truth.empty())
        return 1.0;
    size_t hits = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
        for (const std::string &svc : res.perTrace[i].services) {
            if (truth[i].count(svc)) {
                ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) /
           static_cast<double>(truth.size());
}

/**
 * Prune-ablation sweep (the EXPERIMENTS.md accuracy row): for each
 * drawn scenario, run the pipeline full and aggressive-pruned over the
 * same storm and aggregate top-k hit rates plus the measured prune
 * ratios. Exits 0 — the row is a measurement, not an invariant; the
 * pruned-vs-full campaign invariant separately guards the
 * conservative mode's exactness.
 */
int
runPruneAblation(size_t scenarios, uint64_t seed,
                 double aggressiveness, const std::string &bench_out)
{
    util::Rng rng(seed);
    double full_sum = 0.0, pruned_sum = 0.0;
    double keep_traces_sum = 0.0, keep_services_sum = 0.0;
    size_t measured = 0, degenerate = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < scenarios; ++i) {
        campaign::Scenario s = campaign::drawScenario(rng);
        std::unique_ptr<campaign::ScenarioRun> run =
            campaign::buildScenario(s);
        if (run->degenerate) {
            ++degenerate;
            continue;
        }
        core::PipelineConfig cfg = s.pipelineConfig();
        core::PipelineResult full = run->analyze(cfg);
        core::PipelineConfig pruned_cfg = cfg;
        pruned_cfg.prune.mode = core::PruneConfig::Mode::Aggressive;
        pruned_cfg.prune.aggressiveness = aggressiveness;
        core::PipelineResult pruned = run->analyze(pruned_cfg);
        full_sum += hitRate(full, run->truthServices);
        pruned_sum += hitRate(pruned, run->truthServices);
        keep_traces_sum += pruned.pruneTraceKeepRatio;
        keep_services_sum += pruned.pruneServiceKeepRatio;
        ++measured;
    }
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (measured == 0) {
        std::printf("prune-ablation: all %zu scenarios degenerate\n",
                    scenarios);
        return 0;
    }
    double n = static_cast<double>(measured);
    std::printf(
        "prune-ablation: %zu scenarios (%zu degenerate), "
        "aggressiveness %.2f, %.1fs\n"
        "  full hit rate    %.4f\n"
        "  pruned hit rate  %.4f (delta %+.4f)\n"
        "  trace keep ratio %.4f, service keep ratio %.4f\n",
        measured, degenerate, aggressiveness, elapsed, full_sum / n,
        pruned_sum / n, (pruned_sum - full_sum) / n,
        keep_traces_sum / n, keep_services_sum / n);
    if (!bench_out.empty()) {
        util::Json rows = util::Json::array();
        auto row = [&rows](const char *metric, double value,
                           const char *unit) {
            util::Json r = util::Json::object();
            r.set("metric", metric);
            r.set("value", value);
            r.set("unit", unit);
            rows.push(std::move(r));
        };
        row("prune_ablation_full_hit_rate", full_sum / n, "ratio");
        row("prune_ablation_pruned_hit_rate", pruned_sum / n, "ratio");
        row("prune_ablation_trace_keep_ratio", keep_traces_sum / n,
            "ratio");
        row("prune_ablation_service_keep_ratio", keep_services_sum / n,
            "ratio");
        row("prune_ablation_scenarios", n, "count");
        std::ofstream out(bench_out);
        if (!out)
            util::fatal("cannot write ", bench_out);
        out << rows.dump(2) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::CampaignParams params;
    std::string repro_dir;
    std::string bench_out;
    size_t ablation_scenarios = 0;
    double ablation_aggressiveness = 0.5;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                util::fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--scenarios")
            params.scenarios =
                static_cast<size_t>(std::stoul(next()));
        else if (arg == "--seed")
            params.seed = std::stoull(next());
        else if (arg == "--mutation")
            params.mutation = next();
        else if (arg == "--no-shrink")
            params.shrink = false;
        else if (arg == "--shrink-runs")
            params.maxShrinkRuns =
                static_cast<size_t>(std::stoul(next()));
        else if (arg == "--repro-dir")
            repro_dir = next();
        else if (arg == "--bench-out")
            bench_out = next();
        else if (arg == "--prune-ablation")
            ablation_scenarios =
                static_cast<size_t>(std::stoul(next()));
        else if (arg == "--aggressiveness")
            ablation_aggressiveness = std::stod(next());
        else if (arg == "--list") {
            for (const campaign::Invariant &inv :
                 campaign::invariantRegistry())
                std::printf("%-24s %s\n", inv.name.c_str(),
                            inv.description.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            util::fatal("unknown argument '", arg, "'");
        }
    }
    if (ablation_scenarios > 0)
        return runPruneAblation(ablation_scenarios, params.seed,
                                ablation_aggressiveness, bench_out);
    if (!params.mutation.empty()) {
        const auto &known = campaign::knownMutations();
        if (std::find(known.begin(), known.end(), params.mutation) ==
            known.end())
            util::fatal("unknown mutation '", params.mutation, "'");
    }

    auto t0 = std::chrono::steady_clock::now();
    campaign::CampaignReport report = campaign::runCampaign(params);
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    for (const auto &[name, counts] : report.perInvariant())
        std::printf("%-24s pass=%zu fail=%zu\n", name.c_str(),
                    counts.first, counts.second);
    std::printf("campaign: %zu scenarios (%zu degenerate), %zu checks,"
                " %zu failures, %.1fs\n",
                report.outcomes.size(),
                report.degenerateScenarios(), report.checksRun(),
                report.failures(), elapsed);

    if (!repro_dir.empty()) {
        for (size_t i = 0; i < report.repros.size(); ++i) {
            std::string path = repro_dir + "/repro-" +
                               report.repros[i].invariant + "-" +
                               std::to_string(i) + ".json";
            std::ofstream out(path);
            if (!out)
                util::fatal("cannot write ", path);
            out << toJson(report.repros[i]).dump(2) << "\n";
            std::printf("wrote %s\n", path.c_str());
        }
    }
    if (!bench_out.empty()) {
        std::ofstream out(bench_out);
        if (!out)
            util::fatal("cannot write ", bench_out);
        out << report.benchJson(elapsed).dump(2) << "\n";
    }
    return report.allPassed() ? 0 : 1;
}
