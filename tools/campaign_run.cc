// Campaign driver: draw N seeded scenarios, run every metamorphic
// invariant over each, shrink failures to minimal repro JSONs, and
// optionally emit a BENCH-format summary. Exit status is non-zero when
// any invariant failed (repro files are written first).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "campaign/campaign.h"
#include "util/logging.h"

using namespace sleuth;

namespace {

void
usage()
{
    std::printf(
        "usage: campaign_run [options]\n"
        "  --scenarios N    scenarios to draw (default 20)\n"
        "  --seed S         master seed (default 1)\n"
        "  --mutation M     test-only invariant mutation\n"
        "  --no-shrink      skip failing-scenario minimization\n"
        "  --shrink-runs N  per-failure shrink budget (default 140)\n"
        "  --repro-dir DIR  write shrunk repros as DIR/repro-*.json\n"
        "  --bench-out FILE write BENCH-format JSON summary\n"
        "  --list           list registered invariants and exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::CampaignParams params;
    std::string repro_dir;
    std::string bench_out;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                util::fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--scenarios")
            params.scenarios =
                static_cast<size_t>(std::stoul(next()));
        else if (arg == "--seed")
            params.seed = std::stoull(next());
        else if (arg == "--mutation")
            params.mutation = next();
        else if (arg == "--no-shrink")
            params.shrink = false;
        else if (arg == "--shrink-runs")
            params.maxShrinkRuns =
                static_cast<size_t>(std::stoul(next()));
        else if (arg == "--repro-dir")
            repro_dir = next();
        else if (arg == "--bench-out")
            bench_out = next();
        else if (arg == "--list") {
            for (const campaign::Invariant &inv :
                 campaign::invariantRegistry())
                std::printf("%-24s %s\n", inv.name.c_str(),
                            inv.description.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            util::fatal("unknown argument '", arg, "'");
        }
    }
    if (!params.mutation.empty()) {
        const auto &known = campaign::knownMutations();
        if (std::find(known.begin(), known.end(), params.mutation) ==
            known.end())
            util::fatal("unknown mutation '", params.mutation, "'");
    }

    auto t0 = std::chrono::steady_clock::now();
    campaign::CampaignReport report = campaign::runCampaign(params);
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    for (const auto &[name, counts] : report.perInvariant())
        std::printf("%-24s pass=%zu fail=%zu\n", name.c_str(),
                    counts.first, counts.second);
    std::printf("campaign: %zu scenarios (%zu degenerate), %zu checks,"
                " %zu failures, %.1fs\n",
                report.outcomes.size(),
                report.degenerateScenarios(), report.checksRun(),
                report.failures(), elapsed);

    if (!repro_dir.empty()) {
        for (size_t i = 0; i < report.repros.size(); ++i) {
            std::string path = repro_dir + "/repro-" +
                               report.repros[i].invariant + "-" +
                               std::to_string(i) + ".json";
            std::ofstream out(path);
            if (!out)
                util::fatal("cannot write ", path);
            out << toJson(report.repros[i]).dump(2) << "\n";
            std::printf("wrote %s\n", path.c_str());
        }
    }
    if (!bench_out.empty()) {
        std::ofstream out(bench_out);
        if (!out)
            util::fatal("cannot write ", bench_out);
        out << report.benchJson(elapsed).dump(2) << "\n";
    }
    return report.allPassed() ? 0 : 1;
}
