#!/usr/bin/env bash
# Build and run the differential suites: every bitwise-equivalence /
# guaranteed-superset contract in the tree, grouped under the ctest
# label `differential` —
#   - simd_test            scalar <-> AVX2 kernel equivalence
#   - online_service_test  online <-> batch, 1/2/8-thread determinism
#   - online_incremental_test  cached <-> uncached incident re-analysis
#   - pruner_test          conservative pruned ≡ full pipeline
#   - pipeline_cache_test  warm ≡ cold re-poll, invalidation fallback
#   - campaign_corpus      pinned repro cases (incl. pruned-vs-full and
#                          incremental-repoll invariants)
#
# The label runs twice: once in a -DSLEUTH_SIMD=ON build and once with
# the AVX2 bodies compiled out (-DSLEUTH_SIMD=OFF), so each contract
# holds on both dispatch paths.
#
# Usage: tools/run_differentials.sh [build-dir]
#   build-dir  defaults to <repo>/build-differential
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-differential}"

for simd in ON OFF; do
    dir="$build_dir"
    [ "$simd" = OFF ] && dir="$build_dir-nosimd"
    echo "== differential suites (SLEUTH_SIMD=$simd): $dir =="
    cmake -S "$repo_root" -B "$dir" \
        -DCMAKE_BUILD_TYPE=Release \
        -DSLEUTH_SIMD="$simd"
    cmake --build "$dir" -j "$(nproc)"
    ctest --test-dir "$dir" -L differential --output-on-failure \
        -j "$(nproc)"
done
