# Exercises campaign_replay's malformed-input handling: an unknown
# invariant or mutation name must be a clean per-file error listing the
# valid names (nonzero exit, no abort), while a valid corpus case keeps
# replaying to exit 0.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# A structurally valid case body whose names we corrupt per leg.
set(scenario "{\"seed\": 84036590, \"numRpcs\": 12, \"clusterNodes\": 8, \"trainTraces\": 48, \"trainEpochs\": 2, \"faultCount\": 2, \"faultScope\": \"container\", \"numQueries\": 4, \"clustering\": true, \"algorithm\": \"hdbscan\", \"minClusterSize\": 4, \"minSamples\": 2, \"clusterSelectionEpsilon\": 0, \"dbscanEps\": 0.4, \"dbscanMinPts\": 3, \"maxRepresentativeDistance\": 0.6, \"keptTraces\": [3], \"droppedFaults\": [0]}")

function(run_expect expected_rc out_var)
    execute_process(COMMAND ${REPLAY_BIN} ${ARGN}
                    WORKING_DIRECTORY ${WORK_DIR}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected_rc})
        message(FATAL_ERROR
            "campaign_replay ${ARGN} exited ${rc}, expected "
            "${expected_rc}: ${out}${err}")
    endif()
    set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

# Unknown invariant: clean error naming the known registry.
file(WRITE ${WORK_DIR}/bad-invariant.json
    "{\"version\": 1, \"invariant\": \"no-such-check\", \"expect\": \"pass\", \"scenario\": ${scenario}}")
run_expect(1 out ${WORK_DIR}/bad-invariant.json)
if(NOT out MATCHES "unknown invariant 'no-such-check'")
    message(FATAL_ERROR "missing unknown-invariant error: ${out}")
endif()
if(NOT out MATCHES "determinism-threads" OR NOT out MATCHES "pruned-vs-full"
   OR NOT out MATCHES "incremental-repoll")
    message(FATAL_ERROR "error did not list the known invariants: ${out}")
endif()

# Unknown mutation: same shape, listing the known mutations.
file(WRITE ${WORK_DIR}/bad-mutation.json
    "{\"version\": 1, \"invariant\": \"skipped-accounting\", \"mutation\": \"no-such-mutation\", \"expect\": \"fail\", \"scenario\": ${scenario}}")
run_expect(1 out ${WORK_DIR}/bad-mutation.json)
if(NOT out MATCHES "unknown mutation 'no-such-mutation'")
    message(FATAL_ERROR "missing unknown-mutation error: ${out}")
endif()
if(NOT out MATCHES "miscount-skipped" OR NOT out MATCHES "overprune-root-cause")
    message(FATAL_ERROR "error did not list the known mutations: ${out}")
endif()

# Missing invariant field: still a clean per-file error.
file(WRITE ${WORK_DIR}/no-invariant.json
    "{\"version\": 1, \"expect\": \"pass\", \"scenario\": ${scenario}}")
run_expect(1 out ${WORK_DIR}/no-invariant.json)
if(NOT out MATCHES "missing 'invariant' field")
    message(FATAL_ERROR "missing-field error absent: ${out}")
endif()

# A bad file must not poison the batch: the valid curated case after it
# still replays, and the exit stays nonzero for the bad one.
run_expect(1 out ${WORK_DIR}/bad-invariant.json
    ${CORPUS_DIR}/mutation-miscount-skipped.json)
if(NOT out MATCHES "ok .*mutation-miscount-skipped")
    message(FATAL_ERROR "valid case after a bad file did not replay: ${out}")
endif()

# And a purely valid invocation exits 0.
run_expect(0 out ${CORPUS_DIR}/mutation-miscount-skipped.json)
