// sleuth_serviced — drive the online serving layer from the
// discrete-event simulator under a chaos schedule.
//
// The tool generates a synthetic application, calibrates SLOs, trains
// the Sleuth GNN on a healthy warmup corpus, then streams a Poisson
// request load through the streaming ingestion path: spans delivered
// out of order, late, optionally duplicated, split across payload
// boundaries. Mid-run a fault phase opens (planFixedFaults) and later
// clears, so the storm detector must open, analyze, and resolve an
// incident online. On exit the tool prints a metrics document: ingest
// rate, assembly backlog and drop reasons, storage/eviction counters,
// detection and RCA latency, and every incident record.
//
// With --metrics-text the process metrics registry (obs::renderText)
// is snapshotted to FILE in Prometheus text exposition format every
// --metrics-every polls and once after the final drain — the textfile
// pattern a node-exporter-style scraper picks up.
//
// With --infer-out the daemon snapshots an application model inferred
// from the live trace store (synth::inferAppModel, DESIGN.md §3.16)
// every --infer-every polls and once after the final drain — the
// profile-and-clone hook: the file replays through `sleuth simulate`
// unmodified.
//
//   sleuth_serviced [--rpcs N] [--seed S] [--nodes K] [--requests R]
//                   [--rate RPS] [--threads T] [--poll-ms MS]
//                   [--faults F] [--duplicate P] [--max-spans BUDGET]
//                   [--ring-capacity SPANS] [--shed-budget SPANS]
//                   [--shed-policy drop-newest|drop-oldest|sample]
//                   [--data-dir DIR] [--fsync-policy always|group|off]
//                   [--snapshot-every POLLS]
//                   [--out METRICS.json]
//                   [--metrics-text FILE] [--metrics-every POLLS]
//                   [--infer-out MODEL.json] [--infer-every POLLS]
//
// --ring-capacity bounds each ingest shard's MPSC ring (DESIGN.md
// §3.13); --shed-budget caps the spans a shard admits per poll, the
// excess shed deterministically by --shed-policy.
//
// --data-dir enables the durable store (DESIGN.md §3.15): on startup
// the daemon auto-recovers whatever the directory holds (newest valid
// snapshot + committed WAL polls) and from then on every poll seals
// one group-committed, CRC32C-checksummed commit group. --fsync-policy
// picks when frames reach disk (default group: one fsync per poll);
// --snapshot-every rotates the log into a fresh snapshot every N poll
// commits (0 = never; the WAL then grows unbounded until a manual
// `sleuth wal --compact`).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <system_error>

#include "chaos/fault.h"
#include "durable/durable_log.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "online/live_source.h"
#include "online/service.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "synth/infer.h"
#include "util/json.h"
#include "util/logging.h"

using namespace sleuth;

namespace {

int64_t
intArg(int argc, char **argv, const std::string &key, int64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (key == argv[i])
            return std::stoll(argv[i + 1]);
    return fallback;
}

double
doubleArg(int argc, char **argv, const std::string &key, double fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (key == argv[i])
            return std::stod(argv[i + 1]);
    return fallback;
}

std::string
strArg(int argc, char **argv, const std::string &key,
       const std::string &fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (key == argv[i])
            return argv[i + 1];
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed =
        static_cast<uint64_t>(intArg(argc, argv, "--seed", 7));
    int rpcs = static_cast<int>(intArg(argc, argv, "--rpcs", 24));
    int nodes = static_cast<int>(intArg(argc, argv, "--nodes", 12));
    size_t requests =
        static_cast<size_t>(intArg(argc, argv, "--requests", 3000));
    double rate = doubleArg(argc, argv, "--rate", 400.0);
    size_t threads =
        static_cast<size_t>(intArg(argc, argv, "--threads", 2));
    int64_t poll_ms = intArg(argc, argv, "--poll-ms", 250);
    size_t faults =
        static_cast<size_t>(intArg(argc, argv, "--faults", 2));
    double duplicate = doubleArg(argc, argv, "--duplicate", 0.02);
    size_t max_spans =
        static_cast<size_t>(intArg(argc, argv, "--max-spans", 400'000));
    size_t ring_capacity = static_cast<size_t>(
        intArg(argc, argv, "--ring-capacity", 1 << 16));
    size_t shed_budget = static_cast<size_t>(
        intArg(argc, argv, "--shed-budget", 0));
    std::string shed_policy_name =
        strArg(argc, argv, "--shed-policy", "drop-newest");
    online::ShedPolicy shed_policy;
    if (!online::shedPolicyFromString(shed_policy_name, &shed_policy))
        util::fatal("unknown --shed-policy '", shed_policy_name,
                    "' (want drop-newest, drop-oldest, or sample)");
    std::string data_dir = strArg(argc, argv, "--data-dir", "");
    std::string fsync_policy_name =
        strArg(argc, argv, "--fsync-policy", "group");
    durable::FsyncPolicy fsync_policy;
    if (!durable::fsyncPolicyFromString(fsync_policy_name,
                                        &fsync_policy))
        util::fatal("unknown --fsync-policy '", fsync_policy_name,
                    "' (want always, group, or off)");
    uint64_t snapshot_every = static_cast<uint64_t>(
        intArg(argc, argv, "--snapshot-every", 64));
    std::string out = strArg(argc, argv, "--out", "");
    std::string metrics_text =
        strArg(argc, argv, "--metrics-text", "");
    int64_t metrics_every =
        std::max<int64_t>(1, intArg(argc, argv, "--metrics-every", 4));
    std::string infer_out = strArg(argc, argv, "--infer-out", "");
    int64_t infer_every =
        std::max<int64_t>(1, intArg(argc, argv, "--infer-every", 16));

    // Validate the data directory before the expensive warmup and
    // training phases: a typo'd or uncreatable --data-dir must fail
    // here with a clear message, not minutes later.
    if (!data_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(data_dir, ec);
        if (ec)
            util::fatal("--data-dir ", data_dir,
                        ": cannot create data directory (",
                        ec.message(), ")");
        if (!std::filesystem::is_directory(data_dir))
            util::fatal("--data-dir ", data_dir,
                        ": not a directory");
    }

    // --- Application, deployment, SLOs. ---
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(rpcs, seed));
    sim::ClusterModel cluster(app, nodes, seed);
    sim::Simulator::calibrateSlos(app, cluster, 300, 99.0, seed);

    // --- Train on a healthy warmup corpus. ---
    sim::Simulator warmup(app, cluster, {.seed = seed ^ 0x9a17u});
    std::vector<trace::Trace> corpus;
    corpus.reserve(400);
    for (size_t i = 0; i < 400; ++i)
        corpus.push_back(warmup.simulateOne().trace);
    eval::SleuthAdapter adapter;
    adapter.fit(corpus);
    std::printf("trained on %zu warmup traces; %zu flows, %zu services\n",
                corpus.size(), app.flows.size(), app.services.size());

    // --- Chaos schedule: healthy -> faulty -> healthy. ---
    int64_t total_us = static_cast<int64_t>(
        static_cast<double>(requests) / rate * 1e6);
    chaos::FaultSchedule schedule;
    if (faults > 0) {
        util::Rng chaos_rng(seed ^ 0xc4a05u);
        chaos::FaultPlan plan = chaos::planFixedFaults(
            cluster.allInstances(), faults, chaos::FaultScope::Container,
            {}, chaos_rng);
        schedule.phases.push_back({0, {}});
        schedule.phases.push_back({total_us * 3 / 10, plan});
        schedule.phases.push_back({total_us * 7 / 10, {}});
        for (const chaos::FaultSpec &f : plan.faults)
            std::printf("fault: %s on %s %s\n", toString(f.type),
                        toString(f.scope), f.target.c_str());
    }

    // --- Online service. ---
    online::OnlineConfig cfg;
    cfg.endpoints = online::endpointProfiles(app);
    cfg.retention.maxSpans = max_spans;
    cfg.assembler.latenessUs = 150'000;
    cfg.assembler.quietGapUs = 100'000;
    cfg.detector.bucketUs = 500'000;
    cfg.detector.windowBuckets = 8;
    cfg.ringCapacitySpans = ring_capacity;
    cfg.shedBudgetSpans = shed_budget;
    cfg.shedPolicy = shed_policy;
    online::OnlineService service(adapter.model(), adapter.encoder(),
                                  adapter.profile(), cfg);

    if (!data_dir.empty()) {
        durable::DurableConfig dcfg;
        dcfg.dir = data_dir;
        dcfg.fsyncPolicy = fsync_policy;
        dcfg.snapshotEveryPolls = snapshot_every;
        online::RecoveryInfo rec = service.enableDurability(dcfg);
        if (!rec.ok)
            util::fatal("durable recovery failed: ", rec.error);
        if (rec.haveData)
            std::printf(
                "recovered %s: snapshot=%s polls=%llu frames=%llu "
                "discarded-tail=%llu torn-segments=%llu -> %zu traces, "
                "%zu incidents, watermark %lld\n",
                data_dir.c_str(), rec.usedSnapshot ? "yes" : "no",
                static_cast<unsigned long long>(rec.pollsReplayed),
                static_cast<unsigned long long>(rec.framesReplayed),
                static_cast<unsigned long long>(
                    rec.discardedTailFrames),
                static_cast<unsigned long long>(rec.tornSegments),
                service.stats().tracesStored,
                service.incidents().size(),
                static_cast<long long>(service.watermarkUs()));
        else
            std::printf("durable store %s: fresh data directory "
                        "(fsync=%s, snapshot-every=%llu)\n",
                        data_dir.c_str(),
                        durable::toString(fsync_policy),
                        static_cast<unsigned long long>(snapshot_every));
    }

    online::LiveSourceConfig live;
    live.seed = seed;
    live.requests = requests;
    live.arrivalRatePerSec = rate;
    live.ingestThreads = threads;
    live.pollIntervalUs = poll_ms * 1000;
    live.duplicateProb = duplicate;
    live.schedule = schedule;
    size_t snapshots = 0;
    size_t inferred_snapshots = 0;
    // Declared alongside snapshots: the onPoll lambda captures them by
    // reference and runs inside runLiveLoad, after the if-block ends.
    int64_t polls = 0;
    // Snapshot an inferred model from the live store (the store is
    // only mutated on the driver thread, which also runs onPoll, so
    // reading it between polls is race-free).
    auto writeInferred = [&]() {
        synth::InferOptions opts;
        opts.name = app.name + "-inferred";
        synth::InferStats istats;
        synth::AppConfig model = synth::inferAppModel(
            service.store(), storage::Query{}, opts, &istats);
        if (istats.tracesUsed == 0)
            return;
        std::ofstream f(infer_out);
        if (!f)
            util::fatal("cannot write ", infer_out);
        f << toJson(model).dump(2) << "\n";
        ++inferred_snapshots;
    };
    if (!metrics_text.empty() || !infer_out.empty()) {
        // Periodic snapshots on the driver thread: rewrite each file
        // every Nth poll so a scraper always sees a complete document.
        live.onPoll = [&](int64_t) {
            int64_t n = polls++;
            if (!metrics_text.empty() && n % metrics_every == 0) {
                std::ofstream f(metrics_text);
                if (!f)
                    util::fatal("cannot write ", metrics_text);
                f << obs::renderText();
                ++snapshots;
            }
            if (!infer_out.empty() && n % infer_every == 0)
                writeInferred();
        };
    }
    online::LiveRunResult run = online::runLiveLoad(
        app, cluster, {.seed = seed ^ 0x515u}, live, &service);

    if (!metrics_text.empty()) {
        // Final snapshot: everything the drain flushed is included.
        std::ofstream f(metrics_text);
        if (!f)
            util::fatal("cannot write ", metrics_text);
        f << obs::renderText();
        ++snapshots;
        std::printf("metrics exposition -> %s (%zu snapshots)\n",
                    metrics_text.c_str(), snapshots);
    }

    if (!infer_out.empty()) {
        // Final model: everything the drain stored is included.
        writeInferred();
        if (inferred_snapshots == 0)
            util::fatal("--infer-out ", infer_out,
                        ": no traces stored, nothing to infer");
        std::printf("inferred model -> %s (%zu snapshots)\n",
                    infer_out.c_str(), inferred_snapshots);
    }

    // --- Report. ---
    util::Json doc = service.statsJson();
    if (service.durable()) {
        char fp[24];
        std::snprintf(fp, sizeof fp, "%016llx",
                      static_cast<unsigned long long>(
                          service.servingFingerprint()));
        doc.set("servingFingerprint", std::string(fp));
    }
    doc.set("requests", run.requests);
    doc.set("spansDelivered", run.spansDelivered);
    doc.set("anomalousSimulated", run.anomalousSimulated);
    doc.set("ingestWallMillis", run.ingestWallMillis);
    doc.set("spansPerSec", run.spansPerSec);
    util::Json latencies = util::Json::array();
    for (int64_t l : run.detectionLatenciesUs)
        latencies.push(util::Json(l));
    doc.set("detectionLatenciesUs", std::move(latencies));
    util::Json incidents = util::Json::array();
    for (const online::Incident &incident : service.incidents())
        incidents.push(online::toJson(incident));
    doc.set("incidents", std::move(incidents));

    std::string text = doc.dump();
    if (!out.empty()) {
        std::ofstream f(out);
        if (!f)
            util::fatal("cannot write ", out);
        f << text;
        std::printf("metrics -> %s\n", out.c_str());
    } else {
        std::printf("%s\n", text.c_str());
    }

    online::OnlineStats stats = service.stats();
    std::printf("ingested %zu spans at %.0f spans/sec; stored %zu"
                " traces; %zu incidents (%zu analyzed, %zu resolved)\n",
                stats.spansIngested, run.spansPerSec, stats.tracesStored,
                stats.incidentsOpened, stats.incidentsAnalyzed,
                stats.incidentsResolved);
    for (const online::Incident &incident : service.incidents()) {
        std::printf("incident #%zu [%s]", incident.id,
                    online::toString(incident.state));
        for (const auto &[svc, votes] : incident.rankedRootCauses)
            std::printf(" %s(%zu)", svc.c_str(), votes);
        std::printf("\n");
    }
    return 0;
}
