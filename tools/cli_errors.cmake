# Exercises the CLI failure paths hardened by the durable-data-dir and
# config-parse audits: missing/empty/invalid directories and malformed
# configs must exit nonzero with a message naming the problem — no
# abort, no silent success, no side effects (a missing --dir must not
# be created as an empty data directory).
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_expect expected_rc out_var)
    execute_process(COMMAND ${ARGN}
                    WORKING_DIRECTORY ${WORK_DIR}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected_rc})
        message(FATAL_ERROR
            "${ARGN} exited ${rc}, expected ${expected_rc}: ${out}${err}")
    endif()
    set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

# --- sleuth wal: data-directory validation. ---

# A missing directory is an error and must NOT be created on the side.
run_expect(1 out ${SLEUTH_BIN} wal --dir ${WORK_DIR}/no-such-dir --verify)
if(NOT out MATCHES "does not exist")
    message(FATAL_ERROR "missing-dir error absent: ${out}")
endif()
if(EXISTS ${WORK_DIR}/no-such-dir)
    message(FATAL_ERROR "wal --verify created the missing data dir")
endif()

# A regular file where the directory should be.
file(WRITE ${WORK_DIR}/a-file "not a directory")
run_expect(1 out ${SLEUTH_BIN} wal --dir ${WORK_DIR}/a-file)
if(NOT out MATCHES "not a directory")
    message(FATAL_ERROR "file-as-dir error absent: ${out}")
endif()

# No --dir at all.
run_expect(1 out ${SLEUTH_BIN} wal)
if(NOT out MATCHES "requires --dir")
    message(FATAL_ERROR "missing --dir error absent: ${out}")
endif()

# An existing empty directory is a valid (trivial) store, not an error.
file(MAKE_DIRECTORY ${WORK_DIR}/empty-store)
run_expect(0 out ${SLEUTH_BIN} wal --dir ${WORK_DIR}/empty-store --verify)
if(NOT out MATCHES "empty data directory")
    message(FATAL_ERROR "empty-store summary absent: ${out}")
endif()

# --- sleuth infer: input validation. ---

run_expect(1 out ${SLEUTH_BIN} infer --traces ${WORK_DIR}/missing.json
           --out ${WORK_DIR}/m.json)
if(NOT out MATCHES "cannot read")
    message(FATAL_ERROR "missing-traces error absent: ${out}")
endif()

run_expect(1 out ${SLEUTH_BIN} infer --store ${WORK_DIR}/no-such-dir
           --out ${WORK_DIR}/m.json)
if(NOT out MATCHES "does not exist")
    message(FATAL_ERROR "missing-store error absent: ${out}")
endif()

run_expect(1 out ${SLEUTH_BIN} infer --store ${WORK_DIR}/empty-store
           --out ${WORK_DIR}/m.json)
if(NOT out MATCHES "no recoverable state")
    message(FATAL_ERROR "empty-store infer error absent: ${out}")
endif()

# --- Config parsing: a malformed enum is a recoverable per-field
# error naming the offending path, not an opaque abort. ---

run_expect(0 out ${SLEUTH_BIN} generate --rpcs 12 --seed 3 --out ${WORK_DIR}/app)
file(READ ${WORK_DIR}/app/config.json config)
string(REGEX REPLACE "\"tier\": \"frontend\"" "\"tier\": \"edge\""
       config "${config}")
file(WRITE ${WORK_DIR}/bad-tier.json "${config}")
run_expect(1 out ${SLEUTH_BIN} simulate --config ${WORK_DIR}/bad-tier.json
           --count 5 --out ${WORK_DIR}/t.json)
if(NOT out MATCHES "tier: unknown tier 'edge'")
    message(FATAL_ERROR "bad-tier error did not name the field: ${out}")
endif()

# --- sleuth_serviced --data-dir: an uncreatable path fails up front,
# before the expensive warmup/training phases. ---

run_expect(1 out ${SERVICED_BIN} --data-dir /dev/null/sub)
if(NOT out MATCHES "cannot create data directory")
    message(FATAL_ERROR "serviced data-dir error absent: ${out}")
endif()
