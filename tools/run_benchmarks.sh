#!/usr/bin/env bash
# Build the perf suites in Release mode and write machine-readable
# results to the repo root: BENCH_pipeline.json (batch pipeline hot
# paths, including the metrics-on vs metrics-off overhead rows
# e2e_analyze_256_metrics_{on,off}_ms / _overhead_pct) and
# BENCH_online.json (online serving layer: ingest throughput with and
# without the obs metrics layer, detection latency, incident RCA
# latency, and the durable-store rows — wal_append_spans_per_sec,
# wal_fsync_{always,group,off}_spans_per_sec, snapshot_write_ms,
# recovery_ms[_per_million_spans]; the suite exits nonzero if
# fsync=group ingest falls below half the non-durable headline).
# Durable scratch directories live under $TMPDIR; point it at tmpfs
# to measure the WAL without the build disk in the loop.
#
# Usage: tools/run_benchmarks.sh [--soak] [build-dir]
#
# --soak additionally replays hours of simulated time through the
# online service and appends bounded-RSS / watermark-liveness rows
# (soak_*) to BENCH_online.json. Slower; off by default.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
soak_flag=""
build_dir=""
for arg in "$@"; do
    case "$arg" in
        --soak) soak_flag="--soak" ;;
        *) build_dir="$arg" ;;
    esac
done
build_dir="${build_dir:-$repo_root/build-release}"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target perf_suite online_suite -j "$(nproc)"

# Record the CPU SIMD feature set alongside the results so a perf
# number is never read without knowing what ISA produced it (the
# suites also emit simd_* rows for the dispatch actually taken).
if [ -r /proc/cpuinfo ]; then
    grep -m1 '^flags' /proc/cpuinfo |
        tr ' ' '\n' |
        grep -E '^(sse2|sse4_1|sse4_2|avx|avx2|avx512f|fma)$' |
        paste -sd' ' - |
        sed 's/^/cpu simd features: /'
fi

"$build_dir/bench/perf_suite" "$repo_root/BENCH_pipeline.json"
"$build_dir/bench/online_suite" $soak_flag "$repo_root/BENCH_online.json"
