#!/usr/bin/env bash
# Build the pipeline perf suite in Release mode and write the
# machine-readable results to BENCH_pipeline.json at the repo root.
#
# Usage: tools/run_benchmarks.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target perf_suite -j "$(nproc)"

"$build_dir/bench/perf_suite" "$repo_root/BENCH_pipeline.json"
