#!/usr/bin/env bash
# Build the perf suites in Release mode and write machine-readable
# results to the repo root: BENCH_pipeline.json (batch pipeline hot
# paths, including the metrics-on vs metrics-off overhead rows
# e2e_analyze_256_metrics_{on,off}_ms / _overhead_pct) and
# BENCH_online.json (online serving layer: ingest throughput with and
# without the obs metrics layer, detection latency, incident RCA
# latency).
#
# Usage: tools/run_benchmarks.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-release}"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target perf_suite online_suite -j "$(nproc)"

"$build_dir/bench/perf_suite" "$repo_root/BENCH_pipeline.json"
"$build_dir/bench/online_suite" "$repo_root/BENCH_online.json"
