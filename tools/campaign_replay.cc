// Repro replayer: load campaign repro/corpus JSON files, rebuild each
// scenario deterministically, re-check its invariant, and verify the
// outcome matches the case's `expect` field ("fail" for shrunk repros,
// "pass" for curated corpus cases).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.h"
#include "util/logging.h"

using namespace sleuth;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: campaign_replay repro.json...\n");
        return 2;
    }
    int mismatches = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in)
            util::fatal("cannot read ", argv[i]);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string err;
        util::Json doc = util::Json::parse(buf.str(), &err);
        if (!err.empty())
            util::fatal(argv[i], ": ", err);
        campaign::ReproCase c = campaign::reproFromJson(doc);
        campaign::InvariantResult r = campaign::replayCase(c);
        bool expected_pass = c.expect == "pass";
        bool matched = r.pass == expected_pass;
        std::printf("%-8s %s: %s (%s)%s%s\n",
                    matched ? "ok" : "MISMATCH", argv[i],
                    c.invariant.c_str(),
                    r.pass ? "passed" : "failed",
                    r.detail.empty() ? "" : " — ",
                    r.detail.c_str());
        if (!matched)
            ++mismatches;
    }
    return mismatches == 0 ? 0 : 1;
}
