// Repro replayer: load campaign repro/corpus JSON files, rebuild each
// scenario deterministically, re-check its invariant, and verify the
// outcome matches the case's `expect` field ("fail" for shrunk repros,
// "pass" for curated corpus cases).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/invariants.h"
#include "util/logging.h"

using namespace sleuth;

namespace {

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

/**
 * Pre-flight the case's invariant and mutation names on the raw
 * document, before reproFromJson (which fatal()s deep in the engine):
 * an unknown name is a malformed repro file (a typo, or a case written
 * for a future registry) and must be a clean per-file hard error
 * listing the valid names — never an abort, and never a silent "pass".
 */
bool
validateNames(const char *path, const util::Json &doc)
{
    if (!doc.has("invariant")) {
        std::fprintf(stderr, "error    %s: missing 'invariant' field\n",
                     path);
        return false;
    }
    std::string invariant = doc.at("invariant").asString();
    if (campaign::tryFindInvariant(invariant) == nullptr) {
        std::vector<std::string> names;
        for (const campaign::Invariant &inv :
             campaign::invariantRegistry())
            names.push_back(inv.name);
        std::fprintf(stderr,
                     "error    %s: unknown invariant '%s' (known: %s)\n",
                     path, invariant.c_str(),
                     joinNames(names).c_str());
        return false;
    }
    const std::vector<std::string> &muts = campaign::knownMutations();
    if (doc.has("mutation")) {
        std::string mutation = doc.at("mutation").asString();
        if (!mutation.empty() &&
            std::find(muts.begin(), muts.end(), mutation) ==
                muts.end()) {
            std::fprintf(stderr,
                         "error    %s: unknown mutation '%s' "
                         "(known: %s)\n",
                         path, mutation.c_str(),
                         joinNames(muts).c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: campaign_replay repro.json...\n");
        return 2;
    }
    int mismatches = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i]);
        if (!in)
            util::fatal("cannot read ", argv[i]);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string err;
        util::Json doc = util::Json::parse(buf.str(), &err);
        if (!err.empty())
            util::fatal(argv[i], ": ", err);
        if (!validateNames(argv[i], doc)) {
            ++mismatches;
            continue;
        }
        campaign::ReproCase c = campaign::reproFromJson(doc);
        campaign::InvariantResult r = campaign::replayCase(c);
        bool expected_pass = c.expect == "pass";
        bool matched = r.pass == expected_pass;
        std::printf("%-8s %s: %s (%s)%s%s\n",
                    matched ? "ok" : "MISMATCH", argv[i],
                    c.invariant.c_str(),
                    r.pass ? "passed" : "failed",
                    r.detail.empty() ? "" : " — ",
                    r.detail.c_str());
        if (!matched)
            ++mismatches;
    }
    return mismatches == 0 ? 0 : 1;
}
