# Drives the sleuth CLI through a full generate/simulate/train/analyze
# cycle and fails on any non-zero exit.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run)
    execute_process(COMMAND ${SLEUTH_BIN} ${ARGN}
                    WORKING_DIRECTORY ${WORK_DIR}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sleuth ${ARGN} failed (${rc}): ${out}${err}")
    endif()
endfunction()

run(generate --rpcs 16 --seed 4 --name smoke --out ./smoke)
run(simulate --config smoke/config.json --count 150 --out normal.json --seed 9)
run(simulate --config smoke/config.json --count 60 --out incident.json --seed 10 --chaos 2)
run(train --traces normal.json --out model.json --epochs 4)
run(analyze --model model.json --traces incident.json --normal normal.json)

# Profile-and-clone: infer an app model from the observed traces and
# replay the clone through the unmodified simulator.
run(infer --traces normal.json --out clone.json --name smoke-clone)
run(simulate --config clone.json --count 30 --out clone-traces.json --seed 11)
