// Ablation study of the design choices DESIGN.md §3.6 documents on top
// of the paper's equations. Each row disables exactly one mechanism on
// Synthetic-64 and reports the accuracy impact:
//
//  - threshold offset: Eq. 2's clipping window initialized pass-through
//    (offset 3) vs literally (offset 0, window collapses onto the
//    normal band);
//  - bias correction: counterfactual SLO test scaled by the model's
//    per-trace reconstruction bias vs raw predictions;
//  - anomalies in training: ~15% of the (unlabeled) training corpus
//    simulated under chaos plans vs purely fault-free traffic;
//  - GIN vs GCN aggregation (the paper's own ablation).

#include <cstdio>

#include "eval/harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

namespace {

eval::SleuthAdapter::Config
baseConfig()
{
    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 10;
    return cfg;
}

} // namespace

int
main()
{
    std::printf("Ablation: Sleuth design choices on Synthetic-64\n\n");

    eval::ExperimentParams params;
    params.trainTraces = 400;
    params.numQueries = 50;
    params.seed = 19;
    eval::ExperimentData data = eval::prepareExperiment(
        eval::makeApp(eval::BenchmarkApp::Syn64, 7), params);

    eval::ExperimentParams clean_params = params;
    clean_params.faultyTrainFraction = 0.0;
    eval::ExperimentData clean = eval::prepareExperiment(
        eval::makeApp(eval::BenchmarkApp::Syn64, 7), clean_params);

    util::Table table({"variant", "F1", "ACC"});
    auto run = [&](const std::string &label,
                   eval::SleuthAdapter::Config cfg,
                   const eval::ExperimentData &train_data) {
        eval::SleuthAdapter adapter(cfg);
        adapter.fit(train_data.trainCorpus);
        // Queries always come from the standard experiment so every
        // variant answers the same questions.
        eval::Scores s = eval::evaluateFitted(adapter, data);
        table.addRow({label, util::formatDouble(s.f1, 2),
                      util::formatDouble(s.acc, 2)});
        std::fprintf(stderr, "  %s: F1=%.2f ACC=%.2f\n", label.c_str(),
                     s.f1, s.acc);
    };

    run("full design", baseConfig(), data);

    {
        eval::SleuthAdapter::Config cfg = baseConfig();
        cfg.gnn.thresholdOffset = 0.0;
        run("no threshold offset (literal Eq. 2 window)", cfg, data);
    }
    {
        eval::SleuthAdapter::Config cfg = baseConfig();
        cfg.rca.biasCorrection = false;
        run("no bias correction", cfg, data);
    }
    run("fault-free training corpus", baseConfig(), clean);
    {
        eval::SleuthAdapter::Config cfg = baseConfig();
        cfg.gnn.aggregator = core::Aggregator::Gcn;
        run("gcn aggregation", cfg, data);
    }

    table.print();
    std::printf(
        "\nThe literal Eq. 2 window saturates counterfactuals and the"
        "\nuncorrected SLO test misjudges marginal traces. With the"
        " pass-through\nwindow in place a fault-free corpus is"
        " survivable at this scale; at\nSynthetic-256+ the anomalous"
        " training slice becomes load-bearing too\n(see"
        " EXPERIMENTS.md).\n");
    return 0;
}
