// Reproduces paper Table 1: specifications of the microservice
// benchmarks — services, RPCs, max spans, max depth, max out-degree —
// measured from simulated traces of each application.

#include <cstdio>

#include "eval/harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

int
main()
{
    std::printf("Table 1: specifications of microservice benchmarks\n");
    std::printf(
        "(spans counted per trace; depth is span-tree depth, with the\n"
        " call-graph depth shown alongside since each RPC contributes\n"
        " a client+server span pair)\n\n");

    util::Table table({"benchmark", "services", "rpcs", "max spans",
                       "max span depth", "max call depth",
                       "max out degree"});

    util::Table paper({"benchmark", "paper services", "paper rpcs",
                       "paper max spans", "paper max depth",
                       "paper max out degree"});
    paper.addRow({"SockShop", "11", "58", "57", "9", "11"});
    paper.addRow({"SocialNet", "26", "61", "31", "9", "7"});
    paper.addRow({"Synthetic-16", "4", "16", "30", "3", "4"});
    paper.addRow({"Synthetic-64", "16", "64", "126", "7", "7"});
    paper.addRow({"Synthetic-256", "64", "256", "510", "15", "14"});
    paper.addRow({"Synthetic-1024", "256", "1024", "2046", "15", "24"});

    for (eval::BenchmarkApp b :
         {eval::BenchmarkApp::SockShop, eval::BenchmarkApp::SocialNet,
          eval::BenchmarkApp::Syn16, eval::BenchmarkApp::Syn64,
          eval::BenchmarkApp::Syn256, eval::BenchmarkApp::Syn1024}) {
        synth::AppConfig app = eval::makeApp(b, 7);
        sim::ClusterModel cluster(app, 100, 7);
        sim::Simulator simulator(app, cluster, {.seed = 5});

        // Sample the workload mix plus one trace of every flow so the
        // maxima cover the largest operation.
        std::vector<trace::Trace> traces;
        for (size_t f = 0; f < app.flows.size(); ++f)
            traces.push_back(
                simulator.simulateFlow(static_cast<int>(f)).trace);
        for (int i = 0; i < 200; ++i)
            traces.push_back(simulator.simulateOne().trace);

        trace::CorpusStats st = trace::summarize(traces);
        int call_depth = (st.maxDepth + 1) / 2;
        table.addRow({toString(b), std::to_string(app.services.size()),
                      std::to_string(app.rpcs.size()),
                      std::to_string(st.maxSpans),
                      std::to_string(st.maxDepth),
                      std::to_string(call_depth),
                      std::to_string(st.maxOutDegree)});
    }

    table.print();
    std::printf("\nPaper's Table 1 for comparison:\n\n");
    paper.print();
    return 0;
}
