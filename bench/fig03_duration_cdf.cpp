// Reproduces paper Figure 3: the cumulative distribution function of
// span durations (log scale, normalized to the minimum duration),
// demonstrating why raw durations need the base-10-log transform and
// global standardization of §3.2.2.

#include <algorithm>
#include <cstdio>

#include "eval/harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

int
main()
{
    std::printf(
        "Figure 3: CDF of span durations, normalized to the minimum\n"
        "(paper: >90%% of spans within 10x of the minimum, top 1%%"
        " beyond 1000x)\n\n");

    synth::AppConfig app = eval::makeApp(eval::BenchmarkApp::Syn256, 7);
    sim::ClusterModel cluster(app, 100, 7);
    sim::Simulator simulator(app, cluster, {.seed = 21});

    std::vector<double> durations;
    simulator.simulateStream(3000, [&](sim::SimResult &&r) {
        for (const trace::Span &s : r.trace.spans)
            durations.push_back(
                static_cast<double>(s.durationUs()));
    });
    double min_dur = *std::min_element(durations.begin(),
                                       durations.end());
    for (double &d : durations)
        d /= min_dur;
    std::sort(durations.begin(), durations.end());

    util::Table table({"percentile", "duration / min"});
    for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9,
                       99.99, 100.0}) {
        size_t idx = std::min(
            durations.size() - 1,
            static_cast<size_t>(pct / 100.0 *
                                static_cast<double>(durations.size())));
        table.addRow({util::formatDouble(pct, 2),
                      util::formatDouble(durations[idx], 1)});
    }
    table.print();

    double p50 = durations[durations.size() / 2];
    double max_ratio = durations.back();
    std::printf("\nspans: %zu  median/min: %.1fx  max/min: %.0fx\n",
                durations.size(), p50, max_ratio);
    std::printf(
        "Expected shape (paper Fig. 3): heavy tail — most spans within"
        " ~10x\nof the minimum, the extreme tail orders of magnitude"
        " above it.\n");
    return 0;
}
