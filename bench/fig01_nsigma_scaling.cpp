// Reproduces paper Figure 1: the F1 score, accuracy, and optimal n of
// root cause detection with the n-sigma rule as the number of
// microservices scales. The vertical line the paper draws at the
// largest existing open benchmark corresponds to ~41 services.

#include <cstdio>

#include "baselines/simple_rules.h"
#include "eval/harness.h"
#include "synth/generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

int
main()
{
    std::printf(
        "Figure 1: n-sigma rule accuracy vs microservice count\n"
        "(paper: F1/ACC collapse as services grow; 3-sigma stops being"
        " optimal)\n\n");

    util::Table table({"services", "rpcs", "best-n", "F1@best",
                       "ACC@best", "F1@3sigma", "ACC@3sigma"});

    for (int rpcs : {16, 32, 64, 128, 256, 512, 1024}) {
        eval::ExperimentParams params;
        params.trainTraces = 250;
        params.numQueries = 50;
        params.seed = 17;
        synth::AppConfig app =
            synth::generateApp(synth::syntheticParams(rpcs, 7));
        size_t services = app.services.size();
        eval::ExperimentData data =
            eval::prepareExperiment(std::move(app), params);

        baselines::NSigmaRule rule(3.0);
        rule.fit(data.trainCorpus);

        double best_f1 = -1.0, best_acc = 0.0, best_n = 0.0;
        double f1_3 = 0.0, acc_3 = 0.0;
        for (double n = 1.0; n <= 12.0; n += 1.0) {
            rule.setN(n);
            eval::Scores s = eval::evaluateFitted(rule, data);
            if (s.f1 > best_f1) {
                best_f1 = s.f1;
                best_acc = s.acc;
                best_n = n;
            }
            if (n == 3.0) {
                f1_3 = s.f1;
                acc_3 = s.acc;
            }
        }
        table.addRow({std::to_string(services), std::to_string(rpcs),
                      util::formatDouble(best_n, 0),
                      util::formatDouble(best_f1, 2),
                      util::formatDouble(best_acc, 2),
                      util::formatDouble(f1_3, 2),
                      util::formatDouble(acc_3, 2)});
    }
    table.print();
    std::printf(
        "\nExpected shape (paper Fig. 1): F1/ACC decrease monotonically"
        "\nwith scale, and the optimal n drifts away from 3.\n");
    return 0;
}
