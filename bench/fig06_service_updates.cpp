// Reproduces paper Figure 6: real-time detection accuracy of Sleuth vs
// Sage while the microservice application receives rolling updates:
//   A: one level-3 service's processing time grows 10x
//   B: that service is removed
//   C: a new service is added on level 2
//   D: three 3-service chains are added mid-graph
// After each update both models retrain as data streams in; Sleuth
// warm-starts (its architecture is topology-independent) while Sage
// must rebuild per-operation models from scratch.
//
// Scale note: the paper runs this on Synthetic-1024; we use
// Synthetic-64 so every retraining round stays in the same wall-clock
// budget (see EXPERIMENTS.md).

#include <cstdio>
#include <set>

#include "baselines/sage.h"
#include "eval/harness.h"
#include "synth/mutate.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

namespace {

struct RoundData
{
    std::vector<trace::Trace> corpus;
    eval::ExperimentData data;  // queries for evaluation
};

eval::ExperimentData
freshData(const synth::AppConfig &app, size_t train, size_t queries,
          uint64_t seed)
{
    eval::ExperimentParams params;
    params.trainTraces = train;
    params.numQueries = queries;
    params.seed = seed;
    return eval::prepareExperiment(app, params);
}

} // namespace

int
main()
{
    std::printf(
        "Figure 6: detection F1 under service updates (A-D), per"
        " retraining round\n\n");

    synth::AppConfig app = eval::makeApp(eval::BenchmarkApp::Syn64, 7);
    util::Rng rng(41);

    // Initial steady state: both models fully trained.
    eval::ExperimentData init = freshData(app, 300, 40, 50);
    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 10;
    eval::SleuthAdapter sleuth(cfg);
    sleuth.fit(init.trainCorpus);
    baselines::SageRca::Config sage_cfg;
    sage_cfg.epochs = 30;
    baselines::SageRca sage(sage_cfg);
    sage.fit(init.trainCorpus);

    util::Table table({"update", "round", "sleuth F1", "sage F1"});
    {
        eval::Scores s0 = eval::evaluateFitted(sleuth, init);
        eval::Scores g0 = eval::evaluateFitted(sage, init);
        table.addRow({"initial", "-", util::formatDouble(s0.f1, 2),
                      util::formatDouble(g0.f1, 2)});
    }

    // Victim: a mid-graph service that roots no flow (so update B can
    // remove it without deleting an operation flow).
    int victim = -1;
    {
        std::set<int> root_services;
        for (const synth::FlowConfig &f : app.flows)
            root_services.insert(
                app.rpcs[static_cast<size_t>(
                             f.nodes[static_cast<size_t>(f.root)]
                                 .rpcId)]
                    .serviceId);
        // First middleware service that roots no flow.
        for (const synth::ServiceConfig &s : app.services) {
            if (s.tier == synth::Tier::Middleware &&
                !root_services.count(s.id)) {
                victim = s.id;
                break;
            }
        }
    }
    SLEUTH_ASSERT(victim >= 0, "no removable mid-graph service");
    const char *updates = "ABCD";
    for (int u = 0; u < 4; ++u) {
        switch (updates[u]) {
          case 'A':
            synth::scaleServiceLatency(app, victim, 10.0);
            break;
          case 'B':
            synth::removeService(app, victim);
            break;
          case 'C':
            synth::addServiceAtDepth(app, 2, "rollout-svc", rng);
            break;
          case 'D':
            synth::addServiceChains(app, 3, 3, rng);
            break;
        }

        // Data streams in over retraining rounds (every "10 minutes").
        eval::ExperimentData round_eval =
            freshData(app, 120, 30, 60 + static_cast<uint64_t>(u));
        std::vector<trace::Trace> accumulated;
        for (int round = 0; round <= 2; ++round) {
            if (round > 0) {
                // A fresh batch of traces from the updated system.
                eval::ExperimentData batch = freshData(
                    app, 120, 1,
                    100 + static_cast<uint64_t>(10 * u + round));
                accumulated.insert(accumulated.end(),
                                   batch.trainCorpus.begin(),
                                   batch.trainCorpus.end());
                // Sleuth fine-tunes from its current weights; Sage
                // must retrain its per-operation inventory from
                // scratch on whatever has streamed in so far.
                sleuth.fineTune(sleuth.model(), accumulated, 3);
                sage.fit(accumulated);
            }
            eval::Scores s = eval::evaluateFitted(sleuth, round_eval);
            eval::Scores g = eval::evaluateFitted(sage, round_eval);
            table.addRow({std::string(1, updates[u]),
                          std::to_string(round),
                          util::formatDouble(s.f1, 2),
                          util::formatDouble(g.f1, 2)});
            std::fprintf(stderr, "  update %c round %d: sleuth=%.2f"
                         " sage=%.2f\n",
                         updates[u], round, s.f1, g.f1);
        }
    }

    table.print();
    std::printf(
        "\nExpected shape (paper Fig. 6): at round 0 after structural"
        " updates\n(B, C, D) Sage drops sharply — its per-operation"
        " models do not cover\nthe new topology — while Sleuth degrades"
        " mildly and recovers within\na round or two of fine-tuning.\n");
    return 0;
}
