// Reproduces paper Figure 8: sensitivity of pre-trained models to the
// semantic information in span names. The test application is
// duplicated into two isomorphic copies — one keeping its original
// service/RPC names, one renamed from a disjoint vocabulary — and two
// pre-trained models (single-source and diverse-corpus) are evaluated
// on both, before and after fine-tuning.

#include <cstdio>

#include "eval/harness.h"
#include "synth/generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

namespace {

eval::SleuthAdapter::Config
sleuthConfig()
{
    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 10;
    return cfg;
}

core::SleuthGnn
pretrain(const std::vector<trace::Trace> &corpus)
{
    eval::SleuthAdapter adapter(sleuthConfig());
    adapter.fit(corpus);
    return core::SleuthGnn::fromJson(adapter.model().save());
}

} // namespace

int
main()
{
    std::printf(
        "Figure 8: accuracy with original vs randomized span names\n\n");

    // Target application in two isomorphic copies: same seed (same
    // topology, kernels, faults), disjoint name vocabularies.
    synth::GeneratorParams gp = synth::syntheticParams(64, 23);
    synth::AppConfig original = synth::generateApp(gp);
    gp.vocabulary = 3;
    synth::AppConfig renamed = synth::generateApp(gp);

    eval::ExperimentParams params;
    params.trainTraces = 400;
    params.numQueries = 40;
    params.seed = 31;
    eval::ExperimentData data_orig =
        eval::prepareExperiment(original, params);
    eval::ExperimentData data_renamed =
        eval::prepareExperiment(renamed, params);

    // Pre-trained models: single source shares the original's
    // vocabulary; the diverse corpus mixes topologies and vocabularies.
    eval::ExperimentParams src;
    src.trainTraces = 400;
    src.numQueries = 1;
    src.seed = 37;
    eval::ExperimentData syn64 = eval::prepareExperiment(
        synth::generateApp(synth::syntheticParams(64, 29)), src);
    core::SleuthGnn pre_single = pretrain(syn64.trainCorpus);

    std::vector<trace::Trace> diverse;
    {
        auto add_app = [&](synth::AppConfig app, uint64_t seed) {
            sim::ClusterModel cluster(app, 50, seed);
            sim::Simulator s(app, cluster, {.seed = seed});
            for (int i = 0; i < 150; ++i)
                diverse.push_back(s.simulateOne().trace);
        };
        add_app(eval::makeApp(eval::BenchmarkApp::SockShop), 5);
        synth::GeneratorParams dgp = synth::syntheticParams(64, 41);
        dgp.vocabulary = 1;
        add_app(synth::generateApp(dgp), 6);
        dgp = synth::syntheticParams(128, 43);
        dgp.vocabulary = 2;
        add_app(synth::generateApp(dgp), 7);
    }
    core::SleuthGnn pre_diverse = pretrain(diverse);

    util::Table table({"model", "fine-tune", "names", "F1", "ACC"});
    auto run = [&](const std::string &model_name,
                   const core::SleuthGnn &pre, int epochs,
                   const std::string &tune_label) {
        for (bool use_renamed : {false, true}) {
            eval::ExperimentData &data =
                use_renamed ? data_renamed : data_orig;
            eval::SleuthAdapter adapter(sleuthConfig());
            // Profiles always come from the evaluated copy's traces
            // (data engineering, not model training).
            std::vector<trace::Trace> tune(
                data.trainCorpus.begin(),
                data.trainCorpus.begin() +
                    (epochs > 0 ? 400 : 100));
            adapter.fineTune(pre, tune, epochs);
            eval::Scores s = eval::evaluateFitted(adapter, data);
            table.addRow({model_name, tune_label,
                          use_renamed ? "randomized" : "original",
                          util::formatDouble(s.f1, 2),
                          util::formatDouble(s.acc, 2)});
            std::fprintf(stderr, "  %s %s %s: F1=%.2f\n",
                         model_name.c_str(), tune_label.c_str(),
                         use_renamed ? "randomized" : "original",
                         s.f1);
        }
    };

    run("pretrained (single source)", pre_single, 0, "zero-shot");
    run("pretrained (diverse corpus)", pre_diverse, 0, "zero-shot");
    run("pretrained (single source)", pre_single, 6, "fine-tuned");
    run("pretrained (diverse corpus)", pre_diverse, 6, "fine-tuned");

    table.print();
    std::printf(
        "\nExpected shape (paper Fig. 8): misleading names cost the"
        " single-source\nmodel noticeably at zero-shot, much less for"
        " the diverse model; after\nfine-tuning both copies score"
        " similarly.\n");
    return 0;
}
