// Performance suite for the storm-pipeline hot paths reworked in the
// perf PR: pairwise distance-matrix construction, end-to-end
// SleuthPipeline::analyze on a trace storm, counterfactual RCA
// throughput, and GNN training throughput.
//
// Each optimized path is timed against a faithful reimplementation of
// the pre-optimization formulation (hash-map weighted Jaccard behind a
// std::function oracle, oracle-recomputing representative selection
// and far-member guard, full bottom-up propagation per counterfactual)
// so the reported speedups compare against the real baseline rather
// than a strawman. Results are written as machine-readable
// {metric, value, unit} rows to BENCH_pipeline.json (path overridable
// via argv[1]).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/svdd.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "distance/distance_matrix.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "storage/trace_store.h"
#include "synth/generator.h"
#include "synth/infer.h"
#include "trace/columnar.h"
#include "util/json.h"
#include "util/simd.h"

using namespace sleuth;
using namespace sleuth::core;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Best-of-n wall time of a thunk, in milliseconds. */
template <typename Fn>
double
bestOfMs(int reps, Fn &&fn)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        Clock::time_point t0 = Clock::now();
        fn();
        best = std::min(best, msSince(t0));
    }
    return best;
}

// ---------------------------------------------------------------------
// Legacy reference: the pre-optimization hash-map weighted Jaccard and
// the oracle-driven pipeline flow it powered.
// ---------------------------------------------------------------------

using LegacySpanSet = std::unordered_map<uint64_t, double>;

LegacySpanSet
toLegacy(const distance::WeightedSpanSet &s)
{
    return LegacySpanSet(s.begin(), s.end());
}

double
legacyJaccard(const LegacySpanSet &a, const LegacySpanSet &b)
{
    double inter = 0.0;
    double uni = 0.0;
    for (const auto &[id, wa] : a) {
        auto it = b.find(id);
        double wb = it == b.end() ? 0.0 : it->second;
        inter += std::min(wa, wb);
        uni += std::max(wa, wb);
    }
    for (const auto &[id, wb] : b) {
        if (!a.count(id))
            uni += wb;
    }
    if (uni <= 0.0)
        return 0.0;
    return 1.0 - inter / uni;
}

/**
 * The pre-optimization analyze() flow: every consumer (clustering,
 * representative selection, far-member guard) addresses a type-erased
 * distance oracle that recomputes the hash-map Jaccard per call, and
 * every counterfactual re-runs the full bottom-up propagation.
 */
PipelineResult
legacyAnalyze(const SleuthGnn &model, FeatureEncoder &encoder,
              const NormalProfile &profile, PipelineConfig config,
              const std::vector<trace::Trace> &traces,
              const std::vector<int64_t> &slos)
{
    std::vector<LegacySpanSet> sets;
    sets.reserve(traces.size());
    for (const trace::Trace &t : traces) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        sets.push_back(toLegacy(
            distance::encodeSpanSet(t, g, config.distanceOpts)));
    }
    std::function<double(size_t, size_t)> dist =
        [&sets](size_t a, size_t b) {
            return legacyJaccard(sets[a], sets[b]);
        };

    PipelineResult out;
    out.perTrace.resize(traces.size());
    out.clusterLabels.assign(traces.size(), -1);
    if (traces.empty())
        return out;

    config.rca.incrementalPropagation = false;
    CounterfactualRca rca(model, encoder, profile, config.rca);

    cluster::ClusterResult clusters =
        config.algorithm == PipelineConfig::Algorithm::Hdbscan
            ? cluster::hdbscan(traces.size(), dist, config.hdbscan)
            : cluster::dbscan(traces.size(), dist, config.dbscan);
    out.clusterLabels = clusters.labels;
    out.numClusters = clusters.numClusters;

    std::vector<size_t> reps = cluster::selectRepresentatives(
        clusters.labels, clusters.numClusters, dist);
    std::vector<bool> assigned(traces.size(), false);
    for (int c = 0; c < clusters.numClusters; ++c) {
        size_t rep = reps[static_cast<size_t>(c)];
        RcaResult verdict = rca.analyze(traces[rep], slos[rep]);
        ++out.rcaInvocations;
        for (size_t i = 0; i < traces.size(); ++i) {
            if (clusters.labels[i] != c)
                continue;
            if (config.maxRepresentativeDistance > 0.0 && i != rep &&
                dist(i, rep) > config.maxRepresentativeDistance)
                continue;
            out.perTrace[i] = verdict;
            assigned[i] = true;
        }
    }
    for (size_t i = 0; i < traces.size(); ++i) {
        if (!assigned[i]) {
            out.perTrace[i] = rca.analyze(traces[i], slos[i]);
            ++out.rcaInvocations;
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Workload construction.
// ---------------------------------------------------------------------

std::vector<distance::WeightedSpanSet>
encodeAll(const std::vector<trace::Trace> &traces)
{
    std::vector<distance::WeightedSpanSet> sets;
    sets.reserve(traces.size());
    for (const trace::Trace &t : traces) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        sets.push_back(distance::encodeSpanSet(t, g));
    }
    return sets;
}

int64_t
stormSlo(const std::vector<trace::Trace> &traces)
{
    // An SLO below the storm's median root latency: most traces
    // violate it, so RCA actually iterates (the realistic regime).
    std::vector<int64_t> durs;
    durs.reserve(traces.size());
    for (const trace::Trace &t : traces)
        durs.push_back(t.rootDurationUs());
    std::nth_element(durs.begin(), durs.begin() + durs.size() / 2,
                     durs.end());
    return std::max<int64_t>(1, durs[durs.size() / 2] / 2);
}

struct Row
{
    std::string metric;
    double value;
    std::string unit;
    /** Optional annotation (e.g. "skipped_single_core"). */
    std::string note;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_pipeline.json";
    std::vector<Row> rows;

    // --- Shared fixture: simulated application, trained model. ---
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(28, 11));
    sim::ClusterModel cluster_model(app, 10, 1);
    sim::Simulator simulator(app, cluster_model, {.seed = 5});
    std::vector<trace::Trace> corpus;
    for (int i = 0; i < 192; ++i)
        corpus.push_back(simulator.simulateOne().trace);
    NormalProfile profile;
    for (const trace::Trace &t : corpus)
        profile.add(t);
    profile.finalize();
    GnnConfig gc;
    gc.embedDim = 8;
    gc.hidden = 16;
    gc.seed = 4;
    SleuthGnn model(gc);
    FeatureEncoder encoder(8);

    // --- (d) Training throughput. ---
    {
        TrainConfig tc;
        tc.epochs = 3;
        tc.tracesPerBatch = 16;
        Trainer trainer(model, encoder, tc);
        Clock::time_point t0 = Clock::now();
        trainer.train(corpus);
        double ms = msSince(t0);
        double steps = static_cast<double>(tc.epochs) *
                       std::ceil(static_cast<double>(corpus.size()) /
                                 static_cast<double>(tc.tracesPerBatch));
        rows.push_back(
            {"train_steps_per_sec", steps / (ms / 1000.0), "steps/s"});
        std::printf("training: %.0f steps in %.1f ms\n", steps, ms);
    }

    // --- (a) Pairwise distance matrix, 256- and 1024-trace storms. ---
    // A storm mixing a handful of failure modes (flows), the regime
    // clustering is built for: HDBSCAN's excess-of-mass selection
    // never selects the root cluster, so a single homogeneous blob
    // would (correctly) come back as all noise.
    sim::Simulator storm_sim(app, cluster_model, {.seed = 17});
    int num_flows =
        std::min<int>(4, static_cast<int>(app.flows.size()));
    std::vector<trace::Trace> storm1024;
    for (int i = 0; i < 1024; ++i)
        storm1024.push_back(
            storm_sim.simulateFlow(i % num_flows).trace);
    std::vector<trace::Trace> storm256(storm1024.begin(),
                                       storm1024.begin() + 256);
    for (size_t n : {size_t{256}, size_t{1024}}) {
        std::vector<trace::Trace> traces(storm1024.begin(),
                                         storm1024.begin() +
                                             static_cast<long>(n));
        std::vector<distance::WeightedSpanSet> sets =
            encodeAll(traces);
        distance::DistanceMatrix m;
        double new_ms = bestOfMs(3, [&] {
            m = distance::DistanceMatrix::fromSpanSets(sets);
        });

        std::vector<LegacySpanSet> legacy;
        legacy.reserve(sets.size());
        for (const auto &s : sets)
            legacy.push_back(toLegacy(s));
        double sink = 0.0;
        double legacy_ms = bestOfMs(3, [&] {
            for (size_t i = 1; i < n; ++i)
                for (size_t j = 0; j < i; ++j)
                    sink += legacyJaccard(legacy[i], legacy[j]);
        });
        // Keep the compiler from discarding the legacy loop.
        if (sink < 0.0)
            std::printf("unreachable %f\n", sink);

        std::string prefix =
            "distance_matrix_" + std::to_string(n);
        rows.push_back({prefix + "_ms", new_ms, "ms"});
        rows.push_back({prefix + "_legacy_ms", legacy_ms, "ms"});
        rows.push_back({prefix + "_speedup", legacy_ms / new_ms, "x"});
        std::printf(
            "distance matrix n=%zu: %.2f ms (legacy %.2f ms, %.2fx)\n",
            n, new_ms, legacy_ms, legacy_ms / new_ms);
        SLEUTH_ASSERT(m.size() == n, "distance matrix size");
    }

    // --- (b) End-to-end storm analysis, 256 traces. ---
    {
        std::vector<int64_t> slos(storm256.size(),
                                  stormSlo(storm256));
        PipelineConfig cfg;
        SleuthPipeline pipeline(model, encoder, profile, cfg);

        // Warm the encoder's embedding cache so neither path pays
        // first-touch costs.
        PipelineResult warm = pipeline.analyze(storm256, slos);

        PipelineResult res;
        double new_ms = bestOfMs(
            3, [&] { res = pipeline.analyze(storm256, slos); });
        if (std::getenv("SLEUTH_STAGE_PROBE")) {
            std::string text = obs::renderText();
            size_t pos = 0;
            while ((pos = text.find("sleuth_pipeline_stage_ms", pos)) !=
                   std::string::npos) {
                size_t eol = text.find('\n', pos);
                std::fprintf(stderr, "%s\n",
                             text.substr(pos, eol - pos).c_str());
                pos = eol;
            }
        }

        PipelineResult legacy_res;
        double legacy_ms = bestOfMs(3, [&] {
            legacy_res = legacyAnalyze(model, encoder, profile, cfg,
                                       storm256, slos);
        });

        SLEUTH_ASSERT(res.perTrace.size() == storm256.size(),
                      "result size");
        SLEUTH_ASSERT(res.rcaInvocations == legacy_res.rcaInvocations,
                      "rca invocation parity");
        SLEUTH_ASSERT(res.distanceEvaluations ==
                          storm256.size() * (storm256.size() - 1) / 2,
                      "distance evaluation count");
        for (size_t i = 0; i < res.perTrace.size(); ++i)
            SLEUTH_ASSERT(res.perTrace[i].services ==
                              legacy_res.perTrace[i].services,
                          "verdict parity at trace ", i);
        (void)warm;

        rows.push_back({"e2e_analyze_256_ms", new_ms, "ms"});
        rows.push_back(
            {"e2e_analyze_256_legacy_ms", legacy_ms, "ms"});
        rows.push_back(
            {"e2e_analyze_256_speedup", legacy_ms / new_ms, "x"});
        rows.push_back({"e2e_analyze_256_distance_evals",
                        static_cast<double>(res.distanceEvaluations),
                        "pairs"});
        std::printf(
            "e2e analyze n=256: %.1f ms (legacy %.1f ms, %.2fx), "
            "%d clusters, %zu rca invocations\n",
            new_ms, legacy_ms, legacy_ms / new_ms, res.numClusters,
            res.rcaInvocations);
    }

    // --- (c) Pre-pruned end-to-end analysis, 256 traces. The
    // aggressive pruner collapses duplicate storm signatures onto
    // exemplars before the quadratic stages; the rows report the wall
    // time next to the measured keep ratios so the speedup can be read
    // against how much work was actually dropped. The conservative
    // mode's exactness is pinned by pruner_test and the pruned-vs-full
    // campaign invariant, not here. ---
    {
        std::vector<int64_t> slos(storm256.size(),
                                  stormSlo(storm256));
        PipelineConfig cfg;
        cfg.prune.mode = PruneConfig::Mode::Aggressive;
        cfg.prune.aggressiveness = 0.7;
        SleuthPipeline pipeline(model, encoder, profile, cfg);
        PipelineResult warm = pipeline.analyze(storm256, slos);

        RcaPruner pruner(profile, cfg.prune, cfg.rca);
        PrunePlan plan;
        double plan_ms = bestOfMs(3, [&] {
            plan = pruner.plan(storm256, slos, {});
        });
        PipelineResult res;
        double apply_ms = bestOfMs(3, [&] {
            res = pipeline.analyzeWithPlan(storm256, slos, plan);
        });
        double pruned_ms = plan_ms + apply_ms;
        (void)warm;

        SLEUTH_ASSERT(res.perTrace.size() == storm256.size(),
                      "pruned result covers every input trace");
        SLEUTH_ASSERT(res.pruneTraceKeepRatio > 0.0 &&
                          res.pruneTraceKeepRatio < 1.0,
                      "aggressive prune kept a strict subset");

        rows.push_back({"e2e_analyze_256_pruned_ms", pruned_ms, "ms",
                        "aggressive 0.7"});
        rows.push_back({"e2e_analyze_256_prune_plan_ms", plan_ms,
                        "ms"});
        rows.push_back({"e2e_analyze_256_prune_trace_keep_ratio",
                        res.pruneTraceKeepRatio, "ratio"});
        rows.push_back({"e2e_analyze_256_prune_service_keep_ratio",
                        res.pruneServiceKeepRatio, "ratio"});
        std::printf(
            "e2e analyze n=256 pruned: %.1f ms (plan %.1f + apply "
            "%.1f; trace keep %.2f, service keep %.2f, %d clusters, "
            "%zu rca invocations)\n",
            pruned_ms, plan_ms, apply_ms, res.pruneTraceKeepRatio,
            res.pruneServiceKeepRatio, res.numClusters,
            res.rcaInvocations);
    }

    // --- (e) Thread-pool scaling on the 256-trace storm. ---
    // The parallel engine is deterministic: every row set below is
    // produced from bitwise-identical results (asserted), only the
    // wall time varies with the worker count. On a single-core host
    // the speedup is bounded at ~1x; the hardware_concurrency row
    // records what this machine could exploit.
    {
        std::vector<int64_t> slos(storm256.size(),
                                  stormSlo(storm256));
        const size_t cores = std::thread::hardware_concurrency();
        PipelineResult ref;
        double t1_ms = 0.0;
        for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
            // On a single-core host the >1-thread timings measure
            // oversubscription, not parallel speedup: a "0.84x" row
            // would read as a regression. Emit annotated placeholders
            // instead of misleading numbers.
            if (threads > 1 && cores <= 1) {
                rows.push_back({"e2e_analyze_256_t" +
                                    std::to_string(threads) + "_ms",
                                0.0, "ms", "skipped_single_core"});
                if (threads == 4)
                    rows.push_back(
                        {"e2e_analyze_256_parallel_speedup_4t", 0.0,
                         "x", "skipped_single_core"});
                std::printf("e2e analyze n=256 threads=%zu: skipped "
                            "(single-core host)\n",
                            threads);
                continue;
            }
            PipelineConfig cfg;
            cfg.numThreads = threads;
            SleuthPipeline pipeline(model, encoder, profile, cfg);
            PipelineResult res;
            double ms = bestOfMs(
                3, [&] { res = pipeline.analyze(storm256, slos); });
            if (threads == 1) {
                ref = res;
                t1_ms = ms;
            } else {
                SLEUTH_ASSERT(res.clusterLabels == ref.clusterLabels,
                              "thread-count determinism: labels");
                SLEUTH_ASSERT(res.rcaInvocations == ref.rcaInvocations,
                              "thread-count determinism: invocations");
                for (size_t i = 0; i < res.perTrace.size(); ++i)
                    SLEUTH_ASSERT(res.perTrace[i].services ==
                                      ref.perTrace[i].services,
                                  "thread-count determinism at ", i);
            }
            rows.push_back({"e2e_analyze_256_t" +
                                std::to_string(threads) + "_ms",
                            ms, "ms"});
            if (threads == 4)
                rows.push_back({"e2e_analyze_256_parallel_speedup_4t",
                                t1_ms / ms, "x"});
            std::printf("e2e analyze n=256 threads=%zu: %.1f ms\n",
                        threads, ms);
        }
        rows.push_back({"hardware_concurrency",
                        static_cast<double>(cores), "cores"});
    }

    // --- (c) Counterfactual RCA throughput. ---
    {
        std::vector<trace::Trace> anomalous(storm1024.begin(),
                                            storm1024.begin() + 32);
        int64_t slo = stormSlo(anomalous);
        CounterfactualRca rca(model, encoder, profile, {});
        size_t candidates = 0;
        Clock::time_point t0 = Clock::now();
        for (const trace::Trace &t : anomalous)
            candidates += rca.analyze(t, slo).iterations;
        double ms = msSince(t0);
        rows.push_back({"rca_candidates_per_sec",
                        static_cast<double>(candidates) / (ms / 1000.0),
                        "candidates/s"});
        std::printf("rca: %zu candidates in %.1f ms\n", candidates,
                    ms);
    }

    // --- (f) Self-observability overhead on the 256-trace storm. ---
    // The metrics layer is a write-only side channel: results must be
    // bitwise identical with it on or off, and the acceptance bar for
    // the instrumentation is < 2% overhead on this path.
    {
        std::vector<int64_t> slos(storm256.size(),
                                  stormSlo(storm256));
        PipelineConfig cfg;
        SleuthPipeline pipeline(model, encoder, profile, cfg);
        PipelineResult on_res;
        double on_ms = bestOfMs(
            5, [&] { on_res = pipeline.analyze(storm256, slos); });
        obs::setEnabled(false);
        PipelineResult off_res;
        double off_ms = bestOfMs(
            5, [&] { off_res = pipeline.analyze(storm256, slos); });
        obs::setEnabled(true);
        SLEUTH_ASSERT(on_res.clusterLabels == off_res.clusterLabels,
                      "metrics on/off determinism: labels");
        SLEUTH_ASSERT(on_res.rcaInvocations == off_res.rcaInvocations,
                      "metrics on/off determinism: invocations");
        for (size_t i = 0; i < on_res.perTrace.size(); ++i)
            SLEUTH_ASSERT(on_res.perTrace[i].services ==
                              off_res.perTrace[i].services,
                          "metrics on/off determinism at ", i);
        double overhead_pct = off_ms > 0.0
                                  ? (on_ms - off_ms) / off_ms * 100.0
                                  : 0.0;
        rows.push_back(
            {"e2e_analyze_256_metrics_on_ms", on_ms, "ms"});
        rows.push_back(
            {"e2e_analyze_256_metrics_off_ms", off_ms, "ms"});
        rows.push_back({"e2e_analyze_256_metrics_overhead_pct",
                        overhead_pct, "%"});
        std::printf("e2e analyze n=256 metrics on/off: %.1f / %.1f ms"
                    " (%.2f%% overhead)\n",
                    on_ms, off_ms, overhead_pct);
    }

    // --- (g) Columnar storage: resident bytes per span. ---
    // Before/after for the columnar refactor: the legacy figure is the
    // SSO-aware estimate of the row-oriented AoS Span layout for the
    // same traces, the columnar figure is the store's own accounting
    // (columns + indexes + shared interner) divided by its span count.
    {
        storage::TraceStore store;
        size_t legacy_bytes = 0;
        for (const trace::Trace &t : storm1024) {
            legacy_bytes += trace::approxTraceMemoryBytes(t);
            store.insert(t);
        }
        double per_span_columnar =
            static_cast<double>(store.memoryBytes()) /
            static_cast<double>(store.totalSpans());
        double per_span_legacy =
            static_cast<double>(legacy_bytes) /
            static_cast<double>(store.totalSpans());
        SLEUTH_ASSERT(per_span_columnar < per_span_legacy,
                      "columnar layout must shrink bytes/span");
        rows.push_back({"memory_bytes_per_span", per_span_columnar,
                        "bytes"});
        rows.push_back({"memory_bytes_per_span_legacy", per_span_legacy,
                        "bytes"});
        rows.push_back({"memory_bytes_per_span_reduction",
                        per_span_legacy / per_span_columnar, "x"});
        std::printf("memory: %.1f bytes/span columnar vs %.1f legacy "
                    "(%.2fx smaller), %zu spans\n",
                    per_span_columnar, per_span_legacy,
                    per_span_legacy / per_span_columnar,
                    store.totalSpans());
    }

    // --- (g2) Trace-driven app inference over a 100k-span store. ---
    // The profile-and-clone path: fill a store past 100k spans with
    // simulated traffic, then time synth::inferAppModel reconstructing
    // a full replayable AppConfig from it.
    {
        storage::TraceStore store;
        sim::Simulator feed(app, cluster_model, {.seed = 23});
        while (store.totalSpans() < 100'000) {
            sim::SimResult r = feed.simulateOne();
            store.insert(r.trace,
                         app.flows[static_cast<size_t>(r.flowIndex)]
                             .sloUs,
                         r.flowIndex);
        }
        synth::InferStats stats;
        synth::AppConfig inferred;
        double ms = bestOfMs(3, [&] {
            inferred = synth::inferAppModel(store, storage::Query{},
                                            {}, &stats);
        });
        SLEUTH_ASSERT(!inferred.services.empty(),
                      "inference must reconstruct the fixture app");
        double spans = static_cast<double>(stats.spans);
        rows.push_back({"infer_100k_spans_ms", ms, "ms"});
        rows.push_back({"infer_spans_per_sec", spans / (ms / 1000.0),
                        "spans/s"});
        std::printf("infer: %zu traces / %zu spans -> %zu services, "
                    "%zu flow shapes in %.1f ms\n",
                    stats.tracesUsed, stats.spans,
                    inferred.services.size(), stats.flowShapes, ms);
    }

    // --- (h) Int8 quantized embedding distance (ablation). ---
    // Not a like-for-like speedup row: the distance itself changes
    // (1 − int8 cosine instead of weighted Jaccard, ~0.02 tolerance),
    // so this records the ablation's cost next to the default path.
    {
        std::vector<int64_t> slos(storm256.size(),
                                  stormSlo(storm256));
        PipelineConfig cfg;
        cfg.traceDistance =
            PipelineConfig::TraceDistanceKind::EmbeddingCosineInt8;
        SleuthPipeline pipeline(model, encoder, profile, cfg);
        PipelineResult res = pipeline.analyze(storm256, slos);
        double ms = bestOfMs(
            3, [&] { res = pipeline.analyze(storm256, slos); });
        SLEUTH_ASSERT(res.perTrace.size() == storm256.size(),
                      "int8 ablation result size");
        rows.push_back({"e2e_analyze_256_int8dist_ms", ms, "ms"});
        std::printf("e2e analyze n=256 int8 distance: %.1f ms, "
                    "%d clusters\n",
                    ms, res.numClusters);
    }

    // --- SIMD dispatch provenance for this run. ---
    rows.push_back({"simd_compiled_avx2",
                    simd::compiledAvx2() ? 1.0 : 0.0, "bool"});
    rows.push_back(
        {"simd_cpu_avx2", simd::cpuAvx2() ? 1.0 : 0.0, "bool"});
    rows.push_back({"simd_dispatch_active",
                    simd::active() ? 1.0 : 0.0, "bool",
                    simd::activeIsaName()});
    std::printf("simd dispatch: %s (compiled_avx2=%d cpu_avx2=%d)\n",
                simd::activeIsaName(), simd::compiledAvx2() ? 1 : 0,
                simd::cpuAvx2() ? 1 : 0);

    // --- Emit machine-readable rows. ---
    util::Json doc = util::Json::array();
    for (const Row &r : rows) {
        util::Json row = util::Json::object();
        row.set("metric", r.metric);
        row.set("value", r.value);
        row.set("unit", r.unit);
        if (!r.note.empty())
            row.set("note", r.note);
        doc.push(std::move(row));
    }
    std::ofstream f(out_path);
    f << doc.dump(2) << "\n";
    f.close();
    std::printf("wrote %s\n", out_path);
    return 0;
}
