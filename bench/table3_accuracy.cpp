// Reproduces paper Table 3: F1 score and accuracy of every RCA
// algorithm — and of Sleuth under different clustering metrics — on
// five microservice benchmarks.

#include <cstdio>

#include "baselines/deeptralog.h"
#include "baselines/realtime_rca.h"
#include "baselines/sage.h"
#include "baselines/simple_rules.h"
#include "baselines/trace_anomaly.h"
#include "eval/harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;

namespace {

std::string
fmt(double v)
{
    return util::formatDouble(v, 2);
}

eval::SleuthAdapter::Config
sleuthConfig(core::Aggregator agg)
{
    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.gnn.aggregator = agg;
    cfg.train.epochs = 10;
    return cfg;
}

} // namespace

int
main()
{
    std::printf(
        "Table 3: F1 / ACC of RCA algorithms and Sleuth clustering"
        " variants\n(training corpus and query counts scaled to the"
        " simulator; see EXPERIMENTS.md)\n\n");

    util::Table table({"benchmark", "algorithm", "F1", "ACC"});

    for (eval::BenchmarkApp b :
         {eval::BenchmarkApp::SockShop, eval::BenchmarkApp::SocialNet,
          eval::BenchmarkApp::Syn64, eval::BenchmarkApp::Syn256,
          eval::BenchmarkApp::Syn1024}) {
        eval::ExperimentParams params;
        params.trainTraces =
            b == eval::BenchmarkApp::Syn1024 ? 300 : 400;
        params.numQueries = 60;
        params.seed = 11;
        eval::ExperimentData data =
            eval::prepareExperiment(eval::makeApp(b, 7), params);
        std::string bench = toString(b);

        auto row = [&](const std::string &algo, eval::Scores s) {
            table.addRow({bench, algo, fmt(s.f1), fmt(s.acc)});
            std::fprintf(stderr, "  [%s] %s: F1=%.2f ACC=%.2f\n",
                         bench.c_str(), algo.c_str(), s.f1, s.acc);
        };

        baselines::MaxDurationRca max_rca;
        row("max", eval::evaluateAlgorithm(max_rca, data));

        baselines::ThresholdRca threshold(99.0);
        row("threshold", eval::evaluateAlgorithm(threshold, data));

        baselines::TraceAnomalyRca::Config ta_cfg;
        ta_cfg.epochs = 30;
        baselines::TraceAnomalyRca trace_anomaly(ta_cfg);
        row("trace-anomaly",
            eval::evaluateAlgorithm(trace_anomaly, data));

        baselines::RealtimeRca realtime;
        row("realtime-rca", eval::evaluateAlgorithm(realtime, data));

        baselines::SageRca::Config sage_cfg;
        sage_cfg.epochs = 30;
        baselines::SageRca sage(sage_cfg);
        row("sage", eval::evaluateAlgorithm(sage, data));

        eval::SleuthAdapter gcn(sleuthConfig(core::Aggregator::Gcn));
        row("sleuth-gcn", eval::evaluateAlgorithm(gcn, data));

        eval::SleuthAdapter gin(sleuthConfig(core::Aggregator::Gin));
        gin.fit(data.trainCorpus);
        row("sleuth-gin (no clustering)", eval::evaluateFitted(gin, data));

        // Clustered variants evaluate an incident storm — many traces
        // per failure mode (paper §3.3) — with weighted-Jaccard vs
        // DeepTraLog SVDD distances.
        eval::ExperimentParams storm_params = params;
        storm_params.queriesPerPlan = 10;
        storm_params.numQueries = 60;
        eval::ExperimentData storm = eval::prepareExperiment(
            eval::makeApp(b, 7), storm_params);
        row("sleuth-gin storm (no clustering)",
            eval::evaluateFitted(gin, storm));

        core::PipelineConfig pc;
        pc.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                      .clusterSelectionEpsilon = 0.0};
        // Service-scope truth plus the stricter container-scope
        // comparison the scope-aware AnomalyQuery ground truth enables
        // (predicted containers vs materially-perturbing containers).
        eval::Scores container_scores;
        eval::Scores jaccard_scores = eval::evaluatePipeline(
            gin, storm, pc, nullptr, nullptr, &container_scores);
        row("sleuth-gin storm (jaccard clustering)", jaccard_scores);
        row("sleuth-gin storm (jaccard, container truth)",
            container_scores);

        baselines::DeepTraLogDistance::Config dt_cfg;
        dt_cfg.epochs = 80;
        baselines::DeepTraLogDistance deeptralog(dt_cfg);
        deeptralog.fit(data.trainCorpus);
        std::vector<const trace::Trace *> query_traces;
        for (const eval::AnomalyQuery &q : storm.queries)
            query_traces.push_back(&q.trace);
        std::function<double(size_t, size_t)> dt_dist =
            [&](size_t i, size_t j) {
                return deeptralog.distance(*query_traces[i],
                                           *query_traces[j]);
            };
        row("sleuth-gin storm (deeptralog clustering)",
            eval::evaluatePipeline(gin, storm, pc, &dt_dist));
    }

    table.print();
    std::printf(
        "\nExpected shape (paper Table 3): counterfactual methods"
        " (sleuth, sage)\nabove the rule/threshold baselines; sleuth-gin"
        " best overall and most\nrobust at Synthetic-1024; Jaccard"
        " clustering costs a few points vs no\nclustering; DeepTraLog"
        " clustering collapses accuracy.\n");
    return 0;
}
