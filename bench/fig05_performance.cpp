// Reproduces paper Figure 5: (a) training time and (b) inference time
// of Sleuth-GIN, Sleuth-GCN, and Sage as the microservice application
// scales, plus the clustering speedup on inference and the model-size
// comparison the paper attributes the difference to.

#include <chrono>
#include <cstdio>

#include "baselines/sage.h"
#include "eval/harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main()
{
    std::printf(
        "Figure 5: training / inference time scaling (seconds) and"
        " model size\n(batch of %d anomalous traces per inference"
        " measurement)\n\n",
        60);

    util::Table table({"benchmark", "algo", "train s", "infer s",
                       "model params"});
    util::Table speedup({"benchmark", "rca calls (no clustering)",
                         "rca calls (clustered)", "inference speedup"});

    for (eval::BenchmarkApp b :
         {eval::BenchmarkApp::Syn16, eval::BenchmarkApp::Syn64,
          eval::BenchmarkApp::Syn256, eval::BenchmarkApp::Syn1024}) {
        eval::ExperimentParams params;
        params.trainTraces = 200;
        params.numQueries = 60;
        params.seed = 13;
        eval::ExperimentData data =
            eval::prepareExperiment(eval::makeApp(b, 7), params);
        std::string bench = toString(b);

        // --- Sleuth-GIN / Sleuth-GCN. ---
        for (core::Aggregator agg :
             {core::Aggregator::Gin, core::Aggregator::Gcn}) {
            eval::SleuthAdapter::Config cfg;
            cfg.gnn.embedDim = 8;
            cfg.gnn.hidden = 16;
            cfg.gnn.aggregator = agg;
            cfg.train.epochs = 6;
            eval::SleuthAdapter sleuth(cfg);

            Clock::time_point t0 = Clock::now();
            sleuth.fit(data.trainCorpus);
            double train_s = secondsSince(t0);

            t0 = Clock::now();
            for (const eval::AnomalyQuery &q : data.queries)
                sleuth.locate(q.trace, q.sloUs);
            double infer_s = secondsSince(t0);

            table.addRow({bench, sleuth.name(),
                          util::formatDouble(train_s, 2),
                          util::formatDouble(infer_s, 2),
                          std::to_string(
                              sleuth.model().parameterCount())});

            if (agg == core::Aggregator::Gin) {
                // Clustering speedup on inference (Fig. 5b inset).
                core::PipelineConfig pc;
                pc.hdbscan = {.minClusterSize = 5, .minSamples = 3,
                              .clusterSelectionEpsilon = 0.05};
                size_t clustered_calls = 0;
                Clock::time_point t1 = Clock::now();
                eval::evaluatePipeline(sleuth, data, pc, nullptr,
                                       &clustered_calls);
                double clustered_s = secondsSince(t1);
                speedup.addRow(
                    {bench, std::to_string(data.queries.size()),
                     std::to_string(clustered_calls),
                     util::formatDouble(
                         infer_s / std::max(clustered_s, 1e-9), 1)});
            }
        }

        // --- Sage: one model per operation. ---
        baselines::SageRca::Config sage_cfg;
        sage_cfg.epochs = 20;
        baselines::SageRca sage(sage_cfg);
        Clock::time_point t0 = Clock::now();
        sage.fit(data.trainCorpus);
        double train_s = secondsSince(t0);
        t0 = Clock::now();
        for (const eval::AnomalyQuery &q : data.queries)
            sage.locate(q.trace, q.sloUs);
        double infer_s = secondsSince(t0);
        table.addRow({bench, "sage", util::formatDouble(train_s, 2),
                      util::formatDouble(infer_s, 2),
                      std::to_string(sage.parameterCount())});
    }

    // Paper §3.1 efficiency claim: an RCA query over a thousand-span
    // trace completes in under one second on a CPU.
    {
        eval::ExperimentParams params;
        params.trainTraces = 150;
        params.numQueries = 10;
        params.seed = 23;
        eval::ExperimentData data = eval::prepareExperiment(
            eval::makeApp(eval::BenchmarkApp::Syn1024, 7), params);
        eval::SleuthAdapter::Config cfg;
        cfg.gnn.embedDim = 8;
        cfg.gnn.hidden = 16;
        cfg.train.epochs = 4;
        eval::SleuthAdapter sleuth(cfg);
        sleuth.fit(data.trainCorpus);
        size_t max_spans = 0;
        Clock::time_point t0 = Clock::now();
        for (const eval::AnomalyQuery &q : data.queries) {
            sleuth.locate(q.trace, q.sloUs);
            max_spans = std::max(max_spans, q.trace.spans.size());
        }
        double per_query = secondsSince(t0) /
                           static_cast<double>(data.queries.size());
        std::printf("\nRCA query latency (largest trace %zu spans):"
                    " %.3f s/query %s\n",
                    max_spans, per_query,
                    per_query < 1.0 ? "(< 1 s: paper efficiency claim"
                                      " holds)"
                                    : "(>= 1 s)");
    }

    table.print();
    std::printf("\nClustering speedup (Fig. 5b):\n\n");
    speedup.print();
    std::printf(
        "\nExpected shape (paper Fig. 5): Sleuth's parameter count is"
        " constant\nacross scales while Sage's grows ~linearly with the"
        " application, so\nSage's training/inference time grows much"
        " faster; clustering speeds\nup inference more on larger"
        " applications.\n");
    return 0;
}
