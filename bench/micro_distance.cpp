// Microbenchmark backing the complexity claim of §3.3.1: the weighted
// Jaccard trace distance is O(m) per pair while the tree edit distance
// grows superquadratically, which is why TED cannot be used to cluster
// thousand-span traces. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "distance/trace_distance.h"
#include "distance/tree_edit_distance.h"
#include "sim/simulator.h"
#include "synth/generator.h"

using namespace sleuth;

namespace {

/** Two traces with approximately `spans` spans each. */
std::pair<trace::Trace, trace::Trace>
tracePair(int spans)
{
    int rpcs = std::max(4, spans / 2);
    synth::GeneratorParams gp = synth::syntheticParams(rpcs, 3);
    static std::map<int, synth::AppConfig> apps;
    if (!apps.count(rpcs))
        apps.emplace(rpcs, synth::generateApp(gp));
    const synth::AppConfig &app = apps.at(rpcs);
    sim::ClusterModel cluster(app, 20, 1);
    sim::Simulator sim(app, cluster,
                       {.seed = static_cast<uint64_t>(spans)});
    return {sim.simulateFlow(0).trace, sim.simulateFlow(0).trace};
}

void
BM_JaccardDistance(benchmark::State &state)
{
    auto [a, b] = tracePair(static_cast<int>(state.range(0)));
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    auto sa = distance::encodeSpanSet(a, ga);
    auto sb = distance::encodeSpanSet(b, gb);
    for (auto _ : state)
        benchmark::DoNotOptimize(distance::jaccardDistance(sa, sb));
    state.SetLabel(std::to_string(a.spans.size()) + " spans");
}

void
BM_JaccardEncodeAndDistance(benchmark::State &state)
{
    auto [a, b] = tracePair(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(distance::traceDistance(a, b));
    state.SetLabel(std::to_string(a.spans.size()) + " spans");
}

void
BM_TreeEditDistance(benchmark::State &state)
{
    auto [a, b] = tracePair(static_cast<int>(state.range(0)));
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    auto ta = distance::traceToTree(a, ga);
    auto tb = distance::traceToTree(b, gb);
    for (auto _ : state)
        benchmark::DoNotOptimize(distance::treeEditDistance(ta, tb));
    state.SetLabel(std::to_string(a.spans.size()) + " spans");
}

} // namespace

BENCHMARK(BM_JaccardDistance)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);
BENCHMARK(BM_JaccardEncodeAndDistance)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048);
// TED becomes impractical long before 2048 spans — the point of Eq. 1.
BENCHMARK(BM_TreeEditDistance)->Arg(32)->Arg(128)->Arg(512);

BENCHMARK_MAIN();
