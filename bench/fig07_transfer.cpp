// Reproduces paper Figure 7: transferring a pre-trained Sleuth model
// to unseen applications. Two pre-trained models — one from
// Synthetic-256 and one from a diverse multi-application corpus (the
// paper's "50 production microservices") — are fine-tuned with an
// increasing number of target samples and compared against a Sleuth
// model trained from scratch and against Sage, which must retrain from
// scratch because its per-operation models do not transfer.
//
// Scale note: sample counts are scaled to the simulator (the paper
// uses 1k/10k samples and hours of training; see EXPERIMENTS.md).

#include <chrono>
#include <cstdio>

#include "baselines/sage.h"
#include "eval/harness.h"
#include "synth/generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace sleuth;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

eval::SleuthAdapter::Config
sleuthConfig()
{
    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 10;
    return cfg;
}

/** Pre-train a model on one corpus and hand back its weights. */
core::SleuthGnn
pretrain(const std::vector<trace::Trace> &corpus)
{
    eval::SleuthAdapter adapter(sleuthConfig());
    adapter.fit(corpus);
    return core::SleuthGnn::fromJson(adapter.model().save());
}

} // namespace

int
main()
{
    std::printf(
        "Figure 7: transfer learning — accuracy and retraining time vs"
        " fine-tune samples\n\n");

    // --- Pre-training corpora. ---
    eval::ExperimentParams src_params;
    src_params.trainTraces = 400;
    src_params.numQueries = 1;
    src_params.seed = 71;
    eval::ExperimentData syn256 = eval::prepareExperiment(
        eval::makeApp(eval::BenchmarkApp::Syn256, 3), src_params);
    core::SleuthGnn pre_single = pretrain(syn256.trainCorpus);

    // Diverse corpus: several applications with different topologies
    // and name vocabularies (substitute for 50 production apps).
    std::vector<trace::Trace> diverse;
    {
        auto add_app = [&](synth::AppConfig app, uint64_t seed) {
            sim::ClusterModel cluster(app, 50, seed);
            sim::Simulator s(app, cluster, {.seed = seed});
            for (int i = 0; i < 150; ++i)
                diverse.push_back(s.simulateOne().trace);
        };
        add_app(eval::makeApp(eval::BenchmarkApp::SocialNet), 5);
        add_app(synth::generateApp(synth::syntheticParams(64, 11)), 6);
        synth::GeneratorParams gp = synth::syntheticParams(64, 12);
        gp.vocabulary = 1;
        add_app(synth::generateApp(gp), 7);
        gp = synth::syntheticParams(128, 13);
        gp.vocabulary = 2;
        add_app(synth::generateApp(gp), 8);
    }
    core::SleuthGnn pre_diverse = pretrain(diverse);

    util::Table table({"target", "model", "samples", "F1", "ACC",
                       "tune s"});

    for (eval::BenchmarkApp target :
         {eval::BenchmarkApp::SockShop, eval::BenchmarkApp::Syn1024}) {
        eval::ExperimentParams params;
        params.trainTraces = 400;
        params.numQueries = 40;
        params.seed = 77;
        eval::ExperimentData data =
            eval::prepareExperiment(eval::makeApp(target, 9), params);
        std::string tname = toString(target);

        auto row = [&](const std::string &model, size_t samples,
                       eval::Scores s, double seconds) {
            table.addRow({tname, model, std::to_string(samples),
                          util::formatDouble(s.f1, 2),
                          util::formatDouble(s.acc, 2),
                          util::formatDouble(seconds, 2)});
            std::fprintf(stderr, "  [%s] %s @%zu: F1=%.2f (%.2fs)\n",
                         tname.c_str(), model.c_str(), samples, s.f1,
                         seconds);
        };

        // Reference: trained from scratch on the full target corpus.
        {
            eval::SleuthAdapter scratch(sleuthConfig());
            Clock::time_point t0 = Clock::now();
            scratch.fit(data.trainCorpus);
            row("sleuth (from scratch)", data.trainCorpus.size(),
                eval::evaluateFitted(scratch, data),
                secondsSince(t0));
        }

        for (size_t samples : {size_t(0), size_t(100), size_t(400)}) {
            std::vector<trace::Trace> subset(
                data.trainCorpus.begin(),
                data.trainCorpus.begin() +
                    static_cast<ptrdiff_t>(
                        std::min(samples, data.trainCorpus.size())));
            // Zero-shot still builds the (non-ML) normal profile from
            // a small slice of the target's trace store.
            std::vector<trace::Trace> profile_slice(
                data.trainCorpus.begin(),
                data.trainCorpus.begin() + 100);
            const std::vector<trace::Trace> &tune =
                samples == 0 ? profile_slice : subset;
            int epochs = samples == 0 ? 0 : 6;

            eval::SleuthAdapter from_single(sleuthConfig());
            Clock::time_point t0 = Clock::now();
            from_single.fineTune(pre_single, tune, epochs);
            row("pretrained (synthetic-256)", samples,
                eval::evaluateFitted(from_single, data),
                secondsSince(t0));

            eval::SleuthAdapter from_diverse(sleuthConfig());
            t0 = Clock::now();
            from_diverse.fineTune(pre_diverse, tune, epochs);
            row("pretrained (diverse corpus)", samples,
                eval::evaluateFitted(from_diverse, data),
                secondsSince(t0));

            // Sage has no transferable model: it retrains from
            // scratch on however many samples exist.
            if (samples > 0) {
                baselines::SageRca::Config sage_cfg;
                sage_cfg.epochs = 30;
                baselines::SageRca sage(sage_cfg);
                t0 = Clock::now();
                sage.fit(subset);
                row("sage (retrain from scratch)", samples,
                    eval::evaluateFitted(sage, data),
                    secondsSince(t0));
            }
        }
    }

    table.print();
    std::printf(
        "\nExpected shape (paper Fig. 7): the diverse pre-trained model"
        " works\nzero-shot within a few points of from-scratch; the"
        " single-source model\nneeds a small fine-tune; accuracy"
        " converges to the from-scratch line\nwith a fraction of the"
        " samples and time; Sage needs a full retrain.\n");
    return 0;
}
