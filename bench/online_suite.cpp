// Serving benchmark for the online layer: streaming span ingestion
// throughput, storm-detection latency, and incident-scoped RCA latency.
//
// The suite trains the model on a healthy warmup corpus, then replays
// a Poisson span stream (out-of-order, jittered, duplicated deliveries)
// through the OnlineService under a chaos schedule that phases faults
// in and out twice, producing two full incident lifecycles. Reported
// rows ({metric, value, unit[, note]}, written to BENCH_online.json or
// the first non-flag argument):
//
//   ingest_spans_per_sec   headline delivery throughput — best of five
//                          metrics-on reruns, the same measurement the
//                          metrics on/off pair below reports
//   ingest_cold_spans_per_sec
//                          the first, cache-cold pass (always slower
//                          than the headline; kept for honesty)
//   detection_latency_p50/p99_ms
//                          detecting poll's watermark minus the
//                          event-time storm onset, across incidents
//   incident_rca_ms        mean wall time of incident-scoped pipeline
//                          runs
//   assembly_drop_fraction spans dropped / spans delivered
//   incremental_repoll_speedup
//                          wall-time ratio of re-analyzing a persisting
//                          incident snapshot (unchanged on most polls,
//                          growing on every third) without vs with the
//                          cross-poll PipelineCache (verdicts asserted
//                          bitwise identical poll-for-poll)
//   ingest_metrics_on_spans_per_sec / ingest_metrics_off_spans_per_sec
//                          best-of-5 interleaved reruns of the stream
//                          with the obs metrics layer on vs disabled
//   ingest_metrics_overhead_pct
//                          throughput cost of leaving metrics on
//                          (acceptance bar: < 2%)
//   ingest_scaling_*       producer-thread x shard-count sweep (only
//                          meaningful on multicore hosts; on a single
//                          core the row is emitted with note
//                          "skipped_single_core" instead of fake
//                          parallel numbers)
//
// With --soak the suite additionally replays hours of simulated time
// at a low arrival rate against a bounded retention budget, sampling
// RSS from /proc/self/status at poll boundaries:
//
//   soak_simulated_hours / soak_spans_delivered
//   soak_rss_peak_mb / soak_rss_growth_mb   bounded-memory evidence
//   soak_watermark_ok                        1 = advanced every poll
//   soak_store_spans / soak_backlog_final_spans
//
// The chaos phase starts are deliberately NOT multiples of the 250 ms
// poll interval. The old schedule (2.0 s / 7.0 s) hid a measurement
// bug: latency was taken from the configured phase start, so every
// sample collapsed onto the poll grid and p50 == p99 == 400 ms
// exactly. The suite now fails (exit 1) if the distribution is
// poll-grid quantized again.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault.h"
#include "core/pipeline.h"
#include "core/pipeline_cache.h"
#include "durable/durable_log.h"
#include "durable/wal.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "online/durable_state.h"
#include "online/live_source.h"
#include "online/service.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "storage/trace_store.h"
#include "synth/generator.h"
#include "trace/columnar.h"
#include "util/json.h"
#include "util/rng.h"

using namespace sleuth;

namespace {

struct Row
{
    std::string metric;
    double value = 0.0;
    std::string unit;
    /** Optional annotation (e.g. "skipped_single_core"). */
    std::string note;
};

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = p * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/** Self-cleaning scratch directory for WAL/snapshot measurements. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        const char *base = std::getenv("TMPDIR");
        std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                           "/sleuth-bench-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (mkdtemp(buf.data()) != nullptr)
            path = buf.data();
    }
    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;
};

/** Resident set size from /proc/self/status, in MiB (0 if absent). */
double
residentMb()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line))
        if (line.rfind("VmRSS:", 0) == 0)
            return std::stod(line.substr(6)) / 1024.0;
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = "BENCH_online.json";
    bool soak = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--soak")
            soak = true;
        else
            out_path = argv[i];
    }
    std::vector<Row> rows;

    // --- Fixture: application, deployment, SLOs, trained model. ---
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(24, 7));
    sim::ClusterModel cluster(app, 10, 7);
    sim::Simulator::calibrateSlos(app, cluster, 300, 99.0, 7);
    sim::Simulator warmup(app, cluster, {.seed = 0x9a17});
    std::vector<trace::Trace> corpus;
    for (int i = 0; i < 400; ++i)
        corpus.push_back(warmup.simulateOne().trace);
    eval::SleuthAdapter adapter;
    adapter.fit(corpus);

    // --- Chaos schedule: two separated fault phases -> two incident
    // lifecycles within one 12-second stream. Phase starts are
    // deliberately off the 250 ms poll grid (see the header comment).
    util::Rng chaos_rng(0xc4a05);
    chaos::FaultPlan plan = chaos::planFixedFaults(
        cluster.allInstances(), 2, chaos::FaultScope::Container, {},
        chaos_rng);
    chaos::FaultSchedule schedule;
    schedule.phases.push_back({0, {}});
    schedule.phases.push_back({2'137'000, plan});
    schedule.phases.push_back({3'641'000, {}});
    schedule.phases.push_back({7'411'000, plan});
    schedule.phases.push_back({8'923'000, {}});

    online::OnlineConfig cfg;
    cfg.endpoints = online::endpointProfiles(app);
    cfg.retention.maxSpans = 500'000;
    cfg.detector.bucketUs = 250'000;
    cfg.detector.windowBuckets = 8;

    online::OnlineService service(adapter.model(), adapter.encoder(),
                                  adapter.profile(), cfg);
    online::LiveSourceConfig live;
    live.seed = 7;
    live.requests = 4800;
    live.arrivalRatePerSec = 400.0;
    live.ingestThreads = 2;
    live.pollIntervalUs = 250'000;
    live.duplicateProb = 0.02;
    live.schedule = schedule;

    online::LiveRunResult run = online::runLiveLoad(
        app, cluster, {.seed = 0x515}, live, &service);

    rows.push_back({"ingest_cold_spans_per_sec", run.spansPerSec,
                    "spans/s", "first pass, caches cold"});
    std::printf("ingest (cold): %zu spans in %.1f ms (%.0f spans/s)\n",
                run.spansDelivered, run.ingestWallMillis,
                run.spansPerSec);

    // --- Detection latency, with the quantization regression gate. ---
    std::vector<double> detect_ms;
    bool off_grid = false;
    for (int64_t us : run.detectionLatenciesUs) {
        detect_ms.push_back(static_cast<double>(us) / 1000.0);
        if (us % live.pollIntervalUs != 0)
            off_grid = true;
    }
    if (detect_ms.empty()) {
        std::fprintf(stderr, "FATAL: chaos stream produced no "
                             "detection latencies\n");
        return 1;
    }
    double p50 = percentile(detect_ms, 0.50);
    double p99 = percentile(detect_ms, 0.99);
    double poll_ms =
        static_cast<double>(live.pollIntervalUs) / 1000.0;
    if (!off_grid) {
        std::fprintf(stderr,
                     "FATAL: every detection latency is a multiple of "
                     "the %.0f ms poll interval — the latency is being "
                     "measured from the phase boundary, not the "
                     "event-time storm onset\n",
                     poll_ms);
        return 1;
    }
    if (std::fabs(p50 - poll_ms) < 1e-6 ||
        (detect_ms.size() >= 2 && p50 == p99)) {
        std::fprintf(stderr,
                     "FATAL: detection latency distribution is "
                     "poll-grid quantized (p50 %.3f ms, p99 %.3f ms, "
                     "poll %.0f ms)\n",
                     p50, p99, poll_ms);
        return 1;
    }
    rows.push_back({"detection_latency_p50_ms", p50, "ms"});
    rows.push_back({"detection_latency_p99_ms", p99, "ms"});

    double rca_ms = 0.0;
    size_t analyzed = 0;
    for (const online::Incident &incident : service.incidents()) {
        if (incident.state == online::Incident::State::Open)
            continue;
        rca_ms += incident.rcaMillis;
        ++analyzed;
    }
    rows.push_back({"incident_rca_ms",
                    analyzed > 0 ? rca_ms / static_cast<double>(analyzed)
                                 : 0.0,
                    "ms"});

    online::OnlineStats stats = service.stats();
    double drop_fraction =
        run.spansDelivered > 0
            ? static_cast<double>(stats.assembly.spansRejected) /
                  static_cast<double>(run.spansDelivered)
            : 0.0;
    rows.push_back(
        {"assembly_drop_fraction", drop_fraction, "fraction"});

    // --- Resident bytes per span in the live trace store, columnar
    // accounting vs the row-oriented AoS estimate of the same traces
    // (the before/after of the columnar refactor, online path). ---
    {
        const storage::TraceStore &store = service.store();
        size_t legacy_bytes = 0;
        storage::Query all;
        for (const storage::Record *r : store.query(all))
            legacy_bytes += trace::approxTraceMemoryBytes(r->trace());
        double spans = static_cast<double>(store.totalSpans());
        if (spans > 0.0) {
            double per_span_columnar =
                static_cast<double>(store.memoryBytes()) / spans;
            double per_span_legacy =
                static_cast<double>(legacy_bytes) / spans;
            rows.push_back({"memory_bytes_per_span", per_span_columnar,
                            "bytes"});
            rows.push_back({"memory_bytes_per_span_legacy",
                            per_span_legacy, "bytes"});
            rows.push_back({"memory_bytes_per_span_reduction",
                            per_span_legacy / per_span_columnar, "x"});
            std::printf("store memory: %.1f bytes/span columnar vs "
                        "%.1f legacy (%.2fx smaller)\n",
                        per_span_columnar, per_span_legacy,
                        per_span_legacy / per_span_columnar);
        }
    }

    // --- Incremental re-poll speedup: the reanalyzeOpenIncidents path
    // re-runs the pipeline over an incident snapshot that grows by a
    // handful of late traces per poll. Time that poll sequence without
    // and with the cross-poll PipelineCache (fresh cache per rep — the
    // cold first poll is part of the cached cost), asserting the
    // verdicts are bitwise identical poll-for-poll (the
    // incremental-repoll campaign invariant, measured). ---
    {
        sim::Simulator storm_sim(app, cluster, {.seed = 0x7a11});
        int num_flows =
            std::min<int>(4, static_cast<int>(app.flows.size()));
        std::vector<trace::Trace> storm;
        for (int i = 0; i < 160; ++i)
            storm.push_back(
                storm_sim.simulateFlow(i % num_flows).trace);
        std::vector<int64_t> durs;
        durs.reserve(storm.size());
        for (const trace::Trace &t : storm)
            durs.push_back(t.rootDurationUs());
        std::nth_element(durs.begin(), durs.begin() + durs.size() / 2,
                         durs.end());
        int64_t slo = std::max<int64_t>(1, durs[durs.size() / 2] / 2);

        core::PipelineConfig pcfg;
        core::SleuthPipeline pipeline(adapter.model(),
                                      adapter.encoder(),
                                      adapter.profile(), pcfg);
        // Snapshots prebuilt outside the timed region: the metric is
        // re-analysis cost, not the (identical either way) cost of
        // copying the snapshot out of the store. The poll sequence
        // models an open incident under reanalyzeOpenIncidents: the
        // service re-analyzes on every poll, but late traces only
        // arrive on some of them, so each window is polled three times
        // (one growth poll, two with the snapshot persisting
        // unchanged — the batch fast path).
        const std::vector<size_t> windows = {80, 96, 112, 128, 144,
                                             160};
        std::vector<std::vector<trace::Trace>> snaps;
        snaps.reserve(windows.size());
        for (size_t n : windows)
            snaps.emplace_back(storm.begin(),
                               storm.begin() + static_cast<long>(n));
        std::vector<size_t> polls;
        for (size_t w = 0; w < snaps.size(); ++w)
            for (int rep = 0; rep < 3; ++rep)
                polls.push_back(w);

        auto fingerprint = [](const core::PipelineResult &r) {
            std::string out = std::to_string(r.numClusters) + "/" +
                              std::to_string(r.rcaInvocations);
            for (size_t i = 0; i < r.perTrace.size(); ++i) {
                out += "|" + std::to_string(r.clusterLabels[i]) + ":";
                for (const std::string &svc : r.perTrace[i].services)
                    out += svc + ",";
            }
            return out;
        };
        auto runPolls = [&](core::PipelineCache *cache,
                            std::vector<std::string> *prints) {
            std::vector<core::PipelineResult> results;
            results.reserve(polls.size());
            auto t0 = std::chrono::steady_clock::now();
            for (size_t w : polls) {
                const std::vector<trace::Trace> &snap = snaps[w];
                std::vector<int64_t> slos(snap.size(), slo);
                results.push_back(
                    pipeline.analyze(snap, slos, nullptr, cache));
            }
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            if (prints != nullptr)
                for (const core::PipelineResult &res : results)
                    prints->push_back(fingerprint(res));
            return ms;
        };

        std::vector<std::string> cold_prints;
        std::vector<std::string> warm_prints;
        double cold_ms = std::numeric_limits<double>::infinity();
        double warm_ms = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 3; ++rep) {
            cold_prints.clear();
            cold_ms = std::min(cold_ms,
                               runPolls(nullptr, &cold_prints));
            core::PipelineCache cache;
            warm_prints.clear();
            warm_ms = std::min(warm_ms,
                               runPolls(&cache, &warm_prints));
        }
        if (cold_prints != warm_prints) {
            std::fprintf(stderr, "FATAL: cached incident re-poll "
                                 "diverged from the full recompute\n");
            return 1;
        }
        double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
        rows.push_back({"incremental_repoll_uncached_ms", cold_ms,
                        "ms"});
        rows.push_back({"incremental_repoll_cached_ms", warm_ms,
                        "ms"});
        rows.push_back({"incremental_repoll_speedup", speedup, "x",
                        "18 polls, 80->160 traces, growth every 3rd"});
        std::printf("incremental re-poll: %.1f ms uncached vs %.1f ms"
                    " cached (%.2fx)\n",
                    cold_ms, warm_ms, speedup);
    }

    double headline = 0.0; // ingest_spans_per_sec, set below

    // --- The same stream with the metrics layer on vs off: identical
    // incidents (write-only side channel), throughput delta is the
    // instrumentation overhead. A single ~100ms ingest loop is too
    // noisy to resolve a sub-2% delta, so take the best of five
    // interleaved on/off pairs: interleaving cancels slow frequency
    // and cache drift that back-to-back blocks would attribute to one
    // mode. The metrics-on best is also the headline
    // ingest_spans_per_sec — one methodology, one number, instead of
    // a cold single pass contradicting the warmed best-of-5 pair. ---
    {
        auto oneRun = [&](bool metrics, online::Incident *first) {
            obs::setEnabled(metrics);
            online::OnlineService svc(adapter.model(),
                                      adapter.encoder(),
                                      adapter.profile(), cfg);
            online::LiveRunResult r = online::runLiveLoad(
                app, cluster, {.seed = 0x515}, live, &svc);
            obs::setEnabled(true);
            if (first != nullptr && !svc.incidents().empty())
                *first = svc.incidents()[0];
            return r.spansPerSec;
        };
        online::Incident off_incident;
        double &on_best = headline;
        double off_best = 0.0;
        for (int rep = 0; rep < 5; ++rep) {
            on_best = std::max(on_best, oneRun(true, nullptr));
            off_best = std::max(
                off_best,
                oneRun(false, rep == 0 ? &off_incident : nullptr));
        }
        if (service.incidents().empty() ||
            service.incidents()[0].openedAtUs !=
                off_incident.openedAtUs ||
            service.incidents()[0].rankedRootCauses !=
                off_incident.rankedRootCauses) {
            std::fprintf(stderr,
                         "FATAL: metrics on/off incident divergence\n");
            return 1;
        }
        double overhead_pct =
            off_best > 0.0 ? (1.0 - on_best / off_best) * 100.0 : 0.0;
        rows.push_back({"ingest_spans_per_sec", on_best, "spans/s",
                        "best-of-5, metrics on"});
        rows.push_back({"ingest_metrics_on_spans_per_sec", on_best,
                        "spans/s"});
        rows.push_back({"ingest_metrics_off_spans_per_sec", off_best,
                        "spans/s"});
        rows.push_back(
            {"ingest_metrics_overhead_pct", overhead_pct, "%"});
        std::printf("ingest metrics on/off best-of-5: %.0f / %.0f"
                    " spans/s (%.2f%% overhead)\n",
                    on_best, off_best, overhead_pct);
    }

    // --- Durable serving (DESIGN.md §3.15): the same stream with a
    // write-ahead log attached under each fsync policy, raw WAL append
    // throughput, snapshot write cost, and recovery replay speed. The
    // fsync=group ratio is the acceptance bar: durable ingest must
    // sustain at least half the non-durable headline. ---
    {
        // Raw WAL append throughput: batch the live store's records
        // into span-batch frames (64 records each, the encoding the
        // service commits) and append them repeatedly, fsync off.
        {
            const storage::TraceStore &store = service.store();
            std::vector<std::string> batches;
            size_t batch_spans = 0;
            util::BinaryWriter w;
            size_t in_batch = 0;
            for (const storage::Record *r : store.query({})) {
                online::appendSpanBatchRecord(w, *r);
                batch_spans += r->spanCount();
                if (++in_batch == 64) {
                    batches.push_back(w.take());
                    in_batch = 0;
                }
            }
            if (in_batch > 0)
                batches.push_back(w.take());
            TempDir wal_dir;
            durable::WalWriter writer(wal_dir.path,
                                      durable::FsyncPolicy::Off);
            std::string err;
            if (!wal_dir.path.empty() &&
                writer.openSegment(0, 0, &err) && batch_spans > 0) {
                const int reps = 20;
                auto t0 = std::chrono::steady_clock::now();
                for (int rep = 0; rep < reps; ++rep) {
                    for (const std::string &b : batches)
                        writer.append(durable::RecordKind::SpanBatch,
                                      b);
                    writer.sync();
                }
                double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
                double spans =
                    static_cast<double>(batch_spans) * reps;
                rows.push_back({"wal_append_spans_per_sec",
                                secs > 0.0 ? spans / secs : 0.0,
                                "spans/s", "64-record batches, fsync "
                                           "off"});
                std::printf("wal append: %.0f spans/s (%.1f MB "
                            "written)\n",
                            secs > 0.0 ? spans / secs : 0.0,
                            static_cast<double>(writer.segmentBytes()) /
                                1e6);
            }
        }

        // Durable ingest under each fsync policy (best of 3, fresh
        // data directory per rep), plus snapshot and recovery timings
        // measured on the group-policy log.
        auto policyName = [](durable::FsyncPolicy p) {
            return std::string(durable::toString(p));
        };
        for (durable::FsyncPolicy policy :
             {durable::FsyncPolicy::Always, durable::FsyncPolicy::Group,
              durable::FsyncPolicy::Off}) {
            double best = 0.0;
            size_t spans_accepted = 0;
            double snapshot_ms = 0.0;
            double recovery_ms = 0.0;
            for (int rep = 0; rep < 3; ++rep) {
                TempDir dir;
                if (dir.path.empty())
                    continue;
                durable::DurableConfig dcfg;
                dcfg.dir = dir.path;
                dcfg.fsyncPolicy = policy;
                online::OnlineService svc(adapter.model(),
                                          adapter.encoder(),
                                          adapter.profile(), cfg);
                online::RecoveryInfo boot = svc.enableDurability(dcfg);
                if (!boot.ok) {
                    std::fprintf(stderr, "FATAL: durable open failed: "
                                         "%s\n",
                                 boot.error.c_str());
                    return 1;
                }
                online::LiveRunResult r = online::runLiveLoad(
                    app, cluster, {.seed = 0x515}, live, &svc);
                best = std::max(best, r.spansPerSec);
                if (policy == durable::FsyncPolicy::Group &&
                    rep == 0) {
                    spans_accepted = svc.stats().assembly.spansAccepted;
                    std::string serr;
                    auto s0 = std::chrono::steady_clock::now();
                    if (!svc.snapshotNow(&serr)) {
                        std::fprintf(stderr,
                                     "FATAL: snapshot failed: %s\n",
                                     serr.c_str());
                        return 1;
                    }
                    snapshot_ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - s0)
                            .count();
                    // Recover the crashed-process view from disk: the
                    // snapshot seeds, the WAL tail replays.
                    online::RecoveryInfo info;
                    auto r0 = std::chrono::steady_clock::now();
                    online::DurableServingState state =
                        online::recoverState(dcfg, {}, &info);
                    recovery_ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - r0)
                            .count();
                    if (!info.ok) {
                        std::fprintf(stderr,
                                     "FATAL: bench recovery failed: "
                                     "%s\n",
                                     info.error.c_str());
                        return 1;
                    }
                    uint64_t live_fp = svc.servingFingerprint();
                    uint64_t rec_fp = online::servingStateFingerprint(
                        state.store, state.detector, state.incidents,
                        state.watermarkUs, state.tracesStored,
                        state.lastRecordId);
                    if (rec_fp != live_fp) {
                        std::fprintf(stderr,
                                     "FATAL: bench recovery diverged "
                                     "from the live service\n");
                        return 1;
                    }
                }
            }
            rows.push_back({"wal_fsync_" + policyName(policy) +
                                "_spans_per_sec",
                            best, "spans/s", "best-of-3, durable"});
            std::printf("durable ingest (fsync=%s): %.0f spans/s\n",
                        policyName(policy).c_str(), best);
            if (policy == durable::FsyncPolicy::Group) {
                rows.push_back(
                    {"snapshot_write_ms", snapshot_ms, "ms"});
                rows.push_back({"recovery_ms", recovery_ms, "ms",
                                "snapshot + WAL tail replay"});
                if (spans_accepted > 0)
                    rows.push_back(
                        {"recovery_ms_per_million_spans",
                         recovery_ms * 1e6 /
                             static_cast<double>(spans_accepted),
                         "ms/Mspan"});
                double ratio =
                    headline > 0.0 ? best / headline : 0.0;
                rows.push_back({"wal_fsync_group_vs_headline", ratio,
                                "fraction",
                                "acceptance bar: >= 0.5"});
                std::printf("durable/headline ratio: %.2f (snapshot "
                            "%.1f ms, recovery %.1f ms)\n",
                            ratio, snapshot_ms, recovery_ms);
                if (ratio < 0.5) {
                    std::fprintf(stderr,
                                 "FATAL: fsync=group ingest fell "
                                 "below half the non-durable "
                                 "headline (%.2f)\n",
                                 ratio);
                    return 1;
                }
            }
        }
    }

    // --- Producer-thread x shard-count scaling. Parallel speedups
    // measured on a single core are fiction (threads time-slice), so
    // the sweep only runs when the host has cores to scale onto;
    // otherwise one honest skipped row is emitted. ---
    {
        const size_t cores = std::thread::hardware_concurrency();
        rows.push_back({"hardware_concurrency",
                        static_cast<double>(cores), "cores"});
        if (cores < 2) {
            rows.push_back({"ingest_scaling_spans_per_sec", 0.0,
                            "spans/s", "skipped_single_core"});
            std::printf("ingest scaling: skipped (1 core)\n");
        } else {
            auto scalingRun = [&](size_t threads, size_t shards) {
                online::OnlineConfig scfg = cfg;
                scfg.ingestShards = shards;
                // Short-lived services; ring sized for the stream's
                // densest poll batch, not a million-span/s interval.
                scfg.ringCapacitySpans = 1 << 14;
                online::LiveSourceConfig slive = live;
                slive.ingestThreads = threads;
                double best = 0.0;
                for (int rep = 0; rep < 3; ++rep) {
                    online::OnlineService svc(adapter.model(),
                                              adapter.encoder(),
                                              adapter.profile(), scfg);
                    best = std::max(
                        best, online::runLiveLoad(app, cluster,
                                                  {.seed = 0x515},
                                                  slive, &svc)
                                  .spansPerSec);
                }
                return best;
            };
            double base = 0.0;
            for (size_t threads : {size_t{1}, size_t{2}, size_t{4},
                                   size_t{8}}) {
                if (threads > cores)
                    break;
                double tput = scalingRun(threads, 4);
                std::string name = "ingest_scaling_t" +
                                   std::to_string(threads) +
                                   "_s4_spans_per_sec";
                rows.push_back({name, tput, "spans/s"});
                if (threads == 1)
                    base = tput;
                else if (base > 0.0)
                    rows.push_back(
                        {"ingest_scaling_t" + std::to_string(threads) +
                             "_s4_speedup",
                         tput / base, "x"});
                std::printf("ingest scaling: %zu threads x 4 shards ->"
                            " %.0f spans/s\n",
                            threads, tput);
            }
            size_t sweep_threads = std::min<size_t>(4, cores);
            for (size_t shards : {size_t{1}, size_t{16}}) {
                double tput = scalingRun(sweep_threads, shards);
                rows.push_back(
                    {"ingest_scaling_t" +
                         std::to_string(sweep_threads) + "_s" +
                         std::to_string(shards) + "_spans_per_sec",
                     tput, "spans/s"});
                std::printf("ingest scaling: %zu threads x %zu shards"
                            " -> %.0f spans/s\n",
                            sweep_threads, shards, tput);
            }
        }
    }

    // --- Long-haul soak: hours of simulated time at a trickle rate
    // against a bounded retention budget. Evidence reported: RSS peak
    // and growth (sampled at poll boundaries), the watermark advancing
    // on every poll, and the store staying inside its span budget. ---
    if (soak) {
        online::OnlineConfig scfg = cfg;
        scfg.retention.maxSpans = 120'000;
        online::OnlineService ssvc(adapter.model(), adapter.encoder(),
                                   adapter.profile(), scfg);

        chaos::FaultSchedule ssched;
        ssched.phases.push_back({0, {}});
        // Two 2-minute fault windows near the hour marks, off-grid.
        ssched.phases.push_back({3'600'137'000, plan});
        ssched.phases.push_back({3'720'137'000, {}});
        ssched.phases.push_back({7'200'411'000, plan});
        ssched.phases.push_back({7'320'411'000, {}});

        online::LiveSourceConfig slive;
        slive.seed = 11;
        slive.requests = 24'000;
        slive.arrivalRatePerSec = 2.5; // ~9600 s ≈ 2.7 h simulated
        slive.ingestThreads = 2;
        slive.pollIntervalUs = 1'000'000;
        slive.duplicateProb = 0.01;
        slive.schedule = ssched;

        double rss_first = 0.0;
        double rss_peak = 0.0;
        int64_t prev_watermark = INT64_MIN;
        bool watermark_ok = true;
        bool store_bounded = true;
        size_t polls = 0;
        slive.onPoll = [&](int64_t watermark) {
            if (watermark <= prev_watermark)
                watermark_ok = false;
            prev_watermark = watermark;
            if (ssvc.store().totalSpans() > scfg.retention.maxSpans)
                store_bounded = false;
            // RSS sampling is comparatively expensive (a /proc read);
            // every 16th poll tracks the envelope just as well.
            if (polls++ % 16 == 0) {
                double mb = residentMb();
                if (rss_first == 0.0)
                    rss_first = mb;
                rss_peak = std::max(rss_peak, mb);
            }
        };
        online::LiveRunResult srun = online::runLiveLoad(
            app, cluster, {.seed = 0x515}, slive, &ssvc);
        double hours =
            static_cast<double>(srun.lastEventUs) / 3.6e9;
        if (!watermark_ok) {
            std::fprintf(stderr,
                         "FATAL: soak watermark stalled or went "
                         "backwards\n");
            return 1;
        }
        if (!store_bounded) {
            std::fprintf(stderr, "FATAL: soak store exceeded its "
                                 "retention budget\n");
            return 1;
        }
        rows.push_back({"soak_simulated_hours", hours, "h"});
        rows.push_back({"soak_spans_delivered",
                        static_cast<double>(srun.spansDelivered),
                        "spans"});
        rows.push_back({"soak_rss_peak_mb", rss_peak, "MiB"});
        rows.push_back(
            {"soak_rss_growth_mb", rss_peak - rss_first, "MiB"});
        rows.push_back({"soak_watermark_ok", 1.0, "bool"});
        rows.push_back({"soak_store_spans",
                        static_cast<double>(ssvc.store().totalSpans()),
                        "spans"});
        rows.push_back(
            {"soak_backlog_final_spans",
             static_cast<double>(ssvc.backlogSpans()), "spans"});
        std::printf("soak: %.2f simulated hours, %zu spans, RSS peak "
                    "%.1f MiB (+%.1f MiB), store %zu spans\n",
                    hours, srun.spansDelivered, rss_peak,
                    rss_peak - rss_first, ssvc.store().totalSpans());
    }

    std::printf("incidents: %zu opened, %zu analyzed, %zu resolved;"
                " detection p50 %.1f ms / p99 %.1f ms, RCA %.1f ms\n",
                stats.incidentsOpened, stats.incidentsAnalyzed,
                stats.incidentsResolved, p50, p99,
                analyzed > 0 ? rca_ms / static_cast<double>(analyzed)
                             : 0.0);

    util::Json doc = util::Json::array();
    for (const Row &r : rows) {
        util::Json row = util::Json::object();
        row.set("metric", r.metric);
        row.set("value", r.value);
        row.set("unit", r.unit);
        if (!r.note.empty())
            row.set("note", r.note);
        doc.push(std::move(row));
    }
    std::ofstream out(out_path);
    out << doc.dump();
    std::printf("results -> %s\n", out_path);
    return 0;
}
