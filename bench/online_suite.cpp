// Serving benchmark for the online layer: streaming span ingestion
// throughput, storm-detection latency, and incident-scoped RCA latency.
//
// The suite trains the model on a healthy warmup corpus, then replays
// a Poisson span stream (out-of-order, jittered, duplicated deliveries)
// through the OnlineService under a chaos schedule that phases faults
// in and out twice, producing two full incident lifecycles. Reported
// rows ({metric, value, unit}, written to BENCH_online.json or
// argv[1]):
//
//   ingest_spans_per_sec   delivery throughput of the ingest+poll loop
//   detection_latency_p50/p99_ms
//                          storm-onset watermark minus fault-phase
//                          start, across incidents (event time)
//   incident_rca_ms        mean wall time of incident-scoped pipeline
//                          runs
//   assembly_drop_fraction spans dropped / spans delivered
//   ingest_metrics_on_spans_per_sec / ingest_metrics_off_spans_per_sec
//                          best-of-5 interleaved reruns of the stream
//                          with the obs metrics layer on vs disabled
//   ingest_metrics_overhead_pct
//                          throughput cost of leaving metrics on
//                          (acceptance bar: < 2%)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "online/live_source.h"
#include "online/service.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "storage/trace_store.h"
#include "synth/generator.h"
#include "trace/columnar.h"
#include "util/json.h"
#include "util/rng.h"

using namespace sleuth;

namespace {

struct Row
{
    std::string metric;
    double value = 0.0;
    std::string unit;
};

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = p * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_online.json";
    std::vector<Row> rows;

    // --- Fixture: application, deployment, SLOs, trained model. ---
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(24, 7));
    sim::ClusterModel cluster(app, 10, 7);
    sim::Simulator::calibrateSlos(app, cluster, 300, 99.0, 7);
    sim::Simulator warmup(app, cluster, {.seed = 0x9a17});
    std::vector<trace::Trace> corpus;
    for (int i = 0; i < 400; ++i)
        corpus.push_back(warmup.simulateOne().trace);
    eval::SleuthAdapter adapter;
    adapter.fit(corpus);

    // --- Chaos schedule: two separated fault phases -> two incident
    // lifecycles within one 12-second stream. ---
    util::Rng chaos_rng(0xc4a05);
    chaos::FaultPlan plan = chaos::planFixedFaults(
        cluster.allInstances(), 2, chaos::FaultScope::Container, {},
        chaos_rng);
    chaos::FaultSchedule schedule;
    schedule.phases.push_back({0, {}});
    schedule.phases.push_back({2'000'000, plan});
    schedule.phases.push_back({3'500'000, {}});
    schedule.phases.push_back({7'000'000, plan});
    schedule.phases.push_back({8'500'000, {}});

    online::OnlineConfig cfg;
    cfg.endpoints = online::endpointProfiles(app);
    cfg.retention.maxSpans = 500'000;
    cfg.detector.bucketUs = 250'000;
    cfg.detector.windowBuckets = 8;

    online::OnlineService service(adapter.model(), adapter.encoder(),
                                  adapter.profile(), cfg);
    online::LiveSourceConfig live;
    live.seed = 7;
    live.requests = 4800;
    live.arrivalRatePerSec = 400.0;
    live.ingestThreads = 2;
    live.pollIntervalUs = 250'000;
    live.duplicateProb = 0.02;
    live.schedule = schedule;

    online::LiveRunResult run = online::runLiveLoad(
        app, cluster, {.seed = 0x515}, live, &service);

    rows.push_back(
        {"ingest_spans_per_sec", run.spansPerSec, "spans/s"});
    std::printf("ingest: %zu spans in %.1f ms (%.0f spans/s)\n",
                run.spansDelivered, run.ingestWallMillis,
                run.spansPerSec);

    std::vector<double> detect_ms;
    for (int64_t us : run.detectionLatenciesUs)
        detect_ms.push_back(static_cast<double>(us) / 1000.0);
    rows.push_back(
        {"detection_latency_p50_ms", percentile(detect_ms, 0.50), "ms"});
    rows.push_back(
        {"detection_latency_p99_ms", percentile(detect_ms, 0.99), "ms"});

    double rca_ms = 0.0;
    size_t analyzed = 0;
    for (const online::Incident &incident : service.incidents()) {
        if (incident.state == online::Incident::State::Open)
            continue;
        rca_ms += incident.rcaMillis;
        ++analyzed;
    }
    rows.push_back({"incident_rca_ms",
                    analyzed > 0 ? rca_ms / static_cast<double>(analyzed)
                                 : 0.0,
                    "ms"});

    online::OnlineStats stats = service.stats();
    double drop_fraction =
        run.spansDelivered > 0
            ? static_cast<double>(stats.assembly.spansRejected) /
                  static_cast<double>(run.spansDelivered)
            : 0.0;
    rows.push_back(
        {"assembly_drop_fraction", drop_fraction, "fraction"});

    // --- Resident bytes per span in the live trace store, columnar
    // accounting vs the row-oriented AoS estimate of the same traces
    // (the before/after of the columnar refactor, online path). ---
    {
        const storage::TraceStore &store = service.store();
        size_t legacy_bytes = 0;
        storage::Query all;
        for (const storage::Record *r : store.query(all))
            legacy_bytes += trace::approxTraceMemoryBytes(r->trace());
        double spans = static_cast<double>(store.totalSpans());
        if (spans > 0.0) {
            double per_span_columnar =
                static_cast<double>(store.memoryBytes()) / spans;
            double per_span_legacy =
                static_cast<double>(legacy_bytes) / spans;
            rows.push_back({"memory_bytes_per_span", per_span_columnar,
                            "bytes"});
            rows.push_back({"memory_bytes_per_span_legacy",
                            per_span_legacy, "bytes"});
            rows.push_back({"memory_bytes_per_span_reduction",
                            per_span_legacy / per_span_columnar, "x"});
            std::printf("store memory: %.1f bytes/span columnar vs "
                        "%.1f legacy (%.2fx smaller)\n",
                        per_span_columnar, per_span_legacy,
                        per_span_legacy / per_span_columnar);
        }
    }

    // --- The same stream with the metrics layer on vs off: identical
    // incidents (write-only side channel), throughput delta is the
    // instrumentation overhead. A single ~100ms ingest loop is too
    // noisy to resolve a sub-2% delta, so take the best of five
    // interleaved on/off pairs: interleaving cancels slow frequency
    // and cache drift that back-to-back blocks would attribute to one
    // mode. ---
    {
        auto oneRun = [&](bool metrics, online::Incident *first) {
            obs::setEnabled(metrics);
            online::OnlineService svc(adapter.model(),
                                      adapter.encoder(),
                                      adapter.profile(), cfg);
            online::LiveRunResult r = online::runLiveLoad(
                app, cluster, {.seed = 0x515}, live, &svc);
            obs::setEnabled(true);
            if (first != nullptr && !svc.incidents().empty())
                *first = svc.incidents()[0];
            return r.spansPerSec;
        };
        online::Incident off_incident;
        double on_best = 0.0;
        double off_best = 0.0;
        for (int rep = 0; rep < 5; ++rep) {
            on_best = std::max(on_best, oneRun(true, nullptr));
            off_best = std::max(
                off_best,
                oneRun(false, rep == 0 ? &off_incident : nullptr));
        }
        if (service.incidents().empty() ||
            service.incidents()[0].openedAtUs !=
                off_incident.openedAtUs ||
            service.incidents()[0].rankedRootCauses !=
                off_incident.rankedRootCauses) {
            std::fprintf(stderr,
                         "FATAL: metrics on/off incident divergence\n");
            return 1;
        }
        double overhead_pct =
            off_best > 0.0 ? (1.0 - on_best / off_best) * 100.0 : 0.0;
        rows.push_back({"ingest_metrics_on_spans_per_sec", on_best,
                        "spans/s"});
        rows.push_back({"ingest_metrics_off_spans_per_sec", off_best,
                        "spans/s"});
        rows.push_back(
            {"ingest_metrics_overhead_pct", overhead_pct, "%"});
        std::printf("ingest metrics on/off best-of-5: %.0f / %.0f"
                    " spans/s (%.2f%% overhead)\n",
                    on_best, off_best, overhead_pct);
    }

    std::printf("incidents: %zu opened, %zu analyzed, %zu resolved;"
                " detection p50 %.0f ms, RCA %.1f ms\n",
                stats.incidentsOpened, stats.incidentsAnalyzed,
                stats.incidentsResolved, percentile(detect_ms, 0.50),
                analyzed > 0 ? rca_ms / static_cast<double>(analyzed)
                             : 0.0);

    util::Json doc = util::Json::array();
    for (const Row &r : rows) {
        util::Json row = util::Json::object();
        row.set("metric", r.metric);
        row.set("value", r.value);
        row.set("unit", r.unit);
        doc.push(std::move(row));
    }
    std::ofstream out(out_path);
    out << doc.dump();
    std::printf("results -> %s\n", out_path);
    return 0;
}
