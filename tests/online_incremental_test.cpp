// Cross-poll incremental cache in the online service: with
// reanalyzeOpenIncidents on, every incident verdict must be bitwise
// identical with the cache enabled and disabled — through store
// retention evicting cached traces mid-incident and through interner
// growth across detection windows — and the cache must actually hit.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "eval/harness.h"
#include "online/live_source.h"
#include "online/service.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "util/rng.h"

using namespace sleuth;

namespace {

/** Shared fixture: app + deployment + trained model (built once). */
struct World
{
    synth::AppConfig app;
    sim::ClusterModel cluster;
    eval::SleuthAdapter adapter;
    chaos::FaultSchedule schedule;

    static eval::SleuthAdapter::Config
    adapterConfig()
    {
        eval::SleuthAdapter::Config cfg;
        cfg.train.epochs = 2;
        return cfg;
    }

    World() : app(synth::generateApp(synth::syntheticParams(16, 5))),
              cluster(app, 8, 5), adapter(adapterConfig())
    {
        sim::Simulator::calibrateSlos(app, cluster, 200, 99.0, 5);
        sim::Simulator warmup(app, cluster, {.seed = 0x9a17});
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 200; ++i)
            corpus.push_back(warmup.simulateOne().trace);
        adapter.fit(corpus);

        // healthy [0, 0.6s) -> faulty [0.6s, 1.6s) -> healthy.
        util::Rng chaos_rng(0xc4a05);
        chaos::FaultPlan plan = chaos::planFixedFaults(
            cluster.allInstances(), 2, chaos::FaultScope::Container, {},
            chaos_rng);
        schedule.phases.push_back({0, {}});
        schedule.phases.push_back({600'000, plan});
        schedule.phases.push_back({1'600'000, {}});
    }
};

World &
world()
{
    static World w;
    return w;
}

/** Service config with open incidents re-analyzed on every poll. */
online::OnlineConfig
reanalyzingConfig(bool cache_on)
{
    online::OnlineConfig cfg;
    cfg.endpoints = online::endpointProfiles(world().app);
    cfg.detector.bucketUs = 200'000;
    cfg.detector.windowBuckets = 5;
    cfg.assembler.latenessUs = 100'000;
    cfg.assembler.quietGapUs = 50'000;
    cfg.reanalyzeOpenIncidents = true;
    cfg.incrementalCache = cache_on;
    return cfg;
}

online::LiveSourceConfig
loadConfig()
{
    online::LiveSourceConfig live;
    live.seed = 31;
    live.requests = 900;
    live.arrivalRatePerSec = 450.0;
    live.ingestThreads = 1;
    live.pollIntervalUs = 200'000;
    live.duplicateProb = 0.03;
    live.schedule = world().schedule;
    return live;
}

/**
 * Everything determinism-relevant about a service's incidents, as one
 * string. Excludes wall-clock fields (rcaMillis) by construction.
 */
std::string
incidentFingerprint(const online::OnlineService &service)
{
    std::ostringstream out;
    for (const online::Incident &i : service.incidents()) {
        out << "#" << i.id << " " << online::toString(i.state) << " @"
            << i.openedAtUs << "-" << i.resolvedAtUs << " window["
            << i.windowStartUs << "," << i.windowEndUs << ") hwm "
            << i.snapshotMaxRecordId << "\n";
        for (const std::string &e : i.endpoints)
            out << "  ep " << e << "\n";
        for (size_t t = 0; t < i.anomalousTraces.size(); ++t) {
            out << "  " << i.anomalousTraces[t].traceId << " slo "
                << i.slos[t] << " ->";
            if (t < i.rca.perTrace.size())
                for (const std::string &svc :
                     i.rca.perTrace[t].services)
                    out << " " << svc;
            out << "\n";
        }
        for (const auto &[svc, votes] : i.rankedRootCauses)
            out << "  rank " << svc << "=" << votes << "\n";
    }
    return out.str();
}

/** Run the live load against a fresh service under cfg. */
std::unique_ptr<online::OnlineService>
runService(const online::OnlineConfig &cfg,
           online::LiveSourceConfig live,
           std::vector<size_t> *interner_sizes = nullptr)
{
    auto service = std::make_unique<online::OnlineService>(
        world().adapter.model(), world().adapter.encoder(),
        world().adapter.profile(), cfg);
    if (interner_sizes != nullptr) {
        online::OnlineService *raw = service.get();
        live.onPoll = [raw, interner_sizes](int64_t) {
            interner_sizes->push_back(raw->store().interner()->size());
        };
    }
    online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                        live, service.get());
    return service;
}

} // namespace

TEST(OnlineIncremental, CachedReanalysisIsBitwiseEqualToUncached)
{
    auto cached = runService(reanalyzingConfig(true), loadConfig());
    auto uncached = runService(reanalyzingConfig(false), loadConfig());
    std::string with_cache = incidentFingerprint(*cached);
    std::string without_cache = incidentFingerprint(*uncached);

    ASSERT_FALSE(with_cache.empty());
    EXPECT_EQ(with_cache, without_cache);
    // Re-analysis actually recurred while the storm persisted (the
    // cache generation is bumped once per cached analyze)...
    EXPECT_GT(cached->cache().generation(), 1u);
    // ...and the warm polls were served from the cache.
    core::PipelineCache::Stats stats = cached->cache().stats();
    EXPECT_GT(stats.encodingHits + stats.verdictHits + stats.batchHits,
              0u);
    // The disabled cache never ran.
    core::PipelineCache::Stats off = uncached->cache().stats();
    EXPECT_EQ(off.encodingHits + off.encodingMisses, 0u);
}

TEST(OnlineIncremental, ReanalysisOffPreservesHistoricalBehavior)
{
    // With reanalyzeOpenIncidents off (the default), the cache knob
    // must not perturb the onset-time verdicts either.
    online::OnlineConfig on = reanalyzingConfig(true);
    on.reanalyzeOpenIncidents = false;
    online::OnlineConfig off = reanalyzingConfig(false);
    off.reanalyzeOpenIncidents = false;
    std::string a = incidentFingerprint(*runService(on, loadConfig()));
    std::string b = incidentFingerprint(*runService(off, loadConfig()));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(OnlineIncremental, StoreEvictionFallsBackToFullRecompute)
{
    // Retention tight enough to evict records while the incident is
    // still being re-analyzed: traces leave the store (and the rebuilt
    // snapshots shrink with them), yet cached verdicts for evicted
    // traces must never leak into a verdict the uncached service
    // wouldn't produce.
    online::OnlineConfig cached_cfg = reanalyzingConfig(true);
    cached_cfg.retention.maxSpans = 1'500;
    online::OnlineConfig uncached_cfg = reanalyzingConfig(false);
    uncached_cfg.retention.maxSpans = 1'500;

    auto cached = runService(cached_cfg, loadConfig());
    std::string with_cache = incidentFingerprint(*cached);
    std::string without_cache =
        incidentFingerprint(*runService(uncached_cfg, loadConfig()));

    ASSERT_FALSE(with_cache.empty());
    EXPECT_EQ(with_cache, without_cache);
    // The scenario really evicted mid-run.
    EXPECT_GT(cached->store().evictions().records, 0u);
    EXPECT_LE(cached->store().totalSpans(), 1'500u);
}

TEST(OnlineIncremental, InternerGrowthAcrossWindowsStaysConsistent)
{
    // The store interner assigns ids as novel strings arrive; cached
    // encodings must stay valid while it grows between detection
    // windows. A finer poll grid keeps early windows from seeing the
    // whole vocabulary at once.
    online::LiveSourceConfig live = loadConfig();
    live.pollIntervalUs = 50'000;

    std::vector<size_t> sizes;
    auto cached = runService(reanalyzingConfig(true), live, &sizes);
    std::string with_cache = incidentFingerprint(*cached);
    std::string without_cache =
        incidentFingerprint(*runService(reanalyzingConfig(false), live));

    ASSERT_FALSE(with_cache.empty());
    EXPECT_EQ(with_cache, without_cache);
    ASSERT_GE(sizes.size(), 2u);
    // The vocabulary grew after the first window was already cached.
    EXPECT_GT(sizes.back(), sizes.front());
    core::PipelineCache::Stats stats = cached->cache().stats();
    EXPECT_GT(stats.encodingHits + stats.verdictHits + stats.batchHits,
              0u);
}
