// Unit tests for descriptive statistics helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace su = sleuth::util;

TEST(Stats, MeanVarianceStddev)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(su::mean(xs), 5.0);
    EXPECT_NEAR(su::variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(su::stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(su::variance({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(su::stddev({5.0}), 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(su::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(su::percentile(xs, 100), 4.0);
    EXPECT_DOUBLE_EQ(su::percentile(xs, 50), 2.5);
    EXPECT_DOUBLE_EQ(su::median(xs), 2.5);
    EXPECT_DOUBLE_EQ(su::percentile(xs, 25), 1.75);
}

TEST(Stats, PercentileUnsortedInput)
{
    std::vector<double> xs = {9, 1, 5, 3, 7};
    EXPECT_DOUBLE_EQ(su::median(xs), 5.0);
}

TEST(Stats, PercentileSingleton)
{
    EXPECT_DOUBLE_EQ(su::percentile({42.0}, 99), 42.0);
}

TEST(Stats, CdfPointsMonotone)
{
    std::vector<double> xs;
    for (int i = 100; i >= 1; --i)
        xs.push_back(i);
    auto pts = su::cdfPoints(xs, 11);
    ASSERT_EQ(pts.size(), 11u);
    EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
    EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
    EXPECT_DOUBLE_EQ(pts.back().first, 100.0);
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
    for (size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LE(pts[i - 1].first, pts[i].first);
        EXPECT_LT(pts[i - 1].second, pts[i].second);
    }
}

TEST(Stats, OnlineMatchesBatch)
{
    std::vector<double> xs = {3.5, -1.0, 2.0, 8.25, 0.0, 4.5};
    su::OnlineStats os;
    for (double x : xs)
        os.add(x);
    EXPECT_EQ(os.count(), xs.size());
    EXPECT_NEAR(os.mean(), su::mean(xs), 1e-12);
    EXPECT_NEAR(os.variance(), su::variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(os.min(), -1.0);
    EXPECT_DOUBLE_EQ(os.max(), 8.25);
}

TEST(Stats, OnlineEmptyAndSingle)
{
    su::OnlineStats os;
    EXPECT_EQ(os.count(), 0u);
    EXPECT_DOUBLE_EQ(os.mean(), 0.0);
    EXPECT_DOUBLE_EQ(os.variance(), 0.0);
    os.add(7.0);
    EXPECT_DOUBLE_EQ(os.mean(), 7.0);
    EXPECT_DOUBLE_EQ(os.variance(), 0.0);
    EXPECT_DOUBLE_EQ(os.min(), 7.0);
    EXPECT_DOUBLE_EQ(os.max(), 7.0);
}
