// Unit tests for trace JSON import/export.

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "trace/trace_json.h"

using namespace sleuth;
using sleuth::testing::figure2Trace;

TEST(TraceJson, RoundTripsSingleTrace)
{
    trace::Trace t = figure2Trace();
    t.spans[1].status = trace::StatusCode::Error;
    t.spans[1].kind = trace::SpanKind::Client;

    util::Json doc = trace::toJson(t);
    trace::Trace back = trace::traceFromJson(doc);

    EXPECT_EQ(back.traceId, t.traceId);
    ASSERT_EQ(back.spans.size(), t.spans.size());
    for (size_t i = 0; i < t.spans.size(); ++i) {
        EXPECT_EQ(back.spans[i].spanId, t.spans[i].spanId);
        EXPECT_EQ(back.spans[i].parentSpanId, t.spans[i].parentSpanId);
        EXPECT_EQ(back.spans[i].service, t.spans[i].service);
        EXPECT_EQ(back.spans[i].name, t.spans[i].name);
        EXPECT_EQ(back.spans[i].kind, t.spans[i].kind);
        EXPECT_EQ(back.spans[i].startUs, t.spans[i].startUs);
        EXPECT_EQ(back.spans[i].endUs, t.spans[i].endUs);
        EXPECT_EQ(back.spans[i].status, t.spans[i].status);
        EXPECT_EQ(back.spans[i].container, t.spans[i].container);
        EXPECT_EQ(back.spans[i].pod, t.spans[i].pod);
        EXPECT_EQ(back.spans[i].node, t.spans[i].node);
    }
}

TEST(TraceJson, RoundTripsThroughText)
{
    trace::Trace t = figure2Trace();
    std::string text = trace::toJson(t).dump(2);
    std::string err;
    util::Json doc = util::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    trace::Trace back = trace::traceFromJson(doc);
    EXPECT_EQ(back.spans.size(), t.spans.size());
    EXPECT_EQ(back.rootDurationUs(), t.rootDurationUs());
}

TEST(TraceJson, CorpusRoundTrip)
{
    std::vector<trace::Trace> corpus = {figure2Trace(), figure2Trace()};
    corpus[1].traceId = "fig2-b";
    util::Json arr = trace::toJson(corpus);
    std::vector<trace::Trace> back = trace::tracesFromJson(arr);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].traceId, "fig2");
    EXPECT_EQ(back[1].traceId, "fig2-b");
}

TEST(TraceJson, MissingResourceAttributesDefaultEmpty)
{
    std::string text = R"({"traceId":"t","spans":[{
        "spanId":"a","parentSpanId":"","service":"s","name":"op",
        "kind":"server","startUs":0,"endUs":5,"status":"ok"}]})";
    std::string err;
    util::Json doc = util::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    trace::Trace t = trace::traceFromJson(doc);
    ASSERT_EQ(t.spans.size(), 1u);
    EXPECT_TRUE(t.spans[0].container.empty());
    EXPECT_TRUE(t.spans[0].pod.empty());
    EXPECT_TRUE(t.spans[0].node.empty());
}
