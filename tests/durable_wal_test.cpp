// WAL layer torture (DESIGN.md §3.15): CRC32C known answers, frame
// round trips, prefix-valid scanning under every possible truncation
// and under bit flips at every byte, multi-segment append/scan,
// snapshot-file atomicity, and DurableLog rotation/compaction plus
// torn-tail truncation on reopen.

#include "durable/crc32c.h"
#include "durable/durable_log.h"
#include "durable/snapshot.h"
#include "durable/wal.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace sleuth::durable;

namespace {

/** Self-cleaning scratch directory under $TMPDIR. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        const char *base = std::getenv("TMPDIR");
        std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                           "/sleuth-waltest-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (mkdtemp(buf.data()) != nullptr)
            path = buf.data();
    }
    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** A small segment exercising every record kind and an empty payload. */
std::vector<std::pair<RecordKind, std::string>>
sampleRecords()
{
    return {
        {RecordKind::Epoch, "epoch-payload"},
        {RecordKind::InternerDelta, std::string("a\0b", 3)},
        {RecordKind::SpanBatch, std::string(300, 'x')},
        {RecordKind::Eviction, ""},
        {RecordKind::IncidentUpdate, "incident bytes"},
        {RecordKind::PollMarker, "marker"},
    };
}

std::string
sampleSegmentBytes()
{
    std::string bytes;
    for (const auto &[kind, payload] : sampleRecords())
        bytes += encodeFrame(kind, payload);
    return bytes;
}

} // namespace

TEST(Crc32c, KnownAnswerAndChaining)
{
    // RFC 3720 check value for "123456789".
    std::string_view check = "123456789";
    EXPECT_EQ(crc32c(check), 0xE3069283u);
    EXPECT_EQ(crc32c(std::string_view{}), 0u);
    // Chained calls must equal one pass over the concatenation.
    EXPECT_EQ(crc32c(check.substr(5), crc32c(check.substr(0, 5))),
              crc32c(check));
    // Single-bit sensitivity.
    EXPECT_NE(crc32c(std::string_view("123456788")), crc32c(check));
}

TEST(Wal, FrameRoundTripAllKinds)
{
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::string seg = dir.path + "/" + segmentFileName(0);
    writeFile(seg, sampleSegmentBytes());

    SegmentScan scan = scanSegment(seg);
    auto records = sampleRecords();
    ASSERT_EQ(scan.frames.size(), records.size());
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.validBytes, scan.fileBytes);
    uint64_t offset = 0;
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(scan.frames[i].kind, records[i].first);
        EXPECT_EQ(scan.frames[i].payload, records[i].second);
        EXPECT_EQ(scan.frames[i].offset, offset);
        offset += 9 + records[i].second.size();
    }

    // Missing file: empty ok, not torn.
    SegmentScan missing = scanSegment(dir.path + "/absent.log");
    EXPECT_TRUE(missing.frames.empty());
    EXPECT_FALSE(missing.torn);
    EXPECT_EQ(missing.fileBytes, 0u);
}

TEST(Wal, TruncationTortureEveryByte)
{
    // Crash artifacts never pick a polite boundary: for EVERY prefix
    // length, the scan must return exactly the fully intact frames and
    // flag anything shorter than the file as torn.
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::string bytes = sampleSegmentBytes();
    std::vector<uint64_t> ends; // cumulative frame end offsets
    {
        uint64_t off = 0;
        for (const auto &[kind, payload] : sampleRecords()) {
            off += 9 + payload.size();
            ends.push_back(off);
        }
    }
    std::string seg = dir.path + "/" + segmentFileName(0);
    for (size_t cut = 0; cut <= bytes.size(); ++cut) {
        writeFile(seg, bytes.substr(0, cut));
        SegmentScan scan = scanSegment(seg);
        size_t whole = 0;
        while (whole < ends.size() && ends[whole] <= cut)
            ++whole;
        ASSERT_EQ(scan.frames.size(), whole) << "cut=" << cut;
        uint64_t valid = whole == 0 ? 0 : ends[whole - 1];
        EXPECT_EQ(scan.validBytes, valid) << "cut=" << cut;
        EXPECT_EQ(scan.fileBytes, cut) << "cut=" << cut;
        EXPECT_EQ(scan.torn, cut != valid) << "cut=" << cut;
    }
}

TEST(Wal, BitFlipTortureEveryByte)
{
    // A flipped byte anywhere must truncate the scan at the frame
    // containing it — never crash, never yield a phantom frame.
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::string bytes = sampleSegmentBytes();
    std::vector<uint64_t> ends;
    {
        uint64_t off = 0;
        for (const auto &[kind, payload] : sampleRecords()) {
            off += 9 + payload.size();
            ends.push_back(off);
        }
    }
    std::string seg = dir.path + "/" + segmentFileName(0);
    for (size_t at = 0; at < bytes.size(); ++at) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x5A);
        writeFile(seg, mutated);
        SegmentScan scan = scanSegment(seg);
        size_t victim = 0; // index of the frame containing byte `at`
        while (ends[victim] <= at)
            ++victim;
        ASSERT_EQ(scan.frames.size(), victim) << "flip at " << at;
        EXPECT_TRUE(scan.torn) << "flip at " << at;
        uint64_t valid = victim == 0 ? 0 : ends[victim - 1];
        EXPECT_EQ(scan.validBytes, valid) << "flip at " << at;
        auto records = sampleRecords();
        for (size_t i = 0; i < scan.frames.size(); ++i)
            EXPECT_EQ(scan.frames[i].payload, records[i].second);
    }
}

TEST(Wal, WriterAppendsAcrossSegments)
{
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::string err;
    {
        WalWriter writer(dir.path, FsyncPolicy::Off);
        ASSERT_TRUE(writer.openSegment(0, 0, &err)) << err;
        EXPECT_TRUE(writer.append(RecordKind::Epoch, "e0"));
        EXPECT_TRUE(writer.append(RecordKind::SpanBatch, "batch-0"));
        EXPECT_TRUE(writer.sync());
        ASSERT_TRUE(writer.openSegment(1, 0, &err)) << err;
        EXPECT_TRUE(writer.append(RecordKind::Epoch, "e1"));
        EXPECT_TRUE(writer.append(RecordKind::PollMarker, "m"));
        writer.close();
    }
    auto segments = listSegments(dir.path);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].first, 0u);
    EXPECT_EQ(segments[1].first, 1u);
    SegmentScan s0 = scanSegment(segments[0].second);
    SegmentScan s1 = scanSegment(segments[1].second);
    ASSERT_EQ(s0.frames.size(), 2u);
    ASSERT_EQ(s1.frames.size(), 2u);
    EXPECT_FALSE(s0.torn);
    EXPECT_FALSE(s1.torn);
    EXPECT_EQ(s0.frames[1].payload, "batch-0");
    EXPECT_EQ(s1.frames[0].payload, "e1");
}

TEST(Snapshot, FileRoundTripAndCorruption)
{
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    std::string path = dir.path + "/" + snapshotFileName(3);
    std::string payload(1000, '\x7f');
    payload += "tail";
    std::string err;
    ASSERT_TRUE(writeSnapshotFile(path, payload, &err)) << err;

    std::string back;
    ASSERT_TRUE(readSnapshotFile(path, &back, &err)) << err;
    EXPECT_EQ(back, payload);

    // Any flipped byte must fail validation, not return junk.
    std::string bytes = readFile(path);
    for (size_t at : {size_t{0}, size_t{9}, bytes.size() / 2,
                      bytes.size() - 1}) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
        writeFile(path, mutated);
        std::string out;
        err.clear();
        EXPECT_FALSE(readSnapshotFile(path, &out, &err))
            << "flip at " << at;
        EXPECT_FALSE(err.empty());
    }

    // Missing file is a clean failure.
    EXPECT_FALSE(
        readSnapshotFile(dir.path + "/absent.snap", &back, &err));
}

TEST(DurableLog, RotateWithSnapshotCompacts)
{
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    DurableConfig cfg;
    cfg.dir = dir.path;
    cfg.fsyncPolicy = FsyncPolicy::Off;
    std::string err;
    {
        DurableLog log(cfg);
        RecoveredLog empty = log.recover();
        EXPECT_FALSE(empty.haveSegments);
        EXPECT_FALSE(empty.hasSnapshot);
        ASSERT_TRUE(log.openForAppend(empty, "epoch-0", &err)) << err;
        EXPECT_TRUE(log.append(RecordKind::SpanBatch, "b0"));
        EXPECT_TRUE(log.append(RecordKind::PollMarker, "m0"));
        EXPECT_TRUE(log.commit());
        ASSERT_TRUE(log.rotateWithSnapshot("SNAPBYTES", "epoch-1",
                                           &err))
            << err;
        EXPECT_EQ(log.segmentIndex(), 1u);
        EXPECT_TRUE(log.append(RecordKind::PollMarker, "m1"));
        EXPECT_TRUE(log.commit());
    }
    // Compaction deleted the pre-snapshot generation.
    EXPECT_FALSE(std::filesystem::exists(dir.path + "/" +
                                         segmentFileName(0)));
    auto segments = listSegments(dir.path);
    auto snapshots = listSnapshots(dir.path);
    ASSERT_EQ(segments.size(), 1u);
    ASSERT_EQ(snapshots.size(), 1u);
    EXPECT_EQ(segments[0].first, 1u);
    EXPECT_EQ(snapshots[0].first, 1u);

    DurableLog reopened(cfg);
    RecoveredLog rec = reopened.recover();
    EXPECT_TRUE(rec.hasSnapshot);
    EXPECT_EQ(rec.snapshotIndex, 1u);
    EXPECT_EQ(rec.snapshotPayload, "SNAPBYTES");
    ASSERT_EQ(rec.frames.size(), 2u);
    EXPECT_EQ(rec.frames[0].kind, RecordKind::Epoch);
    EXPECT_EQ(rec.frames[0].payload, "epoch-1");
    EXPECT_EQ(rec.frames[1].payload, "m1");
}

TEST(DurableLog, TornTailTruncatedOnReopen)
{
    TempDir dir;
    ASSERT_FALSE(dir.path.empty());
    DurableConfig cfg;
    cfg.dir = dir.path;
    cfg.fsyncPolicy = FsyncPolicy::Off;
    std::string err;
    {
        DurableLog log(cfg);
        RecoveredLog empty = log.recover();
        ASSERT_TRUE(log.openForAppend(empty, "epoch-0", &err)) << err;
        EXPECT_TRUE(log.append(RecordKind::SpanBatch, "committed"));
        EXPECT_TRUE(log.append(RecordKind::PollMarker, "m0"));
        EXPECT_TRUE(log.commit());
    }
    // Simulate a crash mid-append: half a frame of garbage on the tail.
    std::string seg = dir.path + "/" + segmentFileName(0);
    std::string bytes = readFile(seg);
    uint64_t clean = bytes.size();
    writeFile(seg, bytes + std::string("\x13\x37garbage"));

    DurableLog log(cfg);
    RecoveredLog rec = log.recover();
    EXPECT_EQ(rec.tornSegments, 1u);
    EXPECT_EQ(rec.appendTruncateTo, clean);
    ASSERT_EQ(rec.frames.size(), 3u);
    ASSERT_TRUE(log.openForAppend(rec, "epoch-0", &err)) << err;
    EXPECT_TRUE(log.append(RecordKind::PollMarker, "m1"));
    EXPECT_TRUE(log.commit());

    // The torn bytes are gone; fresh frames follow the clean prefix.
    SegmentScan scan = scanSegment(seg);
    EXPECT_FALSE(scan.torn);
    ASSERT_EQ(scan.frames.size(), 4u);
    EXPECT_EQ(scan.frames[3].payload, "m1");
}
