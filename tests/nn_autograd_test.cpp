// Gradient checks for every autograd operator via central finite
// differences.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.h"
#include "util/rng.h"

using namespace sleuth::nn;

namespace {

// Verify d(loss)/d(param) against finite differences for every element.
void
checkGradient(const std::vector<Var> &params,
              const std::function<Var()> &loss_fn, double tol = 1e-6,
              double h = 1e-6)
{
    Var loss = loss_fn();
    backward(loss);
    for (size_t p = 0; p < params.size(); ++p) {
        Tensor analytic = params[p]->grad();
        for (size_t i = 0; i < params[p]->value().size(); ++i) {
            double orig = params[p]->mutableValue().data()[i];
            params[p]->mutableValue().data()[i] = orig + h;
            double up = loss_fn()->value().item();
            params[p]->mutableValue().data()[i] = orig - h;
            double down = loss_fn()->value().item();
            params[p]->mutableValue().data()[i] = orig;
            double numeric = (up - down) / (2 * h);
            EXPECT_NEAR(analytic.data()[i], numeric, tol)
                << "param " << p << " element " << i;
        }
    }
}

Var
randomParam(size_t rows, size_t cols, sleuth::util::Rng &rng)
{
    return param(Tensor::randn(rows, cols, 1.0, rng));
}

} // namespace

TEST(Autograd, AddSubMul)
{
    sleuth::util::Rng rng(1);
    Var a = randomParam(2, 3, rng);
    Var b = randomParam(2, 3, rng);
    checkGradient({a, b}, [&] {
        return sumAll(mul(add(a, b), sub(a, b)));
    });
}

TEST(Autograd, MatmulChain)
{
    sleuth::util::Rng rng(2);
    Var a = randomParam(2, 3, rng);
    Var b = randomParam(3, 4, rng);
    Var c = randomParam(4, 2, rng);
    checkGradient({a, b, c}, [&] {
        return sumAll(matmul(matmul(a, b), c));
    });
}

TEST(Autograd, AddRowBroadcast)
{
    sleuth::util::Rng rng(3);
    Var a = randomParam(3, 4, rng);
    Var bias = randomParam(1, 4, rng);
    checkGradient({a, bias}, [&] {
        return sumAll(mul(addRow(a, bias), addRow(a, bias)));
    });
}

TEST(Autograd, ScaleAndAddScalar)
{
    sleuth::util::Rng rng(4);
    Var a = randomParam(2, 2, rng);
    checkGradient({a}, [&] {
        return sumAll(mul(scale(a, 2.5), addScalar(a, -1.0)));
    });
}

TEST(Autograd, ReluGradient)
{
    // Values chosen away from zero so finite differences are valid.
    Var a = param(Tensor(1, 4, {-2.0, -0.5, 0.5, 2.0}));
    checkGradient({a}, [&] { return sumAll(mul(relu(a), relu(a))); });
}

TEST(Autograd, SigmoidTanhExpLog)
{
    sleuth::util::Rng rng(5);
    Var a = param(Tensor(1, 3, {0.5, 1.5, 2.5}));
    checkGradient({a}, [&] {
        Var s = sigmoid(a);
        Var t = tanhOp(a);
        Var e = expOp(scale(a, 0.3));
        Var l = logOp(a);
        return sumAll(add(add(s, t), mul(e, l)));
    }, 1e-5);
}

TEST(Autograd, Pow10AndLog10)
{
    Var a = param(Tensor(1, 3, {0.1, 0.5, 1.0}));
    checkGradient({a}, [&] {
        return sumAll(log10Op(pow10(a)));
    }, 1e-5);
}

TEST(Autograd, ClampPassesInsideBlocksOutside)
{
    Var a = param(Tensor(1, 4, {-5.0, 0.2, 0.8, 5.0}));
    Var y = clamp(a, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(y->value().at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(y->value().at(0, 3), 1.0);
    Var loss = sumAll(mul(y, y));
    backward(loss);
    EXPECT_DOUBLE_EQ(a->grad().at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(a->grad().at(0, 3), 0.0);
    EXPECT_NEAR(a->grad().at(0, 1), 0.4, 1e-12);
}

TEST(Autograd, MaxElemRoutesToWinner)
{
    Var a = param(Tensor(1, 2, {1.0, 5.0}));
    Var b = param(Tensor(1, 2, {3.0, 2.0}));
    Var loss = sumAll(maxElem(a, b));
    backward(loss);
    EXPECT_DOUBLE_EQ(a->grad().at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(a->grad().at(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(b->grad().at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(b->grad().at(0, 1), 0.0);
}

TEST(Autograd, ConcatAndSliceCols)
{
    sleuth::util::Rng rng(6);
    Var a = randomParam(2, 2, rng);
    Var b = randomParam(2, 3, rng);
    checkGradient({a, b}, [&] {
        Var cat = concatCols(a, b);
        Var left = sliceCols(cat, 0, 2);
        Var right = sliceCols(cat, 2, 5);
        return add(sumAll(mul(left, left)), sumAll(right));
    });
}

TEST(Autograd, GatherRowsWithDuplicates)
{
    sleuth::util::Rng rng(7);
    Var a = randomParam(3, 2, rng);
    std::vector<size_t> idx = {0, 2, 0, 1};
    checkGradient({a}, [&] {
        Var g = gatherRows(a, idx);
        return sumAll(mul(g, g));
    });
}

TEST(Autograd, SegmentSum)
{
    sleuth::util::Rng rng(8);
    Var a = randomParam(5, 2, rng);
    std::vector<size_t> seg = {0, 1, 0, 2, 1};
    checkGradient({a}, [&] {
        Var s = segmentSum(a, seg, 3);
        return sumAll(mul(s, s));
    });
}

TEST(Autograd, SegmentSumEmptySegmentIsZero)
{
    Var a = constant(Tensor(2, 1, {1.0, 2.0}));
    Var s = segmentSum(a, {0, 0}, 3);
    EXPECT_DOUBLE_EQ(s->value().at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s->value().at(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(s->value().at(2, 0), 0.0);
}

TEST(Autograd, SegmentMaxValuesAndGradient)
{
    Var a = param(Tensor(4, 1, {1.0, 7.0, 3.0, -2.0}));
    std::vector<size_t> seg = {0, 0, 1, 1};
    Var m = segmentMax(a, seg, 3, -100.0);
    EXPECT_DOUBLE_EQ(m->value().at(0, 0), 7.0);
    EXPECT_DOUBLE_EQ(m->value().at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(m->value().at(2, 0), -100.0);  // empty segment
    Var loss = sumAll(m);
    backward(loss);
    EXPECT_DOUBLE_EQ(a->grad().at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(a->grad().at(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(a->grad().at(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(a->grad().at(3, 0), 0.0);
}

TEST(Autograd, SegmentMaxBelowEmptyValueStillWins)
{
    // A segment whose only inputs are below empty_value must still pick
    // the real input, not the sentinel.
    Var a = param(Tensor(1, 1, {-5.0}));
    Var m = segmentMax(a, {0}, 1, 0.0);
    EXPECT_DOUBLE_EQ(m->value().at(0, 0), -5.0);
}

TEST(Autograd, MeanAll)
{
    sleuth::util::Rng rng(9);
    Var a = randomParam(3, 3, rng);
    checkGradient({a}, [&] { return meanAll(mul(a, a)); });
}

TEST(Autograd, ReusedSubexpressionAccumulates)
{
    // y = (a + a) summed: dy/da = 2 everywhere.
    Var a = param(Tensor(2, 2, {1, 2, 3, 4}));
    Var loss = sumAll(add(a, a));
    backward(loss);
    for (double g : a->grad().data())
        EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(Autograd, ConstantsReceiveNoGradient)
{
    Var c = constant(Tensor(1, 2, {1.0, 2.0}));
    Var p = param(Tensor(1, 2, {3.0, 4.0}));
    Var loss = sumAll(mul(c, p));
    backward(loss);
    EXPECT_DOUBLE_EQ(p->grad().at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(p->grad().at(0, 1), 2.0);
}

TEST(Autograd, BackwardTwiceResetsGradients)
{
    Var a = param(Tensor(1, 1, {2.0}));
    Var loss = mul(a, a);
    backward(loss);
    EXPECT_DOUBLE_EQ(a->grad().item(), 4.0);
    backward(loss);
    EXPECT_DOUBLE_EQ(a->grad().item(), 4.0);  // not 8: grads are zeroed
}

TEST(Autograd, DeepChainStability)
{
    // Deep graphs must not blow the stack (iterative DFS).
    Var x = param(Tensor(1, 1, {1.0}));
    Var y = x;
    for (int i = 0; i < 5000; ++i)
        y = addScalar(y, 0.0);
    Var loss = sumAll(y);
    backward(loss);
    EXPECT_DOUBLE_EQ(x->grad().item(), 1.0);
}

TEST(Autograd, CompositeGnnLikeExpression)
{
    // A miniature of the Sleuth layer: gather parent rows, segment-sum
    // children, MLP-free mixing, clipped-ReLU aggregation.
    sleuth::util::Rng rng(10);
    Var x = randomParam(4, 2, rng);       // 4 nodes, 2 features
    std::vector<size_t> child = {1, 2, 3};
    std::vector<size_t> par = {0, 0, 1};
    checkGradient({x}, [&] {
        Var xc = gatherRows(x, child);
        Var sums = segmentSum(xc, par, 4);
        Var sums_for_edges = gatherRows(sums, par);
        Var msg = add(scale(xc, 1.1), sums_for_edges);
        Var clipped = sub(relu(addScalar(msg, -0.1)),
                          relu(addScalar(msg, -2.0)));
        Var agg = segmentSum(clipped, par, 4);
        return sumAll(mul(agg, agg));
    }, 1e-5);
}

TEST(Autograd, RowScaleGradient)
{
    sleuth::util::Rng rng(11);
    Var a = randomParam(3, 2, rng);
    std::vector<double> factors = {0.5, 2.0, -1.5};
    checkGradient({a}, [&] {
        Var s = rowScale(a, factors);
        return sumAll(mul(s, s));
    });
}

TEST(Autograd, RowScaleValues)
{
    Var a = constant(Tensor(2, 2, {1, 2, 3, 4}));
    Var s = rowScale(a, {2.0, 0.5});
    EXPECT_DOUBLE_EQ(s->value().at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(s->value().at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(s->value().at(1, 0), 1.5);
    EXPECT_DOUBLE_EQ(s->value().at(1, 1), 2.0);
}

TEST(Autograd, SegmentMaxMultiColumnRouting)
{
    // Each column routes its own argmax independently.
    Var a = param(Tensor(2, 2, {5.0, 1.0, 2.0, 8.0}));
    Var m = segmentMax(a, {0, 0}, 1);
    EXPECT_DOUBLE_EQ(m->value().at(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(m->value().at(0, 1), 8.0);
    backward(sumAll(m));
    EXPECT_DOUBLE_EQ(a->grad().at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(a->grad().at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(a->grad().at(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(a->grad().at(1, 1), 1.0);
}

TEST(Autograd, EmptyEdgeSetOps)
{
    // Zero-row gather/segment ops (single-span traces) must be no-ops.
    sleuth::util::Rng rng(12);
    Var x = randomParam(3, 2, rng);
    std::vector<size_t> none;
    Var gathered = gatherRows(x, none);
    EXPECT_EQ(gathered->value().rows(), 0u);
    Var summed = segmentSum(gathered, none, 3);
    EXPECT_EQ(summed->value().rows(), 3u);
    EXPECT_DOUBLE_EQ(summed->value().sum(), 0.0);
    Var maxed = segmentMax(gathered, none, 3, -1.0);
    EXPECT_DOUBLE_EQ(maxed->value().at(0, 0), -1.0);
    Var loss = sumAll(add(summed, maxed));
    backward(loss);  // must not crash
    EXPECT_TRUE(std::isfinite(loss->value().item()));
}
