// Unit tests for the ASCII table renderer used by the bench harnesses.

#include <gtest/gtest.h>

#include "util/table.h"

using sleuth::util::Table;

TEST(Table, AlignsColumns)
{
    Table t({"name", "f1"});
    t.addRow({"max", "0.59"});
    t.addRow({"sleuth-gin", "0.91"});
    std::string out = t.render();
    EXPECT_NE(out.find("name        f1"), std::string::npos);
    EXPECT_NE(out.find("sleuth-gin  0.91"), std::string::npos);
    EXPECT_NE(out.find("max         0.59"), std::string::npos);
}

TEST(Table, HeaderSeparatorPresent)
{
    Table t({"a"});
    t.addRow({"x"});
    std::string out = t.render();
    EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Table, WideCellGrowsColumn)
{
    Table t({"k", "v"});
    t.addRow({"a-very-long-key", "1"});
    std::string out = t.render();
    EXPECT_NE(out.find("a-very-long-key"), std::string::npos);
}

TEST(Table, EmptyBodyRendersHeaderOnly)
{
    Table t({"col1", "col2"});
    std::string out = t.render();
    // Header plus separator lines only.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}
