// Tests for the metrics of §6.1.5 and the shared experiment harness.

#include <gtest/gtest.h>

#include <string>

#include "baselines/simple_rules.h"
#include "core/pipeline.h"
#include "eval/harness.h"

using namespace sleuth;
using namespace sleuth::eval;

TEST(Metrics, PerfectPredictions)
{
    RcaEvaluator ev;
    ev.addQuery({"a"}, {"a"});
    ev.addQuery({"b", "c"}, {"b", "c"});
    EXPECT_DOUBLE_EQ(ev.f1(), 1.0);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 1.0);
    EXPECT_EQ(ev.queries(), 2u);
}

TEST(Metrics, PartialOverlapCountsTowardF1NotAcc)
{
    RcaEvaluator ev;
    // One TP, one FP, one FN.
    ev.addQuery({"a", "x"}, {"a", "b"});
    EXPECT_EQ(ev.tp(), 1u);
    EXPECT_EQ(ev.fp(), 1u);
    EXPECT_EQ(ev.fn(), 1u);
    EXPECT_DOUBLE_EQ(ev.f1(), 0.5);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

TEST(Metrics, EmptyPredictionIsAllFalseNegatives)
{
    RcaEvaluator ev;
    ev.addQuery({}, {"a"});
    EXPECT_DOUBLE_EQ(ev.f1(), 0.0);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

TEST(Metrics, AccStricterThanF1)
{
    RcaEvaluator ev;
    ev.addQuery({"a"}, {"a"});
    ev.addQuery({"a", "b"}, {"a"});
    EXPECT_GT(ev.f1(), ev.accuracy());
}

TEST(Metrics, NoQueriesSafe)
{
    RcaEvaluator ev;
    EXPECT_DOUBLE_EQ(ev.f1(), 0.0);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

// --- Table-3 root-cause aggregation (aggregateRootCauses) ---

TEST(Aggregation, EmptyStormRanksNothing)
{
    core::PipelineResult empty;
    EXPECT_TRUE(core::aggregateRootCauses(empty).empty());
}

TEST(Aggregation, AllPrunedVerdictsRankNothing)
{
    // The over-aggressive-prune edge: every candidate set was emptied,
    // so every per-trace verdict is empty. The aggregation must return
    // an empty ranking, not a crash or a phantom service.
    core::PipelineResult res;
    res.perTrace.resize(5);
    res.clusterLabels.assign(5, -1);
    EXPECT_TRUE(core::aggregateRootCauses(res).empty());
}

TEST(Aggregation, TiedVotesBreakLexicographically)
{
    core::PipelineResult res;
    res.perTrace.resize(4);
    // "zeta" and "alpha" tie at 2 votes; "mid" leads with 3.
    res.perTrace[0].services = {"zeta", "mid"};
    res.perTrace[1].services = {"alpha", "mid"};
    res.perTrace[2].services = {"zeta", "alpha"};
    res.perTrace[3].services = {"mid"};
    auto ranked = core::aggregateRootCauses(res);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0], (std::pair<std::string, size_t>{"mid", 3}));
    // Deterministic tie-break: lexicographic within equal votes.
    EXPECT_EQ(ranked[1], (std::pair<std::string, size_t>{"alpha", 2}));
    EXPECT_EQ(ranked[2], (std::pair<std::string, size_t>{"zeta", 2}));
}

TEST(Harness, MakeAppCatalog)
{
    EXPECT_EQ(makeApp(BenchmarkApp::SockShop).services.size(), 11u);
    EXPECT_EQ(makeApp(BenchmarkApp::SocialNet).services.size(), 26u);
    EXPECT_EQ(makeApp(BenchmarkApp::Syn16).rpcs.size(), 16u);
    EXPECT_EQ(makeApp(BenchmarkApp::Syn64).rpcs.size(), 64u);
    EXPECT_EQ(toString(BenchmarkApp::Syn1024), "Synthetic-1024");
}

TEST(Harness, PrepareExperimentProducesQueries)
{
    ExperimentParams params;
    params.trainTraces = 60;
    params.numQueries = 12;
    params.clusterNodes = 20;
    params.seed = 5;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    EXPECT_EQ(data.trainCorpus.size(), 60u);
    EXPECT_EQ(data.queries.size(), 12u);
    for (const synth::FlowConfig &f : data.app.flows)
        EXPECT_GT(f.sloUs, 0);
    for (const AnomalyQuery &q : data.queries) {
        EXPECT_FALSE(q.truthServices.empty());
        EXPECT_GT(q.sloUs, 0);
        // Each query trace really violates its SLO or errors.
        bool violates = q.trace.rootDurationUs() > q.sloUs;
        for (const trace::Span &s : q.trace.spans)
            if (s.parentSpanId.empty() && s.hasError())
                violates = true;
        EXPECT_TRUE(violates);
    }
}

TEST(Harness, TruthScopesMatchAcrossBlastRadii)
{
    // Scope-aware ground truth: every materially-perturbing container
    // and pod must belong to a truth service (the instance naming is
    // "<service>-ctr-<r>" / "<service>-pod-<r>"), and node-scoped
    // truth must be non-empty whenever containers perturbed — a
    // container always runs somewhere.
    ExperimentParams params;
    params.trainTraces = 40;
    params.numQueries = 10;
    params.clusterNodes = 10;
    params.seed = 11;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    auto owner = [](const std::string &instance, const char *marker) {
        size_t pos = instance.rfind(marker);
        return pos == std::string::npos ? instance
                                        : instance.substr(0, pos);
    };
    for (const AnomalyQuery &q : data.queries) {
        EXPECT_FALSE(q.truthServices.empty());
        for (const std::string &c : q.truthContainers)
            EXPECT_TRUE(q.truthServices.count(owner(c, "-ctr-")))
                << c << " has no owning truth service";
        for (const std::string &p : q.truthPods)
            EXPECT_TRUE(q.truthServices.count(owner(p, "-pod-")))
                << p << " has no owning truth service";
        if (!q.truthContainers.empty()) {
            EXPECT_FALSE(q.truthNodes.empty());
        }
    }
}

TEST(Harness, PipelineEvaluationReportsContainerScores)
{
    ExperimentParams params;
    params.trainTraces = 80;
    params.numQueries = 12;
    params.clusterNodes = 20;
    params.seed = 12;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 4;
    SleuthAdapter sleuth(cfg);
    sleuth.fit(data.trainCorpus);

    core::PipelineConfig pc;
    pc.hdbscan = {.minClusterSize = 5, .minSamples = 3,
                  .clusterSelectionEpsilon = 0.05};
    Scores container_scores{-1.0, -1.0};
    Scores s = evaluatePipeline(sleuth, data, pc, nullptr, nullptr,
                                &container_scores);
    EXPECT_GE(s.f1, 0.0);
    // The out-param was filled with a valid score pair.
    EXPECT_GE(container_scores.f1, 0.0);
    EXPECT_LE(container_scores.f1, 1.0);
    EXPECT_GE(container_scores.acc, 0.0);
    EXPECT_LE(container_scores.acc, 1.0);
}

TEST(Harness, EvaluateAlgorithmEndToEnd)
{
    ExperimentParams params;
    params.trainTraces = 80;
    params.numQueries = 15;
    params.clusterNodes = 20;
    params.seed = 6;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    baselines::MaxDurationRca max_rca;
    Scores s = evaluateAlgorithm(max_rca, data);
    EXPECT_GE(s.f1, 0.0);
    EXPECT_LE(s.f1, 1.0);
    EXPECT_GE(s.acc, 0.0);
    EXPECT_LE(s.acc, 1.0);
    // The trivial heuristic should find at least some root causes on
    // a 16-rpc app.
    EXPECT_GT(s.f1, 0.15);
}

TEST(Harness, SleuthAdapterBeatsWeakBaselineHere)
{
    ExperimentParams params;
    params.trainTraces = 150;
    params.numQueries = 20;
    params.clusterNodes = 20;
    params.seed = 7;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 8;
    SleuthAdapter sleuth(cfg);
    Scores s_sleuth = evaluateAlgorithm(sleuth, data);

    baselines::ThresholdRca threshold(99.0);
    Scores s_thresh = evaluateAlgorithm(threshold, data);

    EXPECT_GT(s_sleuth.f1, 0.5);
    EXPECT_GE(s_sleuth.f1, s_thresh.f1);
}

TEST(Harness, PipelineEvaluationRunsWithClustering)
{
    ExperimentParams params;
    params.trainTraces = 120;
    params.numQueries = 25;
    params.clusterNodes = 20;
    params.seed = 8;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 6;
    SleuthAdapter sleuth(cfg);
    sleuth.fit(data.trainCorpus);

    core::PipelineConfig pc;
    pc.hdbscan = {.minClusterSize = 5, .minSamples = 3,
                  .clusterSelectionEpsilon = 0.05};
    size_t invocations = 0;
    Scores s = evaluatePipeline(sleuth, data, pc, nullptr,
                                &invocations);
    EXPECT_GT(invocations, 0u);
    EXPECT_LE(invocations, data.queries.size());
    EXPECT_GE(s.f1, 0.0);
}

TEST(Harness, FineTuneZeroShotUsesPretrainedWeights)
{
    ExperimentParams params;
    params.trainTraces = 100;
    params.numQueries = 10;
    params.clusterNodes = 20;
    params.seed = 9;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 6;
    SleuthAdapter teacher(cfg);
    teacher.fit(data.trainCorpus);

    SleuthAdapter student(cfg);
    student.fineTune(teacher.model(), data.trainCorpus, 0);
    // Zero-shot: the student's weights equal the teacher's.
    EXPECT_EQ(student.model().save().dump(),
              teacher.model().save().dump());
    Scores s = evaluateFitted(student, data);
    EXPECT_GE(s.f1, 0.0);
}
