// Tests for the metrics of §6.1.5 and the shared experiment harness.

#include <gtest/gtest.h>

#include "baselines/simple_rules.h"
#include "eval/harness.h"

using namespace sleuth;
using namespace sleuth::eval;

TEST(Metrics, PerfectPredictions)
{
    RcaEvaluator ev;
    ev.addQuery({"a"}, {"a"});
    ev.addQuery({"b", "c"}, {"b", "c"});
    EXPECT_DOUBLE_EQ(ev.f1(), 1.0);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 1.0);
    EXPECT_EQ(ev.queries(), 2u);
}

TEST(Metrics, PartialOverlapCountsTowardF1NotAcc)
{
    RcaEvaluator ev;
    // One TP, one FP, one FN.
    ev.addQuery({"a", "x"}, {"a", "b"});
    EXPECT_EQ(ev.tp(), 1u);
    EXPECT_EQ(ev.fp(), 1u);
    EXPECT_EQ(ev.fn(), 1u);
    EXPECT_DOUBLE_EQ(ev.f1(), 0.5);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

TEST(Metrics, EmptyPredictionIsAllFalseNegatives)
{
    RcaEvaluator ev;
    ev.addQuery({}, {"a"});
    EXPECT_DOUBLE_EQ(ev.f1(), 0.0);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

TEST(Metrics, AccStricterThanF1)
{
    RcaEvaluator ev;
    ev.addQuery({"a"}, {"a"});
    ev.addQuery({"a", "b"}, {"a"});
    EXPECT_GT(ev.f1(), ev.accuracy());
}

TEST(Metrics, NoQueriesSafe)
{
    RcaEvaluator ev;
    EXPECT_DOUBLE_EQ(ev.f1(), 0.0);
    EXPECT_DOUBLE_EQ(ev.accuracy(), 0.0);
}

TEST(Harness, MakeAppCatalog)
{
    EXPECT_EQ(makeApp(BenchmarkApp::SockShop).services.size(), 11u);
    EXPECT_EQ(makeApp(BenchmarkApp::SocialNet).services.size(), 26u);
    EXPECT_EQ(makeApp(BenchmarkApp::Syn16).rpcs.size(), 16u);
    EXPECT_EQ(makeApp(BenchmarkApp::Syn64).rpcs.size(), 64u);
    EXPECT_EQ(toString(BenchmarkApp::Syn1024), "Synthetic-1024");
}

TEST(Harness, PrepareExperimentProducesQueries)
{
    ExperimentParams params;
    params.trainTraces = 60;
    params.numQueries = 12;
    params.clusterNodes = 20;
    params.seed = 5;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    EXPECT_EQ(data.trainCorpus.size(), 60u);
    EXPECT_EQ(data.queries.size(), 12u);
    for (const synth::FlowConfig &f : data.app.flows)
        EXPECT_GT(f.sloUs, 0);
    for (const AnomalyQuery &q : data.queries) {
        EXPECT_FALSE(q.truthServices.empty());
        EXPECT_GT(q.sloUs, 0);
        // Each query trace really violates its SLO or errors.
        bool violates = q.trace.rootDurationUs() > q.sloUs;
        for (const trace::Span &s : q.trace.spans)
            if (s.parentSpanId.empty() && s.hasError())
                violates = true;
        EXPECT_TRUE(violates);
    }
}

TEST(Harness, EvaluateAlgorithmEndToEnd)
{
    ExperimentParams params;
    params.trainTraces = 80;
    params.numQueries = 15;
    params.clusterNodes = 20;
    params.seed = 6;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    baselines::MaxDurationRca max_rca;
    Scores s = evaluateAlgorithm(max_rca, data);
    EXPECT_GE(s.f1, 0.0);
    EXPECT_LE(s.f1, 1.0);
    EXPECT_GE(s.acc, 0.0);
    EXPECT_LE(s.acc, 1.0);
    // The trivial heuristic should find at least some root causes on
    // a 16-rpc app.
    EXPECT_GT(s.f1, 0.15);
}

TEST(Harness, SleuthAdapterBeatsWeakBaselineHere)
{
    ExperimentParams params;
    params.trainTraces = 150;
    params.numQueries = 20;
    params.clusterNodes = 20;
    params.seed = 7;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 8;
    SleuthAdapter sleuth(cfg);
    Scores s_sleuth = evaluateAlgorithm(sleuth, data);

    baselines::ThresholdRca threshold(99.0);
    Scores s_thresh = evaluateAlgorithm(threshold, data);

    EXPECT_GT(s_sleuth.f1, 0.5);
    EXPECT_GE(s_sleuth.f1, s_thresh.f1);
}

TEST(Harness, PipelineEvaluationRunsWithClustering)
{
    ExperimentParams params;
    params.trainTraces = 120;
    params.numQueries = 25;
    params.clusterNodes = 20;
    params.seed = 8;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 6;
    SleuthAdapter sleuth(cfg);
    sleuth.fit(data.trainCorpus);

    core::PipelineConfig pc;
    pc.hdbscan = {.minClusterSize = 5, .minSamples = 3,
                  .clusterSelectionEpsilon = 0.05};
    size_t invocations = 0;
    Scores s = evaluatePipeline(sleuth, data, pc, nullptr,
                                &invocations);
    EXPECT_GT(invocations, 0u);
    EXPECT_LE(invocations, data.queries.size());
    EXPECT_GE(s.f1, 0.0);
}

TEST(Harness, FineTuneZeroShotUsesPretrainedWeights)
{
    ExperimentParams params;
    params.trainTraces = 100;
    params.numQueries = 10;
    params.clusterNodes = 20;
    params.seed = 9;
    ExperimentData data =
        prepareExperiment(makeApp(BenchmarkApp::Syn16, 9), params);

    SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 6;
    SleuthAdapter teacher(cfg);
    teacher.fit(data.trainCorpus);

    SleuthAdapter student(cfg);
    student.fineTune(teacher.model(), data.trainCorpus, 0);
    // Zero-shot: the student's weights equal the teacher's.
    EXPECT_EQ(student.model().save().dump(),
              teacher.model().save().dump());
    Scores s = evaluateFitted(student, data);
    EXPECT_GE(s.f1, 0.0);
}
