// End-to-end tests: counterfactual RCA localizes injected faults, the
// clustering pipeline reduces RCA invocations, and the model registry
// manages lifecycles.

#include <gtest/gtest.h>

#include "core/counterfactual.h"
#include "core/model_registry.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "synth/mutate.h"

using namespace sleuth;
using namespace sleuth::core;

namespace {

/** Shared fixture: app, cluster, trained model, profile, SLOs. */
struct Harness
{
    synth::AppConfig app;
    sim::ClusterModel cluster;
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    Harness()
        : app(synth::generateApp(synth::syntheticParams(16, 21))),
          cluster(app, 10, 2),
          model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 5;
              return c;
          }())
    {
        sim::Simulator::calibrateSlos(app, cluster, 300, 99.0);
        sim::Simulator simulator(app, cluster, {.seed = 77});
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 150; ++i) {
            trace::Trace t = simulator.simulateOne().trace;
            profile.add(t);
            corpus.push_back(std::move(t));
        }
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        tc.tracesPerBatch = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    /** Fault type matching the service's dominant kernel resource. */
    chaos::FaultType
    autoType(int svc) const
    {
        for (const synth::RpcConfig &r : app.rpcs) {
            if (r.serviceId != svc)
                continue;
            switch (r.startKernel.resource) {
              case synth::Resource::Cpu:
                return chaos::FaultType::CpuStress;
              case synth::Resource::Memory:
                return chaos::FaultType::MemoryStress;
              case synth::Resource::Disk:
                return chaos::FaultType::DiskStress;
              case synth::Resource::Network:
                return chaos::FaultType::NetworkDelay;
            }
        }
        return chaos::FaultType::CpuStress;
    }

    /** Simulate anomalies under a fault on every replica of `svc`. */
    std::vector<sim::SimResult>
    anomalies(int svc, chaos::FaultType type, size_t want,
              uint64_t seed)
    {
        chaos::FaultPlan plan;
        for (const chaos::Instance &inst : cluster.instancesOf(svc))
            plan.faults.push_back({type, chaos::FaultScope::Container,
                                   inst.container, 12.0, 0.8});
        sim::Simulator simulator(app, cluster, {.seed = seed}, plan);
        std::vector<sim::SimResult> out;
        for (int i = 0; i < 4000 && out.size() < want; ++i) {
            sim::SimResult r = simulator.simulateOne();
            int64_t slo =
                app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
            if (r.faultTouched() && r.violatesSlo(slo))
                out.push_back(std::move(r));
        }
        return out;
    }
};

Harness &
harness()
{
    static Harness h;
    return h;
}

} // namespace

TEST(CounterfactualRca, FindsLatencyFaultService)
{
    Harness &h = harness();
    // Fault a middleware service that the full flow traverses.
    int victim = synth::serviceAtDepth(h.app, 2);
    ASSERT_GE(victim, 0);
    auto anomalies =
        h.anomalies(victim, h.autoType(victim), 20, 31);
    ASSERT_GE(anomalies.size(), 10u);

    CounterfactualRca rca(h.model, h.encoder, h.profile, {});
    const std::string victim_name =
        h.app.services[static_cast<size_t>(victim)].name;
    int hits = 0, total = 0;
    for (const sim::SimResult &r : anomalies) {
        int64_t slo =
            h.app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        RcaResult res = rca.analyze(r.trace, slo);
        ++total;
        for (const std::string &svc : res.services)
            if (svc == victim_name)
                ++hits;
    }
    // The faulted service appears in the predicted set for the large
    // majority of anomalous traces.
    EXPECT_GE(hits, total * 7 / 10);
}

TEST(CounterfactualRca, PredictedSetIsSmall)
{
    Harness &h = harness();
    int victim = synth::serviceAtDepth(h.app, 2);
    auto anomalies =
        h.anomalies(victim, h.autoType(victim), 10, 33);
    ASSERT_GE(anomalies.size(), 5u);
    CounterfactualRca rca(h.model, h.encoder, h.profile, {});
    for (const sim::SimResult &r : anomalies) {
        int64_t slo =
            h.app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        RcaResult res = rca.analyze(r.trace, slo);
        EXPECT_LE(res.services.size(), 5u);
        EXPECT_GE(res.services.size(), 1u);
    }
}

TEST(CounterfactualRca, LocatesPodsAndNodes)
{
    Harness &h = harness();
    int victim = synth::serviceAtDepth(h.app, 2);
    auto anomalies =
        h.anomalies(victim, h.autoType(victim), 5, 35);
    ASSERT_GE(anomalies.size(), 1u);
    CounterfactualRca rca(h.model, h.encoder, h.profile, {});
    int64_t slo = h.app
                      .flows[static_cast<size_t>(
                          anomalies[0].flowIndex)]
                      .sloUs;
    RcaResult res = rca.analyze(anomalies[0].trace, slo);
    ASSERT_FALSE(res.services.empty());
    EXPECT_FALSE(res.pods.empty());
    EXPECT_FALSE(res.nodes.empty());
    EXPECT_FALSE(res.containers.empty());
}

TEST(CounterfactualRca, NormalTraceYieldsNoRootCause)
{
    Harness &h = harness();
    sim::Simulator simulator(h.app, h.cluster, {.seed = 41});
    CounterfactualRca rca(h.model, h.encoder, h.profile, {});
    // A healthy trace analyzed against a generous SLO should resolve
    // immediately (tiny predicted set) since nothing exceeds normal.
    int small = 0, checked = 0;
    for (int i = 0; i < 10; ++i) {
        sim::SimResult r = simulator.simulateOne();
        int64_t slo =
            h.app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        RcaResult res = rca.analyze(r.trace, slo * 10);
        ++checked;
        if (res.services.size() <= 1)
            ++small;
    }
    EXPECT_GE(small, checked * 8 / 10);
}

TEST(Pipeline, ClusteringReducesInvocations)
{
    Harness &h = harness();
    // Two distinct non-frontend services (the full flow covers every
    // RPC, so both are exercised).
    int victim_a = 1;
    int victim_b = 2;
    ASSERT_NE(victim_a, victim_b);

    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (int victim : {victim_a, victim_b}) {
        auto anomalies = h.anomalies(
            victim, h.autoType(victim), 25,
            50 + static_cast<uint64_t>(victim));
        for (const sim::SimResult &r : anomalies) {
            traces.push_back(r.trace);
            slos.push_back(
                h.app.flows[static_cast<size_t>(r.flowIndex)].sloUs);
        }
    }
    ASSERT_GE(traces.size(), 30u);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 8, .minSamples = 4,
                   .clusterSelectionEpsilon = 0.05};
    SleuthPipeline pipeline(h.model, h.encoder, h.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);

    EXPECT_LT(res.rcaInvocations, traces.size());
    EXPECT_GE(res.numClusters, 1);
    EXPECT_EQ(res.perTrace.size(), traces.size());
    for (const RcaResult &r : res.perTrace)
        EXPECT_FALSE(r.services.empty());
}

TEST(Pipeline, NoClusteringAnalyzesEverything)
{
    Harness &h = harness();
    int victim = synth::serviceAtDepth(h.app, 2);
    auto anomalies =
        h.anomalies(victim, h.autoType(victim), 8, 61);
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (const auto &r : anomalies) {
        traces.push_back(r.trace);
        slos.push_back(
            h.app.flows[static_cast<size_t>(r.flowIndex)].sloUs);
    }
    PipelineConfig cfg;
    cfg.clustering = false;
    SleuthPipeline pipeline(h.model, h.encoder, h.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);
    EXPECT_EQ(res.rcaInvocations, traces.size());
}

TEST(ModelRegistry, VersioningAndInheritance)
{
    Harness &h = harness();
    ModelRegistry reg;
    std::string v1 = reg.add("sleuth", h.model);
    EXPECT_EQ(v1, "sleuth:v1");
    std::string v2 = reg.add("sleuth", h.model, v1);
    EXPECT_EQ(v2, "sleuth:v2");
    EXPECT_EQ(reg.latest("sleuth"), v2);

    auto metas = reg.list();
    ASSERT_EQ(metas.size(), 2u);
    EXPECT_EQ(metas[1].parent, v1);

    reg.retire(v2);
    EXPECT_EQ(reg.latest("sleuth"), v1);
    EXPECT_DEATH((void)reg.instantiate(v2), "retired");
}

TEST(ModelRegistry, InstantiateReproducesModel)
{
    Harness &h = harness();
    ModelRegistry reg;
    std::string id = reg.add("sleuth", h.model);
    SleuthGnn copy = reg.instantiate(id);

    sim::Simulator simulator(h.app, h.cluster, {.seed = 71});
    trace::Trace t = simulator.simulateOne().trace;
    TraceBatch b = h.encoder.encode(t);
    EXPECT_NEAR(h.model.loss(b)->value().item(),
                copy.loss(b)->value().item(), 1e-9);
}

TEST(ModelRegistry, DiskRoundTrip)
{
    Harness &h = harness();
    ModelRegistry reg;
    std::string id = reg.add("sleuth", h.model);
    std::string path = ::testing::TempDir() + "/sleuth-registry.json";
    reg.saveToFile(path);
    ModelRegistry back = ModelRegistry::loadFromFile(path);
    EXPECT_EQ(back.size(), 1u);
    EXPECT_EQ(back.latest("sleuth"), id);
    // A new version after reload continues the version sequence.
    EXPECT_EQ(back.add("sleuth", h.model), "sleuth:v2");
}

TEST(Pipeline, DbscanVariantRuns)
{
    Harness &h = harness();
    auto anomalies =
        h.anomalies(1, h.autoType(1), 15, 81);
    ASSERT_GE(anomalies.size(), 8u);
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (const auto &r : anomalies) {
        traces.push_back(r.trace);
        slos.push_back(
            h.app.flows[static_cast<size_t>(r.flowIndex)].sloUs);
    }
    PipelineConfig cfg;
    cfg.algorithm = PipelineConfig::Algorithm::Dbscan;
    cfg.dbscan = {.eps = 0.4, .minPts = 3};
    SleuthPipeline pipeline(h.model, h.encoder, h.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);
    EXPECT_EQ(res.perTrace.size(), traces.size());
    EXPECT_GT(res.rcaInvocations, 0u);
    for (const RcaResult &r : res.perTrace)
        EXPECT_FALSE(r.services.empty());
}
