// Serialization property test: generateApp → toJson → appFromJson →
// toJson must be bitwise identical across many GeneratorParams draws,
// so inferred models survive the same save/load path as generated
// ones.

#include <gtest/gtest.h>

#include "synth/generator.h"

using namespace sleuth;
using namespace sleuth::synth;

TEST(SynthRoundTrip, GeneratedAppsSerializeBitwise)
{
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        GeneratorParams params =
            syntheticParams(12 + static_cast<int>(seed % 5) * 16, seed);
        AppConfig app = generateApp(params);

        std::string first = toJson(app).dump(2);
        std::string err;
        util::Json doc = util::Json::parse(first, &err);
        ASSERT_TRUE(err.empty()) << "seed " << seed << ": " << err;

        AppConfig reloaded;
        ASSERT_TRUE(tryAppFromJson(doc, &reloaded, &err))
            << "seed " << seed << ": " << err;
        EXPECT_EQ(toJson(reloaded).dump(2), first) << "seed " << seed;

        // The fatal-on-error entry point takes the identical path.
        AppConfig viaFatal = appFromJson(doc);
        EXPECT_EQ(toJson(viaFatal).dump(2), first) << "seed " << seed;
    }
}
