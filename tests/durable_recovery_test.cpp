// Durable replay engine (DESIGN.md §3.15): snapshot payload round
// trips, poll-atomic tail discard, config-free epoch replay, and the
// regression pinning replayed evictions bitwise to live evictions
// while the vocabulary interner keeps growing past evicted records.

#include "online/durable_state.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "durable/durable_log.h"
#include "storage/trace_store.h"
#include "trace/trace.h"
#include "util/binary.h"

using namespace sleuth;

namespace {

/** A tiny two-span trace with a per-index vocabulary, so every insert
    grows the interner even after older records are evicted. */
trace::Trace
makeTrace(int i)
{
    std::string tag = std::to_string(i);
    trace::Trace t;
    t.traceId = "trace-" + tag;
    trace::Span root;
    root.spanId = "s" + tag + "-root";
    root.service = "svc-" + tag;
    root.name = "op-" + tag;
    root.startUs = 1'000 * i;
    root.endUs = root.startUs + 900;
    t.spans.push_back(root);
    trace::Span child;
    child.spanId = "s" + tag + "-child";
    child.parentSpanId = root.spanId;
    child.service = "dep-" + tag;
    child.name = "call-" + tag;
    child.startUs = root.startUs + 10;
    child.endUs = root.startUs + 500;
    t.spans.push_back(child);
    return t;
}

/** A live retention-bounded run and the WAL frame stream a durable
    service would have committed for it, one poll per insert. */
struct LiveRun
{
    storage::TraceStore store{storage::RetentionConfig{0, 2}};
    std::vector<durable::WalFrame> frames;
    size_t lastRecordId = 0;
    size_t tracesStored = 0;
    size_t evictionPolls = 0;
};

LiveRun
buildLiveRun(int polls)
{
    LiveRun run;
    run.store.trackEvictions(true);
    size_t interner_logged = run.store.interner()->size();
    for (int i = 0; i < polls; ++i) {
        size_t id = run.store.insert(makeTrace(i), 2'000, i);
        run.lastRecordId = id;
        ++run.tracesStored;
        util::BinaryWriter batch;
        online::appendSpanBatchRecord(batch, run.store.at(id));

        // Commit order mirrors the live service: vocabulary first (the
        // batch's raw u32 ids reference it), then the batch, the
        // eviction summary, and the sealing marker.
        size_t interned = run.store.interner()->size();
        if (interned > interner_logged) {
            run.frames.push_back(
                {durable::RecordKind::InternerDelta,
                 online::encodeInternerDeltaPayload(
                     static_cast<uint32_t>(interner_logged),
                     run.store.interner()->namesFrom(interner_logged)),
                 0});
            interner_logged = interned;
        }
        run.frames.push_back(
            {durable::RecordKind::SpanBatch, batch.take(), 0});
        std::vector<size_t> evicted =
            run.store.takeRecentEvictions();
        if (!evicted.empty()) {
            ++run.evictionPolls;
            run.frames.push_back(
                {durable::RecordKind::Eviction,
                 online::encodeEvictionPayload(evicted), 0});
        }
        online::PollMarkerPayload m;
        m.watermarkUs = 1'000 * (i + 1);
        m.lastRecordId = run.lastRecordId;
        m.tracesStored = run.tracesStored;
        m.storeRecords = run.store.size();
        m.storeSpans = run.store.totalSpans();
        m.internerSize = run.store.interner()->size();
        run.frames.push_back(
            {durable::RecordKind::PollMarker,
             online::encodePollMarkerPayload(m), 0});
    }
    return run;
}

durable::RecoveredLog
asLog(std::vector<durable::WalFrame> frames)
{
    durable::RecoveredLog log;
    log.haveSegments = true;
    log.frames = std::move(frames);
    return log;
}

} // namespace

TEST(DurableReplay, EvictionReplayMatchesLiveUnderInternerGrowth)
{
    // Retention maxRecords=2 over 6 single-trace polls: inserts 2..5
    // each evict the then-oldest record, while every insert interns a
    // fresh vocabulary. Replay applies the logged decisions — not the
    // policy — and must land on the live store's exact content,
    // including the interner entries only evicted records used.
    LiveRun live = buildLiveRun(6);
    ASSERT_GE(live.evictionPolls, 4u);
    ASSERT_EQ(live.store.size(), 2u);

    online::RecoveryInfo info;
    online::DurableServingState state = online::replayRecoveredLog(
        asLog(live.frames), online::DetectorConfig{}, {}, &info);
    ASSERT_TRUE(info.ok) << info.error;
    EXPECT_EQ(info.pollsReplayed, 6u);
    EXPECT_EQ(info.discardedTailFrames, 0u);
    EXPECT_EQ(state.store.contentFingerprint(),
              live.store.contentFingerprint());
    EXPECT_EQ(state.store.interner()->size(),
              live.store.interner()->size());
    EXPECT_EQ(state.lastRecordId, live.lastRecordId);
    EXPECT_EQ(state.tracesStored, live.tracesStored);

    // The cumulative eviction counters replay too.
    EXPECT_EQ(state.store.evictions().records,
              live.store.evictions().records);
}

TEST(DurableReplay, SkippingEvictionReplayIsRejected)
{
    // The skip-eviction-replay mutation ignores logged Eviction
    // records; the first sealed poll whose marker counters disagree
    // must stop the replay with a state-shape error instead of
    // returning silently divergent state.
    LiveRun live = buildLiveRun(6);
    online::RecoverOptions opts;
    opts.skipEvictionReplay = true;
    online::RecoveryInfo info;
    online::replayRecoveredLog(asLog(live.frames),
                               online::DetectorConfig{}, opts, &info);
    EXPECT_FALSE(info.ok);
    EXPECT_NE(info.error.find("state-shape"), std::string::npos)
        << info.error;
}

TEST(DurableReplay, UnsealedTailIsDiscarded)
{
    // Frames after the last PollMarker never reach the state — the
    // poll is the atomic unit, and a torn mid-poll tail (even one
    // full of garbage bytes) costs exactly that uncommitted poll.
    LiveRun live = buildLiveRun(4);
    online::RecoveryInfo clean_info;
    online::DurableServingState clean = online::replayRecoveredLog(
        asLog(live.frames), online::DetectorConfig{}, {}, &clean_info);
    ASSERT_TRUE(clean_info.ok) << clean_info.error;

    std::vector<durable::WalFrame> torn = live.frames;
    torn.push_back({durable::RecordKind::SpanBatch,
                    "garbage never decoded", 0});
    torn.push_back({durable::RecordKind::Eviction, "\x01", 0});
    online::RecoveryInfo info;
    online::DurableServingState state = online::replayRecoveredLog(
        asLog(torn), online::DetectorConfig{}, {}, &info);
    ASSERT_TRUE(info.ok) << info.error;
    EXPECT_EQ(info.discardedTailFrames, 2u);
    EXPECT_EQ(info.pollsReplayed, 4u);
    EXPECT_EQ(online::servingStateFingerprint(
                  state.store, state.detector, state.incidents,
                  state.watermarkUs, state.tracesStored,
                  state.lastRecordId),
              online::servingStateFingerprint(
                  clean.store, clean.detector, clean.incidents,
                  clean.watermarkUs, clean.tracesStored,
                  clean.lastRecordId));
}

TEST(DurableReplay, EpochRecordDrivesConfigFreeReplay)
{
    // The CLI replays logs with no config of its own: the segment's
    // Epoch record supplies it. A marker arriving before any epoch
    // (and no caller config) is a hard error, not a guess.
    LiveRun live = buildLiveRun(3);

    std::vector<durable::WalFrame> with_epoch = live.frames;
    with_epoch.insert(
        with_epoch.begin(),
        {durable::RecordKind::Epoch,
         online::encodeEpochPayload(online::DetectorConfig{}), 0});
    online::RecoveryInfo info;
    online::DurableServingState state = online::replayRecoveredLog(
        asLog(with_epoch), std::nullopt, {}, &info);
    ASSERT_TRUE(info.ok) << info.error;
    EXPECT_EQ(state.store.contentFingerprint(),
              live.store.contentFingerprint());

    online::RecoveryInfo bare;
    online::replayRecoveredLog(asLog(live.frames), std::nullopt, {},
                               &bare);
    EXPECT_FALSE(bare.ok);
    EXPECT_NE(bare.error.find("epoch"), std::string::npos)
        << bare.error;
}

TEST(DurableReplay, SnapshotPayloadRoundTripExact)
{
    LiveRun live = buildLiveRun(5);
    online::RecoveryInfo info;
    online::DurableServingState state = online::replayRecoveredLog(
        asLog(live.frames), online::DetectorConfig{}, {}, &info);
    ASSERT_TRUE(info.ok) << info.error;

    std::string payload = online::encodeSnapshotPayload(state);
    online::DurableServingState back;
    std::string err;
    ASSERT_TRUE(online::decodeSnapshotPayload(payload, &back, &err))
        << err;
    EXPECT_EQ(online::servingStateFingerprint(
                  back.store, back.detector, back.incidents,
                  back.watermarkUs, back.tracesStored,
                  back.lastRecordId),
              online::servingStateFingerprint(
                  state.store, state.detector, state.incidents,
                  state.watermarkUs, state.tracesStored,
                  state.lastRecordId));

    // The payload's own guarantees (the file-level CRC in snapshot.cc
    // guards raw rot): a length mismatch fails structurally, and a
    // corrupted store section trips the embedded content fingerprint.
    online::DurableServingState out;
    err.clear();
    EXPECT_FALSE(online::decodeSnapshotPayload(
        std::string_view(payload).substr(0, payload.size() - 1), &out,
        &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(
        online::decodeSnapshotPayload(payload + "x", &out, &err));
    EXPECT_FALSE(err.empty());

    size_t at = payload.find("svc-3"); // an interned store string
    ASSERT_NE(at, std::string::npos);
    std::string mutated = payload;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x10);
    err.clear();
    EXPECT_FALSE(online::decodeSnapshotPayload(mutated, &out, &err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}
