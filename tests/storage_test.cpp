// Unit tests for the embedded trace store and operator pipeline.

#include <gtest/gtest.h>

#include "storage/trace_store.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::storage;
using sleuth::testing::makeSpan;

namespace {

trace::Trace
makeTrace(const std::string &id, int64_t start, int64_t dur,
          const std::string &svc, bool error = false)
{
    trace::Trace t;
    t.traceId = id;
    t.spans.push_back(makeSpan(
        "root", "", svc, "op", start, start + dur,
        trace::SpanKind::Server,
        error ? trace::StatusCode::Error : trace::StatusCode::Ok));
    return t;
}

Record
record(const std::string &id, int64_t start, int64_t dur,
      const std::string &svc, int64_t slo = 0, bool error = false)
{
    Record r;
    r.columns = trace::ColumnarTrace(
        makeTrace(id, start, dur, svc, error),
        std::make_shared<trace::StringInterner>());
    r.sloUs = slo;
    return r;
}

} // namespace

TEST(Record, StartAndAnomalyFlags)
{
    Record normal = record("a", 100, 50, "svc", 1000);
    EXPECT_EQ(normal.startUs(), 100);
    EXPECT_FALSE(normal.anomalous());

    Record slow = record("b", 0, 5000, "svc", 1000);
    EXPECT_TRUE(slow.anomalous());

    Record err = record("c", 0, 10, "svc", 1000, true);
    EXPECT_TRUE(err.anomalous());

    Record no_slo = record("d", 0, 5000, "svc", 0);
    EXPECT_FALSE(no_slo.anomalous());
}

TEST(Record, MaterializedTraceRoundTripsExactly)
{
    trace::Trace original = makeTrace("rt", 5, 95, "svc-x", true);
    original.spans.push_back(makeSpan("child", "root", "svc-y", "op2",
                                      10, 40, trace::SpanKind::Client,
                                      trace::StatusCode::Ok));
    Record r;
    r.columns = trace::ColumnarTrace(
        original, std::make_shared<trace::StringInterner>());
    trace::Trace back = r.trace();
    ASSERT_EQ(back.spans.size(), original.spans.size());
    EXPECT_EQ(back.traceId, original.traceId);
    for (size_t i = 0; i < back.spans.size(); ++i) {
        EXPECT_EQ(back.spans[i].spanId, original.spans[i].spanId);
        EXPECT_EQ(back.spans[i].parentSpanId,
                  original.spans[i].parentSpanId);
        EXPECT_EQ(back.spans[i].service, original.spans[i].service);
        EXPECT_EQ(back.spans[i].name, original.spans[i].name);
        EXPECT_EQ(back.spans[i].kind, original.spans[i].kind);
        EXPECT_EQ(back.spans[i].status, original.spans[i].status);
        EXPECT_EQ(back.spans[i].startUs, original.spans[i].startUs);
        EXPECT_EQ(back.spans[i].endUs, original.spans[i].endUs);
    }
}

TEST(TraceStore, InsertAndAccess)
{
    TraceStore store;
    size_t id = store.insert(makeTrace("a", 0, 10, "svc"));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.at(id).traceId(), "a");
    EXPECT_EQ(store.totalSpans(), 1u);
}

TEST(TraceStore, TimeWindowQuery)
{
    TraceStore store;
    for (int64_t t = 0; t < 10; ++t)
        store.insert(makeTrace("t" + std::to_string(t), t * 100, 10,
                               "svc"));
    Query q;
    q.minStartUs = 300;
    q.maxStartUs = 600;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0]->traceId(), "t3");
    EXPECT_EQ(hits[2]->traceId(), "t5");
}

TEST(TraceStore, TimeWindowIsHalfOpenAtExactBoundaries)
{
    // Pins the [minStartUs, maxStartUs) contract with records sitting
    // exactly on both boundaries, through the time index and through
    // the service-postings path (which applies the same predicate).
    TraceStore store;
    store.insert(makeTrace("before", 100, 10, "svc"));
    store.insert(makeTrace("at-min", 200, 10, "svc"));
    store.insert(makeTrace("inside", 300, 10, "svc"));
    store.insert(makeTrace("at-max", 400, 10, "svc"));
    store.insert(makeTrace("after", 500, 10, "svc"));

    Query q;
    q.minStartUs = 200;
    q.maxStartUs = 400;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->traceId(), "at-min");  // min boundary included
    EXPECT_EQ(hits[1]->traceId(), "inside");  // max boundary excluded

    q.service = "svc";  // same window through the postings path
    hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->traceId(), "at-min");
    EXPECT_EQ(hits[1]->traceId(), "inside");

    // An empty half-open window selects nothing, even with a record
    // exactly at the shared boundary.
    Query empty;
    empty.minStartUs = 300;
    empty.maxStartUs = 300;
    EXPECT_TRUE(store.query(empty).empty());

    // A one-tick window selects exactly the boundary record.
    Query tick;
    tick.minStartUs = 300;
    tick.maxStartUs = 301;
    auto one = store.query(tick);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0]->traceId(), "inside");

    // Only one bound set: each side stays half-open independently.
    Query minOnly;
    minOnly.minStartUs = 400;
    ASSERT_EQ(store.query(minOnly).size(), 2u);
    Query maxOnly;
    maxOnly.maxStartUs = 200;
    ASSERT_EQ(store.query(maxOnly).size(), 1u);
    EXPECT_EQ(store.query(maxOnly)[0]->traceId(), "before");
}

TEST(TraceStore, ServiceQueryUsesPostings)
{
    TraceStore store;
    store.insert(makeTrace("a", 0, 10, "alpha"));
    store.insert(makeTrace("b", 10, 10, "beta"));
    store.insert(makeTrace("c", 20, 10, "alpha"));
    Query q;
    q.service = "alpha";
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->traceId(), "a");
    EXPECT_EQ(hits[1]->traceId(), "c");

    q.service = "missing";
    EXPECT_TRUE(store.query(q).empty());
}

TEST(TraceStore, AnomalousFilterAndLimit)
{
    TraceStore store;
    store.insert(makeTrace("ok1", 0, 100, "svc"), 1000);
    store.insert(makeTrace("bad1", 10, 5000, "svc"), 1000);
    store.insert(makeTrace("ok2", 20, 100, "svc"), 1000);
    store.insert(makeTrace("bad2", 30, 9000, "svc"), 1000);
    Query q;
    q.onlyAnomalous = true;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    q.limit = 1;
    EXPECT_EQ(store.query(q).size(), 1u);
}

TEST(Dataset, FilterMapGroupAggregate)
{
    TraceStore store;
    store.insert(makeTrace("a", 0, 100, "alpha"));
    store.insert(makeTrace("b", 10, 200, "beta"));
    store.insert(makeTrace("c", 20, 300, "alpha"));

    auto slow = store.scan().filter(
        [](const Record *const &r) {
            return r->columns.rootDurationUs() >= 200;
        });
    EXPECT_EQ(slow.size(), 2u);

    auto durations = slow.map<int64_t>(
        [](const Record *const &r) {
            return r->columns.rootDurationUs();
        });
    int64_t total = durations.aggregate<int64_t>(
        0, [](int64_t acc, const int64_t &d) { return acc + d; });
    EXPECT_EQ(total, 500);

    auto by_service = store.scan().groupBy<std::string>(
        [](const Record *const &r) {
            return r->columns.interner().name(
                r->columns.columns().serviceId(0));
        });
    EXPECT_EQ(by_service.size(), 2u);
    EXPECT_EQ(by_service["alpha"].size(), 2u);
}

TEST(TraceStore, FlowIndexFilter)
{
    TraceStore store;
    store.insert(makeTrace("a", 0, 10, "svc"), 0, /*flowIndex=*/0);
    store.insert(makeTrace("b", 10, 10, "svc"), 0, /*flowIndex=*/1);
    store.insert(makeTrace("c", 20, 10, "svc"), 0, /*flowIndex=*/1);

    Query q;
    q.flowIndex = 1;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->traceId(), "b");
    EXPECT_EQ(hits[1]->traceId(), "c");

    q.flowIndex = 9;
    EXPECT_TRUE(store.query(q).empty());
}

// Regression: combined time-window + service + limit must return the
// FIRST matching records in start-time order (the limit applies after
// all predicates, not to the raw index scan).
TEST(TraceStore, CombinedWindowServiceLimitOrdering)
{
    TraceStore store;
    store.insert(makeTrace("early-other", 0, 10, "other"));
    store.insert(makeTrace("m1", 10, 10, "match"));
    store.insert(makeTrace("m2", 20, 10, "match"));
    store.insert(makeTrace("late-match", 500, 10, "match"));
    store.insert(makeTrace("m3", 30, 10, "match"));

    Query q;
    q.minStartUs = 5;
    q.maxStartUs = 100;
    q.service = "match";
    q.limit = 2;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->traceId(), "m1");
    EXPECT_EQ(hits[1]->traceId(), "m2");

    // Same query unlimited: ordering is by start time throughout.
    q.limit = 0;
    hits = store.query(q);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[2]->traceId(), "m3");
}

TEST(TraceStore, RetentionEvictsOldestBySpanBudget)
{
    TraceStore store(RetentionConfig{/*maxSpans=*/3, /*maxRecords=*/0});
    store.insert(makeTrace("a", 0, 10, "svc"));
    store.insert(makeTrace("b", 10, 10, "svc"));
    store.insert(makeTrace("c", 20, 10, "svc"));
    EXPECT_EQ(store.size(), 3u);
    // A fourth single-span record exceeds the budget: "a" goes.
    store.insert(makeTrace("d", 30, 10, "svc"));
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.totalSpans(), 3u);
    EXPECT_FALSE(store.contains(0));
    EXPECT_TRUE(store.contains(3));
    EXPECT_EQ(store.evictions().records, 1u);
    EXPECT_EQ(store.evictions().spans, 1u);
    // Eviction cleans the indexes: queries no longer see "a".
    Query q;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0]->traceId(), "b");
    Query by_service;
    by_service.service = "svc";
    EXPECT_EQ(store.query(by_service).size(), 3u);
}

TEST(TraceStore, RetentionByRecordCountAndNewestProtected)
{
    TraceStore store;
    store.insert(makeTrace("a", 0, 10, "svc"));
    store.insert(makeTrace("b", 10, 10, "svc"));
    store.insert(makeTrace("c", 20, 10, "svc"));
    // Installing a policy applies it immediately.
    store.setRetention(RetentionConfig{0, /*maxRecords=*/2});
    EXPECT_EQ(store.size(), 2u);
    EXPECT_FALSE(store.contains(0));

    // Even a budget of one record admits the record being inserted.
    store.setRetention(RetentionConfig{0, 1});
    size_t id = store.insert(makeTrace("huge", 100, 10, "svc"));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.contains(id));
    EXPECT_EQ(store.at(id).traceId(), "huge");
}

TEST(TraceStore, IdsStableAcrossEviction)
{
    TraceStore store(RetentionConfig{0, 2});
    size_t a = store.insert(makeTrace("a", 0, 10, "svc"));
    size_t b = store.insert(makeTrace("b", 10, 10, "svc"));
    size_t c = store.insert(makeTrace("c", 20, 10, "svc"));
    EXPECT_FALSE(store.contains(a));
    // Surviving ids keep addressing the same records; ids never reuse.
    EXPECT_EQ(store.at(b).traceId(), "b");
    EXPECT_EQ(store.at(c).traceId(), "c");
    size_t d = store.insert(makeTrace("d", 30, 10, "svc"));
    EXPECT_EQ(d, 3u);
}
