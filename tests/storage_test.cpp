// Unit tests for the embedded trace store and operator pipeline.

#include <gtest/gtest.h>

#include "storage/trace_store.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::storage;
using sleuth::testing::makeSpan;

namespace {

Record
record(const std::string &id, int64_t start, int64_t dur,
       const std::string &svc, int64_t slo = 0, bool error = false)
{
    Record r;
    r.trace.traceId = id;
    r.trace.spans.push_back(makeSpan(
        "root", "", svc, "op", start, start + dur,
        trace::SpanKind::Server,
        error ? trace::StatusCode::Error : trace::StatusCode::Ok));
    r.sloUs = slo;
    return r;
}

} // namespace

TEST(Record, StartAndAnomalyFlags)
{
    Record normal = record("a", 100, 50, "svc", 1000);
    EXPECT_EQ(normal.startUs(), 100);
    EXPECT_FALSE(normal.anomalous());

    Record slow = record("b", 0, 5000, "svc", 1000);
    EXPECT_TRUE(slow.anomalous());

    Record err = record("c", 0, 10, "svc", 1000, true);
    EXPECT_TRUE(err.anomalous());

    Record no_slo = record("d", 0, 5000, "svc", 0);
    EXPECT_FALSE(no_slo.anomalous());
}

TEST(TraceStore, InsertAndAccess)
{
    TraceStore store;
    size_t id = store.insert(record("a", 0, 10, "svc"));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.at(id).trace.traceId, "a");
    EXPECT_EQ(store.totalSpans(), 1u);
}

TEST(TraceStore, TimeWindowQuery)
{
    TraceStore store;
    for (int64_t t = 0; t < 10; ++t)
        store.insert(record("t" + std::to_string(t), t * 100, 10,
                            "svc"));
    Query q;
    q.minStartUs = 300;
    q.maxStartUs = 600;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0]->trace.traceId, "t3");
    EXPECT_EQ(hits[2]->trace.traceId, "t5");
}

TEST(TraceStore, ServiceQueryUsesPostings)
{
    TraceStore store;
    store.insert(record("a", 0, 10, "alpha"));
    store.insert(record("b", 10, 10, "beta"));
    store.insert(record("c", 20, 10, "alpha"));
    Query q;
    q.service = "alpha";
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->trace.traceId, "a");
    EXPECT_EQ(hits[1]->trace.traceId, "c");

    q.service = "missing";
    EXPECT_TRUE(store.query(q).empty());
}

TEST(TraceStore, AnomalousFilterAndLimit)
{
    TraceStore store;
    store.insert(record("ok1", 0, 100, "svc", 1000));
    store.insert(record("bad1", 10, 5000, "svc", 1000));
    store.insert(record("ok2", 20, 100, "svc", 1000));
    store.insert(record("bad2", 30, 9000, "svc", 1000));
    Query q;
    q.onlyAnomalous = true;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    q.limit = 1;
    EXPECT_EQ(store.query(q).size(), 1u);
}

TEST(Dataset, FilterMapGroupAggregate)
{
    TraceStore store;
    store.insert(record("a", 0, 100, "alpha"));
    store.insert(record("b", 10, 200, "beta"));
    store.insert(record("c", 20, 300, "alpha"));

    auto slow = store.scan().filter(
        [](const Record *const &r) {
            return r->trace.rootDurationUs() >= 200;
        });
    EXPECT_EQ(slow.size(), 2u);

    auto durations = slow.map<int64_t>(
        [](const Record *const &r) {
            return r->trace.rootDurationUs();
        });
    int64_t total = durations.aggregate<int64_t>(
        0, [](int64_t acc, const int64_t &d) { return acc + d; });
    EXPECT_EQ(total, 500);

    auto by_service = store.scan().groupBy<std::string>(
        [](const Record *const &r) {
            return r->trace.spans[0].service;
        });
    EXPECT_EQ(by_service.size(), 2u);
    EXPECT_EQ(by_service["alpha"].size(), 2u);
}

TEST(TraceStore, FlowIndexFilter)
{
    TraceStore store;
    Record a = record("a", 0, 10, "svc");
    a.flowIndex = 0;
    Record b = record("b", 10, 10, "svc");
    b.flowIndex = 1;
    Record c = record("c", 20, 10, "svc");
    c.flowIndex = 1;
    store.insert(std::move(a));
    store.insert(std::move(b));
    store.insert(std::move(c));

    Query q;
    q.flowIndex = 1;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->trace.traceId, "b");
    EXPECT_EQ(hits[1]->trace.traceId, "c");

    q.flowIndex = 9;
    EXPECT_TRUE(store.query(q).empty());
}

// Regression: combined time-window + service + limit must return the
// FIRST matching records in start-time order (the limit applies after
// all predicates, not to the raw index scan).
TEST(TraceStore, CombinedWindowServiceLimitOrdering)
{
    TraceStore store;
    store.insert(record("early-other", 0, 10, "other"));
    store.insert(record("m1", 10, 10, "match"));
    store.insert(record("m2", 20, 10, "match"));
    store.insert(record("late-match", 500, 10, "match"));
    store.insert(record("m3", 30, 10, "match"));

    Query q;
    q.minStartUs = 5;
    q.maxStartUs = 100;
    q.service = "match";
    q.limit = 2;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->trace.traceId, "m1");
    EXPECT_EQ(hits[1]->trace.traceId, "m2");

    // Same query unlimited: ordering is by start time throughout.
    q.limit = 0;
    hits = store.query(q);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[2]->trace.traceId, "m3");
}

TEST(TraceStore, RetentionEvictsOldestBySpanBudget)
{
    TraceStore store(RetentionConfig{/*maxSpans=*/3, /*maxRecords=*/0});
    store.insert(record("a", 0, 10, "svc"));
    store.insert(record("b", 10, 10, "svc"));
    store.insert(record("c", 20, 10, "svc"));
    EXPECT_EQ(store.size(), 3u);
    // A fourth single-span record exceeds the budget: "a" goes.
    store.insert(record("d", 30, 10, "svc"));
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.totalSpans(), 3u);
    EXPECT_FALSE(store.contains(0));
    EXPECT_TRUE(store.contains(3));
    EXPECT_EQ(store.evictions().records, 1u);
    EXPECT_EQ(store.evictions().spans, 1u);
    // Eviction cleans the indexes: queries no longer see "a".
    Query q;
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0]->trace.traceId, "b");
    Query by_service;
    by_service.service = "svc";
    EXPECT_EQ(store.query(by_service).size(), 3u);
}

TEST(TraceStore, RetentionByRecordCountAndNewestProtected)
{
    TraceStore store;
    store.insert(record("a", 0, 10, "svc"));
    store.insert(record("b", 10, 10, "svc"));
    store.insert(record("c", 20, 10, "svc"));
    // Installing a policy applies it immediately.
    store.setRetention(RetentionConfig{0, /*maxRecords=*/2});
    EXPECT_EQ(store.size(), 2u);
    EXPECT_FALSE(store.contains(0));

    // Even a budget of one record admits the record being inserted.
    store.setRetention(RetentionConfig{0, 1});
    size_t id = store.insert(record("huge", 100, 10, "svc"));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.contains(id));
    EXPECT_EQ(store.at(id).trace.traceId, "huge");
}

TEST(TraceStore, IdsStableAcrossEviction)
{
    TraceStore store(RetentionConfig{0, 2});
    size_t a = store.insert(record("a", 0, 10, "svc"));
    size_t b = store.insert(record("b", 10, 10, "svc"));
    size_t c = store.insert(record("c", 20, 10, "svc"));
    EXPECT_FALSE(store.contains(a));
    // Surviving ids keep addressing the same records; ids never reuse.
    EXPECT_EQ(store.at(b).trace.traceId, "b");
    EXPECT_EQ(store.at(c).trace.traceId, "c");
    size_t d = store.insert(record("d", 30, 10, "svc"));
    EXPECT_EQ(d, 3u);
}
