// StringInterner: id stability, density, and concurrent access.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "trace/interner.h"

using sleuth::trace::StringInterner;

TEST(StringInterner, IdsAreDenseAndFirstInternOrdered)
{
    StringInterner in;
    EXPECT_EQ(in.intern("alpha"), 0u);
    EXPECT_EQ(in.intern("beta"), 1u);
    EXPECT_EQ(in.intern("gamma"), 2u);
    // Re-interning returns the original id, never a new one.
    EXPECT_EQ(in.intern("beta"), 1u);
    EXPECT_EQ(in.intern("alpha"), 0u);
    EXPECT_EQ(in.size(), 3u);
    EXPECT_EQ(in.name(0), "alpha");
    EXPECT_EQ(in.name(1), "beta");
    EXPECT_EQ(in.name(2), "gamma");
}

TEST(StringInterner, FindDoesNotIntern)
{
    StringInterner in;
    in.intern("present");
    EXPECT_FALSE(in.find("absent").has_value());
    EXPECT_EQ(in.size(), 1u);
    auto id = in.find("present");
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, 0u);
}

TEST(StringInterner, EmptyStringIsAValidEntry)
{
    StringInterner in;
    uint32_t id = in.intern("");
    EXPECT_EQ(in.name(id), "");
    EXPECT_EQ(in.intern(""), id);
}

TEST(StringInterner, NameReferencesStayStableAcrossGrowth)
{
    // Interned name() references must survive arbitrary later growth
    // (the columnar store hands out string_views of them).
    StringInterner in;
    const std::string &first = in.name(in.intern("first-service"));
    const char *data = first.data();
    for (int i = 0; i < 10000; ++i)
        in.intern("svc-" + std::to_string(i));
    EXPECT_EQ(first, "first-service");
    EXPECT_EQ(first.data(), data);
}

TEST(StringInterner, MemoryBytesGrowsWithContent)
{
    StringInterner in;
    size_t empty = in.memoryBytes();
    for (int i = 0; i < 100; ++i)
        in.intern("service-name-" + std::to_string(i));
    EXPECT_GT(in.memoryBytes(), empty);
}

TEST(StringInterner, ConcurrentInternAndLookupAgree)
{
    // Hammer the same vocabulary from several threads: every thread
    // must observe one consistent id per string (exercised under TSan
    // by tools/run_sanitized_tests.sh).
    StringInterner in;
    const size_t kThreads = 4;
    const size_t kVocab = 64;
    std::vector<std::vector<uint32_t>> ids(
        kThreads, std::vector<uint32_t>(kVocab, 0));
    std::vector<std::thread> workers;
    for (size_t t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            for (size_t round = 0; round < 50; ++round) {
                for (size_t v = 0; v < kVocab; ++v) {
                    std::string word = "word-" + std::to_string(v);
                    uint32_t id = in.intern(word);
                    ids[t][v] = id;
                    auto found = in.find(word);
                    ASSERT_TRUE(found.has_value());
                    ASSERT_EQ(*found, id);
                    ASSERT_EQ(in.name(id), word);
                }
            }
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(in.size(), kVocab);
    for (size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t], ids[0]);
}
