// Unit tests for util::ThreadPool: full index coverage, static
// chunk/worker assignment, inline single-thread execution, and reuse
// across successive parallelFor calls.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

using sleuth::util::ThreadPool;

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        const size_t n = 1000;
        // One slot per index: disjoint writes, no synchronization
        // needed; a double write would show as touched[i] != 1.
        std::vector<int> touched(n, 0);
        pool.parallelFor(n, [&](size_t i, size_t worker) {
            ASSERT_LT(i, n);
            ASSERT_LT(worker, threads);
            ++touched[i];
        });
        EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0),
                  static_cast<int>(n));
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(touched[i], 1) << "index " << i;
    }
}

TEST(ThreadPool, StaticPartitionIsContiguousPerWorker)
{
    ThreadPool pool(4);
    const size_t n = 103;
    std::vector<size_t> owner(n, 99);
    pool.parallelFor(n, [&](size_t i, size_t worker) {
        owner[i] = worker;
    });
    // Worker w owns exactly the contiguous block [w*n/4, (w+1)*n/4).
    for (size_t w = 0; w < 4; ++w)
        for (size_t i = w * n / 4; i < (w + 1) * n / 4; ++i)
            EXPECT_EQ(owner[i], w) << "index " << i;
}

TEST(ThreadPool, ZeroAndTinyRanges)
{
    ThreadPool pool(8);
    int calls = 0;
    std::atomic<int> atomic_calls{0};
    pool.parallelFor(0, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // n == 1 runs inline on the calling thread (worker 0).
    pool.parallelFor(1, [&](size_t i, size_t worker) {
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(worker, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
    // Fewer items than workers: every index still runs exactly once.
    pool.parallelFor(3, [&](size_t, size_t) { ++atomic_calls; });
    EXPECT_EQ(atomic_calls.load(), 3);
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(4);
    const size_t n = 64;
    std::vector<long> acc(n, 0);
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(n, [&](size_t i, size_t) { acc[i] += i; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(acc[i], 50 * static_cast<long>(i));
}

TEST(ThreadPool, SingleThreadPoolSpawnsInline)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(16, [&](size_t, size_t worker) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}
