// MpscRing unit suite: FIFO order, wraparound re-arming, full-ring
// refusal, and a multi-producer stress drained concurrently — the
// latter is the TSan target tools/run_sanitized_tests.sh hammers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "util/mpsc_ring.h"

using namespace sleuth;

namespace {

TEST(CeilPow2, RoundsUpWithFloorOfTwo)
{
    EXPECT_EQ(util::ceilPow2(0), 2u);
    EXPECT_EQ(util::ceilPow2(1), 2u);
    EXPECT_EQ(util::ceilPow2(2), 2u);
    EXPECT_EQ(util::ceilPow2(3), 4u);
    EXPECT_EQ(util::ceilPow2(4), 4u);
    EXPECT_EQ(util::ceilPow2(5), 8u);
    EXPECT_EQ(util::ceilPow2(1023), 1024u);
    EXPECT_EQ(util::ceilPow2(1024), 1024u);
}

TEST(MpscRing, SingleProducerIsFifo)
{
    util::MpscRing<int> ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ring.tryPush(int{i}));
    EXPECT_EQ(ring.sizeApprox(), 5u);
    std::vector<int> out;
    EXPECT_EQ(ring.drainInto(&out), 5u);
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(ring.sizeApprox(), 0u);
}

TEST(MpscRing, FullRingRefusesUntilDrained)
{
    util::MpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(int{i}));
    // Full: the payload is refused, not silently overwritten.
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_FALSE(ring.tryPush(100));
    EXPECT_EQ(ring.sizeApprox(), 4u);
    std::vector<int> out;
    EXPECT_EQ(ring.drainInto(&out), 4u);
    // Drained slots are re-armed; pushes succeed again.
    EXPECT_TRUE(ring.tryPush(7));
    out.clear();
    EXPECT_EQ(ring.drainInto(&out), 1u);
    EXPECT_EQ(out, std::vector<int>{7});
}

TEST(MpscRing, WrapsAroundManyLaps)
{
    util::MpscRing<int> ring(4);
    std::vector<int> out;
    int next = 0;
    // 100 laps of push-3/drain-3 crosses the slot array repeatedly;
    // any re-arming bug shows up as a stuck or reordered lap.
    for (int lap = 0; lap < 100; ++lap) {
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(ring.tryPush(int{next + i}));
        size_t before = out.size();
        ASSERT_EQ(ring.drainInto(&out), 3u);
        for (int i = 0; i < 3; ++i)
            ASSERT_EQ(out[before + static_cast<size_t>(i)], next + i);
        next += 3;
    }
}

TEST(MpscRing, MoveOnlyPayloadsMoveThrough)
{
    util::MpscRing<std::unique_ptr<int>> ring(4);
    ASSERT_TRUE(ring.tryPush(std::make_unique<int>(42)));
    std::vector<std::unique_ptr<int>> out;
    ASSERT_EQ(ring.drainInto(&out), 1u);
    ASSERT_NE(out[0], nullptr);
    EXPECT_EQ(*out[0], 42);
}

TEST(MpscRing, ConcurrentProducersLoseNothing)
{
    // The sanitizer hammer: P producers push disjoint tagged ranges
    // while the consumer drains concurrently (no barrier between push
    // and drain). Every push that reported success must come out
    // exactly once, each producer's own stream in FIFO order.
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 20'000;
    util::MpscRing<uint64_t> ring(256);
    std::atomic<size_t> accepted{0};
    std::atomic<int> live{kProducers};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                uint64_t tagged =
                    (static_cast<uint64_t>(p) << 32) |
                    static_cast<uint64_t>(i);
                // Spin on a full ring: the consumer is draining, so
                // a slot frees up soon; the accepted count stays a
                // deterministic kProducers * kPerProducer.
                while (!ring.tryPush(uint64_t{tagged}))
                    std::this_thread::yield();
                accepted.fetch_add(1, std::memory_order_relaxed);
            }
            live.fetch_sub(1, std::memory_order_release);
        });

    std::vector<uint64_t> got;
    while (live.load(std::memory_order_acquire) > 0 ||
           ring.sizeApprox() > 0)
        if (ring.drainInto(&got) == 0)
            std::this_thread::yield();
    ring.drainInto(&got);
    for (std::thread &t : producers)
        t.join();

    ASSERT_EQ(accepted.load(), static_cast<size_t>(kProducers) *
                                   kPerProducer);
    ASSERT_EQ(got.size(), accepted.load());
    std::vector<int> next(kProducers, 0);
    std::set<uint64_t> seen;
    for (uint64_t v : got) {
        int p = static_cast<int>(v >> 32);
        int i = static_cast<int>(v & 0xffffffffu);
        ASSERT_TRUE(seen.insert(v).second) << "duplicate delivery";
        // Per-producer FIFO: values from one producer appear in the
        // order that producer pushed them.
        ASSERT_EQ(i, next[p]) << "producer " << p << " reordered";
        ++next[p];
    }
}

TEST(MpscRing, FullRingUnderContentionAdmitsExactlyCapacity)
{
    // With no consumer, racing producers collectively get exactly
    // `capacity` successful pushes — the ring-full drop count the
    // online service reports is deterministic even though the victim
    // set is not.
    constexpr int kProducers = 8;
    constexpr int kPerProducer = 500;
    util::MpscRing<int> ring(64);
    std::atomic<size_t> ok{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&] {
            for (int i = 0; i < kPerProducer; ++i)
                if (ring.tryPush(int{i}))
                    ok.fetch_add(1, std::memory_order_relaxed);
        });
    for (std::thread &t : producers)
        t.join();
    EXPECT_EQ(ok.load(), ring.capacity());
    std::vector<int> out;
    EXPECT_EQ(ring.drainInto(&out), ring.capacity());
}

} // namespace
