// Unit and property tests for the weighted-Jaccard trace distance
// (Eq. 1) and the Zhang-Shasha tree edit distance baseline.

#include <gtest/gtest.h>

#include "distance/trace_distance.h"
#include "distance/tree_edit_distance.h"
#include "test_helpers.h"
#include "util/rng.h"

using namespace sleuth;
using namespace sleuth::distance;
using sleuth::testing::figure2Trace;
using sleuth::testing::makeSpan;

namespace {

trace::Trace
chainTrace(const std::string &id, std::vector<int64_t> durations,
           bool leaf_error = false)
{
    trace::Trace t;
    t.traceId = id;
    int64_t start = 0;
    std::string parent;
    for (size_t i = 0; i < durations.size(); ++i) {
        std::string sid = "s" + std::to_string(i);
        auto s = makeSpan(sid, parent, "svc" + std::to_string(i), "op",
                          start, start + durations[i]);
        if (leaf_error && i + 1 == durations.size())
            s.status = trace::StatusCode::Error;
        t.spans.push_back(s);
        parent = sid;
        start += 1;
    }
    return t;
}

} // namespace

TEST(JaccardDistance, IdenticalTracesAreZero)
{
    trace::Trace a = figure2Trace();
    EXPECT_DOUBLE_EQ(traceDistance(a, a), 0.0);
}

TEST(JaccardDistance, DisjointTracesAreOne)
{
    trace::Trace a = chainTrace("a", {100, 50});
    trace::Trace b;
    b.traceId = "b";
    b.spans.push_back(makeSpan("x", "", "other", "op2", 0, 80));
    EXPECT_DOUBLE_EQ(traceDistance(a, b), 1.0);
}

TEST(JaccardDistance, SymmetricAndBounded)
{
    util::Rng rng(1);
    std::vector<trace::Trace> ts;
    for (int i = 0; i < 6; ++i) {
        std::vector<int64_t> durs;
        for (int j = 0; j <= i % 3 + 1; ++j)
            durs.push_back(rng.uniformInt(10, 1000));
        ts.push_back(chainTrace("t" + std::to_string(i), durs, i % 2));
    }
    for (const auto &a : ts) {
        for (const auto &b : ts) {
            double dab = traceDistance(a, b);
            double dba = traceDistance(b, a);
            EXPECT_DOUBLE_EQ(dab, dba);
            EXPECT_GE(dab, 0.0);
            EXPECT_LE(dab, 1.0);
        }
    }
}

TEST(JaccardDistance, SensitiveToDurationChange)
{
    trace::Trace normal = chainTrace("n", {100, 50, 20});
    trace::Trace slow = chainTrace("s", {100, 50, 2000});
    trace::Trace slightly = chainTrace("s2", {100, 50, 25});
    double d_big = traceDistance(normal, slow);
    double d_small = traceDistance(normal, slightly);
    EXPECT_GT(d_big, d_small);
    EXPECT_GT(d_big, 0.5);  // dominated by the slow span's weight
}

TEST(JaccardDistance, SensitiveToErrorStatus)
{
    trace::Trace ok = chainTrace("ok", {100, 50, 20}, false);
    trace::Trace err = chainTrace("err", {100, 50, 20}, true);
    EXPECT_GT(traceDistance(ok, err), 0.0);
}

TEST(JaccardDistance, CallPathDistinguishesSameSpanNames)
{
    // The same (service, name) span under different parents must count
    // as different identifiers thanks to the ancestor component.
    trace::Trace a;
    a.traceId = "a";
    a.spans.push_back(makeSpan("r", "", "fe", "handle", 0, 100));
    a.spans.push_back(makeSpan("m", "r", "mid1", "route", 5, 90));
    a.spans.push_back(makeSpan("x", "m", "db", "get", 10, 50));

    trace::Trace b;
    b.traceId = "b";
    b.spans.push_back(makeSpan("r", "", "fe", "handle", 0, 100));
    b.spans.push_back(makeSpan("m", "r", "mid2", "route", 5, 90));
    b.spans.push_back(makeSpan("x", "m", "db", "get", 10, 50));

    SpanSetOptions with_path;
    with_path.maxAncestorDistance = 2;
    SpanSetOptions no_path;
    no_path.maxAncestorDistance = 0;

    EXPECT_GT(traceDistance(a, b, with_path),
              traceDistance(a, b, no_path));
}

TEST(JaccardDistance, MergesRepeatedSpans)
{
    // Two identical fanout children merge into one weighted element.
    trace::Trace a;
    a.traceId = "a";
    a.spans.push_back(makeSpan("r", "", "fe", "handle", 0, 100));
    a.spans.push_back(makeSpan("c1", "r", "db", "get", 10, 30));
    a.spans.push_back(makeSpan("c2", "r", "db", "get", 40, 60));

    trace::Trace b;
    b.traceId = "b";
    b.spans.push_back(makeSpan("r", "", "fe", "handle", 0, 100));
    b.spans.push_back(makeSpan("c1", "r", "db", "get", 10, 50));

    // a's two 20us gets merge to weight 40 vs b's single 40us get:
    // identical weighted sets.
    EXPECT_DOUBLE_EQ(traceDistance(a, b), 0.0);
}

TEST(JaccardDistance, EmptySetsDistanceZero)
{
    WeightedSpanSet a, b;
    EXPECT_DOUBLE_EQ(jaccardDistance(a, b), 0.0);
}

TEST(JaccardDistance, TriangleInequalityHolsdOnSamples)
{
    // The extended Jaccard distance is a metric; spot-check the triangle
    // inequality on random chains.
    util::Rng rng(7);
    std::vector<trace::Trace> ts;
    for (int i = 0; i < 8; ++i) {
        std::vector<int64_t> durs;
        int len = static_cast<int>(rng.uniformInt(1, 4));
        for (int j = 0; j < len; ++j)
            durs.push_back(rng.uniformInt(10, 500));
        ts.push_back(chainTrace("t" + std::to_string(i), durs));
    }
    for (const auto &a : ts)
        for (const auto &b : ts)
            for (const auto &c : ts)
                EXPECT_LE(traceDistance(a, c),
                          traceDistance(a, b) + traceDistance(b, c) +
                              1e-9);
}

TEST(TreeEditDistance, IdenticalTreesZero)
{
    trace::Trace a = figure2Trace();
    EXPECT_DOUBLE_EQ(normalizedTreeEditDistance(a, a), 0.0);
}

TEST(TreeEditDistance, SingleRename)
{
    trace::Trace a = figure2Trace();
    trace::Trace b = figure2Trace();
    b.spans[1].service = "renamed";
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    EXPECT_EQ(treeEditDistance(traceToTree(a, ga), traceToTree(b, gb)),
              1);
}

TEST(TreeEditDistance, InsertionCost)
{
    trace::Trace a = figure2Trace();
    trace::Trace b = figure2Trace();
    b.spans.push_back(makeSpan("c", "p", "svc-c", "opC", 82, 95));
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    EXPECT_EQ(treeEditDistance(traceToTree(a, ga), traceToTree(b, gb)),
              1);
}

TEST(TreeEditDistance, ChildrenOrderedByStartTime)
{
    // Swapping sibling start order changes the ordered tree.
    trace::Trace a = figure2Trace();
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    LabeledTree ta = traceToTree(a, ga);
    ASSERT_EQ(ta.children[0].size(), 2u);
    const trace::Span &first =
        a.spans[static_cast<size_t>(ta.children[0][0])];
    const trace::Span &second =
        a.spans[static_cast<size_t>(ta.children[0][1])];
    EXPECT_LE(first.startUs, second.startUs);
}

TEST(TreeEditDistance, SymmetricOnRandomTraces)
{
    util::Rng rng(3);
    for (int it = 0; it < 5; ++it) {
        std::vector<int64_t> da, db;
        for (int j = 0; j < 3; ++j) {
            da.push_back(rng.uniformInt(10, 100));
            db.push_back(rng.uniformInt(10, 100));
        }
        trace::Trace a = chainTrace("a", da);
        trace::Trace b = chainTrace("b", db, true);
        EXPECT_DOUBLE_EQ(normalizedTreeEditDistance(a, b),
                         normalizedTreeEditDistance(b, a));
    }
}
