// Parameterized property tests: simulator output invariants must hold
// for every benchmark application and seed.

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "sim/simulator.h"

using namespace sleuth;

namespace {

struct Case
{
    eval::BenchmarkApp app;
    uint64_t seed;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string n = toString(info.param.app) + "_s" +
                    std::to_string(info.param.seed);
    for (char &c : n)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

} // namespace

class SimulatorProperty : public ::testing::TestWithParam<Case>
{
  protected:
    void
    SetUp() override
    {
        app_ = eval::makeApp(GetParam().app, 5);
        cluster_ = std::make_unique<sim::ClusterModel>(app_, 20,
                                                       GetParam().seed);
        simulator_ = std::make_unique<sim::Simulator>(
            app_, *cluster_,
            sim::SimParams{.seed = GetParam().seed});
    }

    synth::AppConfig app_;
    std::unique_ptr<sim::ClusterModel> cluster_;
    std::unique_ptr<sim::Simulator> simulator_;
};

TEST_P(SimulatorProperty, TracesAreWellFormed)
{
    for (int i = 0; i < 25; ++i) {
        sim::SimResult r = simulator_->simulateOne();
        trace::TraceGraph g;
        std::string err;
        ASSERT_TRUE(trace::TraceGraph::tryBuild(r.trace, &g, &err))
            << err;
        // Client+server pair per call, root server has no client.
        EXPECT_EQ(r.trace.spans.size() % 2, 1u);
    }
}

TEST_P(SimulatorProperty, ClientServerPairing)
{
    for (int i = 0; i < 15; ++i) {
        sim::SimResult r = simulator_->simulateOne();
        trace::TraceGraph g = trace::TraceGraph::build(r.trace);
        for (size_t s = 0; s < r.trace.spans.size(); ++s) {
            const trace::Span &span = r.trace.spans[s];
            if (span.kind == trace::SpanKind::Client ||
                span.kind == trace::SpanKind::Producer) {
                // Exactly one child: the matching server/consumer span
                // with the same operation name.
                const auto &kids = g.children(static_cast<int>(s));
                ASSERT_EQ(kids.size(), 1u);
                const trace::Span &server =
                    r.trace.spans[static_cast<size_t>(kids[0])];
                EXPECT_EQ(server.name, span.name);
                EXPECT_EQ(server.kind,
                          span.kind == trace::SpanKind::Client
                              ? trace::SpanKind::Server
                              : trace::SpanKind::Consumer);
            }
        }
    }
}

TEST_P(SimulatorProperty, ExclusiveWithinDuration)
{
    for (int i = 0; i < 15; ++i) {
        sim::SimResult r = simulator_->simulateOne();
        trace::TraceGraph g = trace::TraceGraph::build(r.trace);
        trace::ExclusiveMetrics m = trace::computeExclusive(r.trace, g);
        for (size_t s = 0; s < r.trace.spans.size(); ++s) {
            EXPECT_GE(m.exclusiveUs[s], 0);
            EXPECT_LE(m.exclusiveUs[s], r.trace.spans[s].durationUs());
        }
    }
}

TEST_P(SimulatorProperty, SyncServerErrorReachesClient)
{
    // A synchronous call's client span must carry at least the server
    // span's error status (plus possibly network-injected errors).
    for (int i = 0; i < 15; ++i) {
        sim::SimResult r = simulator_->simulateOne();
        trace::TraceGraph g = trace::TraceGraph::build(r.trace);
        for (size_t s = 0; s < r.trace.spans.size(); ++s) {
            const trace::Span &span = r.trace.spans[s];
            if (span.kind != trace::SpanKind::Client)
                continue;
            const trace::Span &server = r.trace.spans[
                static_cast<size_t>(g.children(
                    static_cast<int>(s))[0])];
            if (server.hasError()) {
                EXPECT_TRUE(span.hasError());
            }
        }
    }
}

TEST_P(SimulatorProperty, ResourceAttributesBelongToDeployment)
{
    std::set<std::string> containers;
    for (const chaos::Instance &inst : cluster_->allInstances())
        containers.insert(inst.container);
    for (int i = 0; i < 10; ++i) {
        sim::SimResult r = simulator_->simulateOne();
        for (const trace::Span &s : r.trace.spans)
            EXPECT_TRUE(containers.count(s.container))
                << s.container;
    }
}

TEST_P(SimulatorProperty, ServicesMatchConfig)
{
    std::set<std::string> names;
    for (const synth::ServiceConfig &s : app_.services)
        names.insert(s.name);
    for (int i = 0; i < 10; ++i) {
        sim::SimResult r = simulator_->simulateOne();
        for (const trace::Span &s : r.trace.spans)
            EXPECT_TRUE(names.count(s.service)) << s.service;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSeeds, SimulatorProperty,
    ::testing::Values(Case{eval::BenchmarkApp::SockShop, 1},
                      Case{eval::BenchmarkApp::SockShop, 2},
                      Case{eval::BenchmarkApp::SocialNet, 1},
                      Case{eval::BenchmarkApp::Syn16, 1},
                      Case{eval::BenchmarkApp::Syn16, 3},
                      Case{eval::BenchmarkApp::Syn64, 1},
                      Case{eval::BenchmarkApp::Syn256, 1}),
    caseName);
