// Unit tests for text pre-processing and the semantic hash embedder.

#include <gtest/gtest.h>

#include "embed/text_embedder.h"

using namespace sleuth::embed;

TEST(Preprocess, SplitsAndLowercases)
{
    auto t = preprocess("GetUserById");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], "get");
    EXPECT_EQ(t[3], "id");
}

TEST(Preprocess, ReplacesHexIds)
{
    auto t = preprocess("session/deadbeef0042/fetch");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], "session");
    EXPECT_EQ(t[1], "<id>");
    EXPECT_EQ(t[2], "fetch");
}

TEST(Preprocess, StripsSpecialCharacters)
{
    auto t = preprocess("POST /orders!!");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0], "post");
    EXPECT_EQ(t[1], "orders");
}

TEST(Embedder, DeterministicAndNormalized)
{
    TextEmbedder e1(32), e2(32);
    auto a = e1.embed("redis-get");
    auto b = e2.embed("redis-get");
    ASSERT_EQ(a.size(), 32u);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
    double norm = 0;
    for (double x : a)
        norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Embedder, SharedTokensAreCloserThanDisjoint)
{
    TextEmbedder e(32);
    auto redis_get = e.embed("redis-get");
    auto redis_set = e.embed("redis-set");
    auto checkout = e.embed("payment-checkout");
    double near = TextEmbedder::cosine(redis_get, redis_set);
    double far = TextEmbedder::cosine(redis_get, checkout);
    EXPECT_GT(near, 0.3);
    EXPECT_GT(near, far + 0.2);
}

TEST(Embedder, IdenticalSemanticsDifferentCasing)
{
    TextEmbedder e(32);
    auto a = e.embed("ComposePost");
    auto b = e.embed("compose_post");
    EXPECT_NEAR(TextEmbedder::cosine(a, b), 1.0, 1e-9);
}

TEST(Embedder, EmptyTextIsZeroVector)
{
    TextEmbedder e(16);
    auto v = e.embed("!!!");
    for (double x : v)
        EXPECT_DOUBLE_EQ(x, 0.0);
    EXPECT_DOUBLE_EQ(TextEmbedder::cosine(v, e.embed("abc")), 0.0);
}

TEST(Embedder, CachesDistinctStrings)
{
    TextEmbedder e(16);
    e.embed("svc-a");
    e.embed("svc-a");
    e.embed("svc-b");
    EXPECT_EQ(e.cacheSize(), 2u);
}

TEST(Embedder, HexIdsCollapseToSameEmbedding)
{
    // Two operations differing only in a request ID embed identically,
    // which is what lets the model generalize across requests.
    TextEmbedder e(32);
    auto a = e.embed("fetch/0a1b2c3d4e");
    auto b = e.embed("fetch/9f8e7d6c5b");
    EXPECT_NEAR(TextEmbedder::cosine(a, b), 1.0, 1e-9);
}

TEST(Embedder, DifferentDimensions)
{
    TextEmbedder small(8), big(64);
    EXPECT_EQ(small.embed("x").size(), 8u);
    EXPECT_EQ(big.embed("x").size(), 64u);
}
