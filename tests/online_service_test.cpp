// OnlineService end to end: incident lifecycle over a simulated live
// load, the determinism contract under 1/2/8 ingest threads, the
// snapshot/batch differential, and bounded memory under retention.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "online/live_source.h"
#include "online/service.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "util/rng.h"

using namespace sleuth;

namespace {

/** Shared fixture: app + deployment + trained model (built once). */
struct World
{
    synth::AppConfig app;
    sim::ClusterModel cluster;
    eval::SleuthAdapter adapter;
    chaos::FaultSchedule schedule;

    static eval::SleuthAdapter::Config
    adapterConfig()
    {
        eval::SleuthAdapter::Config cfg;
        cfg.train.epochs = 2;
        return cfg;
    }

    World() : app(synth::generateApp(synth::syntheticParams(16, 5))),
              cluster(app, 8, 5), adapter(adapterConfig())
    {
        sim::Simulator::calibrateSlos(app, cluster, 200, 99.0, 5);
        sim::Simulator warmup(app, cluster, {.seed = 0x9a17});
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 200; ++i)
            corpus.push_back(warmup.simulateOne().trace);
        adapter.fit(corpus);

        // healthy [0, 0.6s) -> faulty [0.6s, 1.6s) -> healthy.
        util::Rng chaos_rng(0xc4a05);
        chaos::FaultPlan plan = chaos::planFixedFaults(
            cluster.allInstances(), 2, chaos::FaultScope::Container, {},
            chaos_rng);
        schedule.phases.push_back({0, {}});
        schedule.phases.push_back({600'000, plan});
        schedule.phases.push_back({1'600'000, {}});
    }
};

World &
world()
{
    static World w;
    return w;
}

online::OnlineConfig
serviceConfig()
{
    online::OnlineConfig cfg;
    cfg.endpoints = online::endpointProfiles(world().app);
    cfg.detector.bucketUs = 200'000;
    cfg.detector.windowBuckets = 5;
    cfg.assembler.latenessUs = 100'000;
    cfg.assembler.quietGapUs = 50'000;
    return cfg;
}

online::LiveSourceConfig
loadConfig(size_t threads)
{
    online::LiveSourceConfig live;
    live.seed = 31;
    live.requests = 900;
    live.arrivalRatePerSec = 450.0;
    live.ingestThreads = threads;
    live.pollIntervalUs = 200'000;
    live.duplicateProb = 0.03;
    live.schedule = world().schedule;
    return live;
}

/**
 * Everything determinism-relevant about a service's incidents, as one
 * string. Excludes wall-clock fields (rcaMillis) by construction.
 */
std::string
incidentFingerprint(const online::OnlineService &service)
{
    std::ostringstream out;
    for (const online::Incident &i : service.incidents()) {
        out << "#" << i.id << " " << online::toString(i.state) << " @"
            << i.openedAtUs << "-" << i.resolvedAtUs << " window["
            << i.windowStartUs << "," << i.windowEndUs << ") hwm "
            << i.snapshotMaxRecordId << "\n";
        for (const std::string &e : i.endpoints)
            out << "  ep " << e << "\n";
        for (size_t t = 0; t < i.anomalousTraces.size(); ++t) {
            out << "  " << i.anomalousTraces[t].traceId << " slo "
                << i.slos[t] << " ->";
            if (t < i.rca.perTrace.size())
                for (const std::string &svc :
                     i.rca.perTrace[t].services)
                    out << " " << svc;
            out << "\n";
        }
        for (const trace::Trace &n : i.normalSample)
            out << "  normal " << n.traceId << "\n";
        out << "  considered " << i.normalsConsidered << " detect "
            << i.detectionLatencyUs << "\n";
        for (const auto &[svc, votes] : i.rankedRootCauses)
            out << "  rank " << svc << "=" << votes << "\n";
    }
    return out.str();
}

} // namespace

TEST(OnlineService, IncidentLifecycleOverLiveLoad)
{
    online::OnlineService service(world().adapter.model(),
                                  world().adapter.encoder(),
                                  world().adapter.profile(),
                                  serviceConfig());
    online::LiveRunResult run =
        online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                            loadConfig(1), &service);

    EXPECT_EQ(run.requests, 900u);
    EXPECT_GT(run.anomalousSimulated, 0u);

    online::OnlineStats stats = service.stats();
    EXPECT_EQ(stats.spansIngested, run.spansDelivered);
    // Every span is accounted: accepted, rejected, or still pending.
    EXPECT_EQ(stats.assembly.spansAccepted +
                  stats.assembly.spansRejected + service.backlogSpans(),
              stats.spansIngested);
    // The duplicated deliveries were caught.
    EXPECT_GT(stats.assembly.droppedDuplicate, 0u);
    EXPECT_EQ(stats.tracesStored, stats.assembly.tracesAccepted);

    ASSERT_GE(stats.incidentsOpened, 1u);
    const online::Incident &incident = service.incidents()[0];
    EXPECT_EQ(incident.state, online::Incident::State::Resolved);
    EXPECT_LT(incident.openedAtUs, incident.resolvedAtUs);
    EXPECT_FALSE(incident.endpoints.empty());
    EXPECT_FALSE(incident.anomalousTraces.empty());
    EXPECT_EQ(incident.anomalousTraces.size(), incident.slos.size());
    EXPECT_EQ(incident.anomalousTraces.size(),
              incident.rca.perTrace.size());
    EXPECT_FALSE(incident.rankedRootCauses.empty());
    EXPECT_GE(incident.detectionLatencyUs, 0);
    ASSERT_FALSE(run.detectionLatenciesUs.empty());
    // Detected within (well under) the fault phase's one-second span.
    EXPECT_LT(run.detectionLatenciesUs[0], 1'000'000);
}

TEST(OnlineService, ThreadCountNeverChangesResults)
{
    // Sweep thread counts with metrics on, then repeat with metrics
    // disabled: results must be bitwise identical in all six runs —
    // metrics are write-only side channels.
    std::string reference;
    for (bool metrics : {true, false}) {
        obs::setEnabled(metrics);
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
            online::OnlineService service(world().adapter.model(),
                                          world().adapter.encoder(),
                                          world().adapter.profile(),
                                          serviceConfig());
            online::runLiveLoad(world().app, world().cluster,
                                {.seed = 77}, loadConfig(threads),
                                &service);
            std::string fp = incidentFingerprint(service);
            ASSERT_FALSE(fp.empty());
            online::OnlineStats stats = service.stats();
            std::ostringstream counters;
            counters << stats.spansIngested << "/" << stats.tracesStored
                     << "/" << stats.assembly.spansAccepted << "/"
                     << stats.assembly.spansRejected << "/"
                     << service.store().size() << "/"
                     << service.store().totalSpans();
            fp += counters.str();
            if (reference.empty())
                reference = fp;
            else
                EXPECT_EQ(fp, reference)
                    << "threads=" << threads << " metrics=" << metrics;
        }
    }
    obs::setEnabled(true);
}

// Regression companion to the detector's canonical transition sort: a
// broad outage storms many endpoints at the same watermark, and the
// incident (whose endpoint list and analysis follow transition order)
// must still be bitwise identical at any ingest thread count.
TEST(OnlineService, MultiEndpointSimultaneousStormsStayDeterministic)
{
    // Harsher fault plan: six faulted containers storm several
    // endpoints within one detection window.
    chaos::FaultSchedule schedule;
    util::Rng chaos_rng(0xbead5);
    chaos::FaultPlan plan = chaos::planFixedFaults(
        world().cluster.allInstances(), 6, chaos::FaultScope::Container,
        {}, chaos_rng);
    schedule.phases.push_back({0, {}});
    schedule.phases.push_back({400'000, plan});
    schedule.phases.push_back({1'600'000, {}});

    std::string reference;
    size_t max_endpoints = 0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        online::OnlineService service(world().adapter.model(),
                                      world().adapter.encoder(),
                                      world().adapter.profile(),
                                      serviceConfig());
        online::LiveSourceConfig live = loadConfig(threads);
        live.schedule = schedule;
        online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                            live, &service);
        std::string fp = incidentFingerprint(service);
        ASSERT_FALSE(fp.empty());
        for (const online::Incident &i : service.incidents())
            max_endpoints = std::max(max_endpoints, i.endpoints.size());
        if (reference.empty())
            reference = fp;
        else
            EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
    // The scenario must actually exercise simultaneous storms, or the
    // canonical-transition-order guarantee went untested.
    EXPECT_GE(max_endpoints, 2u);
}

TEST(OnlineService, SnapshotMatchesBatchPipelineOverStore)
{
    online::OnlineService service(world().adapter.model(),
                                  world().adapter.encoder(),
                                  world().adapter.profile(),
                                  serviceConfig());
    online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                        loadConfig(2), &service);
    ASSERT_GE(service.incidents().size(), 1u);
    const online::Incident &incident = service.incidents()[0];

    // Rebuild the snapshot independently from the store and run the
    // batch pipeline over it: verdicts must agree per trace. Traces
    // that finished assembling after the incident was analyzed can
    // carry start times inside the window; the recorded store
    // high-water mark excludes them.
    storage::Query q;
    q.minStartUs = incident.windowStartUs;
    q.maxStartUs = incident.windowEndUs;
    q.onlyAnomalous = true;
    std::vector<const storage::Record *> window =
        service.store().query(q);
    struct Row
    {
        const storage::Record *rec;
        int64_t start;
    };
    std::vector<Row> rows;
    for (const storage::Record *r : window)
        if (r->id <= incident.snapshotMaxRecordId)
            rows.push_back({r, r->startUs()});
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.start != b.start)
            return a.start < b.start;
        return a.rec->traceId() < b.rec->traceId();
    });
    ASSERT_EQ(rows.size(), incident.anomalousTraces.size());
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (const Row &r : rows) {
        traces.push_back(r.rec->trace());
        slos.push_back(r.rec->sloUs);
    }
    core::SleuthPipeline batch(world().adapter.model(),
                               world().adapter.encoder(),
                               world().adapter.profile(),
                               serviceConfig().pipeline);
    core::PipelineResult ref = batch.analyze(traces, slos);
    ASSERT_EQ(ref.perTrace.size(), incident.rca.perTrace.size());
    for (size_t i = 0; i < ref.perTrace.size(); ++i) {
        EXPECT_EQ(traces[i].traceId,
                  incident.anomalousTraces[i].traceId);
        EXPECT_EQ(ref.perTrace[i].services,
                  incident.rca.perTrace[i].services);
        EXPECT_EQ(ref.perTrace[i].resolved,
                  incident.rca.perTrace[i].resolved);
    }
    EXPECT_EQ(core::aggregateRootCauses(ref), incident.rankedRootCauses);
}

TEST(OnlineService, RetentionBoundsStoreMemory)
{
    online::OnlineConfig cfg = serviceConfig();
    cfg.retention.maxSpans = 1'500;
    online::OnlineService service(world().adapter.model(),
                                  world().adapter.encoder(),
                                  world().adapter.profile(), cfg);
    online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                        loadConfig(2), &service);
    EXPECT_LE(service.store().totalSpans(), 1'500u);
    EXPECT_GT(service.store().evictions().records, 0u);
    EXPECT_GT(service.store().evictions().spans, 0u);
    // Eviction removed old traces but the stream kept being served.
    online::OnlineStats stats = service.stats();
    EXPECT_GT(stats.tracesStored, service.store().size());
}

namespace {

/** The full drop taxonomy plus totals, as one comparable string. */
std::string
accountingFingerprint(const online::OnlineService &service)
{
    online::OnlineStats s = service.stats();
    std::ostringstream out;
    out << s.spansIngested << "/" << s.assembly.spansAccepted << "/"
        << s.assembly.spansRejected << "/" << service.backlogSpans()
        << " drops " << s.assembly.droppedOrphan << ","
        << s.assembly.droppedDuplicate << "," << s.assembly.droppedLate
        << "," << s.assembly.droppedMalformed << ","
        << s.assembly.droppedBackpressure << ","
        << s.assembly.droppedRingFull << "," << s.assembly.droppedShed;
    return out.str();
}

/** sent == accepted + Σ(drops by reason) + backlog, at a barrier. */
void
expectLedgerBalances(const online::OnlineService &service,
                     size_t delivered)
{
    online::OnlineStats s = service.stats();
    EXPECT_EQ(s.spansIngested, delivered);
    size_t drops = s.assembly.droppedOrphan +
                   s.assembly.droppedDuplicate + s.assembly.droppedLate +
                   s.assembly.droppedMalformed +
                   s.assembly.droppedBackpressure +
                   s.assembly.droppedRingFull + s.assembly.droppedShed;
    EXPECT_EQ(drops, s.assembly.spansRejected);
    EXPECT_EQ(s.assembly.spansAccepted + drops + service.backlogSpans(),
              s.spansIngested);
}

} // namespace

TEST(OnlineService, ShedPoliciesStayDeterministicAndAccounted)
{
    // A per-poll budget tight enough that every policy sheds. Shed
    // decisions happen poll-side over the canonically re-sorted
    // drained batch, so the incident stream AND the entire drop
    // taxonomy must be bitwise identical at 1/2/8 producer threads.
    for (online::ShedPolicy policy : {online::ShedPolicy::DropNewest,
                                      online::ShedPolicy::DropOldest,
                                      online::ShedPolicy::Sample}) {
        std::string reference;
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
            online::OnlineConfig cfg = serviceConfig();
            cfg.shedPolicy = policy;
            cfg.shedBudgetSpans = 400;
            online::OnlineService service(world().adapter.model(),
                                          world().adapter.encoder(),
                                          world().adapter.profile(),
                                          cfg);
            online::LiveRunResult run = online::runLiveLoad(
                world().app, world().cluster, {.seed = 77},
                loadConfig(threads), &service);
            online::OnlineStats stats = service.stats();
            EXPECT_GT(stats.assembly.droppedShed, 0u)
                << online::toString(policy) << " never shed";
            expectLedgerBalances(service, run.spansDelivered);
            std::string fp = incidentFingerprint(service) + "\n" +
                             accountingFingerprint(service);
            if (reference.empty())
                reference = fp;
            else
                EXPECT_EQ(fp, reference)
                    << online::toString(policy)
                    << " diverges at threads=" << threads;
        }
    }
}

TEST(OnlineService, RingFullPathConservesAccounting)
{
    // Physically tiny rings force the enqueue-side last resort. The
    // victim set is nondeterministic under concurrent producers, but
    // the ledger must still balance and the ring-full count stays
    // deterministic: between barriered polls each shard admits
    // exactly its ring capacity.
    size_t ring_full_reference = 0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        online::OnlineConfig cfg = serviceConfig();
        cfg.ringCapacitySpans = 16;
        online::OnlineService service(world().adapter.model(),
                                      world().adapter.encoder(),
                                      world().adapter.profile(), cfg);
        online::LiveRunResult run = online::runLiveLoad(
            world().app, world().cluster, {.seed = 77},
            loadConfig(threads), &service);
        online::OnlineStats stats = service.stats();
        ASSERT_GT(stats.assembly.droppedRingFull, 0u);
        expectLedgerBalances(service, run.spansDelivered);
        if (ring_full_reference == 0)
            ring_full_reference = stats.assembly.droppedRingFull;
        else
            EXPECT_EQ(stats.assembly.droppedRingFull,
                      ring_full_reference)
                << "ring-full count varies at threads=" << threads;
    }
}

TEST(OnlineService, IngestRefusesOnlyWhenRingIsFull)
{
    online::OnlineConfig cfg = serviceConfig();
    cfg.ringCapacitySpans = 2;
    online::OnlineService service(world().adapter.model(),
                                  world().adapter.encoder(),
                                  world().adapter.profile(), cfg);
    // Same trace id -> same shard; the third span finds its ring full.
    auto event = [](int i) {
        online::SpanEvent ev;
        ev.traceId = "t-ring";
        ev.span.spanId = "s" + std::to_string(i);
        ev.span.service = "svc";
        ev.span.name = "op";
        ev.span.startUs = 1'000 + i;
        ev.span.endUs = 2'000 + i;
        return ev;
    };
    EXPECT_TRUE(service.ingest(event(0)));
    EXPECT_TRUE(service.ingest(event(1)));
    EXPECT_FALSE(service.ingest(event(2)));
    online::OnlineStats stats = service.stats();
    EXPECT_EQ(stats.assembly.droppedRingFull, 1u);
    EXPECT_EQ(stats.spansIngested, 3u);
    // A poll drains the ring; the producer can push again.
    service.poll(1);
    EXPECT_TRUE(service.ingest(event(3)));
    expectLedgerBalances(service, 4u);
}

TEST(OnlineService, ShedPolicyStringsRoundTrip)
{
    for (online::ShedPolicy policy : {online::ShedPolicy::DropNewest,
                                      online::ShedPolicy::DropOldest,
                                      online::ShedPolicy::Sample}) {
        online::ShedPolicy parsed;
        ASSERT_TRUE(online::shedPolicyFromString(
            online::toString(policy), &parsed));
        EXPECT_EQ(parsed, policy);
    }
    online::ShedPolicy parsed;
    EXPECT_FALSE(online::shedPolicyFromString("keep-everything",
                                              &parsed));
    EXPECT_FALSE(online::shedPolicyFromString("", &parsed));
}

TEST(OnlineService, DetectionLatencyHasSubPollResolution)
{
    // Regression: latency is measured from the event-time storm onset
    // (earliest anomalous root span start inside the fault phase), not
    // from the configured phase boundary. The old measurement made
    // every latency a poll-grid multiple minus a constant, collapsing
    // p50 onto p99.
    online::OnlineService service(world().adapter.model(),
                                  world().adapter.encoder(),
                                  world().adapter.profile(),
                                  serviceConfig());
    online::LiveRunResult run =
        online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                            loadConfig(1), &service);
    ASSERT_FALSE(run.detectionLatenciesUs.empty());
    bool off_grid = false;
    for (int64_t latency : run.detectionLatenciesUs) {
        EXPECT_GE(latency, 0);
        if (latency % loadConfig(1).pollIntervalUs != 0)
            off_grid = true;
    }
    EXPECT_TRUE(off_grid)
        << "every detection latency sits on the poll grid — the "
           "onset is being taken from the phase boundary again";
}

TEST(OnlineService, HealthyLoadOpensNoIncident)
{
    online::OnlineService service(world().adapter.model(),
                                  world().adapter.encoder(),
                                  world().adapter.profile(),
                                  serviceConfig());
    online::LiveSourceConfig live = loadConfig(1);
    live.schedule = {};  // no faults
    live.requests = 400;
    online::runLiveLoad(world().app, world().cluster, {.seed = 77},
                        live, &service);
    EXPECT_EQ(service.incidents().size(), 0u);
    EXPECT_GT(service.stats().tracesStored, 0u);
}
