// SpanAssembler: watermark-based span-to-trace assembly edge cases —
// out-of-order arrival, duplicate span ids, late-after-watermark
// stragglers, traces interleaved across payload boundaries, malformed
// traces, backpressure — and the canonical-output determinism contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "online/assembler.h"
#include "test_helpers.h"
#include "util/rng.h"

using namespace sleuth;
using namespace sleuth::testing;
using online::AssemblerConfig;
using online::SpanAssembler;
using online::SpanEvent;

namespace {

AssemblerConfig
tightConfig()
{
    AssemblerConfig cfg;
    cfg.latenessUs = 1'000;
    cfg.quietGapUs = 500;
    return cfg;
}

SpanEvent
ev(const std::string &trace_id, const trace::Span &span)
{
    return SpanEvent{trace_id, span};
}

/** The figure-2 trace exploded into one event per span. */
std::vector<SpanEvent>
figure2Events(const std::string &trace_id, int64_t shift = 0)
{
    std::vector<SpanEvent> out;
    for (trace::Span s : figure2Trace().spans) {
        s.startUs += shift;
        s.endUs += shift;
        out.push_back(ev(trace_id, s));
    }
    return out;
}

} // namespace

TEST(SpanAssembler, AssemblesOutOfOrderSpans)
{
    SpanAssembler a(tightConfig());
    std::vector<SpanEvent> events = figure2Events("t1");
    // Children before root.
    std::reverse(events.begin(), events.end());
    for (const SpanEvent &e : events)
        EXPECT_TRUE(a.add(e));
    EXPECT_EQ(a.pendingTraces(), 1u);
    EXPECT_EQ(a.pendingSpans(), 3u);

    // Watermark (now - lateness) must pass lastEnd + quietGap = 100.6k.
    EXPECT_TRUE(a.drain(1'000).empty());
    std::vector<trace::Trace> done = a.drain(2'000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].traceId, "t1");
    ASSERT_EQ(done[0].spans.size(), 3u);
    // Canonical span order: (startUs, spanId).
    EXPECT_EQ(done[0].spans[0].spanId, "p");
    EXPECT_EQ(done[0].spans[1].spanId, "a");
    EXPECT_EQ(done[0].spans[2].spanId, "b");
    EXPECT_EQ(a.stats().tracesAccepted, 1u);
    EXPECT_EQ(a.stats().spansAccepted, 3u);
    EXPECT_EQ(a.pendingSpans(), 0u);
}

// Regression: Pending's quiet-horizon anchor used a 0 sentinel, so a
// trace whose spans all end before the epoch had its anchor pinned at
// 0 and never went quiet under a (correctly negative) watermark.
TEST(SpanAssembler, PreEpochTraceCompletesAtNegativeWatermark)
{
    SpanAssembler a(tightConfig());
    for (const SpanEvent &e : figure2Events("t1", -1'000'000))
        EXPECT_TRUE(a.add(e));
    // Same clocks as AssemblesOutOfOrderSpans, one epoch earlier.
    EXPECT_TRUE(a.drain(-999'000).empty());
    std::vector<trace::Trace> done = a.drain(-998'000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].traceId, "t1");
    EXPECT_EQ(a.stats().tracesAccepted, 1u);
}

TEST(SpanAssembler, ArrivalOrderDoesNotChangeOutput)
{
    std::vector<SpanEvent> events;
    for (int t = 0; t < 5; ++t) {
        std::vector<SpanEvent> es =
            figure2Events("t" + std::to_string(t), t * 10);
        events.insert(events.end(), es.begin(), es.end());
    }
    util::Rng rng(99);
    std::vector<trace::Trace> reference;
    for (int round = 0; round < 6; ++round) {
        SpanAssembler a(tightConfig());
        std::vector<SpanEvent> shuffled = events;
        rng.shuffle(shuffled);
        for (const SpanEvent &e : shuffled)
            EXPECT_TRUE(a.add(e));
        std::vector<trace::Trace> done = a.drain(5'000);
        ASSERT_EQ(done.size(), 5u);
        if (round == 0) {
            reference = done;
            continue;
        }
        for (size_t i = 0; i < done.size(); ++i) {
            EXPECT_EQ(done[i].traceId, reference[i].traceId);
            ASSERT_EQ(done[i].spans.size(),
                      reference[i].spans.size());
            for (size_t j = 0; j < done[i].spans.size(); ++j) {
                EXPECT_EQ(done[i].spans[j].spanId,
                          reference[i].spans[j].spanId);
                EXPECT_EQ(done[i].spans[j].startUs,
                          reference[i].spans[j].startUs);
            }
        }
    }
}

TEST(SpanAssembler, DuplicateSpanIdsDropped)
{
    SpanAssembler a(tightConfig());
    for (const SpanEvent &e : figure2Events("t1"))
        EXPECT_TRUE(a.add(e));
    // Re-deliver every span (collector retry).
    for (const SpanEvent &e : figure2Events("t1"))
        EXPECT_FALSE(a.add(e));
    EXPECT_EQ(a.stats().droppedDuplicate, 3u);
    EXPECT_EQ(a.stats().spansRejected, 3u);

    std::vector<trace::Trace> done = a.drain(2'000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].spans.size(), 3u);
}

TEST(SpanAssembler, LateAfterCompletionClassifiedAndDropped)
{
    SpanAssembler a(tightConfig());
    for (const SpanEvent &e : figure2Events("t1"))
        EXPECT_TRUE(a.add(e));
    ASSERT_EQ(a.drain(2'000).size(), 1u);

    // A straggler of the completed trace: late after eviction.
    EXPECT_FALSE(
        a.add(ev("t1", makeSpan("x", "p", "svc-x", "late", 50, 70))));
    EXPECT_EQ(a.stats().droppedLate, 1u);

    // A brand-new trace entirely behind the watermark: also late (it
    // could never assemble — it would complete incomplete instantly).
    EXPECT_FALSE(
        a.add(ev("t9", makeSpan("r", "", "svc-y", "old", 0, 100))));
    EXPECT_EQ(a.stats().droppedLate, 2u);
}

TEST(SpanAssembler, ClosedMemoryForgetsEventually)
{
    AssemblerConfig cfg = tightConfig();
    cfg.closedMemoryUs = 3'000;
    SpanAssembler a(cfg);
    for (const SpanEvent &e : figure2Events("t1"))
        EXPECT_TRUE(a.add(e));
    ASSERT_EQ(a.drain(2'000).size(), 1u);
    // Far past closedMemoryUs the ghost entry is pruned; a straggler
    // is still dropped, but now by the watermark check.
    a.drain(10'000);
    EXPECT_FALSE(
        a.add(ev("t1", makeSpan("y", "p", "svc-x", "late", 50, 70))));
    EXPECT_EQ(a.stats().droppedLate, 1u);
}

TEST(SpanAssembler, InterleavedCrossPayloadTraces)
{
    // Two traces delivered span-by-span, interleaved — the case the
    // batch collector cannot handle (it drops split traces).
    SpanAssembler a(tightConfig());
    std::vector<SpanEvent> t1 = figure2Events("t1");
    std::vector<SpanEvent> t2 = figure2Events("t2", 40);
    for (size_t i = 0; i < t1.size(); ++i) {
        EXPECT_TRUE(a.add(t1[i]));
        EXPECT_TRUE(a.add(t2[i]));
    }
    EXPECT_EQ(a.pendingTraces(), 2u);
    std::vector<trace::Trace> done = a.drain(3'000);
    ASSERT_EQ(done.size(), 2u);
    // Canonical trace order: (root start, traceId).
    EXPECT_EQ(done[0].traceId, "t1");
    EXPECT_EQ(done[1].traceId, "t2");
    EXPECT_EQ(done[0].spans.size(), 3u);
    EXPECT_EQ(done[1].spans.size(), 3u);
}

TEST(SpanAssembler, PartialTraceCompletesIncompleteAndIsRejected)
{
    SpanAssembler a(tightConfig());
    // Only the children arrive; the root never does.
    std::vector<SpanEvent> events = figure2Events("t1");
    EXPECT_TRUE(a.add(events[1]));
    EXPECT_TRUE(a.add(events[2]));
    std::vector<trace::Trace> done = a.drain(2'000);
    EXPECT_TRUE(done.empty());
    EXPECT_EQ(a.stats().tracesRejected, 1u);
    EXPECT_EQ(a.stats().droppedOrphan, 2u);
    EXPECT_EQ(a.stats().spansRejected, 2u);
}

TEST(SpanAssembler, MalformedEventsRejectedOutright)
{
    SpanAssembler a(tightConfig());
    EXPECT_FALSE(a.add(ev("", makeSpan("s", "", "svc", "op", 0, 10))));
    EXPECT_FALSE(a.add(ev("t1", makeSpan("", "", "svc", "op", 0, 10))));
    EXPECT_EQ(a.stats().droppedMalformed, 2u);
}

TEST(SpanAssembler, BackpressureRejectsNewTracesButNotPendingOnes)
{
    AssemblerConfig cfg = tightConfig();
    cfg.maxPendingSpans = 2;
    SpanAssembler a(cfg);
    std::vector<SpanEvent> t1 = figure2Events("t1");
    EXPECT_TRUE(a.add(t1[0]));
    EXPECT_TRUE(a.add(t1[1]));
    // Budget exhausted: a new trace is turned away...
    EXPECT_FALSE(
        a.add(ev("t2", makeSpan("r", "", "svc", "op", 0, 10))));
    EXPECT_EQ(a.stats().droppedBackpressure, 1u);
    // ...but the in-flight trace may still complete.
    EXPECT_TRUE(a.add(t1[2]));
    std::vector<trace::Trace> done = a.drain(2'000);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].spans.size(), 3u);
}

TEST(SpanAssembler, FlushCompletesEverythingPending)
{
    SpanAssembler a(tightConfig());
    for (const SpanEvent &e : figure2Events("t1"))
        EXPECT_TRUE(a.add(e));
    std::vector<trace::Trace> done = a.flush();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(a.pendingTraces(), 0u);
    // Stats invariant: every ingested span is accounted for.
    const collector::CollectorStats &s = a.stats();
    EXPECT_EQ(s.spansAccepted + s.spansRejected + a.pendingSpans(), 3u);
}
