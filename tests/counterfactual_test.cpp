// Unit tests for the counterfactual RCA mechanics: candidate ranking,
// client-span affiliation, parameter behavior, and degenerate inputs.

#include <gtest/gtest.h>

#include "core/counterfactual.h"
#include "core/trainer.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

/** A tiny fixture with a model trained on simple two-level traces. */
struct Fixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    Fixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 2;
              return c;
          }())
    {
        util::Rng rng(3);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 120; ++i)
            corpus.push_back(makeTrace(rng, i >= 100));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 10;
        tc.tracesPerBatch = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    /**
     * root(server, frontend) -> client(frontend) -> server(backend),
     * with log-normal-ish timing; `slow` inflates the backend 10x.
     */
    static trace::Trace
    makeTrace(util::Rng &rng, bool slow = false,
              bool backend_error = false)
    {
        int64_t backend = rng.uniformInt(150, 300) * (slow ? 10 : 1);
        int64_t net = rng.uniformInt(20, 50);
        int64_t front_pre = rng.uniformInt(50, 120);
        int64_t front_post = rng.uniformInt(30, 80);
        trace::Trace t;
        t.traceId = "t";
        int64_t c_start = front_pre;
        int64_t s_start = c_start + net;
        int64_t s_end = s_start + backend;
        int64_t c_end = s_end + net;
        t.spans.push_back(makeSpan("r", "", "frontend", "Handle", 0,
                                   c_end + front_post));
        t.spans.push_back(makeSpan("c", "r", "frontend", "GetItem",
                                   c_start, c_end,
                                   trace::SpanKind::Client,
                                   backend_error
                                       ? trace::StatusCode::Error
                                       : trace::StatusCode::Ok));
        t.spans.push_back(makeSpan("s", "c", "backend", "GetItem",
                                   s_start, s_end,
                                   trace::SpanKind::Server,
                                   backend_error
                                       ? trace::StatusCode::Error
                                       : trace::StatusCode::Ok));
        return t;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

} // namespace

TEST(Counterfactual, BlamesInflatedBackend)
{
    Fixture &f = fixture();
    util::Rng rng(99);
    trace::Trace slow = Fixture::makeTrace(rng, /*slow=*/true);
    CounterfactualRca rca(f.model, f.encoder, f.profile, {});
    RcaResult res = rca.analyze(slow, /*slo=*/900);
    ASSERT_FALSE(res.services.empty());
    EXPECT_EQ(res.services[0], "backend");
    EXPECT_TRUE(res.resolved);
}

TEST(Counterfactual, ErrorTraceBlamesErrorOrigin)
{
    Fixture &f = fixture();
    util::Rng rng(100);
    trace::Trace bad = Fixture::makeTrace(rng, false, true);
    // Propagate the error to the root span too.
    bad.spans[0].status = trace::StatusCode::Error;
    CounterfactualRca rca(f.model, f.encoder, f.profile, {});
    RcaResult res = rca.analyze(bad, /*slo=*/100000);
    ASSERT_FALSE(res.services.empty());
    EXPECT_EQ(res.services[0], "backend");
}

TEST(Counterfactual, NormalTraceGivesAtMostOneCandidate)
{
    Fixture &f = fixture();
    util::Rng rng(101);
    trace::Trace ok = Fixture::makeTrace(rng);
    CounterfactualRca rca(f.model, f.encoder, f.profile, {});
    RcaResult res = rca.analyze(ok, /*slo=*/100000);
    EXPECT_LE(res.services.size(), 1u);
}

TEST(Counterfactual, MaxRootCausesCapsOutput)
{
    Fixture &f = fixture();
    util::Rng rng(102);
    trace::Trace slow = Fixture::makeTrace(rng, true);
    RcaParams params;
    params.maxRootCauses = 1;
    CounterfactualRca rca(f.model, f.encoder, f.profile, params);
    RcaResult res = rca.analyze(slow, /*slo=*/1);  // impossible SLO
    EXPECT_EQ(res.services.size(), 1u);
    EXPECT_FALSE(res.resolved);
}

TEST(Counterfactual, LocationSetsMatchImplicatedServices)
{
    Fixture &f = fixture();
    util::Rng rng(103);
    trace::Trace slow = Fixture::makeTrace(rng, true);
    CounterfactualRca rca(f.model, f.encoder, f.profile, {});
    RcaResult res = rca.analyze(slow, 900);
    for (const std::string &pod : res.pods)
        EXPECT_NE(pod.find("-pod-"), std::string::npos);
    ASSERT_FALSE(res.services.empty());
    // Every implicated service's pod appears.
    EXPECT_GE(res.pods.size(), 1u);
    EXPECT_GE(res.containers.size(), 1u);
}

TEST(Counterfactual, BiasCorrectionTogglesBehavior)
{
    // With bias correction off and a deliberately tight SLO, the loop
    // should restore more candidates than with it on (the corrected
    // test accounts for the model's own reconstruction level).
    Fixture &f = fixture();
    util::Rng rng(104);
    size_t with = 0, without = 0;
    for (int i = 0; i < 10; ++i) {
        trace::Trace slow = Fixture::makeTrace(rng, true);
        RcaParams on;
        RcaParams off;
        off.biasCorrection = false;
        CounterfactualRca rca_on(f.model, f.encoder, f.profile, on);
        CounterfactualRca rca_off(f.model, f.encoder, f.profile, off);
        with += rca_on.analyze(slow, 900).services.size();
        without += rca_off.analyze(slow, 900).services.size();
    }
    // Not asserting a strict order (depends on bias direction), only
    // that both run and produce bounded results.
    EXPECT_GT(with, 0u);
    EXPECT_GT(without, 0u);
}

TEST(Counterfactual, SingleSpanTrace)
{
    Fixture &f = fixture();
    trace::Trace t;
    t.spans.push_back(makeSpan("only", "", "frontend", "Handle", 0,
                               50000));
    CounterfactualRca rca(f.model, f.encoder, f.profile, {});
    RcaResult res = rca.analyze(t, 1000);
    ASSERT_EQ(res.services.size(), 1u);
    EXPECT_EQ(res.services[0], "frontend");
}
