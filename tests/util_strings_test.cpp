// Unit tests for string helpers (identifier splitting feeds the
// semantic embedder's text pre-processing).

#include <gtest/gtest.h>

#include "util/strings.h"

namespace su = sleuth::util;

TEST(Strings, SplitAndJoin)
{
    auto parts = su::split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(su::join(parts, "/"), "a/b//c");
    EXPECT_EQ(su::split("", ',').size(), 1u);
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(su::toLower("AbC-09"), "abc-09");
}

TEST(Strings, SplitIdentifierCamelCase)
{
    auto w = su::splitIdentifier("GetUserById");
    ASSERT_EQ(w.size(), 4u);
    EXPECT_EQ(w[0], "get");
    EXPECT_EQ(w[1], "user");
    EXPECT_EQ(w[2], "by");
    EXPECT_EQ(w[3], "id");
}

TEST(Strings, SplitIdentifierAcronymRun)
{
    auto w = su::splitIdentifier("HTTPServer");
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], "http");
    EXPECT_EQ(w[1], "server");
}

TEST(Strings, SplitIdentifierSnakeAndKebab)
{
    auto w = su::splitIdentifier("compose_post-service");
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0], "compose");
    EXPECT_EQ(w[1], "post");
    EXPECT_EQ(w[2], "service");
}

TEST(Strings, SplitIdentifierDigitsSeparate)
{
    auto w = su::splitIdentifier("redis7get");
    ASSERT_EQ(w.size(), 3u);
    EXPECT_EQ(w[0], "redis");
    EXPECT_EQ(w[1], "7");
    EXPECT_EQ(w[2], "get");
}

TEST(Strings, SplitIdentifierSlashesAndDots)
{
    auto w = su::splitIdentifier("GET /orders/checkout.v2");
    ASSERT_EQ(w.size(), 5u);
    EXPECT_EQ(w[0], "get");
    EXPECT_EQ(w[1], "orders");
    EXPECT_EQ(w[2], "checkout");
    EXPECT_EQ(w[3], "v");
    EXPECT_EQ(w[4], "2");
}

TEST(Strings, LooksLikeHexId)
{
    EXPECT_TRUE(su::looksLikeHexId("deadbeef01"));
    EXPECT_TRUE(su::looksLikeHexId("123456"));
    EXPECT_FALSE(su::looksLikeHexId("abcdef"));   // no digit at all
    EXPECT_FALSE(su::looksLikeHexId("12ab"));     // too short
    EXPECT_FALSE(su::looksLikeHexId("deadbeefzz"));
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(su::startsWith("sleuth-core", "sleuth"));
    EXPECT_FALSE(su::startsWith("sle", "sleuth"));
}

TEST(Strings, FormatDouble)
{
    EXPECT_EQ(su::formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(su::formatDouble(2.0, 1), "2.0");
}
