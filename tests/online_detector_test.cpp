// StormDetector: sliding-window onset/clear hysteresis, window stats
// over bucket merges, arrival-order insensitivity, and ring-slot
// recycling at window boundaries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "online/detector.h"
#include "util/rng.h"

using namespace sleuth;
using online::DetectorConfig;
using online::Observation;
using online::StormDetector;
using online::StormTransition;
using online::WindowStats;

namespace {

DetectorConfig
smallConfig()
{
    DetectorConfig cfg;
    cfg.bucketUs = 1'000;
    cfg.windowBuckets = 4;
    cfg.minWindowCount = 6;
    cfg.minAnomalous = 3;
    cfg.onsetFraction = 0.3;
    cfg.clearFraction = 0.1;
    return cfg;
}

Observation
obs(const std::string &endpoint, int64_t start_us, int64_t duration_us,
    bool anomalous, bool error = false)
{
    return Observation{endpoint, start_us, duration_us, anomalous,
                       error};
}

} // namespace

TEST(StormDetector, QuietEndpointNeverStorms)
{
    StormDetector d(smallConfig());
    for (int i = 0; i < 40; ++i)
        d.observe(obs("svc/op", i * 100, 1'000, false));
    EXPECT_TRUE(d.advance(4'000).empty());
    EXPECT_FALSE(d.storming("svc/op"));
}

TEST(StormDetector, OnsetThenClearLifecycle)
{
    StormDetector d(smallConfig());
    // Healthy window.
    for (int i = 0; i < 10; ++i)
        d.observe(obs("svc/op", i * 100, 1'000, false));
    EXPECT_TRUE(d.advance(1'000).empty());

    // Anomaly burst in the next bucket: 6 of 8 anomalous.
    for (int i = 0; i < 8; ++i)
        d.observe(obs("svc/op", 1'000 + i * 100, 9'000, i < 6));
    std::vector<StormTransition> tr = d.advance(2'000);
    ASSERT_EQ(tr.size(), 1u);
    EXPECT_EQ(tr[0].kind, StormTransition::Kind::Onset);
    EXPECT_EQ(tr[0].endpoint, "svc/op");
    EXPECT_TRUE(d.storming("svc/op"));
    EXPECT_GE(tr[0].window.anomalous, 6u);

    // No new clear while the burst is still inside the window.
    EXPECT_TRUE(d.advance(3'000).empty());

    // Window slides past the burst (watermark 7'000: buckets 4..7 all
    // healthy traffic) -> clear.
    for (int b = 4; b <= 7; ++b)
        for (int i = 0; i < 4; ++i)
            d.observe(
                obs("svc/op", b * 1'000 + i * 100, 1'000, false));
    std::vector<StormTransition> clear = d.advance(7'000);
    ASSERT_EQ(clear.size(), 1u);
    EXPECT_EQ(clear[0].kind, StormTransition::Kind::Clear);
    EXPECT_FALSE(d.storming("svc/op"));
}

TEST(StormDetector, HysteresisRequiresBothThresholds)
{
    StormDetector d(smallConfig());
    // High fraction but too few traces: 2 anomalous of 4 < min counts.
    for (int i = 0; i < 4; ++i)
        d.observe(obs("a/op", i * 100, 5'000, i < 2));
    EXPECT_TRUE(d.advance(1'000).empty());

    // Enough traces, enough anomalous, but low fraction: 3 of 30.
    for (int i = 0; i < 30; ++i)
        d.observe(obs("b/op", i * 10, 5'000, i < 3));
    EXPECT_TRUE(d.advance(1'000).empty());
}

TEST(StormDetector, ArrivalOrderDoesNotChangeVerdicts)
{
    std::vector<Observation> observations;
    util::Rng rng(21);
    for (int i = 0; i < 60; ++i)
        observations.push_back(obs("svc/op", i * 50, 8'000, i >= 30));
    WindowStats ref;
    for (int round = 0; round < 5; ++round) {
        StormDetector d(smallConfig());
        std::vector<Observation> shuffled = observations;
        rng.shuffle(shuffled);
        for (const Observation &o : shuffled)
            d.observe(o);
        WindowStats w = d.windowStats("svc/op", 3'000);
        std::vector<StormTransition> tr = d.advance(3'000);
        ASSERT_EQ(tr.size(), 1u);
        EXPECT_EQ(tr[0].kind, StormTransition::Kind::Onset);
        if (round == 0) {
            ref = w;
            continue;
        }
        EXPECT_EQ(w.count, ref.count);
        EXPECT_EQ(w.anomalous, ref.anomalous);
        EXPECT_EQ(w.errors, ref.errors);
        EXPECT_EQ(w.p50Us, ref.p50Us);  // bitwise: sketch merge exact
        EXPECT_EQ(w.p99Us, ref.p99Us);
    }
}

TEST(StormDetector, WindowStatsMergeBucketsAcrossBoundary)
{
    StormDetector d(smallConfig());
    // 5 observations in bucket 0, 5 in bucket 3 (window edge at
    // watermark 3'000 covers buckets 0..3).
    for (int i = 0; i < 5; ++i) {
        d.observe(obs("svc/op", i * 100, 1'000, false));
        d.observe(obs("svc/op", 3'000 + i * 100, 3'000, false, true));
    }
    WindowStats w = d.windowStats("svc/op", 3'000);
    EXPECT_EQ(w.count, 10u);
    EXPECT_EQ(w.errors, 5u);
    // At watermark 4'000 the window is buckets 1..4: bucket 0 left.
    WindowStats w2 = d.windowStats("svc/op", 4'000);
    EXPECT_EQ(w2.count, 5u);
    EXPECT_EQ(w2.errors, 5u);
}

TEST(StormDetector, RingRecyclingDropsOnlyAncientObservations)
{
    StormDetector d(smallConfig());
    // Fill bucket 5, then an observation 4 ring-lengths older arrives:
    // its slot (5 % 4 == 1 % 4) is held by newer data and must not be
    // clobbered or counted.
    d.observe(obs("svc/op", 5'500, 1'000, false));
    d.observe(obs("svc/op", 1'500, 9'000, true));
    WindowStats w = d.windowStats("svc/op", 5'900);
    EXPECT_EQ(w.count, 1u);
    EXPECT_EQ(w.anomalous, 0u);
}

// Regression: Bucket's empty sentinel used to be -1 — the legitimate
// bucket of event times in [-bucketUs, 0) — so the staleness guard
// (b.index > idx) treated every pre-epoch observation (bucket < -1) as
// older than a FRESH slot and silently dropped it.
TEST(StormDetector, PreEpochObservationsAreCounted)
{
    StormDetector d(smallConfig());
    // Buckets -4..-1 (all event times negative), 3 anomalous each.
    for (int b = -4; b <= -1; ++b)
        for (int i = 0; i < 3; ++i)
            d.observe(
                obs("svc/op", b * 1'000 + i * 100, 9'000, true));
    WindowStats w = d.windowStats("svc/op", -1);
    EXPECT_EQ(w.count, 12u);
    EXPECT_EQ(w.anomalous, 12u);
    EXPECT_GT(w.p99Us, 0.0);
    // The storm opens from pre-epoch data like any other.
    std::vector<StormTransition> tr = d.advance(-1);
    ASSERT_EQ(tr.size(), 1u);
    EXPECT_EQ(tr[0].kind, StormTransition::Kind::Onset);
    EXPECT_TRUE(d.storming("svc/op"));
}

// The staleness guard must still apply on the negative axis: an
// observation a full ring older than the slot's current (negative)
// bucket is dropped, not clobbered in.
TEST(StormDetector, NegativeTimeRingRecyclingStillDropsAncient)
{
    StormDetector d(smallConfig());
    d.observe(obs("svc/op", -500, 1'000, false));    // bucket -1
    // Bucket -5 shares slot ((-5 mod 4) == (-1 mod 4)) but is older.
    d.observe(obs("svc/op", -4'500, 9'000, true));
    WindowStats w = d.windowStats("svc/op", -1);
    EXPECT_EQ(w.count, 1u);
    EXPECT_EQ(w.anomalous, 0u);
}

// Regression: simultaneous transitions must come back canonically
// sorted by (kind, endpoint) — onsets before clears, lexicographic
// within each kind — independent of endpoint-map iteration order.
TEST(StormDetector, SimultaneousTransitionsEmitCanonicalOrder)
{
    StormDetector d(smallConfig());
    // Open a storm on "m/op" in bucket 0.
    for (int i = 0; i < 10; ++i)
        d.observe(obs("m/op", i * 100, 9'000, true));
    std::vector<StormTransition> first = d.advance(1'000);
    ASSERT_EQ(first.size(), 1u);
    ASSERT_TRUE(d.storming("m/op"));
    // Bursts for three endpoints (observed in non-lexicographic order)
    // land in bucket 4; m/op goes quiet. At watermark 7'000 the window
    // is buckets 4..7: three onsets and one clear, same advance().
    for (const char *ep : {"c/op", "a/op", "b/op"})
        for (int i = 0; i < 10; ++i)
            d.observe(obs(ep, 4'000 + i * 100, 9'000, true));
    std::vector<StormTransition> tr = d.advance(7'000);
    ASSERT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr[0].kind, StormTransition::Kind::Onset);
    EXPECT_EQ(tr[0].endpoint, "a/op");
    EXPECT_EQ(tr[1].kind, StormTransition::Kind::Onset);
    EXPECT_EQ(tr[1].endpoint, "b/op");
    EXPECT_EQ(tr[2].kind, StormTransition::Kind::Onset);
    EXPECT_EQ(tr[2].endpoint, "c/op");
    EXPECT_EQ(tr[3].kind, StormTransition::Kind::Clear);
    EXPECT_EQ(tr[3].endpoint, "m/op");
}

TEST(StormDetector, EndpointsAreIndependent)
{
    StormDetector d(smallConfig());
    for (int i = 0; i < 10; ++i) {
        d.observe(obs("sick/op", i * 100, 9'000, true));
        d.observe(obs("healthy/op", i * 100, 1'000, false));
    }
    std::vector<StormTransition> tr = d.advance(1'000);
    ASSERT_EQ(tr.size(), 1u);
    EXPECT_EQ(tr[0].endpoint, "sick/op");
    EXPECT_TRUE(d.storming("sick/op"));
    EXPECT_FALSE(d.storming("healthy/op"));
    std::vector<std::string> storming = d.stormingEndpoints();
    ASSERT_EQ(storming.size(), 1u);
    EXPECT_EQ(storming[0], "sick/op");
}
