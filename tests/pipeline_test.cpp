// Unit tests for SleuthPipeline mechanics: representative-distance
// guard, invocation accounting, DBSCAN/HDBSCAN parity on pure
// clusters, and end-to-end determinism.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

/** Model trained on two-level traces (as in counterfactual_test). */
struct PipeFixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    PipeFixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 4;
              return c;
          }())
    {
        util::Rng rng(8);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 100; ++i)
            corpus.push_back(makeTrace(rng, "backend", i >= 85));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    static trace::Trace
    makeTrace(util::Rng &rng, const std::string &backend,
              bool slow = false)
    {
        int64_t b = rng.uniformInt(150, 300) * (slow ? 12 : 1);
        int64_t pre = rng.uniformInt(50, 120);
        trace::Trace t;
        t.traceId = "t" + std::to_string(rng.uniformInt(0, 1 << 30));
        t.spans.push_back(
            makeSpan("r", "", "frontend", "Handle", 0, pre + b + 80));
        t.spans.push_back(makeSpan("c", "r", "frontend",
                                   "Get" + backend, pre, pre + b + 40,
                                   trace::SpanKind::Client));
        t.spans.push_back(makeSpan("s", "c", backend, "Get" + backend,
                                   pre + 20, pre + 20 + b));
        return t;
    }
};

PipeFixture &
pipeFixture()
{
    static PipeFixture f;
    return f;
}

/** A storm: n slow traces through `backend`. */
std::vector<trace::Trace>
storm(const std::string &backend, size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<trace::Trace> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(PipeFixture::makeTrace(rng, backend, true));
    return out;
}

} // namespace

TEST(PipelineMechanics, PureClusterOneInvocation)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 12, 1);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);

    // Identical failure mode: few clusters, far fewer RCA calls than
    // traces, same verdict everywhere.
    EXPECT_LT(res.rcaInvocations, traces.size() / 2);
    for (const RcaResult &r : res.perTrace) {
        ASSERT_FALSE(r.services.empty());
        EXPECT_EQ(r.services[0], "backend");
    }
}

TEST(PipelineMechanics, GuardSendsFarMembersToIndividualRca)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 10, 2);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig strict;
    strict.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                      .clusterSelectionEpsilon = 0.0};
    strict.maxRepresentativeDistance = 1e-9;  // nobody inherits
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, strict);
    PipelineResult res = pipeline.analyze(traces, slos);
    // Every non-representative member falls back to individual RCA.
    EXPECT_GE(res.rcaInvocations, traces.size());
}

TEST(PipelineMechanics, DbscanMatchesHdbscanOnPureStorm)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 12, 3);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig hd;
    hd.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                  .clusterSelectionEpsilon = 0.0};
    PipelineConfig db;
    db.algorithm = PipelineConfig::Algorithm::Dbscan;
    db.dbscan = {.eps = 0.5, .minPts = 3};

    SleuthPipeline p1(f.model, f.encoder, f.profile, hd);
    SleuthPipeline p2(f.model, f.encoder, f.profile, db);
    PipelineResult r1 = p1.analyze(traces, slos);
    PipelineResult r2 = p2.analyze(traces, slos);
    for (size_t i = 0; i < traces.size(); ++i) {
        ASSERT_FALSE(r1.perTrace[i].services.empty());
        ASSERT_FALSE(r2.perTrace[i].services.empty());
        EXPECT_EQ(r1.perTrace[i].services[0],
                  r2.perTrace[i].services[0]);
    }
}

TEST(PipelineMechanics, DeterministicAcrossRuns)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 4);
    std::vector<int64_t> slos(traces.size(), 900);
    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 3, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult a = pipeline.analyze(traces, slos);
    PipelineResult b = pipeline.analyze(traces, slos);
    EXPECT_EQ(a.clusterLabels, b.clusterLabels);
    EXPECT_EQ(a.rcaInvocations, b.rcaInvocations);
    for (size_t i = 0; i < traces.size(); ++i)
        EXPECT_EQ(a.perTrace[i].services, b.perTrace[i].services);
}

TEST(PipelineMechanics, MalformedTraceInBatchIsSkippedNotFatal)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 10, 7);
    // Inject two malformed traces mid-batch: an unresolved
    // parentSpanId and a parent cycle. Before the fix either one
    // aborted the whole batch inside TraceGraph::build.
    trace::Trace orphan;
    orphan.traceId = "orphan";
    orphan.spans.push_back(
        makeSpan("r", "", "frontend", "Handle", 0, 100));
    orphan.spans.push_back(
        makeSpan("x", "nosuchspan", "backend", "Get", 10, 60));
    traces.insert(traces.begin() + 3, orphan);
    trace::Trace cyclic;
    cyclic.traceId = "cyclic";
    cyclic.spans.push_back(
        makeSpan("r", "", "frontend", "Handle", 0, 100));
    cyclic.spans.push_back(makeSpan("a", "b", "backend", "Get", 5, 50));
    cyclic.spans.push_back(makeSpan("b", "a", "backend", "Put", 6, 40));
    traces.push_back(cyclic);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);

    EXPECT_EQ(res.skippedTraces, 2u);
    // The malformed traces carry error verdicts and no cluster.
    EXPECT_FALSE(res.perTrace[3].error.empty());
    EXPECT_NE(res.perTrace[3].error.find("parentSpanId"),
              std::string::npos);
    EXPECT_EQ(res.clusterLabels[3], -1);
    EXPECT_TRUE(res.perTrace[3].services.empty());
    EXPECT_FALSE(res.perTrace.back().error.empty());
    EXPECT_EQ(res.clusterLabels.back(), -1);
    // Every well-formed trace still gets its verdict.
    for (size_t i = 0; i < traces.size(); ++i) {
        if (i == 3 || i + 1 == traces.size())
            continue;
        ASSERT_TRUE(res.perTrace[i].error.empty()) << i;
        ASSERT_FALSE(res.perTrace[i].services.empty()) << i;
        EXPECT_EQ(res.perTrace[i].services[0], "backend");
    }
    // The distance matrix covered only the well-formed subset.
    size_t m = traces.size() - 2;
    EXPECT_EQ(res.distanceEvaluations, m * (m - 1) / 2);
}

TEST(PipelineMechanics, MatrixPathAccountsMalformedLikeAnalyze)
{
    // Regression: analyzeCore used to charge n(n-1)/2 distance
    // evaluations on the analyzeWithMatrix path even when the batch
    // contained malformed traces, while analyze() (which compacts them
    // out before building its matrix) reported m(m-1)/2 over the m
    // well-formed traces. The two paths must agree on the accounting.
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 21);
    trace::Trace orphan;
    orphan.traceId = "orphan";
    orphan.spans.push_back(
        makeSpan("r", "", "frontend", "Handle", 0, 100));
    orphan.spans.push_back(
        makeSpan("x", "nosuchspan", "backend", "Get", 10, 60));
    traces.insert(traces.begin() + 2, orphan);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);

    // A caller-provided distance covering every row, malformed
    // included (as analyzeWithMatrix documents the matrix must).
    std::function<double(size_t, size_t)> flat = [](size_t, size_t) {
        return 0.1;
    };
    PipelineResult res =
        pipeline.analyzeWithDistance(traces, slos, flat);

    const size_t m = traces.size() - 1;
    EXPECT_EQ(res.skippedTraces, 1u);
    EXPECT_EQ(res.distanceEvaluations, m * (m - 1) / 2);
    EXPECT_FALSE(res.perTrace[2].error.empty());
    EXPECT_EQ(res.clusterLabels[2], -1);
    // Cluster ids stay compacted: every id below numClusters occurs.
    std::vector<bool> seen(static_cast<size_t>(res.numClusters), false);
    for (int c : res.clusterLabels)
        if (c >= 0) {
            ASSERT_LT(c, res.numClusters);
            seen[static_cast<size_t>(c)] = true;
        }
    for (size_t c = 0; c < seen.size(); ++c)
        EXPECT_TRUE(seen[c]) << "empty cluster id " << c;
}

TEST(PipelineMechanics, MalformedTraceSkippedOnIndividualPath)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 4, 8);
    trace::Trace rootless;
    rootless.traceId = "rootless";
    rootless.spans.push_back(
        makeSpan("a", "a", "backend", "Get", 0, 10));
    traces.push_back(rootless);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.clustering = false;
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);
    EXPECT_EQ(res.skippedTraces, 1u);
    EXPECT_EQ(res.rcaInvocations, traces.size() - 1);
    EXPECT_FALSE(res.perTrace.back().error.empty());
    for (size_t i = 0; i + 1 < traces.size(); ++i)
        EXPECT_TRUE(res.perTrace[i].error.empty()) << i;
}

namespace {

/** Full structural equality of two pipeline results. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.clusterLabels, b.clusterLabels);
    EXPECT_EQ(a.numClusters, b.numClusters);
    EXPECT_EQ(a.rcaInvocations, b.rcaInvocations);
    EXPECT_EQ(a.distanceEvaluations, b.distanceEvaluations);
    EXPECT_EQ(a.skippedTraces, b.skippedTraces);
    ASSERT_EQ(a.perTrace.size(), b.perTrace.size());
    for (size_t i = 0; i < a.perTrace.size(); ++i) {
        EXPECT_EQ(a.perTrace[i].services, b.perTrace[i].services) << i;
        EXPECT_EQ(a.perTrace[i].pods, b.perTrace[i].pods) << i;
        EXPECT_EQ(a.perTrace[i].nodes, b.perTrace[i].nodes) << i;
        EXPECT_EQ(a.perTrace[i].containers, b.perTrace[i].containers)
            << i;
        EXPECT_EQ(a.perTrace[i].iterations, b.perTrace[i].iterations)
            << i;
        EXPECT_EQ(a.perTrace[i].resolved, b.perTrace[i].resolved) << i;
        EXPECT_EQ(a.perTrace[i].error, b.perTrace[i].error) << i;
    }
}

} // namespace

TEST(PipelineMechanics, ParallelAnalyzeIsBitwiseIdenticalToSerial)
{
    PipeFixture &f = pipeFixture();
    // A mixed storm with noise, two failure modes, and one malformed
    // trace, so representatives, the far-member guard, the individual
    // fallback, and the skip path all execute.
    std::vector<trace::Trace> traces = storm("backend", 9, 9);
    std::vector<trace::Trace> other = storm("cache", 9, 10);
    traces.insert(traces.end(), other.begin(), other.end());
    trace::Trace bad;
    bad.traceId = "bad";
    bad.spans.push_back(
        makeSpan("x", "missing", "backend", "Get", 0, 10));
    traces.insert(traces.begin() + 5, bad);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    cfg.numThreads = 1;
    SleuthPipeline serial(f.model, f.encoder, f.profile, cfg);
    PipelineResult base = serial.analyze(traces, slos);
    EXPECT_EQ(base.skippedTraces, 1u);

    for (size_t threads : {size_t{2}, size_t{8}}) {
        cfg.numThreads = threads;
        SleuthPipeline parallel(f.model, f.encoder, f.profile, cfg);
        PipelineResult res = parallel.analyze(traces, slos);
        expectSameResult(base, res);
        // The clustering-off path must be thread-count-invariant too.
        PipelineConfig indiv = cfg;
        indiv.clustering = false;
        PipelineConfig indiv1 = indiv;
        indiv1.numThreads = 1;
        SleuthPipeline pi(f.model, f.encoder, f.profile, indiv);
        SleuthPipeline pi1(f.model, f.encoder, f.profile, indiv1);
        expectSameResult(pi1.analyze(traces, slos),
                         pi.analyze(traces, slos));
    }
}

TEST(PipelineMechanics, EmptyInput)
{
    PipeFixture &f = pipeFixture();
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, {});
    PipelineResult res = pipeline.analyze({}, {});
    EXPECT_TRUE(res.perTrace.empty());
    EXPECT_EQ(res.rcaInvocations, 0u);
}

TEST(PipelineMechanics, MixedStormSeparatesFailureModes)
{
    PipeFixture &f = pipeFixture();
    // Two distinct failure modes with structurally different spans.
    std::vector<trace::Trace> traces = storm("backend", 8, 5);
    std::vector<trace::Trace> other = storm("cache", 8, 6);
    traces.insert(traces.end(), other.begin(), other.end());
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);

    int backend_hits = 0, cache_hits = 0;
    for (size_t i = 0; i < 8; ++i)
        if (!res.perTrace[i].services.empty() &&
            res.perTrace[i].services[0] == "backend")
            ++backend_hits;
    for (size_t i = 8; i < 16; ++i)
        if (!res.perTrace[i].services.empty() &&
            res.perTrace[i].services[0] == "cache")
            ++cache_hits;
    EXPECT_GE(backend_hits, 6);
    EXPECT_GE(cache_hits, 6);
}
