// Unit tests for SleuthPipeline mechanics: representative-distance
// guard, invocation accounting, DBSCAN/HDBSCAN parity on pure
// clusters, and end-to-end determinism.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

/** Model trained on two-level traces (as in counterfactual_test). */
struct PipeFixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    PipeFixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 4;
              return c;
          }())
    {
        util::Rng rng(8);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 100; ++i)
            corpus.push_back(makeTrace(rng, "backend", i >= 85));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    static trace::Trace
    makeTrace(util::Rng &rng, const std::string &backend,
              bool slow = false)
    {
        int64_t b = rng.uniformInt(150, 300) * (slow ? 12 : 1);
        int64_t pre = rng.uniformInt(50, 120);
        trace::Trace t;
        t.traceId = "t" + std::to_string(rng.uniformInt(0, 1 << 30));
        t.spans.push_back(
            makeSpan("r", "", "frontend", "Handle", 0, pre + b + 80));
        t.spans.push_back(makeSpan("c", "r", "frontend",
                                   "Get" + backend, pre, pre + b + 40,
                                   trace::SpanKind::Client));
        t.spans.push_back(makeSpan("s", "c", backend, "Get" + backend,
                                   pre + 20, pre + 20 + b));
        return t;
    }
};

PipeFixture &
pipeFixture()
{
    static PipeFixture f;
    return f;
}

/** A storm: n slow traces through `backend`. */
std::vector<trace::Trace>
storm(const std::string &backend, size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<trace::Trace> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(PipeFixture::makeTrace(rng, backend, true));
    return out;
}

} // namespace

TEST(PipelineMechanics, PureClusterOneInvocation)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 12, 1);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);

    // Identical failure mode: few clusters, far fewer RCA calls than
    // traces, same verdict everywhere.
    EXPECT_LT(res.rcaInvocations, traces.size() / 2);
    for (const RcaResult &r : res.perTrace) {
        ASSERT_FALSE(r.services.empty());
        EXPECT_EQ(r.services[0], "backend");
    }
}

TEST(PipelineMechanics, GuardSendsFarMembersToIndividualRca)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 10, 2);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig strict;
    strict.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                      .clusterSelectionEpsilon = 0.0};
    strict.maxRepresentativeDistance = 1e-9;  // nobody inherits
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, strict);
    PipelineResult res = pipeline.analyze(traces, slos);
    // Every non-representative member falls back to individual RCA.
    EXPECT_GE(res.rcaInvocations, traces.size());
}

TEST(PipelineMechanics, DbscanMatchesHdbscanOnPureStorm)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 12, 3);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig hd;
    hd.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                  .clusterSelectionEpsilon = 0.0};
    PipelineConfig db;
    db.algorithm = PipelineConfig::Algorithm::Dbscan;
    db.dbscan = {.eps = 0.5, .minPts = 3};

    SleuthPipeline p1(f.model, f.encoder, f.profile, hd);
    SleuthPipeline p2(f.model, f.encoder, f.profile, db);
    PipelineResult r1 = p1.analyze(traces, slos);
    PipelineResult r2 = p2.analyze(traces, slos);
    for (size_t i = 0; i < traces.size(); ++i) {
        ASSERT_FALSE(r1.perTrace[i].services.empty());
        ASSERT_FALSE(r2.perTrace[i].services.empty());
        EXPECT_EQ(r1.perTrace[i].services[0],
                  r2.perTrace[i].services[0]);
    }
}

TEST(PipelineMechanics, DeterministicAcrossRuns)
{
    PipeFixture &f = pipeFixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 4);
    std::vector<int64_t> slos(traces.size(), 900);
    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 3, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult a = pipeline.analyze(traces, slos);
    PipelineResult b = pipeline.analyze(traces, slos);
    EXPECT_EQ(a.clusterLabels, b.clusterLabels);
    EXPECT_EQ(a.rcaInvocations, b.rcaInvocations);
    for (size_t i = 0; i < traces.size(); ++i)
        EXPECT_EQ(a.perTrace[i].services, b.perTrace[i].services);
}

TEST(PipelineMechanics, EmptyInput)
{
    PipeFixture &f = pipeFixture();
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, {});
    PipelineResult res = pipeline.analyze({}, {});
    EXPECT_TRUE(res.perTrace.empty());
    EXPECT_EQ(res.rcaInvocations, 0u);
}

TEST(PipelineMechanics, MixedStormSeparatesFailureModes)
{
    PipeFixture &f = pipeFixture();
    // Two distinct failure modes with structurally different spans.
    std::vector<trace::Trace> traces = storm("backend", 8, 5);
    std::vector<trace::Trace> other = storm("cache", 8, 6);
    traces.insert(traces.end(), other.begin(), other.end());
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyze(traces, slos);

    int backend_hits = 0, cache_hits = 0;
    for (size_t i = 0; i < 8; ++i)
        if (!res.perTrace[i].services.empty() &&
            res.perTrace[i].services[0] == "backend")
            ++backend_hits;
    for (size_t i = 8; i < 16; ++i)
        if (!res.perTrace[i].services.empty() &&
            res.perTrace[i].services[0] == "cache")
            ++cache_hits;
    EXPECT_GE(backend_hits, 6);
    EXPECT_GE(cache_hits, 6);
}
