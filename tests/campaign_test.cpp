// Campaign engine tests: scenario serialization and determinism, the
// invariant registry, the tier-1 pinned-seed campaign, and the
// mutation smoke check — a deliberately broken invariant must shrink
// to a minimal repro that campaign_replay reproduces bit-for-bit.

#include "campaign/campaign.h"

#include <gtest/gtest.h>

using namespace sleuth;
using namespace sleuth::campaign;

TEST(Scenario, JsonRoundTripIsExact)
{
    util::Rng rng(31);
    for (int i = 0; i < 25; ++i) {
        util::Rng fork = rng.fork(static_cast<uint64_t>(i));
        Scenario s = drawScenario(fork);
        s.keptTraces = {0, 2, 5};
        s.droppedFaults = {1};
        std::string err;
        util::Json doc = util::Json::parse(toJson(s).dump(), &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_TRUE(s == scenarioFromJson(doc));
    }
    // Empty shrink masks are omitted from the document and restored
    // as empty.
    Scenario plain;
    util::Json doc = toJson(plain);
    EXPECT_FALSE(doc.has("keptTraces"));
    EXPECT_FALSE(doc.has("droppedFaults"));
    EXPECT_TRUE(plain == scenarioFromJson(doc));
}

TEST(Scenario, DrawingIsSeedStable)
{
    util::Rng a(77), b(77);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(drawScenario(a) == drawScenario(b));
}

TEST(Scenario, BuildIsDeterministic)
{
    Scenario s;
    s.seed = 1234;
    s.numRpcs = 16;
    s.numQueries = 6;
    std::unique_ptr<ScenarioRun> a = buildScenario(s);
    std::unique_ptr<ScenarioRun> b = buildScenario(s);
    ASSERT_EQ(a->degenerate, b->degenerate);
    ASSERT_EQ(a->traces.size(), b->traces.size());
    for (size_t i = 0; i < a->traces.size(); ++i) {
        EXPECT_EQ(a->traces[i].traceId, b->traces[i].traceId);
        EXPECT_EQ(a->slos[i], b->slos[i]);
        EXPECT_EQ(a->truthServices[i], b->truthServices[i]);
    }
    if (!a->degenerate) {
        core::PipelineConfig cfg = s.pipelineConfig();
        core::PipelineResult ra = a->analyze(cfg);
        core::PipelineResult rb = b->analyze(cfg);
        EXPECT_EQ(ra.clusterLabels, rb.clusterLabels);
        ASSERT_EQ(ra.perTrace.size(), rb.perTrace.size());
        for (size_t i = 0; i < ra.perTrace.size(); ++i)
            EXPECT_EQ(ra.perTrace[i].services, rb.perTrace[i].services);
    }
}

TEST(Scenario, ShrinkMasksApply)
{
    Scenario s;
    s.seed = 1234;
    s.numRpcs = 16;
    s.numQueries = 8;
    std::unique_ptr<ScenarioRun> full = buildScenario(s);
    ASSERT_FALSE(full->degenerate);
    ASSERT_GE(full->traces.size(), 3u);

    Scenario masked = s;
    masked.keptTraces = {0, 2};
    std::unique_ptr<ScenarioRun> sub = buildScenario(masked);
    ASSERT_EQ(sub->traces.size(), 2u);
    EXPECT_EQ(sub->traces[0].traceId, full->traces[0].traceId);
    EXPECT_EQ(sub->traces[1].traceId, full->traces[2].traceId);

    // Dropping every fault leaves nothing to harvest: degenerate.
    Scenario no_faults = s;
    for (size_t i = 0; i < s.faultCount; ++i)
        no_faults.droppedFaults.push_back(i);
    EXPECT_TRUE(buildScenario(no_faults)->degenerate);
}

TEST(Invariants, RegistryIsComplete)
{
    const std::vector<Invariant> &reg = invariantRegistry();
    ASSERT_EQ(reg.size(), 15u);
    for (const Invariant &inv : reg) {
        EXPECT_FALSE(inv.name.empty());
        EXPECT_FALSE(inv.description.empty());
        EXPECT_TRUE(inv.check != nullptr);
        EXPECT_EQ(&findInvariant(inv.name), &inv);
        EXPECT_EQ(tryFindInvariant(inv.name), &inv);
    }
    EXPECT_EQ(tryFindInvariant("no-such-invariant"), nullptr);
    EXPECT_EQ(knownMutations().size(), 3u);
    EXPECT_EQ(knownMutations()[0], "miscount-skipped");
    EXPECT_EQ(knownMutations()[1], "overprune-root-cause");
    EXPECT_EQ(knownMutations()[2], "skip-eviction-replay");
}

TEST(Campaign, TierOnePinnedSeedIsGreen)
{
    // The tier-1 gate: 20 scenarios from a pinned master seed, every
    // invariant green. Deterministic — a failure here is a real
    // regression, never a flake.
    CampaignParams params;
    params.seed = 1;
    params.scenarios = 20;
    params.shrink = false;
    CampaignReport report = runCampaign(params);
    ASSERT_EQ(report.outcomes.size(), 20u);
    for (const ScenarioOutcome &o : report.outcomes)
        for (const InvariantOutcome &c : o.checks)
            EXPECT_TRUE(c.pass) << c.invariant << " failed on seed "
                                << o.scenario.seed << ": " << c.detail;
    EXPECT_TRUE(report.allPassed());
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_GE(report.checksRun(),
              (report.outcomes.size() - report.degenerateScenarios()) *
                  invariantRegistry().size());

    util::Json rows = report.benchJson(1.5);
    ASSERT_GE(rows.asArray().size(), 5u);
    for (const util::Json &row : rows.asArray()) {
        EXPECT_TRUE(row.has("metric"));
        EXPECT_TRUE(row.has("value"));
        EXPECT_TRUE(row.has("unit"));
    }
}

TEST(Campaign, MutationSmokeShrinksToReplayableRepro)
{
    // End-to-end proof that a real invariant violation would be caught,
    // minimized, and shipped as a deterministic repro: a test-only
    // mutation makes the skipped-accounting invariant expect one more
    // skip than the pipeline reports, which must fail on every
    // scenario.
    CampaignParams params;
    params.seed = 5;
    params.scenarios = 1;
    params.mutation = "miscount-skipped";
    params.maxShrinkRuns = 60;
    CampaignReport report = runCampaign(params);
    ASSERT_EQ(report.outcomes.size(), 1u);
    ASSERT_FALSE(report.outcomes[0].degenerate);
    EXPECT_FALSE(report.allPassed());
    ASSERT_EQ(report.repros.size(), 1u);

    const ReproCase &repro = report.repros[0];
    EXPECT_EQ(repro.invariant, "skipped-accounting");
    EXPECT_EQ(repro.mutation, "miscount-skipped");
    EXPECT_EQ(repro.expect, "fail");
    // The shrinker must have minimized the incident: a single kept
    // trace suffices to exhibit a miscount.
    EXPECT_EQ(repro.scenario.keptTraces.size(), 1u);

    // The repro survives a JSON round trip and replays to the same
    // deterministic failure.
    std::string err;
    util::Json doc = util::Json::parse(toJson(repro).dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    ReproCase reloaded = reproFromJson(doc);
    EXPECT_TRUE(reloaded.scenario == repro.scenario);
    InvariantResult first = replayCase(reloaded);
    InvariantResult second = replayCase(reloaded);
    EXPECT_FALSE(first.pass);
    EXPECT_EQ(first.detail, second.detail);

    // Without the mutation the same scenario is healthy: the failure
    // was injected, not real.
    EXPECT_TRUE(runInvariantOnScenario(repro.scenario,
                                       repro.invariant, "")
                    .pass);
}

TEST(Campaign, ShrinkerKeepsFailureAndShrinksBudgeted)
{
    util::Rng rng(5);
    util::Rng fork = rng.fork(0);
    Scenario s = drawScenario(fork);
    ASSERT_FALSE(
        runInvariantOnScenario(s, "skipped-accounting",
                               "miscount-skipped")
            .pass);
    ShrinkStats stats;
    Scenario small = shrinkScenario(s, "skipped-accounting",
                                    "miscount-skipped", 40, &stats);
    EXPECT_LE(stats.runs, 40u);
    EXPECT_GT(stats.accepted, 0u);
    EXPECT_LE(small.numRpcs, s.numRpcs);
    EXPECT_FALSE(
        runInvariantOnScenario(small, "skipped-accounting",
                               "miscount-skipped")
            .pass);
}
