// The pinned guarantee of the metrics layer: recording metrics is a
// write-only side channel, so pipeline analysis results are bitwise
// identical with metrics enabled or disabled, at any thread count.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

/** Small trained model (mirrors the pipeline_test fixture). */
struct Fixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    Fixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 4;
              return c;
          }())
    {
        util::Rng rng(8);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 100; ++i)
            corpus.push_back(makeTrace(rng, "backend", i >= 85));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    static trace::Trace
    makeTrace(util::Rng &rng, const std::string &backend,
              bool slow = false)
    {
        int64_t b = rng.uniformInt(150, 300) * (slow ? 12 : 1);
        int64_t pre = rng.uniformInt(50, 120);
        trace::Trace t;
        t.traceId = "t" + std::to_string(rng.uniformInt(0, 1 << 30));
        t.spans.push_back(
            makeSpan("r", "", "frontend", "Handle", 0, pre + b + 80));
        t.spans.push_back(makeSpan("c", "r", "frontend",
                                   "Get" + backend, pre, pre + b + 40,
                                   trace::SpanKind::Client));
        t.spans.push_back(makeSpan("s", "c", backend, "Get" + backend,
                                   pre + 20, pre + 20 + b));
        return t;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

/** Every result field, bitwise, as one comparable string. */
std::string
fingerprint(const PipelineResult &r)
{
    std::ostringstream out;
    out << r.numClusters << "|" << r.rcaInvocations << "|"
        << r.distanceEvaluations << "|" << r.skippedTraces << "\n";
    for (int label : r.clusterLabels)
        out << label << ",";
    out << "\n";
    for (const RcaResult &v : r.perTrace) {
        for (const std::string &s : v.services)
            out << s << " ";
        out << "|";
        for (const std::string &s : v.pods)
            out << s << " ";
        out << "|";
        for (const std::string &s : v.nodes)
            out << s << " ";
        out << "|";
        for (const std::string &s : v.containers)
            out << s << " ";
        out << "|" << v.iterations << "|" << v.resolved << "|"
            << v.error << "\n";
    }
    return out.str();
}

} // namespace

TEST(ObsDeterminism, MetricsOnOffAndThreadCountNeverChangeResults)
{
    Fixture &f = fixture();
    // Mixed batch: two failure modes plus one malformed trace, so
    // encode/distance/cluster/RCA stage timers and the skip accounting
    // all fire while metrics are on.
    util::Rng rng(9);
    std::vector<trace::Trace> traces;
    for (int i = 0; i < 9; ++i)
        traces.push_back(Fixture::makeTrace(rng, "backend", true));
    for (int i = 0; i < 9; ++i)
        traces.push_back(Fixture::makeTrace(rng, "cache", true));
    trace::Trace bad;
    bad.traceId = "bad";
    bad.spans.push_back(
        makeSpan("x", "missing", "backend", "Get", 0, 10));
    traces.insert(traces.begin() + 5, bad);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};

    std::string reference;
    for (bool metrics : {true, false}) {
        obs::setEnabled(metrics);
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
            cfg.numThreads = threads;
            SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                                    cfg);
            std::string fp = fingerprint(pipeline.analyze(traces, slos));
            if (reference.empty())
                reference = fp;
            else
                EXPECT_EQ(fp, reference)
                    << "metrics=" << metrics << " threads=" << threads;
        }
    }
    obs::setEnabled(true);
    ASSERT_FALSE(reference.empty());

    // The metrics-on runs actually recorded: stage timers and batch
    // counters are live in the default registry.
    std::string text = obs::renderText();
    EXPECT_NE(text.find("sleuth_pipeline_stage_ms_count{stage=\"encode\"}"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_pipeline_batches_total"),
              std::string::npos);
}
