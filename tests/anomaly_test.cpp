// Tests for the anomaly detection front end: SLO-based detection and
// model-based counterfactual-baseline detection.

#include <gtest/gtest.h>

#include "core/anomaly.h"
#include "core/trainer.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

TEST(SloDetector, LatencyBreach)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("r", "", "s", "op", 0, 5000));
    EXPECT_TRUE(SloDetector::isAnomalous(t, 1000));
    EXPECT_FALSE(SloDetector::isAnomalous(t, 10000));
    EXPECT_FALSE(SloDetector::isAnomalous(t, 0));  // unconstrained
}

TEST(SloDetector, RootErrorAlwaysAnomalous)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("r", "", "s", "op", 0, 10,
                               trace::SpanKind::Server,
                               trace::StatusCode::Error));
    EXPECT_TRUE(SloDetector::isAnomalous(t, 0));
    EXPECT_TRUE(SloDetector::isAnomalous(t, 1000000));
}

TEST(SloDetector, ChildErrorAloneNotAnomalous)
{
    // Handled (non-propagated) child errors do not breach the SLO.
    trace::Trace t;
    t.spans.push_back(makeSpan("r", "", "s", "op", 0, 100));
    t.spans.push_back(makeSpan("c", "r", "s2", "op", 10, 50,
                               trace::SpanKind::Client,
                               trace::StatusCode::Error));
    EXPECT_FALSE(SloDetector::isAnomalous(t, 1000));
}

namespace {

struct DetectorFixture
{
    synth::AppConfig app;
    sim::ClusterModel cluster;
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;
    std::vector<trace::Trace> normal;

    DetectorFixture()
        : app(synth::generateApp(synth::syntheticParams(16, 55))),
          cluster(app, 10, 1),
          model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 7;
              return c;
          }())
    {
        sim::Simulator sim(app, cluster, {.seed = 5});
        for (int i = 0; i < 150; ++i) {
            normal.push_back(sim.simulateOne().trace);
            profile.add(normal.back());
        }
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(normal);
    }
};

DetectorFixture &
detectorFixture()
{
    static DetectorFixture f;
    return f;
}

} // namespace

TEST(ModelDetector, NormalTracesScoreLow)
{
    DetectorFixture &f = detectorFixture();
    ModelDetector det(f.model, f.encoder, f.profile);
    det.calibrate(f.normal, 99.0);
    EXPECT_GT(det.threshold(), 0.0);
    // At the 99th percentile threshold, ~1% of normal traces flag.
    int flagged = 0;
    for (const trace::Trace &t : f.normal)
        flagged += det.isAnomalous(t);
    EXPECT_LE(flagged, static_cast<int>(f.normal.size() / 20));
}

TEST(ModelDetector, FaultyTracesScoreHigher)
{
    DetectorFixture &f = detectorFixture();
    ModelDetector det(f.model, f.encoder, f.profile);
    det.calibrate(f.normal, 95.0);

    chaos::FaultPlan plan;
    for (const chaos::Instance &inst : f.cluster.instancesOf(1))
        plan.faults.push_back({chaos::FaultType::CpuStress,
                               chaos::FaultScope::Container,
                               inst.container, 20.0, 0.0});
    for (const chaos::Instance &inst : f.cluster.instancesOf(2))
        plan.faults.push_back({chaos::FaultType::MemoryStress,
                               chaos::FaultScope::Container,
                               inst.container, 20.0, 0.0});
    sim::Simulator faulty(f.app, f.cluster, {.seed = 77}, plan);

    int flagged = 0, touched = 0;
    for (int i = 0; i < 150 && touched < 40; ++i) {
        sim::SimResult r = faulty.simulateOne();
        if (!r.faultTouched())
            continue;
        ++touched;
        flagged += det.isAnomalous(r.trace);
    }
    ASSERT_GE(touched, 20);
    // A majority of materially faulted traces exceed the threshold.
    EXPECT_GE(flagged * 2, touched);
}

TEST(ModelDetector, RequiresCalibration)
{
    DetectorFixture &f = detectorFixture();
    ModelDetector det(f.model, f.encoder, f.profile);
    EXPECT_DEATH((void)det.isAnomalous(f.normal[0]),
                 "not calibrated");
}
