// QuantileSketch: accuracy bound, merge semantics, window-boundary
// behavior (two half-window sketches merged == one full-window sketch),
// and the read-time collapse view (budgeted reads, merge-order-free
// storage).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "online/sketch.h"
#include "util/rng.h"

using namespace sleuth;
using online::QuantileSketch;

namespace {

double
exactQuantile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(
        q * static_cast<double>(xs.size() - 1));
    return xs[rank];
}

} // namespace

TEST(QuantileSketch, EmptyIsZero)
{
    QuantileSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.buckets(), 0u);
}

TEST(QuantileSketch, RelativeAccuracyBoundHolds)
{
    const double alpha = 0.02;
    QuantileSketch s(alpha);
    util::Rng rng(42);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) {
        double x = rng.logNormal(8.0, 1.2);  // latency-like heavy tail
        xs.push_back(x);
        s.add(x);
    }
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
        double exact = exactQuantile(xs, q);
        double est = s.quantile(q);
        EXPECT_NEAR(est, exact, exact * 2.0 * alpha)
            << "quantile " << q;
    }
}

TEST(QuantileSketch, ZerosAndNegativesClampIntoZeroBucket)
{
    QuantileSketch s;
    s.add(0.0);
    s.add(-5.0);
    s.add(100.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.quantile(0.0), 0.0);
    EXPECT_GT(s.quantile(1.0), 90.0);
}

// The window-boundary property the storm detector relies on: merging
// the sketches of two half windows is EXACTLY the sketch of the full
// window — same buckets, same counts, same quantiles — regardless of
// how observations were split across the halves.
TEST(QuantileSketch, TwoHalfWindowsMergeExactlyToFullWindow)
{
    const double alpha = 0.02;
    QuantileSketch full(alpha);
    QuantileSketch first_half(alpha);
    QuantileSketch second_half(alpha);
    util::Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        double x = rng.logNormal(7.5, 1.0);
        full.add(x);
        (i % 2 == 0 ? first_half : second_half).add(x);
    }
    QuantileSketch merged(alpha);
    merged.merge(first_half);
    merged.merge(second_half);
    EXPECT_TRUE(merged == full);
    EXPECT_EQ(merged.count(), full.count());
    for (double q : {0.01, 0.25, 0.5, 0.75, 0.99})
        EXPECT_EQ(merged.quantile(q), full.quantile(q));
}

TEST(QuantileSketch, MergeIsCommutative)
{
    QuantileSketch a(0.02), b(0.02);
    util::Rng rng(3);
    for (int i = 0; i < 500; ++i)
        a.add(rng.logNormal(6.0, 0.8));
    for (int i = 0; i < 700; ++i)
        b.add(rng.logNormal(9.0, 0.5));
    QuantileSketch ab(0.02), ba(0.02);
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    EXPECT_TRUE(ab == ba);
}

// The maxBuckets budget is applied as a read-time view over raw
// buckets (never to storage), so a budget-limited sketch still answers
// upper quantiles within the accuracy bound: the collapse folds LOW
// buckets only.
TEST(QuantileSketch, CollapseViewKeepsUpperQuantiles)
{
    const double alpha = 0.02;
    QuantileSketch bounded(alpha, 32);
    QuantileSketch unbounded(alpha, 0);
    util::Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 3000; ++i) {
        double x = rng.pareto(10.0, 1.1);  // very wide dynamic range
        xs.push_back(x);
        bounded.add(x);
        unbounded.add(x);
    }
    // Raw storage is identical — the budget changes reads, not writes.
    EXPECT_EQ(bounded.buckets(), unbounded.buckets());
    EXPECT_GT(bounded.buckets(), 32u);
    double exact = exactQuantile(xs, 0.99);
    EXPECT_NEAR(bounded.quantile(0.99), exact, exact * 2.0 * alpha);
    // The collapsed view floors low quantiles at the collapse target,
    // so p0 through the budgeted view is >= the unbounded estimate.
    EXPECT_GE(bounded.quantile(0.0), unbounded.quantile(0.0));
}

// Regression for the merge-order sensitivity the eager collapse had:
// with a tiny budget, sharded accumulation must stay bitwise equal to
// sequential adds, whichever order the shards merge in.
TEST(QuantileSketch, TinyBudgetShardMergeEqualsSequentialAdds)
{
    const double alpha = 0.02;
    const size_t kBudget = 4;
    QuantileSketch sequential(alpha, kBudget);
    QuantileSketch shard_a(alpha, kBudget);
    QuantileSketch shard_b(alpha, kBudget);
    QuantileSketch shard_c(alpha, kBudget);
    util::Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        double x = rng.pareto(5.0, 1.2);
        sequential.add(x);
        (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c).add(x);
    }
    QuantileSketch abc(alpha, kBudget);
    abc.merge(shard_a);
    abc.merge(shard_b);
    abc.merge(shard_c);
    QuantileSketch cba(alpha, kBudget);
    cba.merge(shard_c);
    cba.merge(shard_b);
    cba.merge(shard_a);
    EXPECT_TRUE(abc == sequential);
    EXPECT_TRUE(cba == sequential);
    for (double q : {0.0, 0.5, 0.99})
        EXPECT_EQ(abc.quantile(q), sequential.quantile(q));
}

TEST(QuantileSketchDeathTest, MergeRejectsMismatchedBudgets)
{
    QuantileSketch a(0.02, 8);
    QuantileSketch b(0.02, 16);
    EXPECT_DEATH(a.merge(b), "bucket budgets");
}

TEST(QuantileSketch, ClearResets)
{
    QuantileSketch s;
    s.add(10.0);
    s.add(20.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.quantile(0.9), 0.0);
    QuantileSketch empty;
    EXPECT_TRUE(s == empty);
}
