// Unit tests for feature engineering: duration scaling, normal
// profiles, and graph batch encoding.

#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::figure2Trace;
using sleuth::testing::makeSpan;

TEST(DurationScale, RoundTrip)
{
    DurationScale sc;
    for (double us : {1.0, 100.0, 1e4, 1e6}) {
        double scaled = sc.scaleUs(us);
        EXPECT_NEAR(sc.unscale(scaled), us, us * 1e-9);
    }
    // Paper constants: 10^4 us maps to 0.
    EXPECT_NEAR(sc.scaleUs(1e4), 0.0, 1e-12);
    EXPECT_NEAR(sc.scaleUs(1e5), 1.0, 1e-12);
}

TEST(DurationScale, SubMicrosecondClamped)
{
    DurationScale sc;
    EXPECT_DOUBLE_EQ(sc.scaleUs(0.0), sc.scaleUs(1.0));
}

TEST(NormalProfile, MediansPerOperation)
{
    NormalProfile profile;
    for (int i = 0; i < 5; ++i) {
        trace::Trace t;
        // Leaf span: exclusive == duration in {100,200,300,400,500}.
        t.spans.push_back(makeSpan("a", "", "svc", "op", 0,
                                   100 * (i + 1)));
        profile.add(t);
    }
    profile.finalize();
    EXPECT_DOUBLE_EQ(
        profile.medianExclusiveUs("svc", "op", trace::SpanKind::Server),
        300.0);
    EXPECT_DOUBLE_EQ(
        profile.medianDurationUs("svc", "op", trace::SpanKind::Server),
        300.0);
    EXPECT_EQ(profile.size(), 1u);
}

TEST(NormalProfile, UnseenOperationFallsBackToGlobal)
{
    NormalProfile profile;
    trace::Trace t;
    t.spans.push_back(makeSpan("a", "", "svc", "op", 0, 240));
    profile.add(t);
    profile.finalize();
    EXPECT_DOUBLE_EQ(profile.medianExclusiveUs(
                         "other", "op2", trace::SpanKind::Client),
                     240.0);
}

TEST(NormalProfile, DistinguishesKinds)
{
    NormalProfile profile;
    trace::Trace t;
    t.spans.push_back(makeSpan("a", "", "svc", "op", 0, 100,
                               trace::SpanKind::Server));
    profile.add(t);
    trace::Trace t2;
    t2.spans.push_back(makeSpan("a", "", "svc", "op", 0, 900,
                                trace::SpanKind::Client));
    profile.add(t2);
    profile.finalize();
    EXPECT_DOUBLE_EQ(
        profile.medianExclusiveUs("svc", "op", trace::SpanKind::Server),
        100.0);
    EXPECT_DOUBLE_EQ(
        profile.medianExclusiveUs("svc", "op", trace::SpanKind::Client),
        900.0);
}

TEST(FeatureEncoder, SingleTraceBatchShape)
{
    FeatureEncoder enc(8);
    trace::Trace t = figure2Trace();
    TraceBatch b = enc.encode(t);
    EXPECT_EQ(b.numNodes, 3u);
    EXPECT_EQ(b.featureDim(), 10u);
    EXPECT_EQ(b.edgeChild.size(), 2u);
    EXPECT_EQ(b.traceRoot.size(), 1u);
    EXPECT_EQ(b.traceRoot[0], 0u);
    // Edge parents point to the root span row.
    for (size_t p : b.edgeParent)
        EXPECT_EQ(p, 0u);
}

TEST(FeatureEncoder, DurationAndErrorColumns)
{
    FeatureEncoder enc(4);
    trace::Trace t = figure2Trace();
    t.spans[1].status = trace::StatusCode::Error;
    TraceBatch b = enc.encode(t);
    size_t dcol = 4, errcol = 5;
    EXPECT_NEAR(b.x.at(0, dcol), enc.scale().scaleUs(100.0), 1e-12);
    EXPECT_DOUBLE_EQ(b.x.at(1, errcol), 1.0);
    EXPECT_DOUBLE_EQ(b.x.at(2, errcol), 0.0);
    // Exclusive duration of the root (30us) differs from full (100us).
    EXPECT_NEAR(b.xExcl.at(0, dcol), enc.scale().scaleUs(30.0), 1e-12);
    // Span 1 errors with no erroring children => exclusive error.
    EXPECT_DOUBLE_EQ(b.xExcl.at(1, errcol), 1.0);
}

TEST(FeatureEncoder, MultiTraceDisjointUnion)
{
    FeatureEncoder enc(4);
    trace::Trace a = figure2Trace();
    trace::Trace b = figure2Trace();
    TraceBatch batch = enc.encode({&a, &b});
    EXPECT_EQ(batch.numNodes, 6u);
    EXPECT_EQ(batch.traceOffset.size(), 2u);
    EXPECT_EQ(batch.traceOffset[1], 3u);
    EXPECT_EQ(batch.traceRoot[1], 3u);
    EXPECT_EQ(batch.edgeChild.size(), 4u);
    // No edge crosses the trace boundary.
    for (size_t e = 0; e < batch.edgeChild.size(); ++e) {
        bool child_first = batch.edgeChild[e] < 3;
        bool parent_first = batch.edgeParent[e] < 3;
        EXPECT_EQ(child_first, parent_first);
    }
}

TEST(FeatureEncoder, EmbeddingSharedAcrossSpans)
{
    FeatureEncoder enc(8);
    trace::Trace t;
    t.spans.push_back(makeSpan("r", "", "svc", "op", 0, 100));
    t.spans.push_back(makeSpan("a", "r", "svc", "op", 10, 50));
    TraceBatch b = enc.encode(t);
    for (size_t c = 0; c < 8; ++c)
        EXPECT_DOUBLE_EQ(b.x.at(0, c), b.x.at(1, c));
    // One distinct (service, name, kind) string cached.
    EXPECT_EQ(enc.embedder().cacheSize(), 1u);
}
