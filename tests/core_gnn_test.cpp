// Tests for the Sleuth GNN: shapes, gradients, training convergence on
// simulated traces, counterfactual propagation, and serialization.

#include <gtest/gtest.h>

#include "core/gnn.h"
#include "core/trainer.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::figure2Trace;

namespace {

std::vector<trace::Trace>
simulateCorpus(size_t n, uint64_t seed)
{
    static synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(16, 11));
    static sim::ClusterModel cluster(app, 10, 1);
    sim::Simulator simulator(app, cluster, {.seed = seed});
    std::vector<trace::Trace> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(simulator.simulateOne().trace);
    return out;
}

GnnConfig
smallConfig(Aggregator agg = Aggregator::Gin)
{
    GnnConfig c;
    c.embedDim = 8;
    c.hidden = 16;
    c.aggregator = agg;
    c.seed = 3;
    return c;
}

} // namespace

TEST(SleuthGnn, LossIsFiniteScalar)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    trace::Trace t = figure2Trace();
    TraceBatch b = enc.encode(t);
    nn::Var loss = model.loss(b);
    EXPECT_EQ(loss->value().size(), 1u);
    EXPECT_TRUE(std::isfinite(loss->value().item()));
    EXPECT_GT(loss->value().item(), 0.0);
}

TEST(SleuthGnn, GradientsFlowToAllParameters)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    auto corpus = simulateCorpus(4, 1);
    std::vector<const trace::Trace *> ptrs;
    for (const auto &t : corpus)
        ptrs.push_back(&t);
    TraceBatch b = enc.encode(ptrs);
    nn::Var loss = model.loss(b);
    nn::backward(loss);
    for (const nn::Var &p : model.parameters()) {
        double norm = 0;
        for (double g : p->grad().data())
            norm += g * g;
        EXPECT_GT(norm, 0.0) << "dead parameter tensor";
    }
}

TEST(SleuthGnn, SingleSpanTraceWorks)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    trace::Trace t;
    t.traceId = "solo";
    t.spans.push_back(sleuth::testing::makeSpan("a", "", "s", "op", 0,
                                                500));
    TraceBatch b = enc.encode(t);
    nn::Var loss = model.loss(b);
    EXPECT_TRUE(std::isfinite(loss->value().item()));
    GnnPrediction pred = model.reconstruct(b);
    // No children: prediction equals the exclusive (= own) duration.
    EXPECT_NEAR(pred.durScaled[0], enc.scale().scaleUs(500.0), 1e-9);
    EXPECT_NEAR(pred.errProb[0], 0.0, 1e-9);
}

TEST(SleuthGnn, TrainingReducesLoss)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    auto corpus = simulateCorpus(60, 2);
    TrainConfig tc;
    tc.epochs = 1;
    tc.tracesPerBatch = 8;
    tc.learningRate = 5e-3;
    Trainer trainer(model, enc, tc);
    double before = trainer.evaluate(corpus);
    for (int e = 0; e < 6; ++e)
        trainer.trainEpoch(corpus);
    double after = trainer.evaluate(corpus);
    EXPECT_LT(after, before * 0.8);
}

TEST(SleuthGnn, GcnVariantTrainsToo)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig(Aggregator::Gcn));
    auto corpus = simulateCorpus(40, 3);
    TrainConfig tc;
    tc.epochs = 4;
    tc.tracesPerBatch = 8;
    Trainer trainer(model, enc, tc);
    double before = trainer.evaluate(corpus);
    trainer.train(corpus);
    EXPECT_LT(trainer.evaluate(corpus), before);
}

TEST(SleuthGnn, ModelSizeIndependentOfGraph)
{
    SleuthGnn model(smallConfig());
    size_t params = model.parameterCount();
    // The same architecture serves any application size — this is the
    // paper's scalability claim (§7.1); parameter count depends only
    // on embedDim/hidden.
    GnnConfig c = smallConfig();
    SleuthGnn model2(c);
    EXPECT_EQ(model2.parameterCount(), params);
    EXPECT_GT(params, 0u);
    EXPECT_LT(params, 10000u);
}

TEST(SleuthGnn, PropagateRestoresDeepIntervention)
{
    // Train on a corpus, then check that restoring an inflated leaf
    // reduces the predicted root duration.
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    auto corpus = simulateCorpus(80, 4);
    TrainConfig tc;
    tc.epochs = 8;
    tc.tracesPerBatch = 8;
    Trainer trainer(model, enc, tc);
    trainer.train(corpus);

    // Build a chain trace: root <- mid <- leaf with an inflated leaf.
    trace::Trace t;
    t.spans.push_back(sleuth::testing::makeSpan(
        "r", "", corpus[0].spans[0].service,
        corpus[0].spans[0].name, 0, 1200000));
    t.spans.push_back(sleuth::testing::makeSpan(
        "m", "r", "mid-svc", "MidOp", 100, 1100000,
        trace::SpanKind::Client));
    t.spans.push_back(sleuth::testing::makeSpan(
        "l", "m", "leaf-svc", "LeafOp", 200, 1000000));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    TraceBatch b = enc.encode(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);

    std::vector<NodeState> observed(3);
    for (size_t i = 0; i < 3; ++i)
        observed[i] = {static_cast<double>(m.exclusiveUs[i]), 0.0};
    TracePrediction as_is = model.propagate(b, g, observed);

    std::vector<NodeState> restored = observed;
    restored[2].exclusiveUs = 500.0;  // leaf back to normal
    TracePrediction fixed = model.propagate(b, g, restored);

    EXPECT_LT(fixed.rootDurationUs, as_is.rootDurationUs);
}

TEST(SleuthGnn, PropagateClearsErrors)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    auto corpus = simulateCorpus(60, 5);
    // Inject synthetic error labels so the error head learns to
    // propagate: flip leaf spans to error and their ancestors too.
    for (auto &t : corpus) {
        if (t.spans.size() < 3)
            continue;
        for (auto &s : t.spans)
            if (t.traceId.back() % 3 == 0)
                s.status = trace::StatusCode::Error;
    }
    TrainConfig tc;
    tc.epochs = 6;
    tc.tracesPerBatch = 8;
    Trainer trainer(model, enc, tc);
    trainer.train(corpus);

    trace::Trace t = figure2Trace();
    for (auto &s : t.spans)
        s.status = trace::StatusCode::Error;
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    TraceBatch b = enc.encode(t);

    std::vector<NodeState> observed(3), cleared(3);
    for (size_t i = 0; i < 3; ++i) {
        observed[i] = {static_cast<double>(m.exclusiveUs[i]),
                       m.exclusiveError[i] ? 1.0 : 0.0};
        cleared[i] = {static_cast<double>(m.exclusiveUs[i]), 0.0};
    }
    TracePrediction with_err = model.propagate(b, g, observed);
    TracePrediction without = model.propagate(b, g, cleared);
    EXPECT_LE(without.rootErrorProb, with_err.rootErrorProb);
}

TEST(SleuthGnn, SaveLoadRoundTrip)
{
    FeatureEncoder enc(8);
    SleuthGnn a(smallConfig());
    auto corpus = simulateCorpus(20, 6);
    TrainConfig tc;
    tc.epochs = 2;
    Trainer trainer(a, enc, tc);
    trainer.train(corpus);

    util::Json doc = a.save();
    std::string err;
    util::Json parsed = util::Json::parse(doc.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    SleuthGnn b = SleuthGnn::fromJson(parsed);

    std::vector<const trace::Trace *> ptrs;
    for (const auto &t : corpus)
        ptrs.push_back(&t);
    TraceBatch batch = enc.encode(ptrs);
    EXPECT_NEAR(a.loss(batch)->value().item(),
                b.loss(batch)->value().item(), 1e-9);
}

TEST(SleuthGnn, RejectsMismatchedFeatureWidth)
{
    FeatureEncoder enc(4);  // model expects 8
    SleuthGnn model(smallConfig());
    trace::Trace t = figure2Trace();
    TraceBatch b = enc.encode(t);
    EXPECT_DEATH((void)model.loss(b), "feature width");
}
