#pragma once

// Shared helpers for constructing traces in unit tests.

#include <string>

#include "trace/trace.h"

namespace sleuth::testing {

/** Build a span with the commonly varied fields. */
inline trace::Span
makeSpan(const std::string &id, const std::string &parent,
         const std::string &service, const std::string &name,
         int64_t start_us, int64_t end_us,
         trace::SpanKind kind = trace::SpanKind::Server,
         trace::StatusCode status = trace::StatusCode::Ok)
{
    trace::Span s;
    s.spanId = id;
    s.parentSpanId = parent;
    s.service = service;
    s.name = name;
    s.kind = kind;
    s.startUs = start_us;
    s.endUs = end_us;
    s.status = status;
    s.container = service + "-ctr-0";
    s.pod = service + "-pod-0";
    s.node = "node-0";
    return s;
}

/**
 * The example trace of paper Figure 2: a parent span P with children A
 * and B where A and B overlap each other and the parent works before,
 * between, and after them.
 *
 * Timeline (us): P=[0,100]; A=[10,60]; B=[30,80].
 * Exclusive durations: P = (10-0)+(100-80) = 30; A = 50; B = 50 - but B
 * overlaps A in [30,60], exclusive means "not overlapping any CHILD", and
 * A/B are leaves, so A=50, B=50.
 */
inline trace::Trace
figure2Trace()
{
    trace::Trace t;
    t.traceId = "fig2";
    t.spans.push_back(makeSpan("p", "", "frontend", "handle", 0, 100));
    t.spans.push_back(makeSpan("a", "p", "svc-a", "opA", 10, 60));
    t.spans.push_back(makeSpan("b", "p", "svc-b", "opB", 30, 80));
    return t;
}

} // namespace sleuth::testing
