// Unit tests for the synthetic benchmark generator, catalog models,
// config serialization, service-update mutations, and code generation.

#include <gtest/gtest.h>

#include <fstream>

#include "synth/catalog.h"
#include "synth/codegen.h"
#include "synth/generator.h"
#include "synth/mutate.h"

using namespace sleuth;
using namespace sleuth::synth;

TEST(ConfigParse, TryTierFromStringRejectsUnknownWithoutAborting)
{
    Tier tier = Tier::Backend;
    EXPECT_TRUE(tryTierFromString("frontend", &tier));
    EXPECT_EQ(tier, Tier::Frontend);
    EXPECT_TRUE(tryTierFromString("middleware", &tier));
    EXPECT_EQ(tier, Tier::Middleware);
    EXPECT_TRUE(tryTierFromString("backend", &tier));
    EXPECT_EQ(tier, Tier::Backend);
    EXPECT_TRUE(tryTierFromString("leaf", &tier));
    EXPECT_EQ(tier, Tier::Leaf);

    tier = Tier::Middleware;
    EXPECT_FALSE(tryTierFromString("edge", &tier));
    EXPECT_FALSE(tryTierFromString("Frontend", &tier));
    EXPECT_FALSE(tryTierFromString("", &tier));
    EXPECT_EQ(tier, Tier::Middleware);  // untouched on failure
}

TEST(ConfigParse, TryResourceFromStringRejectsUnknownWithoutAborting)
{
    Resource r = Resource::Disk;
    EXPECT_TRUE(tryResourceFromString("cpu", &r));
    EXPECT_EQ(r, Resource::Cpu);
    EXPECT_TRUE(tryResourceFromString("memory", &r));
    EXPECT_EQ(r, Resource::Memory);
    EXPECT_TRUE(tryResourceFromString("disk", &r));
    EXPECT_EQ(r, Resource::Disk);
    EXPECT_TRUE(tryResourceFromString("network", &r));
    EXPECT_EQ(r, Resource::Network);

    r = Resource::Memory;
    EXPECT_FALSE(tryResourceFromString("gpu", &r));
    EXPECT_FALSE(tryResourceFromString("CPU", &r));
    EXPECT_FALSE(tryResourceFromString("", &r));
    EXPECT_EQ(r, Resource::Memory);
}

TEST(ConfigParse, TryAppFromJsonNamesTheOffendingField)
{
    // Start from a valid document and break one field at a time; the
    // error must be recoverable (no abort) and name the field.
    util::Json good = toJson(sockShopConfig());
    AppConfig parsed;
    std::string err;
    ASSERT_TRUE(tryAppFromJson(good, &parsed, &err)) << err;
    EXPECT_TRUE(err.empty());

    util::Json badTier = toJson(sockShopConfig());
    badTier.asObject()
        .at("services")
        .asArray()[2]
        .set("tier", util::Json("edge"));
    EXPECT_FALSE(tryAppFromJson(badTier, &parsed, &err));
    EXPECT_NE(err.find("services[2].tier"), std::string::npos) << err;
    EXPECT_NE(err.find("edge"), std::string::npos) << err;

    util::Json badResource = toJson(sockShopConfig());
    badResource.asObject()
        .at("rpcs")
        .asArray()[3]
        .asObject()
        .at("startKernel")
        .set("resource", util::Json("gpu"));
    EXPECT_FALSE(tryAppFromJson(badResource, &parsed, &err));
    EXPECT_NE(err.find("rpcs[3].startKernel.resource"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("gpu"), std::string::npos) << err;

    util::Json missing = toJson(sockShopConfig());
    missing.asObject().erase("network");
    EXPECT_FALSE(tryAppFromJson(missing, &parsed, &err));
    EXPECT_NE(err.find("network"), std::string::npos) << err;
    EXPECT_NE(err.find("missing"), std::string::npos) << err;

    util::Json mistyped = toJson(sockShopConfig());
    mistyped.asObject().at("flows").asArray()[0].set(
        "weight", util::Json("heavy"));
    EXPECT_FALSE(tryAppFromJson(mistyped, &parsed, &err));
    EXPECT_NE(err.find("flows[0].weight"), std::string::npos) << err;

    // Structural defects surface through the same recoverable path.
    util::Json broken = toJson(sockShopConfig());
    broken.asObject()
        .at("rpcs")
        .asArray()[0]
        .set("serviceId", util::Json(999.0));
    EXPECT_FALSE(tryAppFromJson(broken, &parsed, &err));
    EXPECT_NE(err.find("unknown service"), std::string::npos) << err;

    EXPECT_FALSE(tryAppFromJson(util::Json("not-an-object"), &parsed,
                                &err));
    EXPECT_FALSE(err.empty());
}

TEST(Generator, SyntheticParamsFollowPaperScales)
{
    GeneratorParams p16 = syntheticParams(16);
    EXPECT_EQ(p16.numServices, 4);
    EXPECT_EQ(p16.maxDepth, 3);
    EXPECT_EQ(p16.maxOutDegree, 4);
    GeneratorParams p1024 = syntheticParams(1024);
    EXPECT_EQ(p1024.numServices, 256);
    EXPECT_EQ(p1024.maxDepth, 15);
    EXPECT_EQ(p1024.maxOutDegree, 24);
}

TEST(Generator, ProducesRequestedScale)
{
    AppConfig app = generateApp(syntheticParams(64));
    EXPECT_EQ(app.services.size(), 16u);
    EXPECT_EQ(app.rpcs.size(), 64u);
    EXPECT_GE(app.flows.size(), 2u);
}

TEST(Generator, FullFlowCoversEveryRpc)
{
    AppConfig app = generateApp(syntheticParams(64));
    std::vector<bool> seen(app.rpcs.size(), false);
    for (const CallNode &nd : app.flows[0].nodes)
        seen[static_cast<size_t>(nd.rpcId)] = true;
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_TRUE(seen[i]) << "rpc " << i << " missing from full flow";
    EXPECT_EQ(app.flows[0].nodes.size(), app.rpcs.size());
}

TEST(Generator, RespectsDepthAndFanoutLimits)
{
    for (int n : {16, 64, 256}) {
        GeneratorParams p = syntheticParams(n);
        AppConfig app = generateApp(p);
        EXPECT_LE(app.maxFlowDepth(), p.maxDepth) << n;
        EXPECT_LE(app.maxFanout(), p.maxOutDegree) << n;
        EXPECT_EQ(app.maxFlowDepth(), p.maxDepth) << n;
    }
}

TEST(Generator, DeterministicForSeed)
{
    AppConfig a = generateApp(syntheticParams(32, 7));
    AppConfig b = generateApp(syntheticParams(32, 7));
    EXPECT_EQ(toJson(a).dump(), toJson(b).dump());
    AppConfig c = generateApp(syntheticParams(32, 8));
    EXPECT_NE(toJson(a).dump(), toJson(c).dump());
}

TEST(Generator, SurvivesTightAttachmentSeeds)
{
    // These (numRpcs, seed) pairs used to hit "cannot grow call tree"
    // when every candidate parent was saturated; attach() now over-fills
    // the least-loaded node instead of aborting. Found by the chaos
    // campaign (src/campaign).
    for (auto [n, seed] : {std::pair<int, uint64_t>{16, 12},
                           {12, 375}}) {
        AppConfig app = generateApp(syntheticParams(n, seed));
        app.validate();
        EXPECT_EQ(app.rpcs.size(), static_cast<size_t>(n));
        EXPECT_EQ(app.flows[0].nodes.size(), app.rpcs.size());
        // The fallback relaxes whichever limit blocked attachment, so
        // either bound may be exceeded — but only by the over-filled
        // node itself.
        GeneratorParams p = syntheticParams(n, seed);
        EXPECT_LE(app.maxFlowDepth(), p.maxDepth + 1);
        EXPECT_LE(app.maxFanout(), p.maxOutDegree + 1);
    }
}

TEST(Generator, VocabulariesAreDisjoint)
{
    AppConfig a = generateApp(syntheticParams(32, 1));
    GeneratorParams p = syntheticParams(32, 1);
    p.vocabulary = 2;
    AppConfig b = generateApp(p);
    for (const ServiceConfig &sa : a.services)
        for (const ServiceConfig &sb : b.services)
            EXPECT_NE(sa.name, sb.name);
}

TEST(Generator, EveryServiceHasAnRpc)
{
    AppConfig app = generateApp(syntheticParams(64));
    std::vector<bool> has(app.services.size(), false);
    for (const RpcConfig &r : app.rpcs)
        has[static_cast<size_t>(r.serviceId)] = true;
    for (size_t i = 0; i < has.size(); ++i)
        EXPECT_TRUE(has[i]);
}

TEST(Generator, LeafTierRpcsAreTerminal)
{
    AppConfig app = generateApp(syntheticParams(128));
    for (const FlowConfig &f : app.flows) {
        for (const CallNode &nd : f.nodes) {
            Tier t = app.services[static_cast<size_t>(
                app.rpcs[static_cast<size_t>(nd.rpcId)].serviceId)].tier;
            if (t == Tier::Leaf) {
                EXPECT_TRUE(nd.children.empty());
            }
        }
    }
}

TEST(ConfigJson, RoundTrip)
{
    AppConfig app = generateApp(syntheticParams(16));
    util::Json doc = toJson(app);
    std::string err;
    util::Json parsed = util::Json::parse(doc.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    AppConfig back = appFromJson(parsed);
    EXPECT_EQ(toJson(back).dump(), doc.dump());
}

TEST(Catalog, SockShopMatchesTable1Shape)
{
    AppConfig app = sockShopConfig();
    EXPECT_EQ(app.services.size(), 11u);  // paper: 11 services
    // Paper: POST /orders has 57 spans => ~29 call nodes, depth 5.
    EXPECT_GE(app.maxFlowNodes(), 20u);
    EXPECT_LE(app.maxFlowNodes(), 35u);
    EXPECT_EQ(app.maxFlowDepth(), 5);     // 2*5 - 1 = 9 span depth
    EXPECT_GE(app.flows.size(), 4u);
}

TEST(Catalog, SocialNetworkMatchesTable1Shape)
{
    AppConfig app = socialNetworkConfig();
    EXPECT_EQ(app.services.size(), 26u);  // paper: 26 services
    // Paper: ComposePost has 31 spans => ~16 call nodes, depth 5.
    EXPECT_GE(app.maxFlowNodes(), 12u);
    EXPECT_LE(app.maxFlowNodes(), 24u);
    EXPECT_EQ(app.maxFlowDepth(), 5);
}

TEST(Mutate, ScaleServiceLatencyShiftsLogMeans)
{
    AppConfig app = generateApp(syntheticParams(16));
    int svc = serviceAtDepth(app, 3);
    ASSERT_GE(svc, 0);
    double before = 0;
    for (const RpcConfig &r : app.rpcs)
        if (r.serviceId == svc) {
            before = r.startKernel.logMu;
            break;
        }
    scaleServiceLatency(app, svc, 10.0);
    for (const RpcConfig &r : app.rpcs)
        if (r.serviceId == svc) {
            EXPECT_NEAR(r.startKernel.logMu, before + std::log(10.0),
                        1e-12);
            break;
        }
}

TEST(Mutate, RemoveServicePrunesSubtrees)
{
    AppConfig app = generateApp(syntheticParams(64));
    size_t services_before = app.services.size();
    size_t rpcs_before = app.rpcs.size();
    int victim = serviceAtDepth(app, 3);
    ASSERT_GE(victim, 0);
    removeService(app, victim);
    EXPECT_EQ(app.services.size(), services_before - 1);
    EXPECT_LT(app.rpcs.size(), rpcs_before);
    app.validate();  // ids dense, trees intact
}

TEST(Mutate, RemoveFrontendDropsItsFlows)
{
    AppConfig app = sockShopConfig();
    // front-end is service 0 and roots every flow; removing it must
    // fail loudly rather than leave an app with no flows.
    EXPECT_DEATH(removeService(app, 0), "every flow");
}

TEST(Mutate, AddServiceAtDepth)
{
    AppConfig app = generateApp(syntheticParams(64));
    size_t nodes_before = app.flows[0].nodes.size();
    util::Rng rng(3);
    int sid = addServiceAtDepth(app, 2, "canary", rng);
    EXPECT_EQ(app.services[static_cast<size_t>(sid)].name, "canary");
    EXPECT_EQ(app.flows[0].nodes.size(), nodes_before + 1);
    EXPECT_EQ(serviceAtDepth(app, 2) >= 0, true);
}

TEST(Mutate, AddServiceChains)
{
    AppConfig app = generateApp(syntheticParams(64));
    size_t services_before = app.services.size();
    util::Rng rng(4);
    auto added = addServiceChains(app, 3, 3, rng);
    EXPECT_EQ(added.size(), 9u);
    EXPECT_EQ(app.services.size(), services_before + 9);
    app.validate();
}

TEST(Codegen, EmitsExpectedArtifacts)
{
    AppConfig app = sockShopConfig();
    auto files = generateCode(app);
    // proto + (source + manifest per service) + compose + config.
    EXPECT_EQ(files.size(), 1 + 2 * app.services.size() + 2);
    bool saw_proto = false, saw_orders = false, saw_yaml = false;
    for (const auto &f : files) {
        if (f.path == "proto/sockshop.proto") {
            saw_proto = true;
            EXPECT_NE(f.contents.find("service front_end"),
                      std::string::npos);
            EXPECT_NE(f.contents.find("rpc CreateOrder"),
                      std::string::npos);
        }
        if (f.path == "services/orders/main.cc") {
            saw_orders = true;
            EXPECT_NE(f.contents.find("call_rpc(\"payment\""),
                      std::string::npos);
            EXPECT_NE(f.contents.find("startSpan"), std::string::npos);
        }
        if (f.path == "k8s/orders.yaml") {
            saw_yaml = true;
            EXPECT_NE(f.contents.find("kind: Deployment"),
                      std::string::npos);
            EXPECT_NE(f.contents.find("replicas: 2"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(saw_proto);
    EXPECT_TRUE(saw_orders);
    EXPECT_TRUE(saw_yaml);
}

TEST(Codegen, AsyncCallsUsePublish)
{
    AppConfig app = sockShopConfig();
    auto files = generateCode(app);
    bool found = false;
    for (const auto &f : files) {
        if (f.path == "services/queue-master/main.cc" &&
            f.contents.find("publish_async(") != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Codegen, WritesFilesToDisk)
{
    AppConfig app = generateApp(syntheticParams(16));
    auto files = generateCode(app);
    std::string root = ::testing::TempDir() + "/sleuth-codegen";
    writeFiles(files, root);
    std::ifstream in(root + "/config.json");
    ASSERT_TRUE(in.good());
}

// Parameterized generator sweep: structural invariants hold across
// scales and seeds.
struct GenCase
{
    int rpcs;
    uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenCase>
{
};

TEST_P(GeneratorSweep, StructuralInvariants)
{
    GeneratorParams p = syntheticParams(GetParam().rpcs,
                                        GetParam().seed);
    AppConfig app = generateApp(p);
    app.validate();
    EXPECT_EQ(app.rpcs.size(), static_cast<size_t>(GetParam().rpcs));
    EXPECT_LE(app.maxFlowDepth(), p.maxDepth);
    EXPECT_LE(app.maxFanout(), p.maxOutDegree);
    // The full flow covers every rpc exactly once.
    std::vector<int> count(app.rpcs.size(), 0);
    for (const CallNode &nd : app.flows[0].nodes)
        count[static_cast<size_t>(nd.rpcId)]++;
    for (int c : count)
        EXPECT_EQ(c, 1);
    // Flow roots are frontend services.
    for (const FlowConfig &f : app.flows) {
        int svc = app.rpcs[static_cast<size_t>(
                               f.nodes[static_cast<size_t>(f.root)]
                                   .rpcId)]
                      .serviceId;
        EXPECT_EQ(app.services[static_cast<size_t>(svc)].tier,
                  Tier::Frontend);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndSeeds, GeneratorSweep,
    ::testing::Values(GenCase{16, 1}, GenCase{16, 9}, GenCase{32, 2},
                      GenCase{64, 3}, GenCase{128, 4},
                      GenCase{256, 5}, GenCase{512, 6}),
    [](const ::testing::TestParamInfo<GenCase> &info) {
        return "r" + std::to_string(info.param.rpcs) + "_s" +
               std::to_string(info.param.seed);
    });
