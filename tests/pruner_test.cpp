// RcaPruner unit tests: the conservative guaranteed-superset mode
// (pruned result bit-for-bit equal to the full run), aggressive
// thresholding/dedup with exemplar inheritance, detector-signal
// gating, and malformed-trace handling.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "core/pruner.h"
#include "core/trainer.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

/** Model trained on two-level traces (as in pipeline_test). */
struct PruneFixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    PruneFixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 4;
              return c;
          }())
    {
        util::Rng rng(8);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 100; ++i)
            corpus.push_back(makeTrace(rng, "backend", i >= 85));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    static trace::Trace
    makeTrace(util::Rng &rng, const std::string &backend,
              bool slow = false)
    {
        int64_t b = rng.uniformInt(150, 300) * (slow ? 12 : 1);
        int64_t pre = rng.uniformInt(50, 120);
        trace::Trace t;
        t.traceId = "t" + std::to_string(rng.uniformInt(0, 1 << 30));
        t.spans.push_back(
            makeSpan("r", "", "frontend", "Handle", 0, pre + b + 80));
        t.spans.push_back(makeSpan("c", "r", "frontend",
                                   "Get" + backend, pre, pre + b + 40,
                                   trace::SpanKind::Client));
        t.spans.push_back(makeSpan("s", "c", backend, "Get" + backend,
                                   pre + 20, pre + 20 + b));
        return t;
    }
};

PruneFixture &
fixture()
{
    static PruneFixture f;
    return f;
}

std::vector<trace::Trace>
storm(const std::string &backend, size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<trace::Trace> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(PruneFixture::makeTrace(rng, backend, true));
    return out;
}

trace::Trace
malformedTrace()
{
    trace::Trace t;
    t.traceId = "bad";
    t.spans.push_back(makeSpan("r", "", "frontend", "Handle", 0, 100));
    t.spans.push_back(
        makeSpan("x", "nosuchspan", "backend", "Get", 10, 60));
    return t;
}

/** Full structural equality of two pipeline results. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.clusterLabels, b.clusterLabels);
    EXPECT_EQ(a.numClusters, b.numClusters);
    EXPECT_EQ(a.rcaInvocations, b.rcaInvocations);
    EXPECT_EQ(a.distanceEvaluations, b.distanceEvaluations);
    EXPECT_EQ(a.skippedTraces, b.skippedTraces);
    ASSERT_EQ(a.perTrace.size(), b.perTrace.size());
    for (size_t i = 0; i < a.perTrace.size(); ++i) {
        EXPECT_EQ(a.perTrace[i].services, b.perTrace[i].services) << i;
        EXPECT_EQ(a.perTrace[i].iterations, b.perTrace[i].iterations)
            << i;
        EXPECT_EQ(a.perTrace[i].resolved, b.perTrace[i].resolved) << i;
        EXPECT_EQ(a.perTrace[i].error, b.perTrace[i].error) << i;
    }
}

} // namespace

TEST(RcaPruner, ConservativePlanKeepsEverything)
{
    PruneFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 6, 1);
    traces.push_back(malformedTrace());
    std::vector<int64_t> slos(traces.size(), 900);

    PruneConfig cfg;
    cfg.mode = PruneConfig::Mode::Conservative;
    RcaPruner pruner(f.profile, cfg, RcaParams{});
    PrunePlan plan = pruner.plan(traces, slos);

    EXPECT_EQ(plan.tracesTotal, traces.size());
    EXPECT_EQ(plan.tracesKept, traces.size());
    EXPECT_EQ(plan.traceKeepRatio(), 1.0);
    for (size_t i = 0; i < traces.size(); ++i) {
        EXPECT_TRUE(plan.keep[i]) << i;
        EXPECT_EQ(plan.inheritFrom[i], -1) << i;
        EXPECT_TRUE(std::is_sorted(plan.candidates[i].begin(),
                                   plan.candidates[i].end()))
            << i;
    }
    // The malformed trace is kept and unrestricted: the pipeline skips
    // it exactly as without pruning.
    EXPECT_FALSE(plan.restricted.back());
    EXPECT_TRUE(plan.candidates.back().empty());
    // Well-formed traces carry their full ranked candidate list.
    for (size_t i = 0; i + 1 < traces.size(); ++i) {
        EXPECT_TRUE(plan.restricted[i]) << i;
        EXPECT_FALSE(plan.candidates[i].empty()) << i;
    }
}

TEST(RcaPruner, ConservativeAnalyzeIsBitwiseEqualToFull)
{
    PruneFixture &f = fixture();
    // Mixed storm: two failure modes plus one malformed trace, so
    // clustering, the far-member guard, and the skip path all run.
    std::vector<trace::Trace> traces = storm("backend", 8, 2);
    std::vector<trace::Trace> other = storm("cache", 8, 3);
    traces.insert(traces.end(), other.begin(), other.end());
    traces.insert(traces.begin() + 4, malformedTrace());
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig full_cfg;
    full_cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                        .clusterSelectionEpsilon = 0.0};
    SleuthPipeline full_pipeline(f.model, f.encoder, f.profile,
                                 full_cfg);
    PipelineResult full = full_pipeline.analyze(traces, slos);

    PipelineConfig pruned_cfg = full_cfg;
    pruned_cfg.prune.mode = PruneConfig::Mode::Conservative;
    SleuthPipeline pruned_pipeline(f.model, f.encoder, f.profile,
                                   pruned_cfg);
    PipelineResult pruned =
        pruned_pipeline.analyze(traces, slos, nullptr, nullptr);

    expectSameResult(full, pruned);
    EXPECT_EQ(pruned.prunedTraces, 0u);
    EXPECT_EQ(pruned.pruneTraceKeepRatio, 1.0);
    EXPECT_LE(pruned.pruneServiceKeepRatio, 1.0);
}

TEST(RcaPruner, AggressiveCollapsesDuplicatesOntoExemplars)
{
    PruneFixture &f = fixture();
    // Twelve near-identical traces of one failure mode: a signature
    // group the aggressive mode must collapse.
    std::vector<trace::Trace> traces = storm("backend", 12, 4);
    std::vector<int64_t> slos(traces.size(), 900);

    PruneConfig cfg;
    cfg.mode = PruneConfig::Mode::Aggressive;
    cfg.aggressiveness = 0.75;
    cfg.minExemplarsPerGroup = 2;
    RcaPruner pruner(f.profile, cfg, RcaParams{});
    PrunePlan plan = pruner.plan(traces, slos);

    EXPECT_LT(plan.tracesKept, plan.tracesTotal);
    EXPECT_LT(plan.traceKeepRatio(), 1.0);
    for (size_t i = 0; i < traces.size(); ++i) {
        if (plan.keep[i]) {
            EXPECT_EQ(plan.inheritFrom[i], -1) << i;
            continue;
        }
        int ex = plan.inheritFrom[i];
        ASSERT_GE(ex, 0) << i;
        ASSERT_LT(static_cast<size_t>(ex), traces.size()) << i;
        EXPECT_TRUE(plan.keep[static_cast<size_t>(ex)]) << i;
    }

    PipelineConfig pipe_cfg;
    pipe_cfg.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                        .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, pipe_cfg);
    PipelineResult res = pipeline.analyzeWithPlan(traces, slos, plan);
    EXPECT_EQ(res.prunedTraces, plan.tracesTotal - plan.tracesKept);
    EXPECT_EQ(res.pruneTraceKeepRatio, plan.traceKeepRatio());
    // Pruned traces inherit their exemplar's verdict verbatim.
    for (size_t i = 0; i < traces.size(); ++i) {
        if (plan.keep[i])
            continue;
        const RcaResult &mine = res.perTrace[i];
        const RcaResult &ex =
            res.perTrace[static_cast<size_t>(plan.inheritFrom[i])];
        EXPECT_EQ(mine.services, ex.services) << i;
        EXPECT_EQ(mine.error, ex.error) << i;
    }
    // The storm is one failure mode: verdicts still name the backend.
    for (const RcaResult &r : res.perTrace) {
        ASSERT_FALSE(r.services.empty());
        EXPECT_EQ(r.services[0], "backend");
    }
}

TEST(RcaPruner, ZeroAggressivenessKeepsEveryTrace)
{
    PruneFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 5);
    std::vector<int64_t> slos(traces.size(), 900);

    PruneConfig cfg;
    cfg.mode = PruneConfig::Mode::Aggressive;
    cfg.aggressiveness = 0.0;
    RcaPruner pruner(f.profile, cfg, RcaParams{});
    PrunePlan plan = pruner.plan(traces, slos);
    EXPECT_EQ(plan.tracesKept, plan.tracesTotal);
    for (size_t i = 0; i < traces.size(); ++i)
        EXPECT_TRUE(plan.keep[i]) << i;
}

TEST(RcaPruner, DetectorSignalsGateCandidateReachability)
{
    PruneFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 6, 6);
    std::vector<int64_t> slos(traces.size(), 900);

    PruneConfig cfg;
    cfg.mode = PruneConfig::Mode::Aggressive;
    cfg.aggressiveness = 0.5;
    RcaPruner pruner(f.profile, cfg, RcaParams{});

    // A quiet window signal for the storm's only endpoint: no root is
    // anomalous, nothing is reachable, every candidate set empties.
    PruneSignals quiet;
    quiet["frontend/Handle"] = EndpointSignal{0.0, 0, 200.0, 400.0};
    PrunePlan gated = pruner.plan(traces, slos, quiet);
    EXPECT_EQ(gated.servicesKept, 0u);
    for (size_t i = 0; i < traces.size(); ++i)
        EXPECT_TRUE(gated.candidates[i].empty()) << i;

    // A storming signal (or no signal at all — never prune blind)
    // keeps the backend candidate reachable.
    PruneSignals storming;
    storming["frontend/Handle"] = EndpointSignal{0.8, 3, 200.0, 4000.0};
    PrunePlan open = pruner.plan(traces, slos, storming);
    EXPECT_GT(open.servicesKept, 0u);
    PrunePlan blind = pruner.plan(traces, slos);
    EXPECT_GT(blind.servicesKept, 0u);
}

TEST(RcaPruner, AllPrunedCandidateSetYieldsEmptyVerdict)
{
    // A restricted trace whose candidate list is empty: the RCA filter
    // removes every ranked service and the verdict comes back empty —
    // the pipeline must survive this (the over-aggressive edge).
    PruneFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 4, 7);
    std::vector<int64_t> slos(traces.size(), 900);

    PrunePlan plan;
    const size_t n = traces.size();
    plan.keep.assign(n, 1);
    plan.inheritFrom.assign(n, -1);
    plan.restricted.assign(n, 1);
    plan.candidates.resize(n); // all empty: everything pruned away
    plan.tracesTotal = plan.tracesKept = n;

    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 3, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    SleuthPipeline pipeline(f.model, f.encoder, f.profile, cfg);
    PipelineResult res = pipeline.analyzeWithPlan(traces, slos, plan);
    ASSERT_EQ(res.perTrace.size(), n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(res.perTrace[i].services.empty()) << i;
        EXPECT_TRUE(res.perTrace[i].error.empty()) << i;
    }
}
