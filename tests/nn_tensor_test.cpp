// Unit tests for the dense tensor type.

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "util/rng.h"

using sleuth::nn::Tensor;

TEST(Tensor, ConstructionAndAccess)
{
    Tensor t(2, 3);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(t.at(i, j), 0.0);
    t.at(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(t.at(1, 2), 5.0);
}

TEST(Tensor, ExplicitData)
{
    Tensor t(2, 2, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(t.at(0, 0), 1);
    EXPECT_DOUBLE_EQ(t.at(0, 1), 2);
    EXPECT_DOUBLE_EQ(t.at(1, 0), 3);
    EXPECT_DOUBLE_EQ(t.at(1, 1), 4);
}

TEST(Tensor, ScalarAndColumn)
{
    EXPECT_DOUBLE_EQ(Tensor::scalar(7.5).item(), 7.5);
    Tensor c = Tensor::column({1, 2, 3});
    EXPECT_EQ(c.rows(), 3u);
    EXPECT_EQ(c.cols(), 1u);
    EXPECT_DOUBLE_EQ(c.at(2, 0), 3.0);
}

TEST(Tensor, FillAndFull)
{
    Tensor t = Tensor::full(2, 2, 3.0);
    EXPECT_DOUBLE_EQ(t.sum(), 12.0);
    t.fill(-1.0);
    EXPECT_DOUBLE_EQ(t.sum(), -4.0);
}

TEST(Tensor, AddAndScaleInPlace)
{
    Tensor a(1, 3, {1, 2, 3});
    Tensor b(1, 3, {10, 20, 30});
    a.addInPlace(b);
    EXPECT_DOUBLE_EQ(a.at(0, 2), 33.0);
    a.scaleInPlace(0.5);
    EXPECT_DOUBLE_EQ(a.at(0, 0), 5.5);
}

TEST(Tensor, Matmul)
{
    Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
    Tensor c = a.matmul(b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Tensor, MatmulIdentity)
{
    Tensor a(2, 2, {1, 2, 3, 4});
    Tensor id(2, 2, {1, 0, 0, 1});
    Tensor c = a.matmul(id);
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j)
            EXPECT_DOUBLE_EQ(c.at(i, j), a.at(i, j));
}

TEST(Tensor, MatmulTransposedAMatchesExplicitTranspose)
{
    sleuth::util::Rng rng(5);
    for (int it = 0; it < 10; ++it) {
        size_t k = 1 + static_cast<size_t>(rng.uniformInt(0, 6));
        size_t m = 1 + static_cast<size_t>(rng.uniformInt(0, 6));
        size_t n = 1 + static_cast<size_t>(rng.uniformInt(0, 6));
        Tensor a = Tensor::randn(k, m, 1.0, rng);
        Tensor b = Tensor::randn(k, n, 1.0, rng);
        Tensor fast = a.matmulTransposedA(b);
        Tensor ref = a.transposed().matmul(b);
        ASSERT_TRUE(fast.sameShape(ref));
        for (size_t i = 0; i < fast.rows(); ++i)
            for (size_t j = 0; j < fast.cols(); ++j)
                EXPECT_NEAR(fast.at(i, j), ref.at(i, j), 1e-12);
    }
}

TEST(Tensor, MatmulTransposedBMatchesExplicitTranspose)
{
    sleuth::util::Rng rng(6);
    for (int it = 0; it < 10; ++it) {
        size_t m = 1 + static_cast<size_t>(rng.uniformInt(0, 6));
        size_t n = 1 + static_cast<size_t>(rng.uniformInt(0, 6));
        size_t p = 1 + static_cast<size_t>(rng.uniformInt(0, 6));
        Tensor a = Tensor::randn(m, n, 1.0, rng);
        Tensor b = Tensor::randn(p, n, 1.0, rng);
        Tensor fast = a.matmulTransposedB(b);
        Tensor ref = a.matmul(b.transposed());
        ASSERT_TRUE(fast.sameShape(ref));
        for (size_t i = 0; i < fast.rows(); ++i)
            for (size_t j = 0; j < fast.cols(); ++j)
                EXPECT_NEAR(fast.at(i, j), ref.at(i, j), 1e-12);
    }
}

TEST(Tensor, Transposed)
{
    Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
    Tensor t = a.transposed();
    ASSERT_EQ(t.rows(), 3u);
    ASSERT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 3.0);
}

TEST(Tensor, RandnStatistics)
{
    sleuth::util::Rng rng(1);
    Tensor t = Tensor::randn(100, 100, 0.5, rng);
    double mean = t.sum() / static_cast<double>(t.size());
    EXPECT_NEAR(mean, 0.0, 0.02);
    double sq = 0.0;
    for (double x : t.data())
        sq += (x - mean) * (x - mean);
    EXPECT_NEAR(std::sqrt(sq / static_cast<double>(t.size())), 0.5, 0.02);
}
