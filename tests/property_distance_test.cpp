// Parameterized property tests: metric axioms of the weighted-Jaccard
// trace distance over randomly generated weighted sets and simulated
// traces.

#include <gtest/gtest.h>

#include <algorithm>

#include "distance/trace_distance.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "util/rng.h"

using namespace sleuth;
using namespace sleuth::distance;

class JaccardAxioms : public ::testing::TestWithParam<uint64_t>
{
  protected:
    WeightedSpanSet
    randomSet(util::Rng &rng, size_t universe)
    {
        std::vector<std::pair<uint64_t, double>> entries;
        size_t n = static_cast<size_t>(rng.uniformInt(
            1, static_cast<int64_t>(universe)));
        for (size_t i = 0; i < n; ++i)
            entries.emplace_back(
                static_cast<uint64_t>(rng.uniformInt(
                    0, static_cast<int64_t>(universe))),
                rng.uniform(0.5, 5000.0));
        return makeSpanSet(std::move(entries));
    }
};

TEST_P(JaccardAxioms, IdentityAndRange)
{
    util::Rng rng(GetParam());
    for (int it = 0; it < 20; ++it) {
        WeightedSpanSet a = randomSet(rng, 40);
        EXPECT_DOUBLE_EQ(jaccardDistance(a, a), 0.0);
        WeightedSpanSet b = randomSet(rng, 40);
        double d = jaccardDistance(a, b);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST_P(JaccardAxioms, Symmetry)
{
    util::Rng rng(GetParam() ^ 0xabc);
    for (int it = 0; it < 20; ++it) {
        WeightedSpanSet a = randomSet(rng, 40);
        WeightedSpanSet b = randomSet(rng, 40);
        EXPECT_DOUBLE_EQ(jaccardDistance(a, b), jaccardDistance(b, a));
    }
}

TEST_P(JaccardAxioms, TriangleInequality)
{
    util::Rng rng(GetParam() ^ 0xdef);
    for (int it = 0; it < 12; ++it) {
        WeightedSpanSet a = randomSet(rng, 25);
        WeightedSpanSet b = randomSet(rng, 25);
        WeightedSpanSet c = randomSet(rng, 25);
        EXPECT_LE(jaccardDistance(a, c),
                  jaccardDistance(a, b) + jaccardDistance(b, c) + 1e-9);
    }
}

TEST_P(JaccardAxioms, DominatedByDisjointness)
{
    // Removing every shared identifier can only increase the distance.
    util::Rng rng(GetParam() ^ 0x123);
    for (int it = 0; it < 10; ++it) {
        WeightedSpanSet a = randomSet(rng, 30);
        WeightedSpanSet b = randomSet(rng, 30);
        double before = jaccardDistance(a, b);
        WeightedSpanSet b2;
        for (const auto &[k, w] : b) {
            bool shared = std::binary_search(
                a.begin(), a.end(), std::make_pair(k, 0.0),
                [](const auto &x, const auto &y) {
                    return x.first < y.first;
                });
            if (!shared)
                b2.emplace_back(k, w);
        }
        if (b2.empty())
            continue;
        EXPECT_GE(jaccardDistance(a, b2), before - 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardAxioms,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

class TraceDistanceOnSimulated
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TraceDistanceOnSimulated, SameFlowCloserThanCrossFlow)
{
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(32, 5));
    sim::ClusterModel cluster(app, 10, 1);
    sim::Simulator sim(app, cluster, {.seed = GetParam()});
    ASSERT_GE(app.flows.size(), 2u);

    trace::Trace a1 = sim.simulateFlow(0).trace;
    trace::Trace a2 = sim.simulateFlow(0).trace;
    trace::Trace b = sim.simulateFlow(1).trace;
    double same = traceDistance(a1, a2);
    double cross = traceDistance(a1, b);
    EXPECT_LT(same, cross);
}

TEST_P(TraceDistanceOnSimulated, MoreAncestorContextNeverCloser)
{
    // Adding calling-path context can only split identifiers apart, so
    // the distance is monotonically non-decreasing in d_max.
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(32, 5));
    sim::ClusterModel cluster(app, 10, 1);
    sim::Simulator sim(app, cluster, {.seed = GetParam() ^ 0x77});
    trace::Trace a = sim.simulateFlow(0).trace;
    trace::Trace b = sim.simulateFlow(1).trace;
    double prev = -1.0;
    for (int d : {0, 1, 2, 4}) {
        SpanSetOptions opts;
        opts.maxAncestorDistance = d;
        double dist = traceDistance(a, b, opts);
        EXPECT_GE(dist, prev - 1e-9);
        prev = dist;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceDistanceOnSimulated,
                         ::testing::Values(11u, 22u, 33u));
