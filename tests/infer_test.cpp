// Trace-driven app inference (DESIGN.md §3.16): simulate a source
// app, infer a clone from the traces, and check that the clone's
// structure, kernels, error rates, and flow shapes track the source.

#include "synth/infer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "storage/trace_store.h"
#include "synth/catalog.h"

using namespace sleuth;
using namespace sleuth::synth;

namespace {

// Simulate `n` healthy requests and insert them into a store with
// per-flow SLO metadata, the way the serving path persists them.
storage::TraceStore
profileApp(const AppConfig &app, const sim::ClusterModel &cluster,
           size_t n, uint64_t seed)
{
    sim::Simulator simulator(app, cluster, {.seed = seed});
    storage::TraceStore store;
    for (sim::SimResult &r : simulator.simulateMany(n))
        store.insert(std::move(r.trace),
                     app.flows[static_cast<size_t>(r.flowIndex)].sloUs,
                     r.flowIndex);
    return store;
}

int64_t
medianRootDuration(const AppConfig &app, const sim::ClusterModel &cluster,
                   size_t n, uint64_t seed)
{
    sim::Simulator simulator(app, cluster, {.seed = seed});
    std::vector<int64_t> durations;
    for (const sim::SimResult &r : simulator.simulateMany(n))
        durations.push_back(r.trace.rootDurationUs());
    std::sort(durations.begin(), durations.end());
    return durations[durations.size() / 2];
}

// A two-service app with a hand-set call tree: root invokes leaf ops
// a and b in parallel (stage 0), then c sequentially (stage 1), with
// near-deterministic kernels so shape recovery is unambiguous.
AppConfig
stagedApp()
{
    AppConfig app;
    app.name = "staged";
    app.services = {{0, "gw", Tier::Frontend, 2},
                    {1, "db", Tier::Leaf, 1}};
    KernelConfig k{Resource::Cpu, 5.0, 0.05};
    app.rpcs = {{0, 0, "root", k, k, 0.0, 0},
                {1, 1, "a", k, k, 0.0, 0},
                {2, 1, "b", k, k, 0.0, 0},
                {3, 1, "c", k, k, 0.0, 0}};
    FlowConfig f;
    f.name = "staged-flow";
    f.root = 0;
    f.nodes = {{0, false, 0, {1, 2, 3}},
               {1, false, 0, {}},
               {2, false, 0, {}},
               {3, false, 1, {}}};
    f.weight = 1.0;
    f.sloUs = 0;
    app.flows = {f};
    app.validate();
    return app;
}

} // namespace

TEST(Infer, SockShopSelfCloneStructure)
{
    AppConfig source = sockShopConfig();
    sim::ClusterModel cluster(source, 20, 7);
    sim::Simulator::calibrateSlos(source, cluster, 80, 99.0, 11);
    storage::TraceStore store = profileApp(source, cluster, 300, 21);

    InferStats stats;
    InferOptions opts;
    opts.name = "sockshop-clone";
    AppConfig clone =
        inferAppModel(store, storage::Query{}, opts, &stats);

    EXPECT_EQ(stats.tracesUsed, 300u);
    EXPECT_EQ(stats.tracesSkipped, 0u);
    EXPECT_GT(stats.spans, 0u);
    EXPECT_EQ(stats.flowShapes, clone.flows.size());
    EXPECT_TRUE(clone.validationError().empty());

    // Every inferred name comes from the observed vocabulary.
    std::set<std::string> sourceNames;
    for (const ServiceConfig &s : source.services)
        sourceNames.insert(s.name);
    for (const ServiceConfig &s : clone.services) {
        EXPECT_TRUE(sourceNames.count(s.name)) << s.name;
        EXPECT_GE(s.replicas, 1);
    }
    EXPECT_GE(clone.services.size(), 5u);
    EXPECT_GE(clone.rpcs.size(), 10u);

    // Entry services classify as Frontend.
    for (const ServiceConfig &s : clone.services)
        if (s.name == "front-end")
            EXPECT_EQ(s.tier, Tier::Frontend);

    // Observed SLOs carry into the clone's flows.
    bool anySlo = false;
    for (const FlowConfig &f : clone.flows)
        anySlo = anySlo || f.sloUs > 0;
    EXPECT_TRUE(anySlo);

    // The clone replays through the simulator unmodified.
    sim::ClusterModel cloneCluster(clone, 20, 7);
    sim::Simulator replay(clone, cloneCluster, {.seed = 31});
    for (const sim::SimResult &r : replay.simulateMany(50)) {
        EXPECT_FALSE(r.trace.spans.empty());
        EXPECT_FALSE(r.faultTouched());
    }
}

TEST(Infer, CloneLatencyTracksSource)
{
    AppConfig source = sockShopConfig();
    sim::ClusterModel cluster(source, 20, 7);
    storage::TraceStore store = profileApp(source, cluster, 400, 23);
    AppConfig clone = inferAppModel(store, storage::Query{});
    ASSERT_FALSE(clone.services.empty());

    sim::ClusterModel cloneCluster(clone, 20, 7);
    int64_t src = medianRootDuration(source, cluster, 300, 41);
    int64_t dup = medianRootDuration(clone, cloneCluster, 300, 41);
    double ratio =
        static_cast<double>(dup) / static_cast<double>(src);
    EXPECT_GT(ratio, 0.5) << src << " vs " << dup;
    EXPECT_LT(ratio, 2.0) << src << " vs " << dup;
}

TEST(Infer, StageStructureRecovered)
{
    AppConfig source = stagedApp();
    sim::ClusterModel cluster(source, 4, 3);
    storage::TraceStore store = profileApp(source, cluster, 100, 5);
    AppConfig clone = inferAppModel(store, storage::Query{});

    ASSERT_EQ(clone.flows.size(), 1u);
    const FlowConfig &f = clone.flows[0];
    ASSERT_EQ(f.nodes.size(), 4u);
    const CallNode &root = f.nodes[static_cast<size_t>(f.root)];
    ASSERT_EQ(root.children.size(), 3u);

    // a and b share stage 0; c runs alone in stage 1.
    std::map<std::string, int> stageOf;
    for (int c : root.children) {
        const CallNode &nd = f.nodes[static_cast<size_t>(c)];
        stageOf[clone.rpcs[static_cast<size_t>(nd.rpcId)].name] =
            nd.stage;
        EXPECT_FALSE(nd.async);
    }
    ASSERT_EQ(stageOf.size(), 3u);
    EXPECT_EQ(stageOf["a"], 0);
    EXPECT_EQ(stageOf["b"], 0);
    EXPECT_EQ(stageOf["c"], 1);
}

TEST(Infer, AsyncChildRecovered)
{
    AppConfig source = stagedApp();
    source.flows[0].nodes[3].async = true;  // c becomes fire-and-forget
    sim::ClusterModel cluster(source, 4, 3);
    storage::TraceStore store = profileApp(source, cluster, 100, 5);
    AppConfig clone = inferAppModel(store, storage::Query{});

    ASSERT_EQ(clone.flows.size(), 1u);
    const FlowConfig &f = clone.flows[0];
    bool sawAsync = false;
    for (const CallNode &nd : f.nodes)
        if (clone.rpcs[static_cast<size_t>(nd.rpcId)].name == "c") {
            EXPECT_TRUE(nd.async);
            sawAsync = true;
        }
    EXPECT_TRUE(sawAsync);
}

TEST(Infer, ExclusiveErrorRateRecovered)
{
    AppConfig source = stagedApp();
    source.rpcs[3].baseErrorProb = 0.25;  // c fails intrinsically
    sim::ClusterModel cluster(source, 4, 3);
    storage::TraceStore store = profileApp(source, cluster, 1500, 9);
    AppConfig clone = inferAppModel(store, storage::Query{});

    for (const RpcConfig &r : clone.rpcs) {
        if (r.name == "c") {
            EXPECT_GT(r.baseErrorProb, 0.15) << r.name;
            EXPECT_LT(r.baseErrorProb, 0.35) << r.name;
        } else {
            // Inherited child errors must not count as the parent's
            // own; untouched rpcs stay near zero.
            EXPECT_LT(r.baseErrorProb, 0.05) << r.name;
        }
    }
}

TEST(Infer, TimeoutsScaleWithObservedLatency)
{
    AppConfig source = stagedApp();
    sim::ClusterModel cluster(source, 4, 3);
    storage::TraceStore store = profileApp(source, cluster, 200, 5);
    InferOptions opts;
    opts.timeoutHeadroom = 10.0;
    AppConfig clone =
        inferAppModel(store, storage::Query{}, opts, nullptr);
    for (const RpcConfig &r : clone.rpcs) {
        EXPECT_GT(r.timeoutUs, 0) << r.name;
        // Headroom 10x the worst observation: never near the typical
        // latency, so replayed timeouts cannot fire spuriously.
        EXPECT_GT(r.timeoutUs, 5 * static_cast<int64_t>(
                                       std::exp(5.0)))
            << r.name;
    }
}

TEST(Infer, InferredJsonRoundTripsExactly)
{
    AppConfig source = stagedApp();
    sim::ClusterModel cluster(source, 4, 3);
    storage::TraceStore store = profileApp(source, cluster, 150, 5);
    AppConfig clone = inferAppModel(store, storage::Query{});

    std::string text = toJson(clone).dump(2);
    std::string err;
    util::Json doc = util::Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    AppConfig reloaded;
    ASSERT_TRUE(tryAppFromJson(doc, &reloaded, &err)) << err;
    EXPECT_EQ(toJson(reloaded).dump(2), text);
}

TEST(Infer, EmptyAndMalformedAccounting)
{
    InferStats stats;
    AppConfig empty = inferAppModel(std::vector<trace::Trace>{}, {},
                                    InferOptions{}, &stats);
    EXPECT_TRUE(empty.services.empty());
    EXPECT_EQ(stats.tracesUsed, 0u);

    // A trace with a dangling parent is skipped, not fatal.
    trace::Trace broken;
    broken.traceId = "t0";
    trace::Span s;
    s.spanId = "s1";
    s.parentSpanId = "missing";
    s.service = "svc";
    s.name = "op";
    broken.spans.push_back(s);
    AppConfig out = inferAppModel({broken}, {}, InferOptions{}, &stats);
    EXPECT_TRUE(out.services.empty());
    EXPECT_EQ(stats.tracesUsed, 0u);
    EXPECT_EQ(stats.tracesSkipped, 1u);
}

TEST(Infer, MaxTracesCapsConsumption)
{
    AppConfig source = stagedApp();
    sim::ClusterModel cluster(source, 4, 3);
    storage::TraceStore store = profileApp(source, cluster, 100, 5);
    InferStats stats;
    InferOptions opts;
    opts.maxTraces = 10;
    AppConfig clone =
        inferAppModel(store, storage::Query{}, opts, &stats);
    EXPECT_EQ(stats.tracesUsed, 10u);
    EXPECT_FALSE(clone.services.empty());
}

TEST(Infer, StoreWindowIsHalfOpen)
{
    // Inference windows the store by root start time; the window is
    // half-open [min, max): the min boundary trace is used, the max
    // boundary trace is not.
    AppConfig source = stagedApp();
    sim::ClusterModel cluster(source, 4, 3);
    sim::Simulator simulator(source, cluster, {.seed = 13});
    storage::TraceStore store;
    // Simulated requests all start at t=0; shift each trace to its
    // own arrival time the way live ingestion would stamp it.
    int64_t arrival = 1'000'000;
    for (sim::SimResult &r : simulator.simulateMany(3)) {
        for (trace::Span &s : r.trace.spans) {
            s.startUs += arrival;
            s.endUs += arrival;
        }
        store.insert(std::move(r.trace), 0, r.flowIndex);
        arrival += 1'000'000;
    }
    ASSERT_EQ(store.size(), 3u);

    storage::Query window;
    window.minStartUs = 1'000'000;  // exact first-trace boundary: in
    window.maxStartUs = 3'000'000;  // exact last-trace boundary: out
    InferStats stats;
    inferAppModel(store, window, InferOptions{}, &stats);
    EXPECT_EQ(stats.tracesUsed, 2u);
    EXPECT_EQ(stats.tracesSkipped, 0u);
}
