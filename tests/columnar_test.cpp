// Columnar span storage: encode/materialize round trips, root
// metadata, and the memory accounting used by the bench suites.

#include <gtest/gtest.h>

#include <memory>

#include "test_helpers.h"
#include "trace/columnar.h"

using namespace sleuth;
using sleuth::testing::makeSpan;
using trace::ColumnarTrace;
using trace::SpanColumns;
using trace::StringInterner;

namespace {

trace::Trace
sampleTrace()
{
    trace::Trace t;
    t.traceId = "sample";
    t.spans.push_back(makeSpan("p", "", "frontend", "handle", 0, 100,
                               trace::SpanKind::Server,
                               trace::StatusCode::Ok));
    t.spans.push_back(makeSpan("a", "p", "svc-a", "opA", 10, 60,
                               trace::SpanKind::Client,
                               trace::StatusCode::Error));
    t.spans.push_back(makeSpan("b", "p", "svc-b", "opB", 30, 80,
                               trace::SpanKind::Producer,
                               trace::StatusCode::Unset));
    return t;
}

} // namespace

TEST(SpanColumns, AppendAndAccessors)
{
    StringInterner in;
    SpanColumns cols;
    trace::Trace t = sampleTrace();
    for (const trace::Span &s : t.spans)
        cols.append(s, in);
    ASSERT_EQ(cols.size(), 3u);
    EXPECT_EQ(cols.spanId(1), "a");
    EXPECT_EQ(cols.parentSpanId(1), "p");
    EXPECT_EQ(in.name(cols.serviceId(1)), "svc-a");
    EXPECT_EQ(in.name(cols.nameId(2)), "opB");
    EXPECT_EQ(cols.kind(1), trace::SpanKind::Client);
    EXPECT_EQ(cols.status(1), trace::StatusCode::Error);
    EXPECT_EQ(cols.startUs(2), 30);
    EXPECT_EQ(cols.endUs(2), 80);
    EXPECT_EQ(cols.durationUs(0), 100);
    EXPECT_TRUE(cols.hasError(1));
    EXPECT_FALSE(cols.hasError(2));
}

TEST(SpanColumns, SharedVocabularyIsInternedOnce)
{
    StringInterner in;
    SpanColumns cols;
    trace::Trace t = sampleTrace();
    for (const trace::Span &s : t.spans)
        cols.append(s, in);
    size_t vocab = in.size();
    // A second identical trace adds zero new vocabulary entries.
    for (const trace::Span &s : t.spans)
        cols.append(s, in);
    EXPECT_EQ(in.size(), vocab);
    EXPECT_EQ(cols.serviceId(0), cols.serviceId(3));
    EXPECT_EQ(cols.nameId(1), cols.nameId(4));
}

TEST(ColumnarTrace, MaterializeRoundTripsEveryField)
{
    auto in = std::make_shared<StringInterner>();
    trace::Trace t = sampleTrace();
    ColumnarTrace ct(t, in);
    trace::Trace back = ct.toTrace();
    ASSERT_EQ(back.spans.size(), t.spans.size());
    EXPECT_EQ(back.traceId, t.traceId);
    for (size_t i = 0; i < t.spans.size(); ++i) {
        const trace::Span &x = t.spans[i];
        const trace::Span &y = back.spans[i];
        EXPECT_EQ(y.spanId, x.spanId);
        EXPECT_EQ(y.parentSpanId, x.parentSpanId);
        EXPECT_EQ(y.service, x.service);
        EXPECT_EQ(y.name, x.name);
        EXPECT_EQ(y.kind, x.kind);
        EXPECT_EQ(y.status, x.status);
        EXPECT_EQ(y.startUs, x.startUs);
        EXPECT_EQ(y.endUs, x.endUs);
        EXPECT_EQ(y.container, x.container);
        EXPECT_EQ(y.pod, x.pod);
        EXPECT_EQ(y.node, x.node);
    }
}

TEST(ColumnarTrace, RootMetadataMatchesLegacyTrace)
{
    auto in = std::make_shared<StringInterner>();
    trace::Trace t = sampleTrace();
    ColumnarTrace ct(t, in);
    EXPECT_EQ(ct.rootIndex(), 0);
    EXPECT_EQ(ct.rootStartUs(), 0);
    EXPECT_EQ(ct.rootDurationUs(), t.rootDurationUs());
    EXPECT_FALSE(ct.rootError());
    EXPECT_TRUE(ct.hasError());  // child "a" errored
    EXPECT_EQ(ct.spanCount(), 3u);
    EXPECT_EQ(ct.traceId(), "sample");
}

TEST(ColumnarTrace, TouchesServiceUsesInternedIds)
{
    auto in = std::make_shared<StringInterner>();
    ColumnarTrace ct(sampleTrace(), in);
    auto id = in->find("svc-a");
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(ct.touchesService(*id));
    uint32_t absent = static_cast<uint32_t>(in->size()) + 7;
    EXPECT_FALSE(ct.touchesService(absent));
}

TEST(ColumnarTrace, ColumnarBeatsLegacyMemoryEstimate)
{
    // The whole point of the layout: with a shared vocabulary, many
    // traces of the same shape must cost less per span than the AoS
    // Span estimate. One interner across 100 identical-shape traces.
    auto in = std::make_shared<StringInterner>();
    size_t columnar = 0, legacy = 0;
    for (int i = 0; i < 100; ++i) {
        trace::Trace t = sampleTrace();
        t.traceId = "t" + std::to_string(i);
        legacy += trace::approxTraceMemoryBytes(t);
        columnar += ColumnarTrace(t, in).memoryBytes();
    }
    columnar += in->memoryBytes();
    EXPECT_LT(columnar, legacy);
}

TEST(ColumnarTrace, MaterializeSingleSpan)
{
    auto in = std::make_shared<StringInterner>();
    trace::Trace t = sampleTrace();
    ColumnarTrace ct(t, in);
    trace::Span s = ct.span(1);
    EXPECT_EQ(s.spanId, "a");
    EXPECT_EQ(s.service, "svc-a");
    EXPECT_EQ(s.startUs, 10);
    EXPECT_EQ(s.endUs, 60);
}
