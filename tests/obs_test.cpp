// obs metrics: sharded counter folding under concurrency, gauge
// semantics, histogram snapshots over merged per-slot sketches, scoped
// timers, the enable/disable switch, and the Prometheus text
// exposition format.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

using namespace sleuth;

TEST(ObsCounter, FoldsConcurrentAddsExactly)
{
    obs::Counter c;
    const size_t kThreads = 8;
    const uint64_t kPerThread = 10'000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, AddWithWeight)
{
    obs::Counter c;
    c.add(5);
    c.add(7);
    EXPECT_EQ(c.value(), 12u);
}

TEST(ObsGauge, SetAndAdd)
{
    obs::Gauge g;
    g.set(42);
    EXPECT_EQ(g.value(), 42);
    g.add(-10);
    EXPECT_EQ(g.value(), 32);
}

TEST(ObsHistogram, SnapshotAggregatesAcrossSlots)
{
    obs::Histogram h;
    // Record from several threads so multiple slots hold data.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&h, t] {
            for (int i = 0; i < 250; ++i)
                h.record(static_cast<double>(t * 250 + i + 1));
        });
    for (std::thread &t : threads)
        t.join();
    obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_DOUBLE_EQ(snap.sum, 1000.0 * 1001.0 / 2.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 1000.0);
    // Sketch quantiles carry a relative-error bound, not exactness.
    EXPECT_NEAR(snap.p50, 500.0, 500.0 * 0.05);
    EXPECT_NEAR(snap.p99, 990.0, 990.0 * 0.05);
}

TEST(ObsHistogram, EmptySnapshotIsZero)
{
    obs::Histogram h;
    obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0.0);
    EXPECT_EQ(snap.p99, 0.0);
}

TEST(ObsScopedTimer, RecordsOnDestruction)
{
    obs::Histogram h;
    {
        obs::ScopedTimer timer(h);
    }
    obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_GE(snap.sum, 0.0);
}

TEST(ObsEnabled, DisableStopsRecordingButNotReads)
{
    obs::Counter c;
    obs::Gauge g;
    obs::Histogram h;
    obs::setEnabled(false);
    c.add(3);
    g.set(9);
    h.record(1.0);
    obs::setEnabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.snapshot().count, 0u);
    c.add(3);
    EXPECT_EQ(c.value(), 3u);
}

TEST(ObsRegistry, SameNameAndLabelsReturnSameHandle)
{
    obs::Registry r;
    obs::Counter &a = r.counter("x_total", "help", {{"k", "v"}});
    obs::Counter &b = r.counter("x_total", "help", {{"k", "v"}});
    obs::Counter &other = r.counter("x_total", "help", {{"k", "w"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
}

TEST(ObsRegistry, RenderTextExpositionFormat)
{
    obs::Registry r;
    r.counter("sleuth_test_drops_total", "Drops by reason",
              {{"reason", "orphan"}})
        .add(4);
    r.counter("sleuth_test_drops_total", "Drops by reason",
              {{"reason", "duplicate"}})
        .add(2);
    r.gauge("sleuth_test_backlog", "Backlog spans").set(17);
    r.histogram("sleuth_test_latency_ms", "Stage latency").record(5.0);
    r.callbackGauge("sleuth_test_cb", "Callback gauge", {},
                    [] { return int64_t{7}; });
    std::string text = r.renderText();

    // One HELP/TYPE header per family, instances grouped beneath it.
    EXPECT_NE(text.find("# HELP sleuth_test_drops_total Drops by reason\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE sleuth_test_drops_total counter\n"),
              std::string::npos);
    EXPECT_EQ(text.find("# TYPE sleuth_test_drops_total counter"),
              text.rfind("# TYPE sleuth_test_drops_total counter"));
    EXPECT_NE(
        text.find("sleuth_test_drops_total{reason=\"duplicate\"} 2\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("sleuth_test_drops_total{reason=\"orphan\"} 4\n"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE sleuth_test_backlog gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_test_backlog 17\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE sleuth_test_latency_ms summary\n"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_test_latency_ms{quantile=\"0.5\"} "),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_test_latency_ms_count 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_test_latency_ms_sum 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_test_cb 7\n"), std::string::npos);
}

TEST(ObsRegistry, LabelsRenderSortedAndEscaped)
{
    obs::Registry r;
    r.counter("sleuth_test_labels_total", "help",
              {{"zeta", "1"}, {"alpha", "say \"hi\"\\"}})
        .add(1);
    std::string text = r.renderText();
    EXPECT_NE(
        text.find("sleuth_test_labels_total"
                  "{alpha=\"say \\\"hi\\\"\\\\\",zeta=\"1\"} 1\n"),
        std::string::npos);
}

TEST(ObsRegistry, KindMismatchIsFatal)
{
    obs::Registry r;
    r.counter("sleuth_test_kind_total", "help").add(1);
    EXPECT_DEATH((void)r.gauge("sleuth_test_kind_total", "help"),
                 "re-requested");
}

TEST(ObsRegistry, CallbackMayTouchRegistry)
{
    // Callbacks run with the registry mutex released, so one that
    // itself registers or reads a metric must not deadlock.
    obs::Registry r;
    r.callbackGauge("sleuth_test_reentrant_cb", "help", {}, [&r] {
        return static_cast<int64_t>(
            r.counter("sleuth_test_inner_total", "help").value());
    });
    r.counter("sleuth_test_inner_total", "help").add(3);
    std::string text = r.renderText();
    EXPECT_NE(text.find("sleuth_test_reentrant_cb 3\n"),
              std::string::npos);
}

TEST(ObsRegistry, LargeSumsRenderFullPrecision)
{
    // Cumulative _sum values beyond 1e6 must not round to six
    // significant digits, or scrape deltas lose resolution.
    obs::Registry r;
    r.histogram("sleuth_test_big_ms", "help").record(1234567.25);
    std::string text = r.renderText();
    EXPECT_NE(text.find("sleuth_test_big_ms_sum 1234567.25\n"),
              std::string::npos);
}

TEST(ObsDefaultRegistry, ExposesThreadPoolGauges)
{
    std::string text = obs::renderText();
    EXPECT_NE(text.find("sleuth_threadpool_jobs_total"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_threadpool_live_pools"),
              std::string::npos);
    EXPECT_NE(text.find("sleuth_threadpool_active_jobs"),
              std::string::npos);
}
