// Parameterized property tests for the clustering stack: HDBSCAN must
// recover planted blob structure across shapes and seeds, and its
// output must always be structurally valid.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/hdbscan.h"
#include "cluster/svdd.h"
#include "util/rng.h"

using namespace sleuth;
using namespace sleuth::cluster;

namespace {

struct BlobCase
{
    size_t blobs;
    size_t per;
    double spread;
    double gap;
    uint64_t seed;
};

std::string
blobName(const ::testing::TestParamInfo<BlobCase> &info)
{
    const BlobCase &c = info.param;
    return "b" + std::to_string(c.blobs) + "_p" +
           std::to_string(c.per) + "_s" + std::to_string(c.seed);
}

std::vector<std::pair<double, double>>
makeBlobs(const BlobCase &c)
{
    util::Rng rng(c.seed);
    std::vector<std::pair<double, double>> pts;
    for (size_t b = 0; b < c.blobs; ++b) {
        double cx = static_cast<double>(b) * c.gap;
        double cy = static_cast<double>(b % 2) * c.gap;
        for (size_t i = 0; i < c.per; ++i)
            pts.emplace_back(cx + rng.normal(0, c.spread),
                             cy + rng.normal(0, c.spread));
    }
    return pts;
}

DistanceFn
euclid(const std::vector<std::pair<double, double>> &pts)
{
    return [&pts](size_t i, size_t j) {
        double dx = pts[i].first - pts[j].first;
        double dy = pts[i].second - pts[j].second;
        return std::sqrt(dx * dx + dy * dy);
    };
}

} // namespace

class HdbscanBlobs : public ::testing::TestWithParam<BlobCase>
{
};

TEST_P(HdbscanBlobs, RecoversPlantedClusters)
{
    const BlobCase &c = GetParam();
    auto pts = makeBlobs(c);
    auto res = hdbscan(pts.size(), euclid(pts),
                       {.minClusterSize = c.per / 2,
                        .minSamples = 3});
    EXPECT_EQ(res.numClusters, static_cast<int>(c.blobs));
    // Every blob's points share a label; labels differ across blobs.
    for (size_t b = 0; b < c.blobs; ++b) {
        int label = res.labels[b * c.per];
        EXPECT_GE(label, 0);
        size_t agree = 0;
        for (size_t i = 0; i < c.per; ++i)
            agree += res.labels[b * c.per + i] == label;
        EXPECT_GE(agree, c.per - c.per / 10)
            << "blob " << b << " fragmented";
    }
}

TEST_P(HdbscanBlobs, OutputStructurallyValid)
{
    const BlobCase &c = GetParam();
    auto pts = makeBlobs(c);
    auto res = hdbscan(pts.size(), euclid(pts),
                       {.minClusterSize = c.per / 2,
                        .minSamples = 3});
    ASSERT_EQ(res.labels.size(), pts.size());
    for (int l : res.labels) {
        EXPECT_GE(l, -1);
        EXPECT_LT(l, res.numClusters);
    }
    // Every cluster id in [0, numClusters) is non-empty.
    for (int cid = 0; cid < res.numClusters; ++cid)
        EXPECT_FALSE(res.members(cid).empty());
}

TEST_P(HdbscanBlobs, RepresentativesComeFromTheirCluster)
{
    const BlobCase &c = GetParam();
    auto pts = makeBlobs(c);
    auto dist = euclid(pts);
    auto res = hdbscan(pts.size(), dist,
                       {.minClusterSize = c.per / 2,
                        .minSamples = 3});
    if (res.numClusters == 0)
        GTEST_SKIP();
    auto reps = selectRepresentatives(res.labels, res.numClusters,
                                      dist);
    ASSERT_EQ(reps.size(), static_cast<size_t>(res.numClusters));
    for (int cid = 0; cid < res.numClusters; ++cid)
        EXPECT_EQ(res.labels[reps[static_cast<size_t>(cid)]], cid);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HdbscanBlobs,
    ::testing::Values(BlobCase{2, 20, 0.3, 10.0, 1},
                      BlobCase{3, 16, 0.4, 12.0, 2},
                      BlobCase{4, 14, 0.3, 15.0, 3},
                      BlobCase{2, 30, 0.5, 20.0, 4},
                      BlobCase{5, 12, 0.2, 8.0, 5}),
    blobName);
