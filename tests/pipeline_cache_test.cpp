// PipelineCache unit tests: warm re-analysis is bitwise equal to a
// cold one, content mutations (new span, changed error flag)
// invalidate and fall back to full recompute, and the retention knobs
// (maxGenerations aging, maxTraces cap) evict without ever changing a
// result.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/pipeline_cache.h"
#include "core/trainer.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

/** Model trained on two-level traces (as in pipeline_test). */
struct CacheFixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    CacheFixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 4;
              return c;
          }())
    {
        util::Rng rng(8);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 100; ++i)
            corpus.push_back(makeTrace(rng, "backend", i >= 85));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    static trace::Trace
    makeTrace(util::Rng &rng, const std::string &backend,
              bool slow = false)
    {
        int64_t b = rng.uniformInt(150, 300) * (slow ? 12 : 1);
        int64_t pre = rng.uniformInt(50, 120);
        trace::Trace t;
        t.traceId = "t" + std::to_string(rng.uniformInt(0, 1 << 30));
        t.spans.push_back(
            makeSpan("r", "", "frontend", "Handle", 0, pre + b + 80));
        t.spans.push_back(makeSpan("c", "r", "frontend",
                                   "Get" + backend, pre, pre + b + 40,
                                   trace::SpanKind::Client));
        t.spans.push_back(makeSpan("s", "c", backend, "Get" + backend,
                                   pre + 20, pre + 20 + b));
        return t;
    }
};

CacheFixture &
fixture()
{
    static CacheFixture f;
    return f;
}

std::vector<trace::Trace>
storm(const std::string &backend, size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<trace::Trace> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(CacheFixture::makeTrace(rng, backend, true));
    return out;
}

PipelineConfig
clusteredConfig()
{
    PipelineConfig cfg;
    cfg.hdbscan = {.minClusterSize = 3, .minSamples = 2,
                   .clusterSelectionEpsilon = 0.0};
    return cfg;
}

/** Full structural equality of two pipeline results. */
void
expectSameResult(const PipelineResult &a, const PipelineResult &b)
{
    EXPECT_EQ(a.clusterLabels, b.clusterLabels);
    EXPECT_EQ(a.numClusters, b.numClusters);
    EXPECT_EQ(a.rcaInvocations, b.rcaInvocations);
    EXPECT_EQ(a.distanceEvaluations, b.distanceEvaluations);
    EXPECT_EQ(a.skippedTraces, b.skippedTraces);
    ASSERT_EQ(a.perTrace.size(), b.perTrace.size());
    for (size_t i = 0; i < a.perTrace.size(); ++i) {
        EXPECT_EQ(a.perTrace[i].services, b.perTrace[i].services) << i;
        EXPECT_EQ(a.perTrace[i].iterations, b.perTrace[i].iterations)
            << i;
        EXPECT_EQ(a.perTrace[i].resolved, b.perTrace[i].resolved) << i;
        EXPECT_EQ(a.perTrace[i].error, b.perTrace[i].error) << i;
    }
}

} // namespace

TEST(PipelineCache, WarmRepollIsBitwiseEqualAndHitsBatchFastPath)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 11);
    std::vector<int64_t> slos(traces.size(), 900);
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    PipelineResult fresh = pipeline.analyze(traces, slos);
    PipelineCache cache;
    PipelineResult cold =
        pipeline.analyze(traces, slos, nullptr, &cache);
    expectSameResult(fresh, cold);
    EXPECT_EQ(cache.stats().batchHits, 0u);

    PipelineResult warm =
        pipeline.analyze(traces, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    EXPECT_EQ(cache.stats().batchHits, 1u);
    // The logical invocation count is cache-oblivious by design.
    EXPECT_EQ(warm.rcaInvocations, fresh.rcaInvocations);
}

TEST(PipelineCache, SlidWindowReusesEncodingsAndVerdicts)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 12);
    std::vector<int64_t> slos(traces.size(), 900);
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    PipelineCache cache;
    pipeline.analyze(traces, slos, nullptr, &cache);
    PipelineCache::Stats before = cache.stats();

    // Drop the oldest trace and add a new one: the slid window.
    std::vector<trace::Trace> slid(traces.begin() + 1, traces.end());
    util::Rng novel(99);
    slid.push_back(CacheFixture::makeTrace(novel, "backend", true));
    std::vector<int64_t> slid_slos(slid.size(), 900);

    PipelineResult fresh = pipeline.analyze(slid, slid_slos);
    PipelineResult warm =
        pipeline.analyze(slid, slid_slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    PipelineCache::Stats after = cache.stats();
    // The surviving traces were not re-encoded or re-judged.
    EXPECT_GT(after.encodingHits + after.verdictHits,
              before.encodingHits + before.verdictHits);
    EXPECT_EQ(after.batchHits, before.batchHits);
}

TEST(PipelineCache, NewSpanInvalidatesAndFallsBackToFullRecompute)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 6, 13);
    std::vector<int64_t> slos(traces.size(), 900);
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    PipelineCache cache;
    pipeline.analyze(traces, slos, nullptr, &cache);
    ASSERT_EQ(cache.stats().invalidations, 0u);

    // A late span arrives for trace 0 between polls: same traceId,
    // new content. The stale entry must be dropped, not reused.
    std::vector<trace::Trace> mutated = traces;
    mutated[0].spans.push_back(makeSpan("x", "s", "backend", "Retry",
                                        200, 260));
    PipelineResult fresh = pipeline.analyze(mutated, slos);
    PipelineResult warm =
        pipeline.analyze(mutated, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    EXPECT_GT(cache.stats().invalidations, 0u);
}

TEST(PipelineCache, ChangedErrorFlagInvalidates)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 6, 14);
    std::vector<int64_t> slos(traces.size(), 900);
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    PipelineCache cache;
    pipeline.analyze(traces, slos, nullptr, &cache);
    uint64_t fp_before = PipelineCache::fingerprint(traces[0]);

    // Only the status flips — span count and timings are unchanged, so
    // anything short of a full-content fingerprint would miss this.
    std::vector<trace::Trace> mutated = traces;
    mutated[0].spans.back().status = trace::StatusCode::Error;
    EXPECT_NE(PipelineCache::fingerprint(mutated[0]), fp_before);

    PipelineResult fresh = pipeline.analyze(mutated, slos);
    PipelineResult warm =
        pipeline.analyze(mutated, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    EXPECT_GT(cache.stats().invalidations, 0u);
}

TEST(PipelineCache, AgingEvictsUntouchedEntries)
{
    CacheFixture &f = fixture();
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    PipelineCache::Config cc;
    cc.maxGenerations = 2;
    PipelineCache cache(cc);

    std::vector<trace::Trace> first = storm("backend", 4, 15);
    std::vector<int64_t> slos(first.size(), 900);
    pipeline.analyze(first, slos, nullptr, &cache);
    EXPECT_EQ(cache.size(), first.size());

    // Three disjoint batches later the first window has aged out.
    for (uint64_t seed = 16; seed < 19; ++seed) {
        std::vector<trace::Trace> other = storm("cache", 4, seed);
        std::vector<int64_t> oslos(other.size(), 900);
        pipeline.analyze(other, oslos, nullptr, &cache);
    }
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_LT(cache.size(), first.size() + 12);

    // The evicted window re-analyzes from scratch, bitwise equal.
    PipelineResult fresh = pipeline.analyze(first, slos);
    PipelineResult warm = pipeline.analyze(first, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
}

TEST(PipelineCache, MaxTracesCapEvictsDeterministically)
{
    CacheFixture &f = fixture();
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    PipelineCache::Config cc;
    cc.maxTraces = 4;
    PipelineCache cache(cc);

    std::vector<trace::Trace> big = storm("backend", 10, 20);
    std::vector<int64_t> slos(big.size(), 900);
    PipelineResult fresh = pipeline.analyze(big, slos);
    pipeline.analyze(big, slos, nullptr, &cache);
    // Same-batch entries share a generation, so the cap only bites on
    // the next beginBatch; the capped cache must still answer the
    // repeat bitwise-identically (batch fast path or recompute).
    PipelineResult warm = pipeline.analyze(big, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    EXPECT_LE(cache.size(), std::max<size_t>(cc.maxTraces, big.size()));
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(PipelineCache, GrowingWindowReusesMatrixPrefixBitwiseEqual)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 10, 23);
    std::vector<int64_t> slos(traces.size(), 900);
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    // First poll sees a 6-trace window; the re-poll appends four late
    // traces. The stored packed triangle must be reused as a prefix
    // and the assembled matrix must still drive the exact verdicts a
    // cold analysis produces.
    std::vector<trace::Trace> small(traces.begin(), traces.begin() + 6);
    std::vector<int64_t> small_slos(small.size(), 900);
    PipelineCache cache;
    pipeline.analyze(small, small_slos, nullptr, &cache);
    ASSERT_EQ(cache.stats().matrixPrefixHits, 0u);

    PipelineResult fresh = pipeline.analyze(traces, slos);
    PipelineResult warm =
        pipeline.analyze(traces, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    EXPECT_GT(cache.stats().matrixPrefixHits, 0u);
}

TEST(PipelineCache, MutatedLeadingTraceBreaksMatrixPrefix)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 24);
    std::vector<int64_t> slos(traces.size(), 900);
    SleuthPipeline pipeline(f.model, f.encoder, f.profile,
                            clusteredConfig());

    std::vector<trace::Trace> small(traces.begin(), traces.begin() + 6);
    std::vector<int64_t> small_slos(small.size(), 900);
    PipelineCache cache;
    pipeline.analyze(small, small_slos, nullptr, &cache);

    // The window grows AND its first trace mutated between polls: the
    // re-encoded trace gets a fresh encoding id, so the stored matrix
    // must not be reused (stale pair distances would leak).
    std::vector<trace::Trace> grown = traces;
    grown[0].spans.push_back(makeSpan("x", "s", "backend", "Retry",
                                      200, 260));
    PipelineResult fresh = pipeline.analyze(grown, slos);
    PipelineResult warm =
        pipeline.analyze(grown, slos, nullptr, &cache);
    expectSameResult(fresh, warm);
    EXPECT_EQ(cache.stats().matrixPrefixHits, 0u);
    EXPECT_GT(cache.stats().invalidations, 0u);
}

TEST(PipelineCache, MatrixPrefixLookupSemantics)
{
    PipelineCache cache;
    distance::DistanceMatrix m(3);
    m.set(1, 0, 0.25);
    m.set(2, 0, 0.5);
    m.set(2, 1, 0.75);
    cache.storeMatrix({4, 7, 9}, m);

    // Exact sequence and proper extension both hit with the stored
    // item count; reordered, truncated, or diverging sequences miss.
    size_t k = 0;
    const distance::DistanceMatrix *hit =
        cache.lookupMatrixPrefix({4, 7, 9, 12}, &k);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(k, 3u);
    EXPECT_EQ(hit->at(2, 1), 0.75);
    ASSERT_NE(cache.lookupMatrixPrefix({4, 7, 9}, &k), nullptr);
    EXPECT_EQ(k, 3u);
    EXPECT_EQ(cache.lookupMatrixPrefix({4, 7}, &k), nullptr);
    EXPECT_EQ(cache.lookupMatrixPrefix({4, 9, 7, 12}, &k), nullptr);
    EXPECT_EQ(cache.lookupMatrixPrefix({7, 9, 4}, &k), nullptr);

    // Batches above the retention cap are not pinned in memory.
    PipelineCache::Config cc;
    cc.maxMatrixTraces = 2;
    PipelineCache bounded(cc);
    bounded.storeMatrix({4, 7, 9}, m);
    EXPECT_EQ(bounded.lookupMatrixPrefix({4, 7, 9}, &k), nullptr);
}

TEST(PipelineCache, CacheComposesWithConservativePruning)
{
    CacheFixture &f = fixture();
    std::vector<trace::Trace> traces = storm("backend", 8, 22);
    std::vector<int64_t> slos(traces.size(), 900);

    PipelineConfig cfg = clusteredConfig();
    cfg.prune.mode = PruneConfig::Mode::Conservative;
    SleuthPipeline pruned(f.model, f.encoder, f.profile, cfg);
    PipelineConfig plain_cfg = clusteredConfig();
    SleuthPipeline plain(f.model, f.encoder, f.profile, plain_cfg);

    PipelineResult fresh = plain.analyze(traces, slos);
    PipelineCache cache;
    PipelineResult cold = pruned.analyze(traces, slos, nullptr, &cache);
    PipelineResult warm = pruned.analyze(traces, slos, nullptr, &cache);
    expectSameResult(fresh, cold);
    expectSameResult(fresh, warm);
    EXPECT_GT(cache.stats().batchHits, 0u);
}
