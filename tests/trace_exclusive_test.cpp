// Unit tests for exclusive duration / exclusive error (paper §3.2.2).

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "trace/trace.h"

using namespace sleuth;
using sleuth::testing::figure2Trace;
using sleuth::testing::makeSpan;

TEST(Exclusive, Figure2Example)
{
    // Paper Figure 2: P spans [t0,t5], A spans [t1,t3], B spans [t2,t4].
    // Exclusive durations: P = (t1-t0)+(t5-t4), A = t3-t1, B = t4-t2.
    trace::Trace t;
    const int64_t t0 = 0, t1 = 10, t2 = 30, t3 = 60, t4 = 80, t5 = 100;
    t.spans.push_back(makeSpan("p", "", "svc-p", "op", t0, t5));
    t.spans.push_back(makeSpan("a", "p", "svc-a", "op", t1, t3));
    t.spans.push_back(makeSpan("b", "p", "svc-b", "op", t2, t4));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_EQ(m.exclusiveUs[0], (t1 - t0) + (t5 - t4));
    EXPECT_EQ(m.exclusiveUs[1], t3 - t1);
    EXPECT_EQ(m.exclusiveUs[2], t4 - t2);
}

TEST(Exclusive, LeafSpanExclusiveEqualsDuration)
{
    trace::Trace t = figure2Trace();
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_EQ(m.exclusiveUs[1], t.spans[1].durationUs());
    EXPECT_EQ(m.exclusiveUs[2], t.spans[2].durationUs());
}

TEST(Exclusive, FullyCoveredParentHasZeroExclusive)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 100));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 0, 100));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_EQ(m.exclusiveUs[0], 0);
}

TEST(Exclusive, OverlappingChildrenNotDoubleCounted)
{
    // Two children covering [10,60] and [40,90]: union covers 80us of
    // the parent's 100us, leaving 20us exclusive.
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 100));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 10, 60));
    t.spans.push_back(makeSpan("b", "p", "b", "op", 40, 90));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_EQ(m.exclusiveUs[0], 20);
}

TEST(Exclusive, IdenticalChildIntervals)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 100));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 20, 80));
    t.spans.push_back(makeSpan("b", "p", "b", "op", 20, 80));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_EQ(m.exclusiveUs[0], 40);
}

TEST(Exclusive, ChildOutsideParentIsClipped)
{
    // A child whose interval extends past the parent (clock skew) must
    // not drive the parent's exclusive duration negative.
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 50));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 40, 120));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_EQ(m.exclusiveUs[0], 40);
    EXPECT_EQ(m.exclusiveUs[1], 80);
}

TEST(Exclusive, GrandchildrenDoNotAffectGrandparent)
{
    // Exclusive duration subtracts only direct children.
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 100));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 20, 40));
    t.spans.push_back(makeSpan("g", "a", "g", "op", 50, 90));
    trace::TraceGraph gr = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, gr);
    EXPECT_EQ(m.exclusiveUs[0], 80);  // only [20,40] subtracted
}

TEST(Exclusive, ErrorOwnVersusInherited)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 100,
                               trace::SpanKind::Server,
                               trace::StatusCode::Error));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 10, 60,
                               trace::SpanKind::Server,
                               trace::StatusCode::Error));
    t.spans.push_back(makeSpan("b", "p", "b", "op", 30, 80));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    // Parent's error is explained by child a => not exclusive.
    EXPECT_FALSE(m.exclusiveError[0]);
    // Child a errors with no erroring children => exclusive.
    EXPECT_TRUE(m.exclusiveError[1]);
    EXPECT_FALSE(m.exclusiveError[2]);
}

TEST(Exclusive, ErrorWithoutChildrenIsExclusive)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 10,
                               trace::SpanKind::Server,
                               trace::StatusCode::Error));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    EXPECT_TRUE(m.exclusiveError[0]);
}

TEST(Exclusive, NoErrorNoExclusiveError)
{
    trace::Trace t = figure2Trace();
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    for (bool e : m.exclusiveError)
        EXPECT_FALSE(e);
}

TEST(Exclusive, SumOfExclusiveEqualsRootDurationForSequentialTree)
{
    // When children run strictly sequentially inside the parent, the
    // exclusive durations partition the root duration exactly.
    trace::Trace t;
    t.spans.push_back(makeSpan("p", "", "p", "op", 0, 100));
    t.spans.push_back(makeSpan("a", "p", "a", "op", 10, 30));
    t.spans.push_back(makeSpan("b", "p", "b", "op", 40, 90));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    int64_t total = 0;
    for (int64_t x : m.exclusiveUs)
        total += x;
    EXPECT_EQ(total, t.rootDurationUs());
}
