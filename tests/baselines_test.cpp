// Tests for the baseline RCA algorithms: each must localize an obvious
// injected fault on a small app, and exhibit the structural properties
// the paper contrasts against (Sage model growth, DeepTraLog distance).

#include <gtest/gtest.h>

#include "baselines/deeptralog.h"
#include "baselines/realtime_rca.h"
#include "baselines/sage.h"
#include "baselines/simple_rules.h"
#include "baselines/trace_anomaly.h"
#include "sim/simulator.h"
#include "synth/generator.h"

using namespace sleuth;
using namespace sleuth::baselines;

namespace {

struct Fixture
{
    synth::AppConfig app;
    sim::ClusterModel cluster;
    std::vector<trace::Trace> corpus;
    std::vector<sim::SimResult> anomalies;
    int victim;
    std::string victimName;

    Fixture()
        : app(synth::generateApp(synth::syntheticParams(16, 33))),
          cluster(app, 10, 3)
    {
        sim::Simulator::calibrateSlos(app, cluster, 300, 99.0);
        sim::Simulator healthy(app, cluster, {.seed = 88});
        for (int i = 0; i < 200; ++i)
            corpus.push_back(healthy.simulateOne().trace);

        victim = 1;  // a middleware service covered by the full flow
        victimName = app.services[static_cast<size_t>(victim)].name;
        chaos::FaultType type = chaos::FaultType::CpuStress;
        for (const synth::RpcConfig &r : app.rpcs) {
            if (r.serviceId != victim)
                continue;
            if (r.startKernel.resource == synth::Resource::Memory)
                type = chaos::FaultType::MemoryStress;
            if (r.startKernel.resource == synth::Resource::Disk)
                type = chaos::FaultType::DiskStress;
            break;
        }
        chaos::FaultPlan plan;
        for (const chaos::Instance &inst : cluster.instancesOf(victim))
            plan.faults.push_back({type, chaos::FaultScope::Container,
                                   inst.container, 15.0, 0.0});
        sim::Simulator faulty(app, cluster, {.seed = 99}, plan);
        for (int i = 0; i < 3000 && anomalies.size() < 20; ++i) {
            sim::SimResult r = faulty.simulateOne();
            int64_t slo =
                app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
            if (r.faultTouched() && r.violatesSlo(slo))
                anomalies.push_back(std::move(r));
        }
    }

    /** Fraction of anomalies whose prediction contains the victim. */
    double
    recallOf(RcaAlgorithm &algo)
    {
        algo.fit(corpus);
        int hits = 0;
        for (const sim::SimResult &r : anomalies) {
            int64_t slo =
                app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
            for (const std::string &svc :
                 algo.locate(r.trace, slo))
                if (svc == victimName) {
                    ++hits;
                    break;
                }
        }
        return static_cast<double>(hits) /
               static_cast<double>(anomalies.size());
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

} // namespace

TEST(Fixture, HasAnomalies)
{
    EXPECT_GE(fixture().anomalies.size(), 10u);
}

TEST(NSigma, FindsObviousFault)
{
    NSigmaRule algo(3.0);
    EXPECT_GE(fixture().recallOf(algo), 0.6);
}

TEST(NSigma, LargerNIsStricter)
{
    Fixture &f = fixture();
    NSigmaRule loose(1.0), strict(12.0);
    loose.fit(f.corpus);
    strict.fit(f.corpus);
    size_t loose_total = 0, strict_total = 0;
    for (const sim::SimResult &r : f.anomalies) {
        int64_t slo =
            f.app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        loose_total += loose.locate(r.trace, slo).size();
        strict_total += strict.locate(r.trace, slo).size();
    }
    EXPECT_GE(loose_total, strict_total);
}

TEST(MaxDuration, FindsObviousFault)
{
    MaxDurationRca algo;
    EXPECT_GE(fixture().recallOf(algo), 0.5);
}

TEST(MaxDuration, ReturnsSingleService)
{
    Fixture &f = fixture();
    MaxDurationRca algo;
    algo.fit(f.corpus);
    for (const sim::SimResult &r : f.anomalies) {
        auto out = algo.locate(r.trace, 0);
        EXPECT_LE(out.size(), 1u);
    }
}

TEST(Threshold, FindsObviousFault)
{
    ThresholdRca algo(99.0);
    EXPECT_GE(fixture().recallOf(algo), 0.5);
}

TEST(ErrorRootServices, DfsFindsExclusiveErrorOrigin)
{
    Fixture &f = fixture();
    trace::Trace t = f.corpus[0];
    // Force an error on a leaf and its ancestors up to the root.
    trace::TraceGraph g = trace::TraceGraph::build(t);
    int leaf = -1;
    for (size_t i = 0; i < t.spans.size(); ++i)
        if (g.children(static_cast<int>(i)).empty())
            leaf = static_cast<int>(i);
    ASSERT_GE(leaf, 0);
    for (int cur = leaf; cur >= 0; cur = g.parent(cur))
        t.spans[static_cast<size_t>(cur)].status =
            trace::StatusCode::Error;
    auto roots = errorRootServices(t);
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0], t.spans[static_cast<size_t>(leaf)].service);
}

TEST(TraceAnomalyBaseline, FindsObviousFault)
{
    TraceAnomalyRca::Config cfg;
    cfg.epochs = 30;
    TraceAnomalyRca algo(cfg);
    EXPECT_GE(fixture().recallOf(algo), 0.3);
}

TEST(RealtimeRcaBaseline, FindsObviousFault)
{
    RealtimeRca algo;
    EXPECT_GE(fixture().recallOf(algo), 0.4);
}

TEST(RealtimeRcaBaseline, ReturnsAtMostOneService)
{
    Fixture &f = fixture();
    RealtimeRca algo;
    algo.fit(f.corpus);
    for (const sim::SimResult &r : f.anomalies)
        EXPECT_LE(algo.locate(r.trace, 0).size(), 1u);
}

TEST(SageBaseline, FindsObviousFault)
{
    SageRca::Config cfg;
    cfg.epochs = 30;
    SageRca algo(cfg);
    EXPECT_GE(fixture().recallOf(algo), 0.6);
}

TEST(SageBaseline, ModelCountGrowsWithApplication)
{
    SageRca::Config cfg;
    cfg.epochs = 2;
    SageRca small_algo(cfg), big_algo(cfg);

    synth::AppConfig small_app =
        synth::generateApp(synth::syntheticParams(16, 5));
    synth::AppConfig big_app =
        synth::generateApp(synth::syntheticParams(64, 5));
    sim::ClusterModel small_cluster(small_app, 10, 1);
    sim::ClusterModel big_cluster(big_app, 10, 1);
    sim::Simulator s1(small_app, small_cluster, {.seed = 1});
    sim::Simulator s2(big_app, big_cluster, {.seed = 1});
    std::vector<trace::Trace> c1, c2;
    for (int i = 0; i < 30; ++i) {
        c1.push_back(s1.simulateOne().trace);
        c2.push_back(s2.simulateOne().trace);
    }
    small_algo.fit(c1);
    big_algo.fit(c2);
    // This is the paper's core scalability contrast: Sage's model
    // inventory tracks the application size, Sleuth's does not.
    EXPECT_GT(big_algo.numModels(), 2 * small_algo.numModels());
    EXPECT_GT(big_algo.parameterCount(), small_algo.parameterCount());
}

TEST(DeepTraLogBaseline, DistanceIsSymmetricAndReflexive)
{
    Fixture &f = fixture();
    DeepTraLogDistance::Config cfg;
    cfg.epochs = 40;
    DeepTraLogDistance dist(cfg);
    std::vector<trace::Trace> sub(f.corpus.begin(),
                                  f.corpus.begin() + 50);
    dist.fit(sub);
    const trace::Trace &a = f.corpus[0];
    const trace::Trace &b = f.corpus[1];
    EXPECT_NEAR(dist.distance(a, a), 0.0, 1e-9);
    EXPECT_NEAR(dist.distance(a, b), dist.distance(b, a), 1e-9);
}

TEST(DeepTraLogBaseline, TrainingContractsNormalTraces)
{
    Fixture &f = fixture();
    DeepTraLogDistance::Config cfg;
    cfg.epochs = 60;
    DeepTraLogDistance dist(cfg);
    std::vector<trace::Trace> sub(f.corpus.begin(),
                                  f.corpus.begin() + 60);
    dist.fit(sub);
    // Normal traces sit near the hypersphere center.
    double mean_center = 0;
    for (int i = 0; i < 20; ++i)
        mean_center += dist.distanceToCenter(f.corpus[i]);
    EXPECT_TRUE(std::isfinite(mean_center));
}
