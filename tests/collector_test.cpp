// Unit tests for the multi-protocol trace collectors (paper §4).

#include <gtest/gtest.h>

#include "collector/collector.h"
#include "test_helpers.h"
#include "trace/trace_json.h"

using namespace sleuth;
using namespace sleuth::collector;

namespace {

const char *kZipkinPayload = R"([
  {"traceId": "t1", "id": "a", "name": "get /orders",
   "kind": "SERVER", "timestamp": 1000, "duration": 500,
   "localEndpoint": {"serviceName": "front-end"}},
  {"traceId": "t1", "id": "b", "parentId": "a", "name": "CreateOrder",
   "kind": "CLIENT", "timestamp": 1100, "duration": 300,
   "localEndpoint": {"serviceName": "front-end"},
   "tags": {"error": "timeout"}},
  {"traceId": "t2", "id": "x", "name": "GET /cart",
   "kind": "SERVER", "timestamp": 9000, "duration": 120,
   "localEndpoint": {"serviceName": "front-end"}}
])";

const char *kJaegerPayload = R"({
  "data": [{
    "traceID": "jt1",
    "processes": {
      "p1": {"serviceName": "nginx"},
      "p2": {"serviceName": "compose-post"}
    },
    "spans": [
      {"spanID": "s1", "operationName": "POST /compose",
       "startTime": 5000, "duration": 900, "processID": "p1",
       "tags": [{"key": "span.kind", "value": "server"}]},
      {"spanID": "s2", "operationName": "ComposePost",
       "startTime": 5100, "duration": 700, "processID": "p2",
       "references": [{"refType": "CHILD_OF", "spanID": "s1"}],
       "tags": [{"key": "span.kind", "value": "server"},
                {"key": "error", "value": true}]}
    ]
  }]
})";

} // namespace

TEST(ZipkinParser, GroupsByTraceAndMapsFields)
{
    std::string err;
    util::Json doc = util::Json::parse(kZipkinPayload, &err);
    ASSERT_TRUE(err.empty()) << err;
    auto traces = parseZipkin(doc);
    ASSERT_EQ(traces.size(), 2u);

    const trace::Trace &t1 =
        traces[0].traceId == "t1" ? traces[0] : traces[1];
    ASSERT_EQ(t1.spans.size(), 2u);
    const trace::Span &root = t1.spans[0];
    EXPECT_EQ(root.service, "front-end");
    EXPECT_EQ(root.name, "get /orders");
    EXPECT_EQ(root.kind, trace::SpanKind::Server);
    EXPECT_EQ(root.startUs, 1000);
    EXPECT_EQ(root.endUs, 1500);
    EXPECT_FALSE(root.hasError());
    const trace::Span &child = t1.spans[1];
    EXPECT_EQ(child.parentSpanId, "a");
    EXPECT_EQ(child.kind, trace::SpanKind::Client);
    EXPECT_TRUE(child.hasError());
}

TEST(ZipkinParser, LowercaseKindAccepted)
{
    std::string err;
    util::Json doc = util::Json::parse(
        R"([{"traceId":"t","id":"a","name":"op","kind":"producer",
             "timestamp":0,"duration":5,
             "localEndpoint":{"serviceName":"s"}}])",
        &err);
    ASSERT_TRUE(err.empty());
    auto traces = parseZipkin(doc);
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].spans[0].kind, trace::SpanKind::Producer);
}

TEST(JaegerParser, ResolvesProcessesAndReferences)
{
    std::string err;
    util::Json doc = util::Json::parse(kJaegerPayload, &err);
    ASSERT_TRUE(err.empty()) << err;
    auto traces = parseJaeger(doc);
    ASSERT_EQ(traces.size(), 1u);
    ASSERT_EQ(traces[0].spans.size(), 2u);
    EXPECT_EQ(traces[0].traceId, "jt1");
    EXPECT_EQ(traces[0].spans[0].service, "nginx");
    EXPECT_EQ(traces[0].spans[0].parentSpanId, "");
    EXPECT_EQ(traces[0].spans[1].service, "compose-post");
    EXPECT_EQ(traces[0].spans[1].parentSpanId, "s1");
    EXPECT_TRUE(traces[0].spans[1].hasError());
    // Parsed trace builds a valid graph.
    trace::TraceGraph g;
    std::string why;
    EXPECT_TRUE(trace::TraceGraph::tryBuild(traces[0], &g, &why))
        << why;
}

TEST(OtelParser, RoundTripsNativeFormat)
{
    std::vector<trace::Trace> corpus = {
        sleuth::testing::figure2Trace()};
    std::string payload = trace::toJson(corpus).dump();
    std::string err;
    util::Json doc = util::Json::parse(payload, &err);
    ASSERT_TRUE(err.empty());
    auto traces = parseOtel(doc);
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].spans.size(), 3u);
}

TEST(TraceCollector, IngestsAllProtocolsIntoStore)
{
    storage::TraceStore store;
    TraceCollector collector(&store);

    EXPECT_EQ(collector.ingest(kZipkinPayload, Protocol::Zipkin, 1000),
              2u);
    EXPECT_EQ(collector.ingest(kJaegerPayload, Protocol::Jaeger), 1u);
    std::vector<trace::Trace> native = {
        sleuth::testing::figure2Trace()};
    EXPECT_EQ(collector.ingest(trace::toJson(native).dump(),
                               Protocol::Otel),
              1u);

    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(collector.stats().tracesAccepted, 4u);
    EXPECT_EQ(collector.stats().tracesRejected, 0u);
    EXPECT_GT(collector.stats().spansAccepted, 6u);

    // Stored zipkin records carry the SLO for anomaly queries.
    storage::Query q;
    q.service = "front-end";
    auto hits = store.query(q);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0]->sloUs, 1000);
}

TEST(TraceCollector, RejectsMalformedJson)
{
    storage::TraceStore store;
    TraceCollector collector(&store);
    EXPECT_EQ(collector.ingest("{not json", Protocol::Zipkin), 0u);
    EXPECT_EQ(collector.stats().tracesRejected, 1u);
    EXPECT_EQ(store.size(), 0u);
}

TEST(TraceCollector, RejectsStructurallyInvalidTraces)
{
    // A zipkin trace whose parent never arrives is dropped, while the
    // valid trace in the same payload is kept.
    const char *payload = R"([
      {"traceId": "bad", "id": "b", "parentId": "ghost",
       "name": "op", "timestamp": 0, "duration": 5,
       "localEndpoint": {"serviceName": "s"}},
      {"traceId": "ok", "id": "a", "name": "op",
       "timestamp": 0, "duration": 5,
       "localEndpoint": {"serviceName": "s"}}
    ])";
    storage::TraceStore store;
    TraceCollector collector(&store);
    EXPECT_EQ(collector.ingest(payload, Protocol::Zipkin), 1u);
    EXPECT_EQ(collector.stats().tracesRejected, 1u);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.at(0).trace().traceId, "ok");
}

TEST(CollectorStats, CountsDropsByReason)
{
    CollectorStats s;
    s.countDrop(DropReason::Orphan, 2);
    s.countDrop(DropReason::Duplicate, 1);
    s.countDrop(DropReason::LateAfterEviction, 3);
    s.countDrop(DropReason::Malformed, 4);
    s.countDrop(DropReason::Backpressure, 5);
    EXPECT_EQ(s.spansRejected, 15u);
    EXPECT_EQ(s.droppedOrphan, 2u);
    EXPECT_EQ(s.droppedDuplicate, 1u);
    EXPECT_EQ(s.droppedLate, 3u);
    EXPECT_EQ(s.droppedMalformed, 4u);
    EXPECT_EQ(s.droppedBackpressure, 5u);

    CollectorStats other;
    other.countDrop(DropReason::Orphan, 1);
    other.spansAccepted = 7;
    other.tracesAccepted = 2;
    s.merge(other);
    EXPECT_EQ(s.droppedOrphan, 3u);
    EXPECT_EQ(s.spansRejected, 16u);
    EXPECT_EQ(s.spansAccepted, 7u);
    EXPECT_EQ(s.tracesAccepted, 2u);
}

TEST(CollectorStats, ClassifyDefectOrdersChecks)
{
    using sleuth::testing::makeSpan;
    trace::Trace empty;
    EXPECT_EQ(classifyDefect(empty), DropReason::Malformed);

    trace::Trace dup;
    dup.spans.push_back(makeSpan("x", "", "s", "op", 0, 10));
    dup.spans.push_back(makeSpan("x", "x", "s", "op2", 1, 5));
    EXPECT_EQ(classifyDefect(dup), DropReason::Duplicate);

    trace::Trace orphan;
    orphan.spans.push_back(makeSpan("a", "", "s", "op", 0, 10));
    orphan.spans.push_back(makeSpan("b", "ghost", "s", "op2", 1, 5));
    EXPECT_EQ(classifyDefect(orphan), DropReason::Orphan);

    trace::Trace two_roots;
    two_roots.spans.push_back(makeSpan("a", "", "s", "op", 0, 10));
    two_roots.spans.push_back(makeSpan("b", "", "s", "op2", 1, 5));
    EXPECT_EQ(classifyDefect(two_roots), DropReason::Malformed);
}

TEST(TraceCollector, RejectionsAreCountedByReason)
{
    // One orphan trace, one valid trace, one unparsable payload.
    const char *payload = R"([
      {"traceId": "bad", "id": "b", "parentId": "ghost",
       "name": "op", "timestamp": 0, "duration": 5,
       "localEndpoint": {"serviceName": "s"}},
      {"traceId": "ok", "id": "a", "name": "op",
       "timestamp": 0, "duration": 5,
       "localEndpoint": {"serviceName": "s"}}
    ])";
    storage::TraceStore store;
    TraceCollector collector(&store);
    collector.ingest(payload, Protocol::Zipkin);
    collector.ingest("{not json", Protocol::Zipkin);
    const CollectorStats &s = collector.stats();
    EXPECT_EQ(s.tracesAccepted, 1u);
    EXPECT_EQ(s.tracesRejected, 2u);
    EXPECT_EQ(s.droppedOrphan, 1u);
    EXPECT_EQ(s.droppedMalformed, 1u);
    EXPECT_EQ(s.spansRejected, 2u);
    EXPECT_EQ(s.spansAccepted, 1u);
}
