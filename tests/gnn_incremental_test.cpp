// Tests pinning incremental counterfactual propagation
// (SleuthGnn::propagateFrom) to the full bottom-up propagate: identical
// predictions on every node under random interventions, and identical
// RCA verdicts with the incremental path on or off.

#include <gtest/gtest.h>

#include <cmath>

#include "core/counterfactual.h"
#include "core/gnn.h"
#include "core/trainer.h"
#include "sim/simulator.h"
#include "synth/generator.h"
#include "test_helpers.h"

using namespace sleuth;
using namespace sleuth::core;
using sleuth::testing::makeSpan;

namespace {

std::vector<trace::Trace>
simulateCorpus(size_t n, uint64_t seed)
{
    static synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(16, 11));
    static sim::ClusterModel cluster(app, 10, 1);
    sim::Simulator simulator(app, cluster, {.seed = seed});
    std::vector<trace::Trace> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(simulator.simulateOne().trace);
    return out;
}

GnnConfig
smallConfig()
{
    GnnConfig c;
    c.embedDim = 8;
    c.hidden = 16;
    c.seed = 3;
    return c;
}

std::vector<NodeState>
observedStates(const trace::Trace &t, const trace::TraceGraph &g)
{
    trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
    std::vector<NodeState> states(t.spans.size());
    for (size_t i = 0; i < t.spans.size(); ++i) {
        states[i].exclusiveUs = static_cast<double>(m.exclusiveUs[i]);
        states[i].exclusiveErr = m.exclusiveError[i] ? 1.0 : 0.0;
    }
    return states;
}

void
expectSamePrediction(const TracePrediction &a, const TracePrediction &b)
{
    EXPECT_NEAR(a.rootDurationUs, b.rootDurationUs, 1e-9);
    EXPECT_NEAR(a.rootErrorProb, b.rootErrorProb, 1e-9);
    ASSERT_EQ(a.nodeDurUs.size(), b.nodeDurUs.size());
    ASSERT_EQ(a.nodeErrProb.size(), b.nodeErrProb.size());
    for (size_t i = 0; i < a.nodeDurUs.size(); ++i) {
        EXPECT_NEAR(a.nodeDurUs[i], b.nodeDurUs[i], 1e-9)
            << "node " << i;
        EXPECT_NEAR(a.nodeErrProb[i], b.nodeErrProb[i], 1e-9)
            << "node " << i;
    }
}

} // namespace

TEST(PropagateFrom, EmptyDirtyListReproducesBaseline)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    for (const trace::Trace &t : simulateCorpus(10, 21)) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        TraceBatch b = enc.encode(t);
        std::vector<NodeState> states = observedStates(t, g);
        TracePrediction base = model.propagate(b, g, states);
        TracePrediction inc =
            model.propagateFrom(b, g, states, base, {});
        expectSamePrediction(inc, base);
    }
}

TEST(PropagateFrom, SingleNodeInterventionsMatchFullPropagate)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    for (const trace::Trace &t : simulateCorpus(12, 22)) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        TraceBatch b = enc.encode(t);
        std::vector<NodeState> observed = observedStates(t, g);
        TracePrediction base = model.propagate(b, g, observed);
        // Intervene on every node in turn, including the root (index
        // of the span with no parent) and the leaves.
        for (size_t i = 0; i < t.spans.size(); ++i) {
            std::vector<NodeState> states = observed;
            states[i].exclusiveUs *= 0.1;
            states[i].exclusiveErr = 0.0;
            TracePrediction full = model.propagate(b, g, states);
            TracePrediction inc = model.propagateFrom(
                b, g, states, base, {static_cast<int>(i)});
            expectSamePrediction(inc, full);
        }
    }
}

TEST(PropagateFrom, RandomMultiNodeInterventionsMatchFullPropagate)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    util::Rng rng(77);
    for (const trace::Trace &t : simulateCorpus(20, 23)) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        TraceBatch b = enc.encode(t);
        std::vector<NodeState> observed = observedStates(t, g);
        TracePrediction base = model.propagate(b, g, observed);
        for (int rep = 0; rep < 4; ++rep) {
            std::vector<NodeState> states = observed;
            std::vector<int> dirty;
            for (size_t i = 0; i < t.spans.size(); ++i) {
                if (rng.uniform(0.0, 1.0) > 0.4)
                    continue;
                states[i].exclusiveUs =
                    std::max(1.0, states[i].exclusiveUs *
                                      rng.uniform(0.05, 2.0));
                states[i].exclusiveErr = 0.0;
                if (states[i].exclusiveUs !=
                        observed[i].exclusiveUs ||
                    states[i].exclusiveErr !=
                        observed[i].exclusiveErr)
                    dirty.push_back(static_cast<int>(i));
            }
            TracePrediction full = model.propagate(b, g, states);
            TracePrediction inc =
                model.propagateFrom(b, g, states, base, dirty);
            expectSamePrediction(inc, full);
        }
    }
}

TEST(PropagateFrom, AllNodesDirtyMatchesFullPropagate)
{
    FeatureEncoder enc(8);
    SleuthGnn model(smallConfig());
    for (const trace::Trace &t : simulateCorpus(8, 24)) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        TraceBatch b = enc.encode(t);
        std::vector<NodeState> observed = observedStates(t, g);
        TracePrediction base = model.propagate(b, g, observed);
        std::vector<NodeState> states = observed;
        std::vector<int> dirty;
        for (size_t i = 0; i < states.size(); ++i) {
            states[i].exclusiveUs = states[i].exclusiveUs * 0.5 + 1.0;
            dirty.push_back(static_cast<int>(i));
        }
        TracePrediction full = model.propagate(b, g, states);
        TracePrediction inc =
            model.propagateFrom(b, g, states, base, dirty);
        expectSamePrediction(inc, full);
    }
}

namespace {

/** Trained fixture mirroring counterfactual_test: two-level traces
 *  with an optionally inflated/erroring backend. */
struct RcaFixture
{
    FeatureEncoder encoder{8};
    SleuthGnn model;
    NormalProfile profile;

    RcaFixture()
        : model([] {
              GnnConfig c;
              c.embedDim = 8;
              c.hidden = 16;
              c.seed = 2;
              return c;
          }())
    {
        util::Rng rng(3);
        std::vector<trace::Trace> corpus;
        for (int i = 0; i < 120; ++i)
            corpus.push_back(makeTrace(rng, i >= 100));
        for (const trace::Trace &t : corpus)
            profile.add(t);
        profile.finalize();
        TrainConfig tc;
        tc.epochs = 6;
        tc.tracesPerBatch = 8;
        Trainer trainer(model, encoder, tc);
        trainer.train(corpus);
    }

    static trace::Trace
    makeTrace(util::Rng &rng, bool slow = false,
              bool backend_error = false)
    {
        int64_t backend = rng.uniformInt(150, 300) * (slow ? 10 : 1);
        int64_t net = rng.uniformInt(20, 50);
        int64_t front_pre = rng.uniformInt(50, 120);
        int64_t front_post = rng.uniformInt(30, 80);
        trace::Trace t;
        t.traceId = "t";
        int64_t c_start = front_pre;
        int64_t s_start = c_start + net;
        int64_t s_end = s_start + backend;
        int64_t c_end = s_end + net;
        t.spans.push_back(makeSpan("r", "", "frontend", "Handle", 0,
                                   c_end + front_post));
        t.spans.push_back(makeSpan("c", "r", "frontend", "GetItem",
                                   c_start, c_end,
                                   trace::SpanKind::Client,
                                   backend_error
                                       ? trace::StatusCode::Error
                                       : trace::StatusCode::Ok));
        t.spans.push_back(makeSpan("s", "c", "backend", "GetItem",
                                   s_start, s_end,
                                   trace::SpanKind::Server,
                                   backend_error
                                       ? trace::StatusCode::Error
                                       : trace::StatusCode::Ok));
        return t;
    }
};

RcaFixture &
rcaFixture()
{
    static RcaFixture f;
    return f;
}

} // namespace

TEST(PropagateFrom, RcaVerdictsIdenticalWithAndWithoutIncremental)
{
    RcaFixture &f = rcaFixture();
    util::Rng rng(42);
    for (int i = 0; i < 8; ++i) {
        bool slow = i % 2 == 0;
        bool err = i % 3 == 0;
        trace::Trace t = RcaFixture::makeTrace(rng, slow, err);
        if (err)
            t.spans[0].status = trace::StatusCode::Error;
        for (int64_t slo : {int64_t{900}, int64_t{100000}}) {
            RcaParams inc_on;
            inc_on.incrementalPropagation = true;
            RcaParams inc_off;
            inc_off.incrementalPropagation = false;
            CounterfactualRca rca_inc(f.model, f.encoder, f.profile,
                                      inc_on);
            CounterfactualRca rca_full(f.model, f.encoder, f.profile,
                                       inc_off);
            RcaResult a = rca_inc.analyze(t, slo);
            RcaResult b = rca_full.analyze(t, slo);
            EXPECT_EQ(a.services, b.services);
            EXPECT_EQ(a.resolved, b.resolved);
            EXPECT_EQ(a.iterations, b.iterations);
            EXPECT_EQ(a.pods, b.pods);
            EXPECT_EQ(a.nodes, b.nodes);
            EXPECT_EQ(a.containers, b.containers);
        }
    }
}
