// SIMD ↔ scalar equivalence suite (ctest label: simd).
//
// The dispatch contract (src/util/simd.h) promises bitwise-identical
// results between the AVX2 bodies and their scalar mirrors for every
// kernel, and bitwise-identical *pipeline* results between dispatch
// modes for the integral-weight Jaccard and matmul paths. These tests
// pin both: direct scalar:: vs avx2:: comparisons across awkward tail
// sizes, and end-to-end dispatch toggles through the public entry
// points. The int8 quantized-cosine ablation gets its declared
// tolerance checked instead (the integer dot itself is exact).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "distance/distance_matrix.h"
#include "distance/trace_distance.h"
#include "embed/text_embedder.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/simd.h"

using namespace sleuth;

namespace {

// Tail sizes around the 4-lane block width, per the issue checklist.
const std::vector<size_t> kSizes = {0, 1, 7, 8, 9, 31, 33, 100};

std::vector<double>
randomVec(util::Rng &rng, size_t n, double lo = -3.0, double hi = 3.0)
{
    std::vector<double> v(n);
    for (double &x : v)
        x = rng.uniform(lo, hi);
    return v;
}

/** True when the avx2:: symbols run actual AVX2 bodies. */
bool
avx2Live()
{
    return simd::compiledAvx2() && simd::cpuAvx2();
}

} // namespace

TEST(SimdDispatch, ReportsConsistentState)
{
    EXPECT_STREQ(simd::activeIsaName(),
                 simd::active() ? "avx2" : "scalar");
    simd::forceScalar(true);
    EXPECT_FALSE(simd::active());
    EXPECT_STREQ(simd::activeIsaName(), "scalar");
    simd::forceScalar(false);
    EXPECT_EQ(simd::active(), avx2Live());
}

TEST(SimdDispatch, ScopedForceScalarRestores)
{
    const bool before = simd::active();
    {
        simd::ScopedForceScalar guard;
        EXPECT_FALSE(simd::active());
    }
    EXPECT_EQ(simd::active(), before);
}

TEST(SimdKernels, ElementwiseBitwiseEqualAcrossTails)
{
    if (!avx2Live())
        GTEST_SKIP() << "AVX2 bodies not available on this host";
    util::Rng rng(0xa1);
    for (size_t n : kSizes) {
        std::vector<double> x = randomVec(rng, n);
        std::vector<double> ys = randomVec(rng, n);
        std::vector<double> yv = ys;
        const double a = rng.uniform(-2.0, 2.0);
        simd::scalar::axpy(ys.data(), a, x.data(), n);
        simd::avx2::axpy(yv.data(), a, x.data(), n);
        EXPECT_EQ(ys, yv) << "axpy n=" << n;

        std::vector<double> as = randomVec(rng, n), av = as;
        simd::scalar::add(as.data(), x.data(), n);
        simd::avx2::add(av.data(), x.data(), n);
        EXPECT_EQ(as, av) << "add n=" << n;

        std::vector<double> ss = randomVec(rng, n), sv = ss;
        simd::scalar::scale(ss.data(), a, n);
        simd::avx2::scale(sv.data(), a, n);
        EXPECT_EQ(ss, sv) << "scale n=" << n;

        std::vector<double> ds = randomVec(rng, n), dv = ds;
        const double s = rng.uniform(0.5, 4.0);
        simd::scalar::div(ds.data(), s, n);
        simd::avx2::div(dv.data(), s, n);
        EXPECT_EQ(ds, dv) << "div n=" << n;
    }
}

TEST(SimdKernels, DotBlockedBitwiseEqualAcrossTails)
{
    if (!avx2Live())
        GTEST_SKIP() << "AVX2 bodies not available on this host";
    util::Rng rng(0xb2);
    for (size_t n : kSizes) {
        std::vector<double> a = randomVec(rng, n);
        std::vector<double> b = randomVec(rng, n);
        const double s = simd::scalar::dotBlocked(a.data(), b.data(), n);
        const double v = simd::avx2::dotBlocked(a.data(), b.data(), n);
        EXPECT_EQ(std::memcmp(&s, &v, sizeof s), 0) << "dot n=" << n;
    }
}

TEST(SimdKernels, DotRows4BitwiseEqualsFourNaiveDots)
{
    util::Rng rng(0xc3);
    for (size_t n : kSizes) {
        std::vector<double> a = randomVec(rng, n);
        std::vector<std::vector<double>> rows;
        for (int r = 0; r < 4; ++r)
            rows.push_back(randomVec(rng, n));
        // The pinned semantics: four separate strictly-sequential dots.
        double naive[4];
        for (int r = 0; r < 4; ++r) {
            double acc = 0.0;
            for (size_t t = 0; t < n; ++t)
                acc += a[t] * rows[static_cast<size_t>(r)][t];
            naive[r] = acc;
        }
        double s[4], v[4];
        simd::scalar::dotRows4(a.data(), rows[0].data(), rows[1].data(),
                               rows[2].data(), rows[3].data(), n, s);
        EXPECT_EQ(std::memcmp(naive, s, sizeof naive), 0)
            << "scalar dotRows4 n=" << n;
        if (!avx2Live())
            continue;
        simd::avx2::dotRows4(a.data(), rows[0].data(), rows[1].data(),
                             rows[2].data(), rows[3].data(), n, v);
        EXPECT_EQ(std::memcmp(s, v, sizeof s), 0)
            << "avx2 dotRows4 n=" << n;
    }
}

namespace {

/** Sorted unique keys with integer-valued weights (duration-like). */
void
randomSortedSet(util::Rng &rng, size_t n, std::vector<uint64_t> *keys,
                std::vector<double> *weights)
{
    keys->clear();
    weights->clear();
    uint64_t k = 0;
    for (size_t i = 0; i < n; ++i) {
        // Small strides make dense intersections with the other set.
        k += static_cast<uint64_t>(rng.uniformInt(1, 3));
        keys->push_back(k);
        weights->push_back(
            static_cast<double>(rng.uniformInt(1, 100000)));
    }
}

/** Reference min-sum: plain two-pointer merge, one accumulator. */
double
naiveIntersectMinSum(const std::vector<uint64_t> &ka,
                     const std::vector<double> &wa,
                     const std::vector<uint64_t> &kb,
                     const std::vector<double> &wb)
{
    double acc = 0.0;
    size_t i = 0, j = 0;
    while (i < ka.size() && j < kb.size()) {
        if (ka[i] == kb[j]) {
            acc += std::min(wa[i], wb[j]);
            ++i;
            ++j;
        } else if (ka[i] < kb[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    return acc;
}

} // namespace

TEST(SimdKernels, SortedIntersectMinSumMatchesAcrossTails)
{
    util::Rng rng(0xd4);
    for (size_t na : kSizes) {
        for (size_t nb : {na, na / 2, na + 5}) {
            std::vector<uint64_t> ka, kb;
            std::vector<double> wa, wb;
            randomSortedSet(rng, na, &ka, &wa);
            randomSortedSet(rng, nb, &kb, &wb);
            const double ref =
                naiveIntersectMinSum(ka, wa, kb, wb);
            const double s = simd::scalar::sortedIntersectMinSum(
                ka.data(), wa.data(), na, kb.data(), wb.data(), nb);
            // Integer-valued weights: every accumulation order is
            // exact, so even the reference must agree bitwise.
            EXPECT_EQ(s, ref) << "na=" << na << " nb=" << nb;
            if (!avx2Live())
                continue;
            const double v = simd::avx2::sortedIntersectMinSum(
                ka.data(), wa.data(), na, kb.data(), wb.data(), nb);
            EXPECT_EQ(std::memcmp(&s, &v, sizeof s), 0)
                << "na=" << na << " nb=" << nb;
        }
    }
}

TEST(SimdKernels, MinSemanticsMatchMinpdOnTies)
{
    // (a<b)?a:b — the second operand must win exact ties in both
    // implementations (MINPD semantics).
    std::vector<uint64_t> k = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<double> wa = {5, 5, 5, 5, 5, 5, 5, 5};
    std::vector<double> wb = {5, 5, 5, 5, 5, 5, 5, 5};
    const double s = simd::scalar::sortedIntersectMinSum(
        k.data(), wa.data(), k.size(), k.data(), wb.data(), k.size());
    EXPECT_EQ(s, 40.0);
    if (avx2Live()) {
        const double v = simd::avx2::sortedIntersectMinSum(
            k.data(), wa.data(), k.size(), k.data(), wb.data(),
            k.size());
        EXPECT_EQ(s, v);
    }
}

TEST(SimdKernels, DotI8ExactAcrossTails)
{
    util::Rng rng(0xe5);
    for (size_t n : kSizes) {
        std::vector<int8_t> a(n), b(n);
        for (size_t i = 0; i < n; ++i) {
            a[i] = static_cast<int8_t>(rng.uniformInt(-127, 127));
            b[i] = static_cast<int8_t>(rng.uniformInt(-127, 127));
        }
        int64_t ref = 0;
        for (size_t i = 0; i < n; ++i)
            ref += static_cast<int64_t>(a[i]) * b[i];
        EXPECT_EQ(simd::scalar::dotI8(a.data(), b.data(), n), ref)
            << "n=" << n;
        if (avx2Live())
            EXPECT_EQ(simd::avx2::dotI8(a.data(), b.data(), n), ref)
                << "n=" << n;
    }
}

TEST(SimdMatmul, BitwiseIdenticalAcrossDispatchAtTailSizes)
{
    util::Rng rng(0xf6);
    // Shapes straddling the 4-wide block in every dimension.
    const size_t shapes[][3] = {{1, 1, 1},   {3, 7, 5},  {4, 8, 4},
                                {5, 9, 7},   {8, 31, 9}, {9, 33, 8},
                                {16, 16, 16}};
    for (const auto &sh : shapes) {
        nn::Tensor a(sh[0], sh[1]);
        nn::Tensor b(sh[1], sh[2]);
        nn::Tensor bt(sh[2], sh[1]);
        nn::Tensor at(sh[1], sh[0]);
        for (double &x : a.data())
            x = rng.uniform(-2.0, 2.0);
        for (double &x : b.data())
            x = rng.uniform(-2.0, 2.0);
        for (double &x : bt.data())
            x = rng.uniform(-2.0, 2.0);
        for (double &x : at.data())
            x = rng.uniform(-2.0, 2.0);

        nn::Tensor mm_on = a.matmul(b);
        nn::Tensor ta_on = at.matmulTransposedA(b);
        nn::Tensor tb_on = a.matmulTransposedB(bt);
        simd::ScopedForceScalar guard;
        EXPECT_EQ(mm_on.data(), a.matmul(b).data())
            << "matmul " << sh[0] << "x" << sh[1] << "x" << sh[2];
        EXPECT_EQ(ta_on.data(), at.matmulTransposedA(b).data())
            << "matmulTransposedA " << sh[0] << "x" << sh[1] << "x"
            << sh[2];
        EXPECT_EQ(tb_on.data(), a.matmulTransposedB(bt).data())
            << "matmulTransposedB " << sh[0] << "x" << sh[1] << "x"
            << sh[2];
    }
}

namespace {

distance::WeightedSpanSet
randomIntegralSet(util::Rng &rng, size_t n)
{
    std::vector<std::pair<uint64_t, double>> entries;
    for (size_t i = 0; i < n; ++i)
        entries.emplace_back(
            static_cast<uint64_t>(rng.uniformInt(0, 40)),
            static_cast<double>(rng.uniformInt(1, 5000)));
    return distance::makeSpanSet(entries);
}

} // namespace

TEST(SimdJaccard, FromSpanSetsBitwiseIdenticalAcrossDispatch)
{
    util::Rng rng(0x17);
    std::vector<distance::WeightedSpanSet> sets;
    for (size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{31}, size_t{33}})
        sets.push_back(randomIntegralSet(rng, n));
    sets.push_back({});  // empty set: distance 0 to itself by contract

    distance::DistanceMatrix on =
        distance::DistanceMatrix::fromSpanSets(sets);
    // Integral weights: the indexed union identity must also reproduce
    // the legacy per-pair merge exactly.
    for (size_t i = 1; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_EQ(on.at(i, j),
                      distance::jaccardDistance(sets[i], sets[j]))
                << "pair " << i << "," << j;
    simd::ScopedForceScalar guard;
    distance::DistanceMatrix off =
        distance::DistanceMatrix::fromSpanSets(sets);
    for (size_t i = 1; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j) {
            const double x = on.at(i, j), y = off.at(i, j);
            EXPECT_EQ(std::memcmp(&x, &y, sizeof x), 0)
                << "pair " << i << "," << j;
        }
}

TEST(SimdJaccard, SharedKeyVectorsMatchLegacyPerPair)
{
    // Storm-shaped batch: a few distinct key vectors (flows), many
    // sets per vector with different integral weights. This drives the
    // grouped fast path (key-set dedup + precomputed intersections),
    // which must still reproduce the legacy per-pair merge exactly.
    util::Rng rng(0x31);
    std::vector<std::vector<uint64_t>> vocab;
    for (size_t f = 0; f < 4; ++f) {
        std::vector<std::pair<uint64_t, double>> proto;
        for (size_t i = 0; i < 12 + f; ++i)
            proto.emplace_back(
                static_cast<uint64_t>(rng.uniformInt(0, 60)), 1.0);
        distance::WeightedSpanSet s =
            distance::makeSpanSet(proto);
        std::vector<uint64_t> keys;
        for (const auto &[k, w] : s)
            keys.push_back(k);
        vocab.push_back(keys);
    }
    std::vector<distance::WeightedSpanSet> sets;
    for (size_t i = 0; i < 40; ++i) {
        const std::vector<uint64_t> &keys = vocab[i % vocab.size()];
        distance::WeightedSpanSet s;
        for (uint64_t k : keys)
            s.emplace_back(
                k, static_cast<double>(rng.uniformInt(1, 9000)));
        sets.push_back(std::move(s));
    }
    distance::DistanceMatrix on =
        distance::DistanceMatrix::fromSpanSets(sets);
    for (size_t i = 1; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_EQ(on.at(i, j),
                      distance::jaccardDistance(sets[i], sets[j]))
                << "pair " << i << "," << j;
    simd::ScopedForceScalar guard;
    distance::DistanceMatrix off =
        distance::DistanceMatrix::fromSpanSets(sets);
    for (size_t i = 1; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j) {
            const double x = on.at(i, j), y = off.at(i, j);
            EXPECT_EQ(std::memcmp(&x, &y, sizeof x), 0)
                << "pair " << i << "," << j;
        }
}

TEST(SimdJaccard, ManyDistinctKeySetsUseMergePath)
{
    // Past the grouping cap (64 distinct key vectors) the matrix falls
    // back to per-pair vectorized merges; results must be unchanged.
    util::Rng rng(0x42);
    std::vector<distance::WeightedSpanSet> sets;
    for (size_t i = 0; i < 70; ++i) {
        // A unique sentinel key per set guarantees 70 distinct key
        // vectors; the shared small-universe keys keep intersections
        // non-trivial.
        distance::WeightedSpanSet s = randomIntegralSet(rng, 6 + i % 5);
        s.emplace_back(1000 + i, 1.0);
        sets.push_back(std::move(s));
    }
    distance::DistanceMatrix m =
        distance::DistanceMatrix::fromSpanSets(sets);
    for (size_t i = 1; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_EQ(m.at(i, j),
                      distance::jaccardDistance(sets[i], sets[j]))
                << "pair " << i << "," << j;
}

TEST(SimdJaccard, FractionalWeightsUseLegacyPath)
{
    // Non-integral weights must fall back to the legacy per-pair merge
    // on every dispatch mode (the union identity is not exact there).
    util::Rng rng(0x28);
    std::vector<distance::WeightedSpanSet> sets;
    for (size_t n : {size_t{5}, size_t{9}, size_t{13}}) {
        std::vector<std::pair<uint64_t, double>> entries;
        for (size_t i = 0; i < n; ++i)
            entries.emplace_back(
                static_cast<uint64_t>(rng.uniformInt(0, 20)),
                rng.uniform(0.5, 50.0));
        sets.push_back(distance::makeSpanSet(entries));
    }
    distance::DistanceMatrix m =
        distance::DistanceMatrix::fromSpanSets(sets);
    for (size_t i = 1; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_EQ(m.at(i, j),
                      distance::jaccardDistance(sets[i], sets[j]))
                << "pair " << i << "," << j;
}

TEST(SimdQuantized, CosineWithinDeclaredTolerance)
{
    // The int8 path declares ~0.02 absolute error for 32-d embeddings
    // (DESIGN.md §3.12); assert with headroom at 0.03.
    embed::TextEmbedder embedder(32);
    const std::vector<std::string> texts = {
        "checkout charge card",  "checkout refund card",
        "inventory reserve sku", "frontend render page",
        "frontend render page",  "auth verify token",
    };
    for (const std::string &a : texts) {
        for (const std::string &b : texts) {
            const double exact =
                embedder.cosine(embedder.embed(a), embedder.embed(b));
            const double quant = embed::TextEmbedder::cosineQuantized(
                embedder.embedQuantized(a), embedder.embedQuantized(b));
            EXPECT_NEAR(quant, exact, 0.03) << a << " vs " << b;
        }
    }
}

TEST(SimdQuantized, ExactAcrossDispatch)
{
    // Integer dots are exact in any order: the quantized cosine must be
    // bitwise identical with SIMD on and off.
    embed::TextEmbedder embedder(32);
    embed::QuantizedEmbedding a = embedder.embedQuantized("pay charge");
    embed::QuantizedEmbedding b = embedder.embedQuantized("cart fetch");
    const double on = embed::TextEmbedder::cosineQuantized(a, b);
    simd::ScopedForceScalar guard;
    const double off = embed::TextEmbedder::cosineQuantized(a, b);
    EXPECT_EQ(std::memcmp(&on, &off, sizeof on), 0);
}
