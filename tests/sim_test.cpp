// Integration tests for the cluster model, chaos fault planning, and
// the discrete-event trace simulator.

#include <gtest/gtest.h>

#include "chaos/fault.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "trace/trace_json.h"
#include "synth/catalog.h"
#include "synth/generator.h"

using namespace sleuth;
using namespace sleuth::sim;

namespace {

synth::AppConfig
smallApp()
{
    return synth::generateApp(synth::syntheticParams(16, 42));
}

} // namespace

TEST(ClusterModel, PlacesEveryReplica)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    size_t total = 0;
    for (const synth::ServiceConfig &s : app.services) {
        const auto &insts = cluster.instancesOf(s.id);
        EXPECT_EQ(insts.size(), static_cast<size_t>(s.replicas));
        for (const chaos::Instance &i : insts) {
            EXPECT_EQ(i.serviceId, s.id);
            EXPECT_FALSE(i.container.empty());
            EXPECT_FALSE(i.pod.empty());
            EXPECT_TRUE(i.node.rfind("node-", 0) == 0);
        }
        total += insts.size();
    }
    EXPECT_EQ(cluster.allInstances().size(), total);
}

TEST(Chaos, BernoulliPlanRates)
{
    synth::AppConfig app = synth::generateApp(
        synth::syntheticParams(256, 3));
    ClusterModel cluster(app, 100, 2);
    util::Rng rng(5);
    chaos::ChaosParams params;
    params.containerProb = 0.05;
    chaos::FaultPlan plan =
        chaos::planFaults(cluster.allInstances(), params, rng);
    double expected =
        0.05 * static_cast<double>(cluster.allInstances().size());
    EXPECT_GT(plan.faults.size(), expected * 0.3);
    EXPECT_LT(plan.faults.size(), expected * 3.0);
    for (const chaos::FaultSpec &f : plan.faults)
        EXPECT_EQ(f.scope, chaos::FaultScope::Container);
}

TEST(Chaos, FixedPlanExactCount)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 2);
    util::Rng rng(6);
    chaos::FaultPlan plan = chaos::planFixedFaults(
        cluster.allInstances(), 3, chaos::FaultScope::Pod, {}, rng);
    EXPECT_EQ(plan.faults.size(), 3u);
    std::set<std::string> targets;
    for (const chaos::FaultSpec &f : plan.faults) {
        EXPECT_EQ(f.scope, chaos::FaultScope::Pod);
        targets.insert(f.target);
    }
    EXPECT_EQ(targets.size(), 3u);  // distinct targets
}

TEST(Chaos, FaultIndexLookups)
{
    chaos::FaultPlan plan;
    plan.faults.push_back({chaos::FaultType::CpuStress,
                           chaos::FaultScope::Pod, "svc-pod-0", 5.0,
                           0.0});
    plan.faults.push_back({chaos::FaultType::NetworkError,
                           chaos::FaultScope::Node, "node-3", 1.0,
                           0.5});
    chaos::FaultIndex idx(plan);
    chaos::Instance on_both{0, "svc-ctr-0", "svc-pod-0", "node-3"};
    chaos::Instance on_none{0, "x", "y", "node-9"};
    EXPECT_EQ(idx.faultsOn(on_both).size(), 2u);
    EXPECT_TRUE(idx.faultsOn(on_none).empty());
    EXPECT_FALSE(idx.empty());
    EXPECT_TRUE(chaos::FaultIndex(chaos::FaultPlan{}).empty());
}

TEST(Simulator, ProducesValidTraces)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator sim(app, cluster, {.seed = 1});
    for (int i = 0; i < 50; ++i) {
        SimResult r = sim.simulateOne();
        trace::TraceGraph g;
        std::string err;
        ASSERT_TRUE(trace::TraceGraph::tryBuild(r.trace, &g, &err))
            << err;
        // Client+server per call; the root contributes only a server.
        const synth::FlowConfig &flow =
            app.flows[static_cast<size_t>(r.flowIndex)];
        EXPECT_EQ(r.trace.spans.size(), 2 * flow.nodes.size() - 1);
    }
}

TEST(Simulator, SpanTimesNestProperly)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator sim(app, cluster, {.seed = 2});
    for (int i = 0; i < 20; ++i) {
        SimResult r = sim.simulateOne();
        trace::TraceGraph g = trace::TraceGraph::build(r.trace);
        for (size_t s = 0; s < r.trace.spans.size(); ++s) {
            const trace::Span &span = r.trace.spans[s];
            EXPECT_LT(span.startUs, span.endUs);
            int p = g.parent(static_cast<int>(s));
            if (p < 0)
                continue;
            const trace::Span &parent =
                r.trace.spans[static_cast<size_t>(p)];
            EXPECT_GE(span.startUs, parent.startUs);
            // Synchronous children end inside the parent; async
            // consumers may outlive it.
            if (span.kind != trace::SpanKind::Consumer &&
                parent.kind != trace::SpanKind::Producer) {
                EXPECT_LE(span.endUs, parent.endUs);
            }
        }
    }
}

TEST(Simulator, FlowMixFollowsWeights)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator sim(app, cluster, {.seed = 3});
    std::vector<int> counts(app.flows.size(), 0);
    for (int i = 0; i < 2000; ++i)
        counts[static_cast<size_t>(sim.simulateOne().flowIndex)]++;
    double total_weight = 0;
    for (const synth::FlowConfig &f : app.flows)
        total_weight += f.weight;
    for (size_t f = 0; f < app.flows.size(); ++f) {
        double expect = 2000.0 * app.flows[f].weight / total_weight;
        EXPECT_NEAR(counts[f], expect, expect * 0.35 + 20);
    }
}

TEST(Simulator, FaultFreeTracesHaveNoGroundTruth)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator sim(app, cluster, {.seed = 4});
    for (int i = 0; i < 30; ++i) {
        SimResult r = sim.simulateOne();
        EXPECT_FALSE(r.faultTouched());
    }
}

TEST(Simulator, CpuFaultInflatesLatencyAndIsRecorded)
{
    synth::AppConfig app = synth::sockShopConfig();
    ClusterModel cluster(app, 10, 1);

    // Fault every replica of the orders service with a CPU stress.
    chaos::FaultPlan plan;
    for (const chaos::Instance &inst : cluster.instancesOf(1))
        plan.faults.push_back({chaos::FaultType::CpuStress,
                               chaos::FaultScope::Container,
                               inst.container, 15.0, 0.0});

    Simulator healthy(app, cluster, {.seed = 5});
    Simulator faulty(app, cluster, {.seed = 5}, plan);

    // POST /orders (flow 0) goes through orders.
    double healthy_sum = 0, faulty_sum = 0;
    int touched = 0;
    for (int i = 0; i < 40; ++i) {
        healthy_sum += static_cast<double>(
            healthy.simulateFlow(0).trace.rootDurationUs());
        SimResult r = faulty.simulateFlow(0);
        faulty_sum += static_cast<double>(r.trace.rootDurationUs());
        if (r.rootCauseServices.count("orders"))
            ++touched;
    }
    EXPECT_GT(faulty_sum, healthy_sum * 1.5);
    EXPECT_EQ(touched, 40);  // every orders trace is materially hit
}

TEST(Simulator, NetworkErrorFaultCausesClientErrors)
{
    synth::AppConfig app = synth::sockShopConfig();
    ClusterModel cluster(app, 10, 1);
    chaos::FaultPlan plan;
    // payment service id is 5 in sockShopConfig.
    for (const chaos::Instance &inst : cluster.instancesOf(5))
        plan.faults.push_back({chaos::FaultType::NetworkError,
                               chaos::FaultScope::Container,
                               inst.container, 1.0, 1.0});
    Simulator sim(app, cluster, {.seed = 6}, plan);
    int errors = 0, attributed = 0, root_errors = 0;
    for (int i = 0; i < 30; ++i) {
        SimResult r = sim.simulateFlow(0);  // POST /orders uses payment
        if (r.trace.hasError())
            ++errors;
        bool root_error = false;
        for (const trace::Span &s : r.trace.spans)
            if (s.parentSpanId.empty())
                root_error = s.hasError();
        // Ground truth blames payment exactly when the injected error
        // actually propagated to the root (not absorbed by handlers).
        if (root_error) {
            ++root_errors;
            EXPECT_TRUE(r.rootCauseServices.count("payment"));
        }
        if (r.rootCauseServices.count("payment"))
            ++attributed;
    }
    EXPECT_EQ(errors, 30);
    EXPECT_GT(root_errors, 10);
    EXPECT_GE(attributed, root_errors);
}

TEST(Simulator, AsyncConsumerDoesNotBlockParent)
{
    // Fault queue-master (async consumer in post-orders) with a huge
    // latency multiplier; the root duration must stay near healthy.
    synth::AppConfig app = synth::sockShopConfig();
    ClusterModel cluster(app, 10, 1);
    chaos::FaultPlan plan;
    for (const chaos::Instance &inst : cluster.instancesOf(7))
        plan.faults.push_back({chaos::FaultType::DiskStress,
                               chaos::FaultScope::Container,
                               inst.container, 50.0, 0.0});
    Simulator healthy(app, cluster, {.seed = 7});
    Simulator faulty(app, cluster, {.seed = 7}, plan);
    double healthy_sum = 0, faulty_sum = 0;
    for (int i = 0; i < 40; ++i) {
        healthy_sum += static_cast<double>(
            healthy.simulateFlow(0).trace.rootDurationUs());
        faulty_sum += static_cast<double>(
            faulty.simulateFlow(0).trace.rootDurationUs());
    }
    // ProcessShipment is async: inflating it shifts root latency by
    // far less than the 50x kernel factor.
    EXPECT_LT(faulty_sum, healthy_sum * 2.0);
}

TEST(Simulator, TimeoutCapsClientDuration)
{
    synth::AppConfig app = smallApp();
    // Give one rpc a tiny timeout and stress it so it always trips.
    app.rpcs[5].timeoutUs = 50;
    ClusterModel cluster(app, 10, 1);
    chaos::FaultPlan plan;
    for (const chaos::Instance &inst :
         cluster.instancesOf(app.rpcs[5].serviceId))
        plan.faults.push_back({chaos::FaultType::CpuStress,
                               chaos::FaultScope::Container,
                               inst.container, 100.0, 0.0});
    Simulator sim(app, cluster, {.seed = 8}, plan);
    bool saw_timeout = false;
    for (int i = 0; i < 60 && !saw_timeout; ++i) {
        SimResult r = sim.simulateFlow(0);
        trace::TraceGraph g = trace::TraceGraph::build(r.trace);
        for (const trace::Span &s : r.trace.spans) {
            if (s.kind == trace::SpanKind::Client &&
                s.name == app.rpcs[5].name) {
                EXPECT_LE(s.durationUs(), 50 + 1);
                if (s.hasError())
                    saw_timeout = true;
            }
        }
    }
    EXPECT_TRUE(saw_timeout);
}

TEST(Simulator, DeterministicGivenSeed)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator a(app, cluster, {.seed = 9});
    Simulator b(app, cluster, {.seed = 9});
    for (int i = 0; i < 10; ++i) {
        SimResult ra = a.simulateOne();
        SimResult rb = b.simulateOne();
        EXPECT_EQ(trace::toJson(ra.trace).dump(),
                  trace::toJson(rb.trace).dump());
    }
}

TEST(Simulator, CalibrateSlosSetsThresholds)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator::calibrateSlos(app, cluster, 200, 99.0);
    for (const synth::FlowConfig &f : app.flows)
        EXPECT_GT(f.sloUs, 0);

    // Fault-free traffic should rarely violate the calibrated SLO.
    Simulator sim(app, cluster, {.seed = 10});
    int violations = 0;
    for (int i = 0; i < 200; ++i) {
        SimResult r = sim.simulateOne();
        if (r.violatesSlo(
                app.flows[static_cast<size_t>(r.flowIndex)].sloUs))
            ++violations;
    }
    EXPECT_LT(violations, 20);
}

TEST(Simulator, ExclusiveDurationsConsistent)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator sim(app, cluster, {.seed = 11});
    SimResult r = sim.simulateOne();
    trace::TraceGraph g = trace::TraceGraph::build(r.trace);
    trace::ExclusiveMetrics m = trace::computeExclusive(r.trace, g);
    for (size_t i = 0; i < r.trace.spans.size(); ++i) {
        EXPECT_GE(m.exclusiveUs[i], 0);
        EXPECT_LE(m.exclusiveUs[i], r.trace.spans[i].durationUs());
    }
}

TEST(Simulator, StreamMatchesBatch)
{
    synth::AppConfig app = smallApp();
    ClusterModel cluster(app, 10, 1);
    Simulator a(app, cluster, {.seed = 12});
    Simulator b(app, cluster, {.seed = 12});
    std::vector<SimResult> batch = a.simulateMany(5);
    size_t idx = 0;
    b.simulateStream(5, [&](SimResult &&r) {
        EXPECT_EQ(trace::toJson(r.trace).dump(),
                  trace::toJson(batch[idx].trace).dump());
        ++idx;
    });
    EXPECT_EQ(idx, 5u);
}
