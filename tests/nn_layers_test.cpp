// Unit tests for layers, MLP, serialization, and a small end-to-end
// training sanity check.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/optim.h"

using namespace sleuth::nn;

TEST(Linear, ShapesAndForward)
{
    sleuth::util::Rng rng(1);
    Linear l(3, 2, rng);
    EXPECT_EQ(l.inFeatures(), 3u);
    EXPECT_EQ(l.outFeatures(), 2u);
    Var x = constant(Tensor(4, 3));
    Var y = l.forward(x);
    EXPECT_EQ(y->value().rows(), 4u);
    EXPECT_EQ(y->value().cols(), 2u);
    // Zero input -> output equals bias (initialized to zero).
    for (double v : y->value().data())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Mlp, ParameterCount)
{
    sleuth::util::Rng rng(2);
    Mlp mlp({4, 8, 8, 3}, Activation::Relu, rng);
    // (4*8+8) + (8*8+8) + (8*3+3) = 40 + 72 + 27
    EXPECT_EQ(mlp.parameterCount(), 139u);
    EXPECT_EQ(mlp.parameters().size(), 6u);
    EXPECT_EQ(mlp.inFeatures(), 4u);
    EXPECT_EQ(mlp.outFeatures(), 3u);
}

TEST(Mlp, LearnsXor)
{
    sleuth::util::Rng rng(3);
    Mlp mlp({2, 8, 1}, Activation::Tanh, rng);
    Tensor xs(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
    Tensor ys(4, 1, {0, 1, 1, 0});
    Var x = constant(xs);
    Var target = constant(ys);
    Adam opt(mlp.parameters(), 0.05);
    double last_loss = 1e9;
    for (int it = 0; it < 400; ++it) {
        Var pred = sigmoid(mlp.forward(x));
        Var diff = sub(pred, target);
        Var loss = meanAll(mul(diff, diff));
        backward(loss);
        opt.step();
        last_loss = loss->value().item();
    }
    EXPECT_LT(last_loss, 0.02);
}

TEST(Mlp, SerializationRoundTrip)
{
    sleuth::util::Rng rng(4);
    Mlp a({3, 5, 2}, Activation::Relu, rng);
    Mlp b({3, 5, 2}, Activation::Relu, rng);  // different random weights

    Var x = constant(Tensor(2, 3, {0.5, -1, 2, 0.1, 0.2, 0.3}));
    Tensor ya = a.forward(x)->value();
    Tensor yb_before = b.forward(x)->value();
    bool differed = false;
    for (size_t i = 0; i < ya.size(); ++i)
        differed |= std::abs(ya.data()[i] - yb_before.data()[i]) > 1e-9;
    EXPECT_TRUE(differed);

    sleuth::util::Json doc = parametersToJson(a.parameters());
    // Through text to prove on-disk fidelity.
    std::string err;
    sleuth::util::Json parsed =
        sleuth::util::Json::parse(doc.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    parametersFromJson(parsed, b.parameters());

    Tensor yb = b.forward(x)->value();
    for (size_t i = 0; i < ya.size(); ++i)
        EXPECT_NEAR(ya.data()[i], yb.data()[i], 1e-12);
}

TEST(Optim, SgdConvergesOnQuadratic)
{
    Var w = param(Tensor(1, 1, {5.0}));
    Sgd opt({w}, 0.1);
    for (int i = 0; i < 100; ++i) {
        Var loss = mul(w, w);
        backward(loss);
        opt.step();
    }
    EXPECT_NEAR(w->value().item(), 0.0, 1e-6);
}

TEST(Optim, AdamConvergesOnQuadratic)
{
    Var w = param(Tensor(1, 2, {4.0, -3.0}));
    Adam opt({w}, 0.2);
    for (int i = 0; i < 200; ++i) {
        Var loss = sumAll(mul(w, w));
        backward(loss);
        opt.step();
    }
    EXPECT_NEAR(w->value().at(0, 0), 0.0, 1e-3);
    EXPECT_NEAR(w->value().at(0, 1), 0.0, 1e-3);
}

TEST(Optim, ClipGradNorm)
{
    Var w = param(Tensor(1, 2, {1.0, 1.0}));
    Var loss = sumAll(scale(w, 10.0));
    backward(loss);
    // Gradient is (10, 10): norm ~14.14.
    double norm = clipGradNorm({w}, 1.0);
    EXPECT_NEAR(norm, std::sqrt(200.0), 1e-9);
    double clipped = std::sqrt(w->grad().at(0, 0) * w->grad().at(0, 0) +
                               w->grad().at(0, 1) * w->grad().at(0, 1));
    EXPECT_NEAR(clipped, 1.0, 1e-9);
}

TEST(Optim, ClipBelowThresholdUntouched)
{
    Var w = param(Tensor(1, 1, {1.0}));
    Var loss = scale(w, 0.5);
    backward(loss);
    double norm = clipGradNorm({w}, 10.0);
    EXPECT_NEAR(norm, 0.5, 1e-12);
    EXPECT_NEAR(w->grad().item(), 0.5, 1e-12);
}

TEST(Layers, ActivationDispatch)
{
    Var x = constant(Tensor(1, 1, {-1.0}));
    EXPECT_DOUBLE_EQ(activate(x, Activation::None)->value().item(), -1.0);
    EXPECT_DOUBLE_EQ(activate(x, Activation::Relu)->value().item(), 0.0);
    EXPECT_NEAR(activate(x, Activation::Sigmoid)->value().item(),
                1.0 / (1.0 + std::exp(1.0)), 1e-12);
    EXPECT_NEAR(activate(x, Activation::Tanh)->value().item(),
                std::tanh(-1.0), 1e-12);
}
