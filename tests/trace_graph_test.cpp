// Unit tests for RPC dependency graph reconstruction and validation.

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "trace/trace.h"

using namespace sleuth;
using sleuth::testing::figure2Trace;
using sleuth::testing::makeSpan;

TEST(TraceGraph, BuildsSimpleTree)
{
    trace::Trace t = figure2Trace();
    trace::TraceGraph g = trace::TraceGraph::build(t);
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g.root(), 0);
    EXPECT_EQ(g.parent(0), -1);
    EXPECT_EQ(g.parent(1), 0);
    EXPECT_EQ(g.parent(2), 0);
    ASSERT_EQ(g.children(0).size(), 2u);
    EXPECT_TRUE(g.children(1).empty());
    EXPECT_EQ(g.depth(0), 1);
    EXPECT_EQ(g.depth(1), 2);
    EXPECT_EQ(g.maxDepth(), 2);
    EXPECT_EQ(g.maxOutDegree(), 2);
}

TEST(TraceGraph, BottomUpOrderPutsChildrenFirst)
{
    trace::Trace t;
    t.traceId = "chain";
    t.spans.push_back(makeSpan("r", "", "s0", "op", 0, 100));
    t.spans.push_back(makeSpan("m", "r", "s1", "op", 10, 90));
    t.spans.push_back(makeSpan("l", "m", "s2", "op", 20, 80));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    const auto &order = g.bottomUpOrder();
    ASSERT_EQ(order.size(), 3u);
    std::vector<int> pos(3);
    for (int i = 0; i < 3; ++i)
        pos[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
    // Every child must appear before its parent.
    for (size_t i = 0; i < t.spans.size(); ++i) {
        int p = g.parent(static_cast<int>(i));
        if (p >= 0) {
            EXPECT_LT(pos[i], pos[static_cast<size_t>(p)]);
        }
    }
}

TEST(TraceGraph, RejectsEmptyTrace)
{
    trace::Trace t;
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("no spans"), std::string::npos);
}

TEST(TraceGraph, RejectsMultipleRoots)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("a", "", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("b", "", "s", "op", 0, 10));
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("multiple root"), std::string::npos);
}

TEST(TraceGraph, RejectsMissingRoot)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("a", "b", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("b", "a", "s", "op", 0, 10));
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("no root"), std::string::npos);
}

TEST(TraceGraph, RejectsDanglingParent)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("a", "", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("b", "ghost", "s", "op", 0, 10));
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("unresolved"), std::string::npos);
}

TEST(TraceGraph, RejectsDuplicateSpanIds)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("a", "", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("a", "a", "s", "op", 0, 10));
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(TraceGraph, RejectsSelfParent)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("r", "", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("a", "a", "s", "op", 0, 10));
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("own parent"), std::string::npos);
}

TEST(TraceGraph, RejectsCycleDisconnectedFromRoot)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("r", "", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("a", "b", "s", "op", 0, 10));
    t.spans.push_back(makeSpan("b", "a", "s", "op", 0, 10));
    trace::TraceGraph g;
    std::string err;
    EXPECT_FALSE(trace::TraceGraph::tryBuild(t, &g, &err));
    EXPECT_NE(err.find("unreachable"), std::string::npos);
}

TEST(TraceGraph, SingleSpanTrace)
{
    trace::Trace t;
    t.spans.push_back(makeSpan("only", "", "s", "op", 5, 25));
    trace::TraceGraph g = trace::TraceGraph::build(t);
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.root(), 0);
    EXPECT_EQ(g.maxDepth(), 1);
    EXPECT_EQ(g.maxOutDegree(), 0);
    EXPECT_EQ(t.rootDurationUs(), 20);
}

TEST(TraceStruct, HasErrorAndRootDuration)
{
    trace::Trace t = figure2Trace();
    EXPECT_FALSE(t.hasError());
    EXPECT_EQ(t.rootDurationUs(), 100);
    t.spans[2].status = trace::StatusCode::Error;
    EXPECT_TRUE(t.hasError());
}

TEST(TraceSummarize, ComputesCorpusShape)
{
    std::vector<trace::Trace> corpus = {figure2Trace(), figure2Trace()};
    trace::CorpusStats st = trace::summarize(corpus);
    EXPECT_EQ(st.services, 3u);
    EXPECT_EQ(st.operations, 3u);
    EXPECT_EQ(st.maxSpans, 3u);
    EXPECT_EQ(st.maxDepth, 2);
    EXPECT_EQ(st.maxOutDegree, 2);
}

TEST(SpanEnums, RoundTripStrings)
{
    using namespace sleuth::trace;
    for (SpanKind k : {SpanKind::Client, SpanKind::Server,
                       SpanKind::Producer, SpanKind::Consumer,
                       SpanKind::Local})
        EXPECT_EQ(spanKindFromString(toString(k)), k);
    for (StatusCode c :
         {StatusCode::Unset, StatusCode::Ok, StatusCode::Error})
        EXPECT_EQ(statusCodeFromString(toString(c)), c);
}
