// Unit tests for the deterministic RNG and its distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

using sleuth::util::Rng;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniform() == b.uniform();
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsIndependentAndStable)
{
    Rng parent(7);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(1);
    Rng c3 = parent.fork(2);
    // Same tag twice gives the same stream; different tag differs.
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
    Rng c4 = parent.fork(1);
    (void)c4;
    int same = 0;
    Rng c5 = parent.fork(1);
    Rng c6 = parent.fork(2);
    for (int i = 0; i < 100; ++i)
        same += c5.uniform() == c6.uniform();
    EXPECT_LT(same, 5);
    (void)c3;
}

TEST(Rng, SeedStabilityAcrossConstructionsAndForks)
{
    // The campaign serializes scenarios as (seed, params) and replays
    // them later, possibly on another machine: the raw engine stream
    // behind a seed must be stable across Rng instances, and fork()
    // must not consume parent state.
    Rng a(0xc0ffee), b(0xc0ffee);
    std::vector<uint64_t> sa, sb;
    for (int i = 0; i < 64; ++i) {
        sa.push_back(a.engine()());
        sb.push_back(b.engine()());
    }
    EXPECT_EQ(sa, sb);

    Rng parent(0xc0ffee);
    Rng child_before = parent.fork(9);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(parent.engine()(), sa[static_cast<size_t>(i)])
            << "fork() consumed parent state";
    // A fork taken before and after unrelated forks is the same
    // stream (fork depends only on parent state and tag).
    Rng parent2(0xc0ffee);
    (void)parent2.fork(1);
    (void)parent2.fork(2);
    Rng child_after = parent2.fork(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(child_before.engine()(), child_after.engine()());

    // The engine itself is the standard-mandated mt19937_64: the
    // 10000th draw of the default-seeded engine is fixed by C++11
    // [rand.predef], anchoring cross-platform replayability.
    std::mt19937_64 reference(5489u);
    reference.discard(9999);
    EXPECT_EQ(reference(), 9981545732273789042ull);
}

TEST(Rng, UniformRange)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        double x = r.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng r(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int64_t x = r.uniformInt(0, 3);
        EXPECT_GE(x, 0);
        EXPECT_LE(x, 3);
        saw_lo |= x == 0;
        saw_hi |= x == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng r(5);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(r.normal(10.0, 2.0));
    EXPECT_NEAR(sleuth::util::mean(xs), 10.0, 0.1);
    EXPECT_NEAR(sleuth::util::stddev(xs), 2.0, 0.1);
}

TEST(Rng, LogNormalIsHeavyTailed)
{
    Rng r(6);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(r.logNormal(4.0, 1.0));
    // Median of log-normal is e^mu; the mean greatly exceeds it.
    EXPECT_NEAR(sleuth::util::median(xs), std::exp(4.0),
                std::exp(4.0) * 0.1);
    EXPECT_GT(sleuth::util::mean(xs), sleuth::util::median(xs) * 1.3);
}

TEST(Rng, BernoulliEdgesAndRate)
{
    Rng r(7);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.bernoulli(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ParetoTail)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.pareto(1.0, 2.0), 1.0);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng r(9);
    std::vector<double> w = {0.0, 1.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 10000; ++i)
        counts[r.weightedIndex(w)]++;
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, ShufflePermutes)
{
    Rng r(10);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    r.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(Rng, PoissonMean)
{
    Rng r(11);
    EXPECT_EQ(r.poisson(0.0), 0);
    double sum = 0;
    for (int i = 0; i < 10000; ++i)
        sum += static_cast<double>(r.poisson(4.0));
    EXPECT_NEAR(sum / 10000.0, 4.0, 0.15);
}
