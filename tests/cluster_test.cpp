// Unit tests for DBSCAN, HDBSCAN, SVDD, and representative selection.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/dbscan.h"
#include "cluster/hdbscan.h"
#include "cluster/svdd.h"
#include "util/rng.h"

using namespace sleuth;
using namespace sleuth::cluster;

namespace {

// Generate `per` points around each of the given 1-D centers.
std::vector<double>
blobs1d(const std::vector<double> &centers, size_t per, double spread,
        util::Rng &rng)
{
    std::vector<double> pts;
    for (double c : centers)
        for (size_t i = 0; i < per; ++i)
            pts.push_back(c + rng.normal(0.0, spread));
    return pts;
}

DistanceFn
absDist(const std::vector<double> &pts)
{
    return [&pts](size_t i, size_t j) {
        return std::abs(pts[i] - pts[j]);
    };
}

// All members of one ground-truth blob should share one label, and
// different blobs should have different labels.
void
expectBlobsSeparated(const std::vector<int> &labels, size_t per,
                     size_t n_blobs)
{
    for (size_t b = 0; b < n_blobs; ++b) {
        int lbl = labels[b * per];
        EXPECT_GE(lbl, 0) << "blob " << b << " marked noise";
        for (size_t i = 0; i < per; ++i)
            EXPECT_EQ(labels[b * per + i], lbl) << "blob " << b;
        for (size_t b2 = b + 1; b2 < n_blobs; ++b2)
            EXPECT_NE(labels[b2 * per], lbl);
    }
}

} // namespace

TEST(Dbscan, SeparatesTwoBlobs)
{
    util::Rng rng(1);
    auto pts = blobs1d({0.0, 10.0}, 20, 0.3, rng);
    auto res = dbscan(pts.size(), absDist(pts), {1.0, 4});
    EXPECT_EQ(res.numClusters, 2);
    expectBlobsSeparated(res.labels, 20, 2);
}

TEST(Dbscan, MarksOutliersAsNoise)
{
    util::Rng rng(2);
    auto pts = blobs1d({0.0}, 20, 0.2, rng);
    pts.push_back(50.0);  // lone outlier
    auto res = dbscan(pts.size(), absDist(pts), {1.0, 4});
    EXPECT_EQ(res.numClusters, 1);
    EXPECT_EQ(res.labels.back(), -1);
}

TEST(Dbscan, AllNoiseWhenEpsTiny)
{
    util::Rng rng(3);
    auto pts = blobs1d({0.0}, 10, 1.0, rng);
    auto res = dbscan(pts.size(), absDist(pts), {1e-9, 3});
    EXPECT_EQ(res.numClusters, 0);
    for (int l : res.labels)
        EXPECT_EQ(l, -1);
}

TEST(Dbscan, MembersHelper)
{
    util::Rng rng(4);
    auto pts = blobs1d({0.0, 10.0}, 10, 0.2, rng);
    auto res = dbscan(pts.size(), absDist(pts), {1.0, 3});
    ASSERT_EQ(res.numClusters, 2);
    size_t total = 0;
    for (int c = 0; c < res.numClusters; ++c)
        total += res.members(c).size();
    EXPECT_EQ(total, pts.size());
}

TEST(Hdbscan, SeparatesThreeBlobs)
{
    util::Rng rng(5);
    auto pts = blobs1d({0.0, 10.0, 25.0}, 25, 0.4, rng);
    auto res = hdbscan(pts.size(), absDist(pts),
                       {.minClusterSize = 10, .minSamples = 5});
    EXPECT_EQ(res.numClusters, 3);
    expectBlobsSeparated(res.labels, 25, 3);
}

TEST(Hdbscan, VaryingDensityBlobs)
{
    // HDBSCAN's selling point over DBSCAN: one dense and one loose blob.
    util::Rng rng(6);
    std::vector<double> pts = blobs1d({0.0}, 30, 0.1, rng);
    auto loose = blobs1d({20.0}, 30, 1.2, rng);
    pts.insert(pts.end(), loose.begin(), loose.end());
    auto res = hdbscan(pts.size(), absDist(pts),
                       {.minClusterSize = 10, .minSamples = 5});
    EXPECT_EQ(res.numClusters, 2);
    expectBlobsSeparated(res.labels, 30, 2);
}

TEST(Hdbscan, OutliersBecomeNoise)
{
    util::Rng rng(7);
    auto pts = blobs1d({0.0, 10.0}, 20, 0.3, rng);
    pts.push_back(100.0);
    pts.push_back(-100.0);
    auto res = hdbscan(pts.size(), absDist(pts),
                       {.minClusterSize = 8, .minSamples = 4});
    EXPECT_EQ(res.numClusters, 2);
    EXPECT_EQ(res.labels[pts.size() - 1], -1);
    EXPECT_EQ(res.labels[pts.size() - 2], -1);
}

TEST(Hdbscan, TooFewPointsAllNoise)
{
    std::vector<double> pts = {0.0, 0.1, 0.2};
    auto res = hdbscan(pts.size(), absDist(pts),
                       {.minClusterSize = 10, .minSamples = 5});
    EXPECT_EQ(res.numClusters, 0);
    for (int l : res.labels)
        EXPECT_EQ(l, -1);
}

TEST(Hdbscan, EmptyInput)
{
    auto res = hdbscan(0, [](size_t, size_t) { return 0.0; },
                       {.minClusterSize = 5, .minSamples = 3});
    EXPECT_EQ(res.numClusters, 0);
    EXPECT_TRUE(res.labels.empty());
}

TEST(Hdbscan, EpsilonMergesFineSplits)
{
    // Two sub-blobs 2.0 apart inside a bigger structure: with a large
    // cluster_selection_epsilon they must merge into one cluster.
    util::Rng rng(8);
    auto pts = blobs1d({0.0, 2.0, 30.0}, 20, 0.15, rng);
    HdbscanParams fine{.minClusterSize = 8, .minSamples = 4,
                       .clusterSelectionEpsilon = 0.0};
    HdbscanParams coarse{.minClusterSize = 8, .minSamples = 4,
                         .clusterSelectionEpsilon = 3.0};
    auto rf = hdbscan(pts.size(), absDist(pts), fine);
    auto rc = hdbscan(pts.size(), absDist(pts), coarse);
    EXPECT_EQ(rf.numClusters, 3);
    EXPECT_EQ(rc.numClusters, 2);
    // The first two blobs share a label under the coarse setting.
    EXPECT_EQ(rc.labels[0], rc.labels[25]);
    EXPECT_NE(rc.labels[0], rc.labels[45]);
}

TEST(Hdbscan, DeterministicAcrossRuns)
{
    util::Rng rng(9);
    auto pts = blobs1d({0.0, 5.0}, 15, 0.3, rng);
    auto r1 = hdbscan(pts.size(), absDist(pts),
                      {.minClusterSize = 6, .minSamples = 3});
    auto r2 = hdbscan(pts.size(), absDist(pts),
                      {.minClusterSize = 6, .minSamples = 3});
    EXPECT_EQ(r1.labels, r2.labels);
}

TEST(Representatives, PicksGeometricMedian)
{
    // Points 0,1,2,3,100 in one cluster: 2 minimizes the distance sum
    // among {0,1,2,3}; including 100 pulls the median to 2 still.
    std::vector<double> pts = {0, 1, 2, 3, 100};
    std::vector<int> labels = {0, 0, 0, 0, 0};
    auto reps = selectRepresentatives(labels, 1, absDist(pts));
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0], 2u);
}

TEST(Representatives, IgnoresNoise)
{
    std::vector<double> pts = {0, 1, 2, 50, 51, 52, 999};
    std::vector<int> labels = {0, 0, 0, 1, 1, 1, -1};
    auto reps = selectRepresentatives(labels, 2, absDist(pts));
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_EQ(reps[0], 1u);
    EXPECT_EQ(reps[1], 4u);
}

TEST(Svdd, ContractsTrainingData)
{
    util::Rng rng(10);
    std::vector<std::vector<double>> xs;
    for (int i = 0; i < 40; ++i)
        xs.push_back({rng.normal(0, 1), rng.normal(0, 1),
                      rng.normal(0, 1)});
    DeepSvdd model(3, 2, rng);
    // Measure objective right after center initialization (one epoch of
    // training barely moves the weights) vs after full training.
    double before = model.train(xs, 1, 1e-4);
    double after = model.train(xs, 150, 1e-2);
    EXPECT_LT(after, before);
    EXPECT_GE(model.radius(), 0.0);
}

TEST(Svdd, EmbeddingDistanceSymmetric)
{
    util::Rng rng(11);
    DeepSvdd model(2, 2, rng);
    std::vector<std::vector<double>> xs = {{0, 0}, {1, 1}, {2, 2}};
    model.train(xs, 20, 1e-3);
    double ab = model.embeddingDistance(xs[0], xs[1]);
    double ba = model.embeddingDistance(xs[1], xs[0]);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_DOUBLE_EQ(model.embeddingDistance(xs[2], xs[2]), 0.0);
}
