// Unit tests for the minimal JSON reader/writer.

#include <gtest/gtest.h>

#include "util/json.h"

using sleuth::util::Json;

TEST(Json, ParsesScalars)
{
    std::string err;
    EXPECT_TRUE(Json::parse("null", &err).isNull());
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(Json::parse("true", &err).asBool(), true);
    EXPECT_EQ(Json::parse("false", &err).asBool(), false);
    EXPECT_DOUBLE_EQ(Json::parse("3.5", &err).asNumber(), 3.5);
    EXPECT_EQ(Json::parse("-17", &err).asInt(), -17);
    EXPECT_EQ(Json::parse("\"hi\"", &err).asString(), "hi");
}

TEST(Json, ParsesNested)
{
    std::string err;
    Json v = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.at("a").asArray().size(), 3u);
    EXPECT_EQ(v.at("a").asArray()[2].at("b").asString(), "c");
    EXPECT_TRUE(v.at("d").isNull());
}

TEST(Json, ParsesEscapes)
{
    std::string err;
    Json v = Json::parse(R"("line\nbreak\t\"q\" \\ A")", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "line\nbreak\t\"q\" \\ A");
}

TEST(Json, ParsesUnicodeEscapesToUtf8)
{
    std::string err;
    Json v = Json::parse(R"("é中")", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(Json, SurrogatePairsDecodeToUtf8)
{
    std::string err;
    // U+1F600 GRINNING FACE -> one 4-byte sequence.
    Json v = Json::parse(R"("\ud83d\ude00")", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "\xf0\x9f\x98\x80");
    // Uppercase hex and surrounding text.
    v = Json::parse(R"("a\uD83D\uDE00z")", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "a\xf0\x9f\x98\x80z");
    // Highest code point U+10FFFF.
    v = Json::parse(R"("\udbff\udfff")", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.asString(), "\xf4\x8f\xbf\xbf");
}

TEST(Json, SurrogatePairRoundTripsThroughWriter)
{
    std::string err;
    Json v = Json::parse(R"({"emoji":"\ud83d\ude00"})", &err);
    ASSERT_TRUE(err.empty()) << err;
    // The writer emits the raw UTF-8 bytes; re-parsing them yields the
    // same string, so parse(dump(x)) == x.
    Json again = Json::parse(v.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(again.at("emoji").asString(), "\xf0\x9f\x98\x80");
    EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, LoneSurrogatesAreRejected)
{
    std::string err;
    Json::parse(R"("\ud83d")", &err);
    EXPECT_FALSE(err.empty());
    Json::parse(R"("\ud83dx")", &err);
    EXPECT_FALSE(err.empty());
    // High surrogate followed by a non-surrogate escape.
    Json::parse(R"("\ud83d\u0041")", &err);
    EXPECT_FALSE(err.empty());
    // Low surrogate with no preceding high surrogate.
    Json::parse(R"("\ude00")", &err);
    EXPECT_FALSE(err.empty());
    // Two high surrogates in a row.
    Json::parse(R"("\ud83d\ud83d")", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Json, ControlCharacterEscapesRoundTrip)
{
    // The writer escapes control characters as \u00XX; the parser must
    // decode them back to the identical byte.
    Json v(std::string("a\x01" "b\x1f"));
    std::string err;
    Json again = Json::parse(v.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(again.asString(), "a\x01" "b\x1f");
}

TEST(Json, TrailingBackslashAtEofIsUnterminated)
{
    std::string err;
    Json::parse("\"abc\\", &err);
    EXPECT_NE(err.find("unterminated string"), std::string::npos)
        << err;
    Json::parse("\"\\", &err);
    EXPECT_NE(err.find("unterminated string"), std::string::npos)
        << err;
    // A truncated \u escape at EOF must also error, not truncate.
    Json::parse("\"\\u12", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Json, ReportsErrors)
{
    std::string err;
    Json::parse("{", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("[1,]", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("tru", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("1 2", &err);
    EXPECT_FALSE(err.empty());
    Json::parse("\"unterminated", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Json, RoundTripsCompact)
{
    std::string text =
        R"({"arr":[1,2.5,true,null],"num":-3,"obj":{"k":"v"},"s":"x"})";
    std::string err;
    Json v = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(v.dump(), text);
}

TEST(Json, RoundTripsThroughPrettyPrint)
{
    std::string err;
    Json v = Json::parse(R"({"a":[1,{"b":[]}],"c":{}})", &err);
    ASSERT_TRUE(err.empty());
    Json again = Json::parse(v.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, BuilderApi)
{
    Json obj = Json::object();
    obj.set("k", 1);
    obj.set("list", Json::array());
    obj.asObject()["list"].push("a");
    obj.asObject()["list"].push(2.5);
    EXPECT_TRUE(obj.has("k"));
    EXPECT_FALSE(obj.has("missing"));
    EXPECT_EQ(obj.dump(), R"({"k":1,"list":["a",2.5]})");
}

TEST(Json, LargeIntegersSurvive)
{
    std::string err;
    Json v = Json::parse("1688888888000000", &err);
    ASSERT_TRUE(err.empty());
    EXPECT_EQ(v.asInt(), 1688888888000000LL);
    EXPECT_EQ(v.dump(), "1688888888000000");
}
