// Parameterized property tests: randomly generated JSON documents must
// survive dump -> parse -> dump unchanged (both compact and pretty).

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/rng.h"

using namespace sleuth::util;

namespace {

Json
randomJson(Rng &rng, int depth)
{
    int kind = static_cast<int>(
        rng.uniformInt(0, depth >= 3 ? 3 : 5));
    switch (kind) {
      case 0:
        return Json();
      case 1:
        return Json(rng.bernoulli(0.5));
      case 2: {
        if (rng.bernoulli(0.5))
            return Json(rng.uniformInt(-1000000, 1000000));
        return Json(rng.uniform(-1000.0, 1000.0));
      }
      case 3: {
        std::string s;
        int len = static_cast<int>(rng.uniformInt(0, 12));
        const std::string alphabet =
            "abcXYZ012 _-\"\\\n\t/{}[]:,";
        for (int i = 0; i < len; ++i)
            s.push_back(alphabet[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(alphabet.size()) - 1))]);
        return Json(std::move(s));
      }
      case 4: {
        Json arr = Json::array();
        int n = static_cast<int>(rng.uniformInt(0, 5));
        for (int i = 0; i < n; ++i)
            arr.push(randomJson(rng, depth + 1));
        return arr;
      }
      default: {
        Json obj = Json::object();
        int n = static_cast<int>(rng.uniformInt(0, 5));
        for (int i = 0; i < n; ++i)
            obj.set("k" + std::to_string(i),
                    randomJson(rng, depth + 1));
        return obj;
      }
    }
}

} // namespace

class JsonRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(JsonRoundTrip, CompactRoundTrip)
{
    Rng rng(GetParam());
    for (int it = 0; it < 25; ++it) {
        Json v = randomJson(rng, 0);
        std::string text = v.dump();
        std::string err;
        Json back = Json::parse(text, &err);
        ASSERT_TRUE(err.empty()) << err << " in " << text;
        EXPECT_EQ(back.dump(), text);
    }
}

TEST_P(JsonRoundTrip, PrettyRoundTrip)
{
    Rng rng(GetParam() ^ 0x9999);
    for (int it = 0; it < 25; ++it) {
        Json v = randomJson(rng, 0);
        std::string err;
        Json back = Json::parse(v.dump(2), &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.dump(), v.dump());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 255u));
