// Collector → storage round-trip coverage under campaign-randomized
// traces: the simulator's storm traces (arbitrary shapes, scopes, and
// fault mixes drawn by the scenario engine) must survive Otel ingest
// and storage reload field-for-field, batched or one at a time.

#include <gtest/gtest.h>

#include "campaign/scenario.h"
#include "collector/collector.h"
#include "storage/trace_store.h"
#include "trace/trace_json.h"

using namespace sleuth;

namespace {

void
expectSameTrace(const trace::Trace &a, const trace::Trace &b)
{
    ASSERT_EQ(a.traceId, b.traceId);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (size_t i = 0; i < a.spans.size(); ++i) {
        const trace::Span &x = a.spans[i];
        const trace::Span &y = b.spans[i];
        EXPECT_EQ(x.spanId, y.spanId);
        EXPECT_EQ(x.parentSpanId, y.parentSpanId);
        EXPECT_EQ(x.service, y.service);
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.startUs, y.startUs);
        EXPECT_EQ(x.endUs, y.endUs);
        EXPECT_EQ(x.status, y.status);
        EXPECT_EQ(x.container, y.container);
        EXPECT_EQ(x.pod, y.pod);
        EXPECT_EQ(x.node, y.node);
    }
}

std::unique_ptr<campaign::ScenarioRun>
buildNonDegenerate(uint64_t master_seed)
{
    // Walk the seeded scenario stream until a storm materializes (a
    // handful of draws at most).
    util::Rng rng(master_seed);
    for (uint64_t i = 0; i < 10; ++i) {
        util::Rng fork = rng.fork(i);
        campaign::Scenario s = campaign::drawScenario(fork);
        std::unique_ptr<campaign::ScenarioRun> run =
            campaign::buildScenario(s);
        if (!run->degenerate)
            return run;
    }
    ADD_FAILURE() << "no non-degenerate scenario in 10 draws";
    return nullptr;
}

} // namespace

TEST(CampaignRoundTrip, PerTraceOtelIngestPreservesEverything)
{
    for (uint64_t seed : {11u, 22u, 33u}) {
        std::unique_ptr<campaign::ScenarioRun> run =
            buildNonDegenerate(seed);
        ASSERT_NE(run, nullptr);
        storage::TraceStore store;
        collector::TraceCollector coll(&store);
        for (size_t i = 0; i < run->traces.size(); ++i) {
            util::Json payload = util::Json::array();
            payload.push(trace::toJson(run->traces[i]));
            ASSERT_EQ(coll.ingest(payload.dump(),
                                  collector::Protocol::Otel,
                                  run->slos[i]),
                      1u)
                << "trace " << run->traces[i].traceId << " rejected";
        }
        ASSERT_EQ(store.size(), run->traces.size());
        EXPECT_EQ(coll.stats().tracesAccepted, run->traces.size());
        EXPECT_EQ(coll.stats().tracesRejected, 0u);
        for (size_t i = 0; i < run->traces.size(); ++i) {
            const storage::Record &rec = store.at(i);
            expectSameTrace(run->traces[i], rec.trace());
            EXPECT_EQ(rec.sloUs, run->slos[i]);
        }
    }
}

TEST(CampaignRoundTrip, BatchedIngestMatchesPerTrace)
{
    std::unique_ptr<campaign::ScenarioRun> run = buildNonDegenerate(44);
    ASSERT_NE(run, nullptr);
    storage::TraceStore store;
    collector::TraceCollector coll(&store);
    size_t accepted = coll.ingest(trace::toJson(run->traces).dump(),
                                  collector::Protocol::Otel, 0);
    ASSERT_EQ(accepted, run->traces.size());
    for (size_t i = 0; i < run->traces.size(); ++i)
        expectSameTrace(run->traces[i], store.at(i).trace());
}

TEST(CampaignRoundTrip, TrainCorpusSurvivesStorageScan)
{
    // The (larger, healthy) training corpus exercises shapes the storm
    // does not; the store's scan pipeline must see every span.
    std::unique_ptr<campaign::ScenarioRun> run = buildNonDegenerate(55);
    ASSERT_NE(run, nullptr);
    storage::TraceStore store;
    collector::TraceCollector coll(&store);
    ASSERT_EQ(coll.ingest(trace::toJson(run->trainCorpus).dump(),
                          collector::Protocol::Otel, 0),
              run->trainCorpus.size());
    size_t span_total = 0;
    for (const trace::Trace &t : run->trainCorpus)
        span_total += t.spans.size();
    EXPECT_EQ(store.totalSpans(), span_total);
    EXPECT_EQ(store.scan().size(), run->trainCorpus.size());
}
