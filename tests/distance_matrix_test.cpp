// Tests for the memoized DistanceMatrix and the merge-based weighted
// Jaccard: the sorted-vector merge must agree with a hash-map reference
// implementation, and the matrix must invoke its oracle exactly
// n(n-1)/2 times while reproducing every pairwise value.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "distance/distance_matrix.h"
#include "distance/trace_distance.h"
#include "util/rng.h"

using namespace sleuth;
using namespace sleuth::distance;

namespace {

/** The pre-optimization hash-map formulation of Eq. 1, kept as the
 *  reference the merge-based implementation is pinned to. */
double
referenceJaccard(const WeightedSpanSet &a, const WeightedSpanSet &b)
{
    std::unordered_map<uint64_t, double> am(a.begin(), a.end());
    std::unordered_map<uint64_t, double> bm(b.begin(), b.end());
    double inter = 0.0, uni = 0.0;
    for (const auto &[k, w] : am) {
        auto it = bm.find(k);
        if (it != bm.end()) {
            inter += std::min(w, it->second);
            uni += std::max(w, it->second);
        } else {
            uni += w;
        }
    }
    for (const auto &[k, w] : bm)
        if (!am.count(k))
            uni += w;
    if (uni <= 0.0)
        return 0.0;
    return 1.0 - inter / uni;
}

WeightedSpanSet
randomSet(util::Rng &rng, size_t universe, size_t max_entries)
{
    std::vector<std::pair<uint64_t, double>> entries;
    size_t n = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(max_entries)));
    for (size_t i = 0; i < n; ++i)
        entries.emplace_back(
            static_cast<uint64_t>(
                rng.uniformInt(0, static_cast<int64_t>(universe))),
            rng.uniform(0.5, 5000.0));
    return makeSpanSet(std::move(entries));
}

} // namespace

TEST(MakeSpanSet, SortsAndMergesDuplicates)
{
    WeightedSpanSet s =
        makeSpanSet({{9, 1.0}, {3, 2.0}, {9, 4.0}, {1, 0.5}, {3, 1.0}});
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].first, 1u);
    EXPECT_DOUBLE_EQ(s[0].second, 0.5);
    EXPECT_EQ(s[1].first, 3u);
    EXPECT_DOUBLE_EQ(s[1].second, 3.0);
    EXPECT_EQ(s[2].first, 9u);
    EXPECT_DOUBLE_EQ(s[2].second, 5.0);
}

TEST(MergeJaccard, EdgeCases)
{
    WeightedSpanSet empty;
    WeightedSpanSet a = makeSpanSet({{1, 2.0}, {5, 3.0}});
    WeightedSpanSet disjoint = makeSpanSet({{2, 1.0}, {7, 4.0}});
    EXPECT_DOUBLE_EQ(jaccardDistance(empty, empty), 0.0);
    EXPECT_DOUBLE_EQ(jaccardDistance(a, empty), 1.0);
    EXPECT_DOUBLE_EQ(jaccardDistance(empty, a), 1.0);
    EXPECT_DOUBLE_EQ(jaccardDistance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(jaccardDistance(a, disjoint), 1.0);
}

TEST(MergeJaccard, MatchesHashMapReference)
{
    util::Rng rng(7);
    for (int it = 0; it < 400; ++it) {
        WeightedSpanSet a = randomSet(rng, 30, 40);
        WeightedSpanSet b = randomSet(rng, 30, 40);
        EXPECT_NEAR(jaccardDistance(a, b), referenceJaccard(a, b),
                    1e-12);
        EXPECT_NEAR(jaccardDistance(b, a), referenceJaccard(a, b),
                    1e-12);
    }
}

TEST(DistanceMatrix, EmptyAndSingleton)
{
    size_t calls = 0;
    auto oracle = [&](size_t, size_t) {
        ++calls;
        return 0.5;
    };
    EXPECT_EQ(DistanceMatrix::compute(0, oracle).size(), 0u);
    EXPECT_EQ(DistanceMatrix::compute(1, oracle).size(), 1u);
    EXPECT_EQ(calls, 0u);
}

TEST(DistanceMatrix, OracleInvokedExactlyOncePerPair)
{
    const size_t n = 37;
    std::vector<std::vector<int>> seen(n, std::vector<int>(n, 0));
    size_t calls = 0;
    auto oracle = [&](size_t i, size_t j) {
        ++calls;
        ++seen[i][j];
        ++seen[j][i];
        return static_cast<double>(i * n + j);
    };
    DistanceMatrix m = DistanceMatrix::compute(n, oracle);
    EXPECT_EQ(calls, n * (n - 1) / 2);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seen[i][i], 0) << "diagonal evaluated at " << i;
        for (size_t j = 0; j < i; ++j)
            EXPECT_EQ(seen[i][j], 1)
                << "pair (" << i << "," << j << ")";
    }
    EXPECT_EQ(m.packed().size(), n * (n - 1) / 2);
}

TEST(DistanceMatrix, StoresOracleValuesSymmetrically)
{
    const size_t n = 12;
    auto oracle = [](size_t i, size_t j) {
        return 1.0 / static_cast<double>(1 + i + 2 * j);
    };
    DistanceMatrix m = DistanceMatrix::compute(n, oracle);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
        for (size_t j = 0; j < i; ++j) {
            EXPECT_DOUBLE_EQ(m.at(i, j), oracle(i, j));
            EXPECT_DOUBLE_EQ(m.at(j, i), m.at(i, j));
        }
    }
}

TEST(DistanceMatrix, SetAndAtRoundTrip)
{
    DistanceMatrix m(5);
    m.set(3, 1, 0.25);
    m.set(0, 4, 0.75);
    EXPECT_DOUBLE_EQ(m.at(1, 3), 0.25);
    EXPECT_DOUBLE_EQ(m.at(3, 1), 0.25);
    EXPECT_DOUBLE_EQ(m.at(4, 0), 0.75);
    EXPECT_DOUBLE_EQ(m.at(2, 1), 0.0);
}

TEST(DistanceMatrix, FromSpanSetsMatchesPairwiseJaccard)
{
    util::Rng rng(13);
    std::vector<WeightedSpanSet> sets;
    for (int i = 0; i < 24; ++i)
        sets.push_back(randomSet(rng, 25, 30));
    sets.push_back({});  // degenerate member
    DistanceMatrix m = DistanceMatrix::fromSpanSets(sets);
    ASSERT_EQ(m.size(), sets.size());
    for (size_t i = 0; i < sets.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_DOUBLE_EQ(m.at(i, j),
                             jaccardDistance(sets[i], sets[j]))
                << "pair (" << i << "," << j << ")";
}
