// Quickstart: the smallest end-to-end Sleuth workflow.
//
// 1. Generate a synthetic microservice application and deploy it onto
//    a simulated cluster.
// 2. Collect (unlabeled) traces and train the Sleuth GNN on them.
// 3. Break one service with a chaos fault, catch an SLO-violating
//    trace, and ask the counterfactual RCA which service to blame.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "chaos/fault.h"
#include "core/counterfactual.h"
#include "core/trainer.h"
#include "sim/simulator.h"
#include "synth/generator.h"

using namespace sleuth;

int
main()
{
    // --- 1. A 16-RPC application on a 10-node cluster. ---
    synth::AppConfig app =
        synth::generateApp(synth::syntheticParams(16, /*seed=*/42));
    sim::ClusterModel cluster(app, /*num_nodes=*/10, /*seed=*/1);
    sim::Simulator::calibrateSlos(app, cluster, 300);
    std::printf("application '%s': %zu services, %zu rpcs, %zu flows\n",
                app.name.c_str(), app.services.size(), app.rpcs.size(),
                app.flows.size());

    // --- 2. Train on normal traffic (no labels involved). ---
    sim::Simulator healthy(app, cluster, {.seed = 7});
    std::vector<trace::Trace> corpus;
    core::NormalProfile profile;
    for (int i = 0; i < 200; ++i) {
        trace::Trace t = healthy.simulateOne().trace;
        profile.add(t);
        corpus.push_back(std::move(t));
    }
    profile.finalize();

    core::GnnConfig gnn_config;
    gnn_config.embedDim = 8;
    gnn_config.hidden = 16;
    core::SleuthGnn model(gnn_config);
    core::FeatureEncoder encoder(gnn_config.embedDim);
    core::TrainConfig train_config;
    train_config.epochs = 8;
    core::Trainer trainer(model, encoder, train_config);
    double loss = trainer.train(corpus);
    std::printf("trained %zu-parameter GNN, final loss %.4f\n",
                model.parameterCount(), loss);

    // --- 3. Break a service and locate it from one anomalous trace. ---
    int victim = 1;
    chaos::FaultPlan plan;
    for (const chaos::Instance &inst : cluster.instancesOf(victim))
        plan.faults.push_back({chaos::FaultType::CpuStress,
                               chaos::FaultScope::Container,
                               inst.container,
                               /*latencyMultiplier=*/15.0,
                               /*errorProb=*/0.0});
    std::printf("injecting cpu stress into service '%s'\n",
                app.services[static_cast<size_t>(victim)].name.c_str());

    sim::Simulator faulty(app, cluster, {.seed = 99}, plan);
    core::CounterfactualRca rca(model, encoder, profile);
    for (int i = 0; i < 2000; ++i) {
        sim::SimResult r = faulty.simulateOne();
        int64_t slo = app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        if (!r.violatesSlo(slo))
            continue;
        core::RcaResult verdict = rca.analyze(r.trace, slo);
        std::printf("anomalous trace %s (%lld us, SLO %lld us)\n",
                    r.trace.traceId.c_str(),
                    static_cast<long long>(r.trace.rootDurationUs()),
                    static_cast<long long>(slo));
        std::printf("  predicted root causes:");
        for (const std::string &svc : verdict.services)
            std::printf(" %s", svc.c_str());
        std::printf("\n  ground truth:");
        for (const std::string &svc : r.rootCauseServices)
            std::printf(" %s", svc.c_str());
        std::printf("\n  (%zu counterfactual iterations, %s)\n",
                    verdict.iterations,
                    verdict.resolved ? "resolved" : "unresolved");
        return 0;
    }
    std::printf("no anomaly found — try a different seed\n");
    return 1;
}
