// The full observability pipeline of paper §4: traces arrive at the
// collector fleet in different wire protocols (Zipkin here, via the
// simulator's native export for the rest), land in the storage engine,
// get picked up by an anomaly query, and flow through clustering + RCA.
// Feature-engineering-style aggregations run as storage operator
// pipelines, close to the data.
//
// Run: ./build/examples/observability_pipeline

#include <cstdio>

#include "collector/collector.h"
#include "eval/harness.h"
#include "storage/trace_store.h"
#include "trace/trace_json.h"

using namespace sleuth;

int
main()
{
    // --- Simulate an application and train Sleuth. ---
    eval::ExperimentParams params;
    params.trainTraces = 250;
    params.numQueries = 30;
    params.queriesPerPlan = 15;
    params.seed = 12;
    eval::ExperimentData data = eval::prepareExperiment(
        eval::makeApp(eval::BenchmarkApp::Syn64, 4), params);

    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 8;
    eval::SleuthAdapter sleuth(cfg);
    sleuth.fit(data.trainCorpus);

    // --- Collector: everything funnels into the storage engine. ---
    storage::TraceStore store;
    collector::TraceCollector otel_collector(&store);
    for (const trace::Trace &t : data.trainCorpus) {
        std::vector<trace::Trace> one = {t};
        otel_collector.ingest(trace::toJson(one).dump(),
                              collector::Protocol::Otel);
    }
    for (const eval::AnomalyQuery &q : data.queries) {
        std::vector<trace::Trace> one = {q.trace};
        otel_collector.ingest(trace::toJson(one).dump(),
                              collector::Protocol::Otel, q.sloUs);
    }
    std::printf("collector accepted %zu traces (%zu spans), rejected"
                " %zu\n",
                otel_collector.stats().tracesAccepted,
                otel_collector.stats().spansAccepted,
                otel_collector.stats().tracesRejected);

    // --- Storage-side aggregation (operator pipeline). ---
    auto per_service_spans =
        store.scan().aggregate<std::map<std::string, int>>(
            {}, [](std::map<std::string, int> acc,
                   const storage::Record *const &r) {
                const trace::SpanColumns &cols = r->columns.columns();
                for (size_t i = 0; i < cols.size(); ++i)
                    acc[r->columns.interner().name(
                        cols.serviceId(i))]++;
                return acc;
            });
    std::printf("storage holds %zu traces / %zu spans across %zu"
                " services\n",
                store.size(), store.totalSpans(),
                per_service_spans.size());

    // --- Anomaly query + clustered RCA. ---
    storage::Query anomalous;
    anomalous.onlyAnomalous = true;
    std::vector<const storage::Record *> incidents =
        store.query(anomalous);
    std::printf("anomaly query returned %zu SLO-violating traces\n",
                incidents.size());

    core::PipelineConfig pc;
    pc.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                  .clusterSelectionEpsilon = 0.0};
    core::SleuthPipeline pipeline(sleuth.model(), sleuth.encoder(),
                                  sleuth.profile(), pc);
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (const storage::Record *r : incidents) {
        traces.push_back(r->trace());
        slos.push_back(r->sloUs);
    }
    core::PipelineResult result = pipeline.analyze(traces, slos);
    std::printf("pipeline: %d clusters, %zu RCA invocations\n\n",
                result.numClusters, result.rcaInvocations);

    std::map<std::string, int> verdicts;
    for (const core::RcaResult &r : result.perTrace)
        for (const std::string &svc : r.services)
            verdicts[svc]++;
    std::printf("%-32s implicated in\n", "service");
    std::printf("%s\n", std::string(46, '-').c_str());
    for (const auto &[svc, count] : verdicts)
        std::printf("%-32s %d traces\n", svc.c_str(), count);
    return 0;
}
