// Transfer learning (paper §6.5): pre-train a Sleuth model on one
// application, apply it zero-shot to a completely different one, then
// fine-tune with a few samples — no architecture surgery required,
// because the GNN is independent of the RPC dependency graph. The
// model registry tracks the lineage of every fine-tuned version.
//
// Run: ./build/examples/transfer_learning

#include <cstdio>

#include "core/model_registry.h"
#include "eval/harness.h"

using namespace sleuth;

namespace {

eval::SleuthAdapter::Config
sleuthConfig()
{
    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 10;
    return cfg;
}

} // namespace

int
main()
{
    // --- Pre-train on Synthetic-64. ---
    eval::ExperimentParams src;
    src.trainTraces = 300;
    src.numQueries = 1;
    src.seed = 3;
    eval::ExperimentData source = eval::prepareExperiment(
        eval::makeApp(eval::BenchmarkApp::Syn64, 4), src);
    eval::SleuthAdapter pretrained(sleuthConfig());
    pretrained.fit(source.trainCorpus);
    std::printf("pre-trained on %s (%zu traces)\n",
                toString(eval::BenchmarkApp::Syn64).c_str(),
                source.trainCorpus.size());

    core::ModelRegistry registry;
    std::string base_id = registry.add("sleuth", pretrained.model());
    std::printf("registered '%s'\n\n", base_id.c_str());

    // --- Target: SockShop, never seen during pre-training. ---
    eval::ExperimentParams tgt;
    tgt.trainTraces = 300;
    tgt.numQueries = 30;
    tgt.seed = 9;
    eval::ExperimentData target = eval::prepareExperiment(
        eval::makeApp(eval::BenchmarkApp::SockShop), tgt);

    // Zero-shot: pre-trained weights, target normal profile only.
    eval::SleuthAdapter zero_shot(sleuthConfig());
    std::vector<trace::Trace> profile_slice(
        target.trainCorpus.begin(), target.trainCorpus.begin() + 100);
    zero_shot.fineTune(registry.instantiate(base_id), profile_slice,
                       /*epochs=*/0);
    eval::Scores s0 = eval::evaluateFitted(zero_shot, target);
    std::printf("zero-shot on SockShop:   F1 %.2f  ACC %.2f\n", s0.f1,
                s0.acc);

    // Few-shot: fine-tune with 100 target samples.
    eval::SleuthAdapter few_shot(sleuthConfig());
    std::vector<trace::Trace> few(target.trainCorpus.begin(),
                                  target.trainCorpus.begin() + 100);
    few_shot.fineTune(registry.instantiate(base_id), few, /*epochs=*/6);
    std::string tuned_id =
        registry.add("sleuth", few_shot.model(), base_id);
    eval::Scores s1 = eval::evaluateFitted(few_shot, target);
    std::printf("few-shot (100 samples):  F1 %.2f  ACC %.2f  -> %s\n",
                s1.f1, s1.acc, tuned_id.c_str());

    // Reference: trained from scratch on the full target corpus.
    eval::SleuthAdapter scratch(sleuthConfig());
    scratch.fit(target.trainCorpus);
    eval::Scores s2 = eval::evaluateFitted(scratch, target);
    std::printf("from scratch (%zu):      F1 %.2f  ACC %.2f\n",
                target.trainCorpus.size(), s2.f1, s2.acc);

    std::printf("\nmodel lineage:\n");
    for (const core::ModelMeta &m : registry.list())
        std::printf("  %s:v%d%s%s\n", m.name.c_str(), m.version,
                    m.parent.empty() ? "" : "  <- ",
                    m.parent.c_str());
    return 0;
}
