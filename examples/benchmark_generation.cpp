// Synthetic benchmark generation (paper §5): build a production-scale
// microservice application from a handful of knobs, inspect its shape,
// emit the deployable artifacts (gRPC proto, per-service C++ skeleton,
// Kubernetes manifests, docker-compose), and smoke-test it in the
// trace simulator.
//
// Run: ./build/examples/benchmark_generation [output-dir]

#include <cstdio>

#include "sim/simulator.h"
#include "synth/codegen.h"
#include "synth/generator.h"
#include "trace/trace.h"

using namespace sleuth;

int
main(int argc, char **argv)
{
    // --- Generate a 128-RPC application. ---
    synth::GeneratorParams params = synth::syntheticParams(128, 2024);
    params.name = "acme-shop";
    synth::AppConfig app = synth::generateApp(params);

    std::printf("generated '%s':\n", app.name.c_str());
    std::printf("  services: %zu   rpcs: %zu   flows: %zu\n",
                app.services.size(), app.rpcs.size(),
                app.flows.size());
    std::printf("  largest flow: %zu calls, depth %d, fanout %d\n",
                app.maxFlowNodes(), app.maxFlowDepth(),
                app.maxFanout());

    int per_tier[4] = {0, 0, 0, 0};
    for (const synth::ServiceConfig &s : app.services)
        per_tier[static_cast<int>(s.tier)]++;
    std::printf("  tiers: %d frontend, %d middleware, %d backend,"
                " %d leaf\n\n",
                per_tier[0], per_tier[1], per_tier[2], per_tier[3]);

    // --- Emit the deployable artifacts. ---
    std::vector<synth::GeneratedFile> files = synth::generateCode(app);
    std::string out_dir =
        argc > 1 ? argv[1] : "/tmp/sleuth-acme-shop";
    synth::writeFiles(files, out_dir);
    std::printf("wrote %zu artifacts under %s:\n", files.size(),
                out_dir.c_str());
    for (size_t i = 0; i < files.size() && i < 6; ++i)
        std::printf("  %s (%zu bytes)\n", files[i].path.c_str(),
                    files[i].contents.size());
    if (files.size() > 6)
        std::printf("  ... and %zu more\n", files.size() - 6);

    // --- Smoke-test in the simulator. ---
    sim::ClusterModel cluster(app, 100, 1);
    sim::Simulator simulator(app, cluster, {.seed = 3});
    std::vector<trace::Trace> sample;
    for (int i = 0; i < 200; ++i)
        sample.push_back(simulator.simulateOne().trace);
    trace::CorpusStats stats = trace::summarize(sample);
    std::printf("\nsimulated 200 requests:\n");
    std::printf("  max spans per trace: %zu   max depth: %d   max"
                " out-degree: %d\n",
                stats.maxSpans, stats.maxDepth, stats.maxOutDegree);
    std::printf("  distinct services seen: %zu   distinct operations:"
                " %zu\n",
                stats.services, stats.operations);
    return 0;
}
