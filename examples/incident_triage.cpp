// Incident triage: the workload Sleuth's clustering front end exists
// for. During an incident, hundreds of anomalous traces stream in at
// once; running an ML counterfactual per trace would be wasteful
// because they share a handful of failure modes. The pipeline clusters
// the storm with the weighted-Jaccard trace distance (paper Eq. 1),
// runs one RCA per cluster representative (geometric median), and
// generalizes the verdict to every member.
//
// Run: ./build/examples/incident_triage

#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "eval/harness.h"
#include "synth/catalog.h"

using namespace sleuth;

int
main()
{
    // SockShop, with the Sleuth model trained on normal traffic.
    eval::ExperimentParams params;
    params.trainTraces = 300;
    params.numQueries = 80;
    params.queriesPerPlan = 40;  // two incidents, 40 traces each
    params.seed = 5;
    eval::ExperimentData data = eval::prepareExperiment(
        synth::sockShopConfig(), params);

    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.train.epochs = 10;
    eval::SleuthAdapter sleuth(cfg);
    sleuth.fit(data.trainCorpus);
    std::printf("model trained on %zu traces; %zu anomalous traces in"
                " the storm\n\n",
                data.trainCorpus.size(), data.queries.size());

    // Triage the whole storm at once.
    core::PipelineConfig pc;
    pc.hdbscan = {.minClusterSize = 4, .minSamples = 2,
                  .clusterSelectionEpsilon = 0.0};
    core::SleuthPipeline pipeline(sleuth.model(), sleuth.encoder(),
                                  sleuth.profile(), pc);
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (const eval::AnomalyQuery &q : data.queries) {
        traces.push_back(q.trace);
        slos.push_back(q.sloUs);
    }
    core::PipelineResult result = pipeline.analyze(traces, slos);

    std::printf("clusters: %d, RCA invocations: %zu (vs %zu without"
                " clustering)\n\n",
                result.numClusters, result.rcaInvocations,
                traces.size());

    // Incident summary: traces per verdict.
    std::map<std::string, int> verdicts;
    for (const core::RcaResult &r : result.perTrace) {
        std::string key;
        for (const std::string &svc : r.services)
            key += (key.empty() ? "" : "+") + svc;
        verdicts[key.empty() ? "(none)" : key]++;
    }
    std::printf("%-40s traces\n", "root-cause verdict");
    std::printf("%s\n", std::string(48, '-').c_str());
    for (const auto &[verdict, count] : verdicts)
        std::printf("%-40s %d\n", verdict.c_str(), count);

    // How often the verdict contained the injected culprit.
    int hit = 0;
    for (size_t i = 0; i < data.queries.size(); ++i)
        for (const std::string &svc : result.perTrace[i].services)
            if (data.queries[i].truthServices.count(svc)) {
                ++hit;
                break;
            }
    std::printf("\nverdicts containing the injected culprit: %d / %zu\n",
                hit, data.queries.size());
    return 0;
}
