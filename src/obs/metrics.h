#pragma once

/**
 * @file
 * Self-observability metrics (DESIGN.md §3.11): process-wide counters,
 * gauges, and latency/size histograms over which the rest of the stack
 * reports its own health — ingest rates, drop taxonomy, watermark lag,
 * pipeline stage timings, thread-pool activity, store retention.
 *
 * Metrics are strictly write-only side channels: no analysis result
 * ever reads one, so outputs stay bitwise identical with metrics
 * enabled or disabled at any thread count (pinned by the metrics
 * on/off pipeline test). Recording follows the same commutative-
 * accumulation discipline as the online layer:
 *
 *  - Counter: monotonic, sharded into cacheline-padded per-thread
 *    slots; add() is one relaxed atomic increment on the calling
 *    thread's slot and value() folds the slots at read time. The fold
 *    is an integer sum, so it is exact and order-insensitive.
 *  - Gauge: a single atomic last-write-wins value (set/add).
 *  - Histogram: per-thread-slot {count, sum, min, max,
 *    online::QuantileSketch} guarded by one mutex per slot; snapshots
 *    merge the slot sketches at read time. The sketch defers its
 *    bucket collapse to read time, so the merged histogram is a pure
 *    function of the observation multiset, never of thread
 *    interleaving.
 *  - ScopedTimer: RAII wall-clock stage timer recording milliseconds
 *    into a histogram on destruction.
 *
 * Handles returned by the registry are stable for the registry's
 * lifetime, so call sites cache them in function-local statics:
 *
 *     static obs::Counter &drops = obs::counter(
 *         "sleuth_ingest_dropped_spans_total",
 *         "Spans dropped during ingestion", {{"reason", "orphan"}});
 *     drops.add(n);
 *
 * The default registry is a process-wide leaky singleton rendered by
 * obs::renderText() in the Prometheus text exposition format (the
 * `sleuth metrics` CLI subcommand and sleuth_serviced's periodic
 * snapshots print it). setEnabled(false) turns every record operation
 * into an early-out for overhead ablations; registration and reads
 * stay available either way.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "online/sketch.h"

namespace sleuth::obs {

/** Label set of one metric instance, e.g. {{"reason", "orphan"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Per-thread slot count of sharded metrics (folded at read time). */
constexpr size_t kSlots = 16;

/** Globally disable/enable all record operations (reads unaffected). */
void setEnabled(bool enabled);

/** True when record operations are active (the default). */
bool enabled();

/** The slot index of the calling thread (stable per thread). */
size_t threadSlot();

/** A monotonic counter sharded across per-thread slots. */
class Counter
{
  public:
    /** Add n to the calling thread's slot (no-op while disabled). */
    void
    add(uint64_t n = 1)
    {
        if (!enabled())
            return;
        slots_[threadSlot()].v.fetch_add(n, std::memory_order_relaxed);
    }

    /** Fold every slot (exact: integer sum is order-insensitive). */
    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const Slot &s : slots_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    /** One cacheline per slot so concurrent add()s never contend. */
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> v{0};
    };

    Slot slots_[kSlots];
};

/** A last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        if (!enabled())
            return;
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t delta)
    {
        if (!enabled())
            return;
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Read-time aggregate of a histogram. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/**
 * A latency/size distribution: per-thread-slot QuantileSketches merged
 * at read time (the sketch's deferred collapse keeps the merge a pure
 * function of the observation multiset).
 */
class Histogram
{
  public:
    explicit Histogram(double relativeAccuracy = 0.02);

    /** Record one observation into the calling thread's slot. */
    void record(double x);

    /** Fold every slot into one aggregate view. */
    HistogramSnapshot snapshot() const;

  private:
    struct alignas(64) Slot
    {
        mutable std::mutex mu;
        online::QuantileSketch sketch;
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    double alpha_;
    Slot slots_[kSlots];
};

/** RAII wall-clock timer recording milliseconds on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
        : h_(h), t0_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        h_.record(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0_)
                      .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &h_;
    std::chrono::steady_clock::time_point t0_;
};

/**
 * A named collection of metrics. Most code uses the process-wide
 * default registry through the free functions below; tests construct
 * private registries to assert on exposition output in isolation.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Find or create a metric. The (name, labels) pair is the identity:
     * repeated calls return the same handle, which stays valid for the
     * registry's lifetime. A name must keep one metric kind.
     */
    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         const Labels &labels = {},
                         double relativeAccuracy = 0.02);

    /**
     * Register a gauge whose value is produced by `fn` at render time
     * (used to surface counters owned elsewhere, e.g. the thread
     * pool's process-wide activity counters).
     */
    void callbackGauge(const std::string &name, const std::string &help,
                       const Labels &labels,
                       std::function<int64_t()> fn);

    /**
     * Render every metric in the Prometheus text exposition format:
     * one `# HELP` / `# TYPE` header per family (families sorted by
     * name, instances by label string), counters and gauges as single
     * samples, histograms as quantile samples plus _count/_sum.
     */
    std::string renderText() const;

    /** The process-wide registry (leaky singleton, thread-safe). */
    static Registry &defaultRegistry();

  private:
    enum class Kind { Counter, Gauge, Histogram, Callback };

    struct Metric
    {
        Kind kind = Kind::Counter;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<int64_t()> callback;
    };

    Metric &findOrCreate(const std::string &name, const Labels &labels,
                         const std::string &help, Kind kind);

    mutable std::mutex mu_;
    /** (family name, rendered label string) -> metric. */
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<Metric>>
        metrics_;
};

/** findOrCreate on the default registry (cache the handle). */
Counter &counter(const std::string &name, const std::string &help,
                 const Labels &labels = {});
Gauge &gauge(const std::string &name, const std::string &help,
             const Labels &labels = {});
Histogram &histogram(const std::string &name, const std::string &help,
                     const Labels &labels = {},
                     double relativeAccuracy = 0.02);

/** Render the default registry. */
std::string renderText();

} // namespace sleuth::obs
