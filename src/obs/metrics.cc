#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace sleuth::obs {

namespace {

std::atomic<bool> gEnabled{true};

/** Round-robin slot assignment; threads keep their slot for life. */
std::atomic<size_t> gNextSlot{0};

/**
 * Render labels in canonical form: sorted by key, Prometheus quoting.
 * Returns "" for an empty set, otherwise `{k1="v1",k2="v2"}`.
 */
std::string
renderLabels(Labels labels)
{
    if (labels.empty())
        return "";
    std::sort(labels.begin(), labels.end());
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels)
    {
        if (!first)
            out += ",";
        first = false;
        out += k;
        out += "=\"";
        for (char c : v)
        {
            if (c == '\\' || c == '"')
                out += '\\';
            if (c == '\n')
            {
                out += "\\n";
                continue;
            }
            out += c;
        }
        out += "\"";
    }
    out += "}";
    return out;
}

/** Insert extra labels into an already-rendered label string. */
std::string
withExtraLabel(const std::string &rendered, const std::string &key,
               const std::string &value)
{
    std::string pair = key + "=\"" + value + "\"";
    if (rendered.empty())
        return "{" + pair + "}";
    std::string out = rendered;
    out.insert(out.size() - 1, "," + pair);
    return out;
}

/** Format a double sample the way Prometheus clients do. */
std::string
formatValue(double v)
{
    std::ostringstream os;
    // max_digits10 keeps the round-trip exact: cumulative _sum values
    // beyond 1e6 would otherwise round and lose monotonic resolution
    // between scrapes.
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
    return os.str();
}

} // namespace

void
setEnabled(bool enabled)
{
    gEnabled.store(enabled, std::memory_order_relaxed);
}

bool
enabled()
{
    return gEnabled.load(std::memory_order_relaxed);
}

size_t
threadSlot()
{
    thread_local size_t slot =
        gNextSlot.fetch_add(1, std::memory_order_relaxed) % kSlots;
    return slot;
}

Histogram::Histogram(double relativeAccuracy) : alpha_(relativeAccuracy)
{
    for (Slot &s : slots_)
        s.sketch = online::QuantileSketch(alpha_);
}

void
Histogram::record(double x)
{
    if (!enabled())
        return;
    Slot &s = slots_[threadSlot()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.sketch.add(x);
    if (s.count == 0 || x < s.min)
        s.min = x;
    if (s.count == 0 || x > s.max)
        s.max = x;
    s.count += 1;
    s.sum += x;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    online::QuantileSketch merged(alpha_);
    for (const Slot &s : slots_)
    {
        std::lock_guard<std::mutex> lock(s.mu);
        if (s.count == 0)
            continue;
        merged.merge(s.sketch);
        if (snap.count == 0 || s.min < snap.min)
            snap.min = s.min;
        if (snap.count == 0 || s.max > snap.max)
            snap.max = s.max;
        snap.count += s.count;
        snap.sum += s.sum;
    }
    if (snap.count > 0)
    {
        snap.p50 = merged.quantile(0.5);
        snap.p90 = merged.quantile(0.9);
        snap.p99 = merged.quantile(0.99);
    }
    return snap;
}

Registry::Metric &
Registry::findOrCreate(const std::string &name, const Labels &labels,
                       const std::string &help, Kind kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto key = std::make_pair(name, renderLabels(labels));
    auto it = metrics_.find(key);
    if (it != metrics_.end())
    {
        // A name must keep one metric kind: a mismatched re-register
        // would return a handle whose updates renderText never emits.
        if (it->second->kind != kind)
        {
            static const char *const kKindNames[] = {
                "counter", "gauge", "histogram", "callback gauge"};
            util::fatal("metric ", name, key.second, " registered as ",
                        kKindNames[static_cast<int>(it->second->kind)],
                        " but re-requested as ",
                        kKindNames[static_cast<int>(kind)]);
        }
        return *it->second;
    }
    auto metric = std::make_unique<Metric>();
    metric->kind = kind;
    metric->help = help;
    return *metrics_.emplace(std::move(key), std::move(metric))
                .first->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    Metric &m = findOrCreate(name, labels, help, Kind::Counter);
    // First caller materialises the storage; later calls reuse it.
    std::lock_guard<std::mutex> lock(mu_);
    if (!m.counter)
        m.counter = std::make_unique<Counter>();
    return *m.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    Metric &m = findOrCreate(name, labels, help, Kind::Gauge);
    std::lock_guard<std::mutex> lock(mu_);
    if (!m.gauge)
        m.gauge = std::make_unique<Gauge>();
    return *m.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    const Labels &labels, double relativeAccuracy)
{
    Metric &m = findOrCreate(name, labels, help, Kind::Histogram);
    std::lock_guard<std::mutex> lock(mu_);
    if (!m.histogram)
        m.histogram = std::make_unique<Histogram>(relativeAccuracy);
    return *m.histogram;
}

void
Registry::callbackGauge(const std::string &name, const std::string &help,
                        const Labels &labels,
                        std::function<int64_t()> fn)
{
    Metric &m = findOrCreate(name, labels, help, Kind::Callback);
    std::lock_guard<std::mutex> lock(mu_);
    m.callback = std::move(fn);
}

std::string
Registry::renderText() const
{
    // Evaluate callback gauges before taking the render lock so a
    // callback that itself touches the registry (e.g. obs::counter)
    // cannot deadlock on the non-recursive mu_. Metric objects are
    // never erased, so the pointers stay valid across the unlock.
    std::map<const Metric *, int64_t> callbackValues;
    {
        std::vector<std::pair<const Metric *, std::function<int64_t()>>>
            callbacks;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const auto &[key, metric] : metrics_)
                if (metric->kind == Kind::Callback && metric->callback)
                    callbacks.emplace_back(metric.get(),
                                           metric->callback);
        }
        for (const auto &[m, fn] : callbacks)
            callbackValues.emplace(m, fn());
    }

    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    std::string lastFamily;
    // metrics_ is keyed (family, labels), so one pass emits each
    // family's HELP/TYPE header followed by its sorted instances.
    for (const auto &[key, metric] : metrics_)
    {
        const auto &[family, labelStr] = key;
        const Metric &m = *metric;
        if (family != lastFamily)
        {
            lastFamily = family;
            out += "# HELP " + family + " " + m.help + "\n";
            const char *type = "gauge";
            if (m.kind == Kind::Counter)
                type = "counter";
            else if (m.kind == Kind::Histogram)
                type = "summary";
            out += "# TYPE " + family + " " + std::string(type) + "\n";
        }
        switch (m.kind)
        {
        case Kind::Counter:
            out += family + labelStr + " " +
                   std::to_string(m.counter ? m.counter->value() : 0) +
                   "\n";
            break;
        case Kind::Gauge:
            out += family + labelStr + " " +
                   std::to_string(m.gauge ? m.gauge->value() : 0) + "\n";
            break;
        case Kind::Callback:
        {
            // A callback registered between the two locked passes has
            // no pre-evaluated value yet; render it as 0 this scrape.
            auto cb = callbackValues.find(&m);
            int64_t v = cb == callbackValues.end() ? 0 : cb->second;
            out += family + labelStr + " " + std::to_string(v) + "\n";
            break;
        }
        case Kind::Histogram:
        {
            HistogramSnapshot snap =
                m.histogram ? m.histogram->snapshot() : HistogramSnapshot{};
            const std::pair<const char *, double> quantiles[] = {
                {"0.5", snap.p50}, {"0.9", snap.p90}, {"0.99", snap.p99}};
            for (const auto &[q, v] : quantiles)
                out += family +
                       withExtraLabel(labelStr, "quantile", q) + " " +
                       formatValue(v) + "\n";
            out += family + "_count" + labelStr + " " +
                   std::to_string(snap.count) + "\n";
            out += family + "_sum" + labelStr + " " +
                   formatValue(snap.sum) + "\n";
            break;
        }
        }
    }
    return out;
}

namespace {

/**
 * Surface util::ThreadPool's plain activity counters (util sits below
 * obs in the dependency order, so the pool cannot record metrics
 * itself) as callback gauges evaluated at render time.
 */
void
registerProcessGauges(Registry &r)
{
    r.callbackGauge("sleuth_threadpool_jobs_total",
                    "parallelFor invocations dispatched", {}, [] {
                        return static_cast<int64_t>(
                            util::ThreadPool::activity().jobs);
                    });
    r.callbackGauge("sleuth_threadpool_items_total",
                    "Loop items dispatched across all parallelFor jobs",
                    {}, [] {
                        return static_cast<int64_t>(
                            util::ThreadPool::activity().items);
                    });
    r.callbackGauge("sleuth_threadpool_live_pools",
                    "Thread pools currently alive", {}, [] {
                        return util::ThreadPool::activity().livePools;
                    });
    r.callbackGauge("sleuth_threadpool_active_jobs",
                    "parallelFor calls currently executing", {}, [] {
                        return util::ThreadPool::activity().activeJobs;
                    });
}

} // namespace

Registry &
Registry::defaultRegistry()
{
    // Leaky singleton: metric handles cached in function-local statics
    // across the codebase must outlive every other static destructor.
    static Registry *instance = [] {
        Registry *r = new Registry();
        registerProcessGauges(*r);
        return r;
    }();
    return *instance;
}

Counter &
counter(const std::string &name, const std::string &help,
        const Labels &labels)
{
    return Registry::defaultRegistry().counter(name, help, labels);
}

Gauge &
gauge(const std::string &name, const std::string &help,
      const Labels &labels)
{
    return Registry::defaultRegistry().gauge(name, help, labels);
}

Histogram &
histogram(const std::string &name, const std::string &help,
          const Labels &labels, double relativeAccuracy)
{
    return Registry::defaultRegistry().histogram(name, help, labels,
                                                 relativeAccuracy);
}

std::string
renderText()
{
    return Registry::defaultRegistry().renderText();
}

} // namespace sleuth::obs
