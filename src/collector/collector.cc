#include "collector.h"

#include <map>
#include <set>

#include "obs/metrics.h"
#include "trace/trace_json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sleuth::collector {

namespace {

/** Per-reason drop counter (one labelled instance per DropReason). */
obs::Counter &
dropCounter(DropReason reason)
{
    static const char *help = "Spans dropped during ingestion, by reason";
    static obs::Counter &orphan = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::Orphan)}});
    static obs::Counter &duplicate = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::Duplicate)}});
    static obs::Counter &late = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::LateAfterEviction)}});
    static obs::Counter &malformed = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::Malformed)}});
    static obs::Counter &backpressure = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::Backpressure)}});
    static obs::Counter &ring_full = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::RingFull)}});
    static obs::Counter &shed = obs::counter(
        "sleuth_ingest_dropped_spans_total", help,
        {{"reason", toString(DropReason::Shed)}});
    switch (reason) {
      case DropReason::Orphan: return orphan;
      case DropReason::Duplicate: return duplicate;
      case DropReason::LateAfterEviction: return late;
      case DropReason::Malformed: return malformed;
      case DropReason::Backpressure: return backpressure;
      case DropReason::RingFull: return ring_full;
      case DropReason::Shed: return shed;
    }
    util::panic("invalid drop reason");
}

} // namespace

const char *
toString(Protocol p)
{
    switch (p) {
      case Protocol::Otel: return "otel";
      case Protocol::Zipkin: return "zipkin";
      case Protocol::Jaeger: return "jaeger";
    }
    util::panic("invalid protocol");
}

const char *
toString(DropReason r)
{
    switch (r) {
      case DropReason::Orphan: return "orphan";
      case DropReason::Duplicate: return "duplicate";
      case DropReason::LateAfterEviction: return "late-after-eviction";
      case DropReason::Malformed: return "malformed";
      case DropReason::Backpressure: return "backpressure";
      case DropReason::RingFull: return "ring-full";
      case DropReason::Shed: return "shed";
    }
    util::panic("invalid drop reason");
}

DropReason
classifyDefect(const trace::Trace &t)
{
    if (t.spans.empty())
        return DropReason::Malformed;
    std::set<std::string> ids;
    for (const trace::Span &s : t.spans)
        if (!ids.insert(s.spanId).second)
            return DropReason::Duplicate;
    for (const trace::Span &s : t.spans)
        if (!s.parentSpanId.empty() && !ids.count(s.parentSpanId))
            return DropReason::Orphan;
    // Root-count defects and parent cycles.
    return DropReason::Malformed;
}

void
CollectorStats::countDrop(DropReason reason, size_t spans)
{
    // Every ingest-path drop (batch collector, span assembler, online
    // admission control) funnels through here, so this is the one
    // place the process-wide drop taxonomy is recorded. merge() is
    // deliberately not instrumented: it folds already-counted shards.
    dropCounter(reason).add(spans);
    spansRejected += spans;
    switch (reason) {
      case DropReason::Orphan: droppedOrphan += spans; break;
      case DropReason::Duplicate: droppedDuplicate += spans; break;
      case DropReason::LateAfterEviction: droppedLate += spans; break;
      case DropReason::Malformed: droppedMalformed += spans; break;
      case DropReason::Backpressure:
        droppedBackpressure += spans;
        break;
      case DropReason::RingFull: droppedRingFull += spans; break;
      case DropReason::Shed: droppedShed += spans; break;
    }
}

void
CollectorStats::merge(const CollectorStats &other)
{
    tracesAccepted += other.tracesAccepted;
    tracesRejected += other.tracesRejected;
    spansAccepted += other.spansAccepted;
    spansRejected += other.spansRejected;
    droppedOrphan += other.droppedOrphan;
    droppedDuplicate += other.droppedDuplicate;
    droppedLate += other.droppedLate;
    droppedMalformed += other.droppedMalformed;
    droppedBackpressure += other.droppedBackpressure;
    droppedRingFull += other.droppedRingFull;
    droppedShed += other.droppedShed;
}

namespace {

trace::SpanKind
zipkinKind(const std::string &kind)
{
    std::string k = util::toLower(kind);
    if (k == "client")
        return trace::SpanKind::Client;
    if (k == "server")
        return trace::SpanKind::Server;
    if (k == "producer")
        return trace::SpanKind::Producer;
    if (k == "consumer")
        return trace::SpanKind::Consumer;
    return trace::SpanKind::Local;
}

bool
errorTag(const util::Json &tags)
{
    if (tags.type() != util::Json::Type::Object)
        return false;
    if (!tags.has("error"))
        return false;
    const util::Json &e = tags.at("error");
    if (e.type() == util::Json::Type::Bool)
        return e.asBool();
    if (e.type() == util::Json::Type::String)
        return !e.asString().empty() && e.asString() != "false";
    return true;
}

} // namespace

std::vector<trace::Trace>
parseZipkin(const util::Json &doc)
{
    std::map<std::string, trace::Trace> by_trace;
    for (const util::Json &j : doc.asArray()) {
        trace::Span s;
        std::string trace_id = j.at("traceId").asString();
        s.spanId = j.at("id").asString();
        if (j.has("parentId"))
            s.parentSpanId = j.at("parentId").asString();
        s.name = j.has("name") ? j.at("name").asString() : "";
        s.kind = j.has("kind") ? zipkinKind(j.at("kind").asString())
                               : trace::SpanKind::Local;
        s.startUs = j.at("timestamp").asInt();
        s.endUs = s.startUs + j.at("duration").asInt();
        if (j.has("localEndpoint") &&
            j.at("localEndpoint").has("serviceName"))
            s.service =
                j.at("localEndpoint").at("serviceName").asString();
        bool err = j.has("tags") && errorTag(j.at("tags"));
        s.status =
            err ? trace::StatusCode::Error : trace::StatusCode::Ok;
        trace::Trace &t = by_trace[trace_id];
        t.traceId = trace_id;
        t.spans.push_back(std::move(s));
    }
    std::vector<trace::Trace> out;
    out.reserve(by_trace.size());
    for (auto &[id, t] : by_trace) {
        (void)id;
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<trace::Trace>
parseJaeger(const util::Json &doc)
{
    std::vector<trace::Trace> out;
    for (const util::Json &entry : doc.at("data").asArray()) {
        trace::Trace t;
        t.traceId = entry.at("traceID").asString();
        const util::Json &processes = entry.at("processes");
        for (const util::Json &j : entry.at("spans").asArray()) {
            trace::Span s;
            s.spanId = j.at("spanID").asString();
            if (j.has("references")) {
                for (const util::Json &r :
                     j.at("references").asArray()) {
                    if (r.at("refType").asString() == "CHILD_OF")
                        s.parentSpanId = r.at("spanID").asString();
                }
            }
            s.name = j.at("operationName").asString();
            s.startUs = j.at("startTime").asInt();
            s.endUs = s.startUs + j.at("duration").asInt();
            std::string pid = j.at("processID").asString();
            if (processes.has(pid))
                s.service =
                    processes.at(pid).at("serviceName").asString();
            s.kind = trace::SpanKind::Server;
            s.status = trace::StatusCode::Ok;
            if (j.has("tags")) {
                for (const util::Json &tag : j.at("tags").asArray()) {
                    std::string key = tag.at("key").asString();
                    if (key == "span.kind")
                        s.kind = zipkinKind(
                            tag.at("value").asString());
                    if (key == "error")
                        s.status = trace::StatusCode::Error;
                }
            }
            t.spans.push_back(std::move(s));
        }
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<trace::Trace>
parseOtel(const util::Json &doc)
{
    return trace::tracesFromJson(doc);
}

TraceCollector::TraceCollector(storage::TraceStore *store)
    : store_(store)
{
    SLEUTH_ASSERT(store != nullptr);
}

size_t
TraceCollector::ingest(const std::string &payload, Protocol protocol,
                       int64_t slo_us)
{
    std::string error;
    util::Json doc = util::Json::parse(payload, &error);
    if (!error.empty()) {
        util::warn("collector: rejecting ", toString(protocol),
                   " payload: ", error);
        ++stats_.tracesRejected;
        // Span count unknown for an unparsable payload: count one unit.
        stats_.countDrop(DropReason::Malformed, 1);
        return 0;
    }
    std::vector<trace::Trace> traces;
    switch (protocol) {
      case Protocol::Otel:
        traces = parseOtel(doc);
        break;
      case Protocol::Zipkin:
        traces = parseZipkin(doc);
        break;
      case Protocol::Jaeger:
        traces = parseJaeger(doc);
        break;
    }
    size_t accepted = 0;
    for (trace::Trace &t : traces) {
        trace::TraceGraph graph;
        std::string why;
        if (!trace::TraceGraph::tryBuild(t, &graph, &why)) {
            util::warn("collector: dropping trace '", t.traceId,
                       "': ", why);
            ++stats_.tracesRejected;
            stats_.countDrop(classifyDefect(t), t.spans.size());
            continue;
        }
        stats_.spansAccepted += t.spans.size();
        static obs::Counter &spans = obs::counter(
            "sleuth_ingest_accepted_spans_total",
            "Spans accepted by the batch trace collector");
        spans.add(t.spans.size());
        store_->insert(std::move(t), slo_us);
        ++accepted;
        ++stats_.tracesAccepted;
    }
    static obs::Counter &payloads = obs::counter(
        "sleuth_ingest_payloads_total",
        "Collector payloads parsed (any protocol)");
    payloads.add();
    return accepted;
}

} // namespace sleuth::collector
