#pragma once

/**
 * @file
 * Trace collectors (paper §4): the production deployment runs a fleet
 * of OpenTelemetry collectors that accept multiple wire protocols —
 * OpenTelemetry, Zipkin, and Jaeger — normalize them, and forward the
 * traces into the storage engine. This module implements the protocol
 * adapters over JSON payloads and a collector front end that ingests
 * into a TraceStore.
 */

#include <string>
#include <vector>

#include "storage/trace_store.h"
#include "trace/trace.h"
#include "util/json.h"

namespace sleuth::collector {

/** Supported wire protocols. */
enum class Protocol { Otel, Zipkin, Jaeger };

/** Render a protocol name. */
const char *toString(Protocol p);

/**
 * Parse a Zipkin v2 JSON span array. Spans of multiple traces may be
 * interleaved; they are grouped by traceId. Recognized fields:
 * traceId, id, parentId, name, kind (CLIENT/SERVER/PRODUCER/CONSUMER),
 * timestamp + duration (microseconds), localEndpoint.serviceName, and
 * tags.error for the status.
 */
std::vector<trace::Trace> parseZipkin(const util::Json &doc);

/**
 * Parse a Jaeger JSON export ({"data": [{traceID, spans, processes}]}).
 * Recognized: spanID, references[CHILD_OF].spanID, operationName,
 * startTime + duration (microseconds), processID -> processes[pid]
 * .serviceName, and the span.kind / error tags.
 */
std::vector<trace::Trace> parseJaeger(const util::Json &doc);

/**
 * Parse this library's native OpenTelemetry-like format (an array of
 * trace documents as produced by trace::toJson).
 */
std::vector<trace::Trace> parseOtel(const util::Json &doc);

/**
 * Why a span (or a whole trace worth of spans) was dropped during
 * ingestion or online assembly.
 */
enum class DropReason {
    /** A parentSpanId never resolved within the trace. */
    Orphan,
    /** A span id appeared more than once within the trace. */
    Duplicate,
    /** The span arrived after its trace was completed or evicted. */
    LateAfterEviction,
    /** Structurally invalid (no spans, no/multiple roots, cycle, bad
        JSON). */
    Malformed,
    /** Rejected by admission control under overload. */
    Backpressure,
    /**
     * Enqueue-side last resort: the ingest shard's bounded MPSC ring
     * was physically full (offered load within one poll interval
     * exceeded the ring capacity), so the producer dropped the span
     * on the spot.
     */
    RingFull,
    /**
     * Poll-side load shedding: the drained batch exceeded the
     * configured per-poll budget and the shed policy (drop-newest /
     * drop-oldest / sample) discarded this span deterministically.
     */
    Shed,
};

/** Render a drop reason. */
const char *toString(DropReason r);

/**
 * Classify the first structural defect of a trace that failed
 * TraceGraph validation. Checked in order: empty / duplicate span ids /
 * unresolved parents (orphans) / everything else (root count, cycles)
 * as Malformed.
 */
DropReason classifyDefect(const trace::Trace &t);

/** Ingestion statistics of a collector (or online span assembler). */
struct CollectorStats
{
    size_t tracesAccepted = 0;
    size_t tracesRejected = 0;
    size_t spansAccepted = 0;
    size_t spansRejected = 0;
    // Per-reason drop counters (spans).
    size_t droppedOrphan = 0;
    size_t droppedDuplicate = 0;
    size_t droppedLate = 0;
    size_t droppedMalformed = 0;
    size_t droppedBackpressure = 0;
    size_t droppedRingFull = 0;
    size_t droppedShed = 0;

    /** Count `spans` spans dropped for `reason`. */
    void countDrop(DropReason reason, size_t spans);

    /** Fold another stats block into this one (shard aggregation). */
    void merge(const CollectorStats &other);
};

/**
 * A collector front end: parses payloads of any supported protocol,
 * validates each trace (single root, resolvable parents, acyclic), and
 * forwards the valid ones into a TraceStore.
 */
class TraceCollector
{
  public:
    /** @param store destination store (held by pointer; must outlive) */
    explicit TraceCollector(storage::TraceStore *store);

    /**
     * Ingest one JSON payload.
     *
     * @param payload raw JSON text
     * @param protocol wire protocol of the payload
     * @param slo_us SLO stamped on the stored records (0 = unknown)
     * @return number of traces accepted
     */
    size_t ingest(const std::string &payload, Protocol protocol,
                  int64_t slo_us = 0);

    /** Running statistics. */
    const CollectorStats &stats() const { return stats_; }

  private:
    storage::TraceStore *store_;
    CollectorStats stats_;
};

} // namespace sleuth::collector
