#include "wal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "crc32c.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace sleuth::durable {

namespace {

/**
 * Body-length sanity cap. A frame body is at most one poll's span
 * batch or one snapshot-sized incident; anything claiming more than
 * this is a corrupt length field, not a real record.
 */
constexpr uint32_t kMaxBodyBytes = 1u << 30;

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

obs::Counter &
recordCounter(RecordKind kind)
{
    static obs::Counter &epoch = obs::counter(
        "sleuth_wal_records_total", "WAL records appended by kind",
        {{"kind", "epoch"}});
    static obs::Counter &interner = obs::counter(
        "sleuth_wal_records_total", "WAL records appended by kind",
        {{"kind", "interner-delta"}});
    static obs::Counter &spans = obs::counter(
        "sleuth_wal_records_total", "WAL records appended by kind",
        {{"kind", "span-batch"}});
    static obs::Counter &evict = obs::counter(
        "sleuth_wal_records_total", "WAL records appended by kind",
        {{"kind", "eviction"}});
    static obs::Counter &incident = obs::counter(
        "sleuth_wal_records_total", "WAL records appended by kind",
        {{"kind", "incident-update"}});
    static obs::Counter &marker = obs::counter(
        "sleuth_wal_records_total", "WAL records appended by kind",
        {{"kind", "poll-marker"}});
    switch (kind) {
    case RecordKind::Epoch:
        return epoch;
    case RecordKind::InternerDelta:
        return interner;
    case RecordKind::SpanBatch:
        return spans;
    case RecordKind::Eviction:
        return evict;
    case RecordKind::IncidentUpdate:
        return incident;
    case RecordKind::PollMarker:
        return marker;
    }
    return marker;
}

} // namespace

const char *
toString(RecordKind kind)
{
    switch (kind) {
    case RecordKind::Epoch:
        return "epoch";
    case RecordKind::InternerDelta:
        return "interner-delta";
    case RecordKind::SpanBatch:
        return "span-batch";
    case RecordKind::Eviction:
        return "eviction";
    case RecordKind::IncidentUpdate:
        return "incident-update";
    case RecordKind::PollMarker:
        return "poll-marker";
    }
    return "unknown";
}

bool
validRecordKind(uint8_t kind)
{
    return kind >= static_cast<uint8_t>(RecordKind::Epoch) &&
           kind <= static_cast<uint8_t>(RecordKind::PollMarker);
}

const char *
toString(FsyncPolicy policy)
{
    switch (policy) {
    case FsyncPolicy::Always:
        return "always";
    case FsyncPolicy::Group:
        return "group";
    case FsyncPolicy::Off:
        return "off";
    }
    return "off";
}

bool
fsyncPolicyFromString(std::string_view name, FsyncPolicy *out)
{
    if (name == "always")
        *out = FsyncPolicy::Always;
    else if (name == "group")
        *out = FsyncPolicy::Group;
    else if (name == "off")
        *out = FsyncPolicy::Off;
    else
        return false;
    return true;
}

std::string
segmentFileName(uint64_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "wal-%010llu.log",
                  static_cast<unsigned long long>(index));
    return buf;
}

std::string
snapshotFileName(uint64_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "snap-%010llu.snap",
                  static_cast<unsigned long long>(index));
    return buf;
}

namespace {

std::vector<std::pair<uint64_t, std::string>>
listByPattern(const std::string &dir, std::string_view prefix,
              std::string_view suffix)
{
    std::vector<std::pair<uint64_t, std::string>> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::string_view digits(name.data() + prefix.size(),
                                name.size() - prefix.size() -
                                    suffix.size());
        uint64_t index = 0;
        bool numeric = !digits.empty();
        for (char c : digits) {
            if (c < '0' || c > '9') {
                numeric = false;
                break;
            }
            index = index * 10 + static_cast<uint64_t>(c - '0');
        }
        if (numeric)
            out.emplace_back(index, entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

std::vector<std::pair<uint64_t, std::string>>
listSegments(const std::string &dir)
{
    return listByPattern(dir, "wal-", ".log");
}

std::vector<std::pair<uint64_t, std::string>>
listSnapshots(const std::string &dir)
{
    return listByPattern(dir, "snap-", ".snap");
}

std::string
encodeFrame(RecordKind kind, std::string_view payload)
{
    std::string body;
    body.reserve(1 + payload.size());
    body.push_back(static_cast<char>(kind));
    body.append(payload.data(), payload.size());

    uint32_t len = static_cast<uint32_t>(body.size());
    uint32_t crc = crc32c(body);
    std::string frame;
    frame.reserve(8 + body.size());
    char header[8];
    std::memcpy(header, &len, 4);
    std::memcpy(header + 4, &crc, 4);
    frame.append(header, 8);
    frame.append(body);
    return frame;
}

SegmentScan
scanSegment(const std::string &path)
{
    SegmentScan scan;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return scan;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    scan.fileBytes = data.size();

    size_t pos = 0;
    while (pos < data.size()) {
        if (data.size() - pos < 8) {
            scan.tornReason = "truncated frame header";
            break;
        }
        uint32_t len, want;
        std::memcpy(&len, data.data() + pos, 4);
        std::memcpy(&want, data.data() + pos + 4, 4);
        if (len < 1 || len > kMaxBodyBytes) {
            scan.tornReason = "implausible frame length";
            break;
        }
        if (data.size() - pos - 8 < len) {
            scan.tornReason = "truncated frame body";
            break;
        }
        std::string_view body(data.data() + pos + 8, len);
        if (crc32c(body) != want) {
            scan.tornReason = "crc mismatch";
            break;
        }
        uint8_t kind = static_cast<uint8_t>(body[0]);
        if (!validRecordKind(kind)) {
            scan.tornReason = "unknown record kind";
            break;
        }
        WalFrame frame;
        frame.kind = static_cast<RecordKind>(kind);
        frame.payload.assign(body.substr(1));
        frame.offset = pos;
        scan.frames.push_back(std::move(frame));
        pos += 8 + len;
        scan.validBytes = pos;
    }
    scan.torn = scan.validBytes < scan.fileBytes;
    return scan;
}

WalWriter::WalWriter(std::string dir, FsyncPolicy policy)
    : dir_(std::move(dir)), policy_(policy)
{
}

WalWriter::~WalWriter() { close(); }

bool
WalWriter::openSegment(uint64_t index, uint64_t truncateTo,
                       std::string *err)
{
    close();
    std::string path = dir_ + "/" + segmentFileName(index);
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd < 0) {
        if (err)
            *err = path + ": open: " + std::strerror(errno);
        return false;
    }
    if (::ftruncate(fd, static_cast<off_t>(truncateTo)) != 0) {
        if (err)
            *err = path + ": ftruncate: " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
        if (err)
            *err = path + ": lseek: " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    fd_ = fd;
    index_ = index;
    bytes_ = truncateTo;
    return true;
}

bool
WalWriter::append(RecordKind kind, std::string_view payload)
{
    static obs::Histogram &append_ms = obs::histogram(
        "sleuth_wal_append_ms", "WAL frame append latency (ms)");
    static obs::Counter &bytes_total = obs::counter(
        "sleuth_wal_bytes_total", "Bytes appended to the WAL");

    SLEUTH_ASSERT(fd_ >= 0, "WAL append without an open segment");
    auto start = std::chrono::steady_clock::now();
    std::string frame = encodeFrame(kind, payload);
    size_t done = 0;
    while (done < frame.size()) {
        ssize_t n =
            ::write(fd_, frame.data() + done, frame.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            util::warn("wal append failed: ", std::strerror(errno));
            return false;
        }
        done += static_cast<size_t>(n);
    }
    bytes_ += frame.size();
    if (policy_ == FsyncPolicy::Always && !fsyncNow())
        return false;
    append_ms.record(millisSince(start));
    bytes_total.add(static_cast<uint64_t>(frame.size()));
    recordCounter(kind).add(1);
    return true;
}

bool
WalWriter::sync()
{
    if (fd_ < 0 || policy_ == FsyncPolicy::Off)
        return true;
    return fsyncNow();
}

bool
WalWriter::fsyncNow()
{
    static obs::Histogram &fsync_ms = obs::histogram(
        "sleuth_wal_fsync_ms", "WAL fsync latency (ms)");
    auto start = std::chrono::steady_clock::now();
    if (::fsync(fd_) != 0) {
        util::warn("wal fsync failed: ", std::strerror(errno));
        return false;
    }
    fsync_ms.record(millisSince(start));
    return true;
}

void
WalWriter::close()
{
    if (fd_ < 0)
        return;
    if (policy_ != FsyncPolicy::Off)
        fsyncNow();
    ::close(fd_);
    fd_ = -1;
}

} // namespace sleuth::durable
