#pragma once

/**
 * @file
 * DurableLog: the data-directory manager stitching WAL segments and
 * snapshot files into one recoverable log (DESIGN.md §3.15).
 *
 * A data directory holds `wal-<n>.log` segments and `snap-<n>.snap`
 * snapshots, where snapshot n captures the full serving state at the
 * instant segment n was opened. The invariants:
 *
 *  - recovery state = newest valid snapshot n (or empty when none)
 *    + replay of the frame prefixes of segments n, n+1, ... in order;
 *  - every segment opens with an Epoch record, so the log is
 *    self-describing even without a snapshot;
 *  - rotateWithSnapshot() writes snap-(k+1), opens segment k+1, and
 *    deletes everything older — compaction is just rotation;
 *  - after a crash, openForAppend() truncates the tail segment to its
 *    scanned valid prefix before appending, so a torn frame can never
 *    precede a fresh one.
 *
 * The serving layer owns what the bytes mean; this class only owns
 * which files exist, where appends go, and what a recovery must read.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wal.h"

namespace sleuth::durable {

/** Durability settings for one data directory. */
struct DurableConfig
{
    /** Data directory (created if missing). */
    std::string dir;
    /** When appended frames reach the disk. */
    FsyncPolicy fsyncPolicy = FsyncPolicy::Group;
    /** Snapshot + rotate every N poll commits (0 = never). */
    uint64_t snapshotEveryPolls = 0;
};

/** Everything a replay needs, produced by DurableLog::recover(). */
struct RecoveredLog
{
    /** True when a valid snapshot was found. */
    bool hasSnapshot = false;
    /** Index of the snapshot used (segments >= this were scanned). */
    uint64_t snapshotIndex = 0;
    /** The snapshot's opaque payload (empty without a snapshot). */
    std::string snapshotPayload;
    /** Valid frames of the replayed segments, in append order. */
    std::vector<WalFrame> frames;
    /** True when at least one WAL segment exists in the range. */
    bool haveSegments = false;
    /** Segment the next append continues (last replayed segment). */
    uint64_t appendSegmentIndex = 0;
    /** Valid-prefix length the append segment is truncated to. */
    uint64_t appendTruncateTo = 0;
    /** Corrupt snapshots passed over (newest-first search). */
    uint64_t snapshotsSkipped = 0;
    /** Segments whose tail was torn or corrupt. */
    uint64_t tornSegments = 0;
    /** Segments after a torn one — stale, deleted on openForAppend. */
    std::vector<std::string> stalePaths;
};

/** Manages one data directory's segments, snapshots, and rotation. */
class DurableLog
{
  public:
    explicit DurableLog(DurableConfig cfg);

    /**
     * Scan the directory without modifying it: pick the newest valid
     * snapshot, scan the segments at or after it, and return the
     * replayable frame sequence. Also bumps the recovery counters.
     */
    RecoveredLog recover();

    /**
     * Open the log for appending after a recover(): truncate the tail
     * segment to its valid prefix and continue it, or create segment
     * `snapshotIndex` fresh (writing `epochPayload` as its Epoch
     * record). Deletes any stale segments the scan flagged.
     */
    bool openForAppend(const RecoveredLog &recovered,
                       std::string_view epochPayload, std::string *err);

    /** Append one record to the open segment. */
    bool append(RecordKind kind, std::string_view payload);

    /** Group-commit point (fsync under the Group policy). */
    bool commit();

    /**
     * Write `snapshotPayload` as snap-(k+1), rotate to segment k+1
     * (whose first record is `epochPayload`), and delete all older
     * segments and snapshots. The log compacts to snapshot + one
     * near-empty segment.
     */
    bool rotateWithSnapshot(const std::string &snapshotPayload,
                            std::string_view epochPayload,
                            std::string *err);

    bool isOpen() const { return writer_.isOpen(); }
    uint64_t segmentIndex() const { return writer_.segmentIndex(); }
    uint64_t segmentBytes() const { return writer_.segmentBytes(); }
    const DurableConfig &config() const { return cfg_; }

  private:
    void refreshGauges();

    DurableConfig cfg_;
    WalWriter writer_;
};

} // namespace sleuth::durable
