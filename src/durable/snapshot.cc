#include "snapshot.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "crc32c.h"

namespace sleuth::durable {

namespace {

constexpr char kMagic[8] = {'S', 'L', 'T', 'H', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;

bool
fsyncPath(const std::string &path, std::string *err)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (err)
            *err = path + ": open: " + std::strerror(errno);
        return false;
    }
    bool ok = ::fsync(fd) == 0;
    if (!ok && err)
        *err = path + ": fsync: " + std::strerror(errno);
    ::close(fd);
    return ok;
}

} // namespace

bool
writeSnapshotFile(const std::string &path, const std::string &payload,
                  std::string *err)
{
    std::string header;
    header.reserve(kHeaderBytes);
    header.append(kMagic, 8);
    uint32_t version = kSnapshotVersion;
    uint64_t len = payload.size();
    uint32_t crc = crc32c(payload);
    char fixed[16];
    std::memcpy(fixed, &version, 4);
    std::memcpy(fixed + 4, &len, 8);
    std::memcpy(fixed + 12, &crc, 4);
    header.append(fixed, 16);

    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (err)
                *err = tmp + ": open failed";
            return false;
        }
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        if (!out) {
            if (err)
                *err = tmp + ": write failed";
            return false;
        }
    }
    if (!fsyncPath(tmp, err))
        return false;
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        if (err)
            *err = path + ": rename: " + ec.message();
        return false;
    }
    // Seal the rename itself: fsync the containing directory.
    std::string dir =
        std::filesystem::path(path).parent_path().string();
    if (dir.empty())
        dir = ".";
    std::string dirErr;
    fsyncPath(dir, &dirErr); // best-effort: some filesystems refuse
    return true;
}

bool
readSnapshotFile(const std::string &path, std::string *payload,
                 std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = path + ": open failed";
        return false;
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (data.size() < kHeaderBytes) {
        if (err)
            *err = path + ": short header";
        return false;
    }
    if (std::memcmp(data.data(), kMagic, 8) != 0) {
        if (err)
            *err = path + ": bad magic";
        return false;
    }
    uint32_t version;
    uint64_t len;
    uint32_t want;
    std::memcpy(&version, data.data() + 8, 4);
    std::memcpy(&len, data.data() + 12, 8);
    std::memcpy(&want, data.data() + 20, 4);
    if (version != kSnapshotVersion) {
        if (err)
            *err = path + ": unsupported version " +
                   std::to_string(version);
        return false;
    }
    if (data.size() - kHeaderBytes != len) {
        if (err)
            *err = path + ": payload length mismatch";
        return false;
    }
    std::string_view body(data.data() + kHeaderBytes, len);
    if (crc32c(body) != want) {
        if (err)
            *err = path + ": payload crc mismatch";
        return false;
    }
    payload->assign(body);
    return true;
}

} // namespace sleuth::durable
