#pragma once

/**
 * @file
 * CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
 * the checksum guarding every WAL frame and snapshot payload
 * (DESIGN.md §3.15). Software slice-by-4 table implementation: no ISA
 * dependency, ~1 GB/s, and the polynomial's 4-bit Hamming distance at
 * these frame sizes catches every torn write and single-burst flip the
 * torture test injects.
 */

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sleuth::durable {

/** CRC32C of a byte range, seeded/chained via `crc` (0 to start). */
uint32_t crc32c(const void *data, size_t len, uint32_t crc = 0);

inline uint32_t
crc32c(std::string_view s, uint32_t crc = 0)
{
    return crc32c(s.data(), s.size(), crc);
}

} // namespace sleuth::durable
