#pragma once

/**
 * @file
 * Snapshot files: one whole serving-state image per file, written
 * atomically and validated end-to-end on read (DESIGN.md §3.15).
 *
 * On-disk layout, little-endian:
 *
 *     [8B magic "SLTHSNAP"][u32 version][u64 payloadLen]
 *     [u32 crc32c(payload)][payload]
 *
 * The payload is the durable serving state serialized by the online
 * layer (store columns + interner + detector + incidents + counters);
 * this module treats it as opaque bytes. Writes go to a `.tmp` sibling
 * first, fsync the file and its directory, then rename into place —
 * so a snapshot either exists completely or not at all, and recovery
 * never has to reason about half-written snapshots (a corrupt one
 * simply fails validation and the next older snapshot is used).
 *
 * Snapshots are named `snap-<index>.snap` where <index> is the WAL
 * segment index opened immediately after the snapshot was taken:
 * recovery = newest valid snapshot + replay of segments >= its index.
 */

#include <cstdint>
#include <string>

namespace sleuth::durable {

/** Current snapshot payload format version. */
constexpr uint32_t kSnapshotVersion = 1;

/**
 * Write `payload` as a snapshot file at `path` (tmp + fsync + rename).
 * False (with `err` set) on any I/O failure.
 */
bool writeSnapshotFile(const std::string &path,
                       const std::string &payload, std::string *err);

/**
 * Read and validate a snapshot file: magic, version, length, CRC.
 * False when missing or corrupt (`err` says why); `payload` is only
 * written on success.
 */
bool readSnapshotFile(const std::string &path, std::string *payload,
                      std::string *err);

} // namespace sleuth::durable
