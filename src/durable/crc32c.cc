#include "crc32c.h"

#include <array>

namespace sleuth::durable {

namespace {

/** Reflected CRC32C polynomial. */
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables
{
    uint32_t t[4][256];

    constexpr Tables() : t{}
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
            t[0][i] = c;
        }
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = t[0][i];
            for (int j = 1; j < 4; ++j) {
                c = (c >> 8) ^ t[0][c & 0xFFu];
                t[j][i] = c;
            }
        }
    }
};

constexpr Tables kTables{};

} // namespace

uint32_t
crc32c(const void *data, size_t len, uint32_t crc)
{
    const auto *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    // Slice-by-4: fold one aligned word per iteration.
    while (len >= 4) {
        crc ^= static_cast<uint32_t>(p[0]) |
               static_cast<uint32_t>(p[1]) << 8 |
               static_cast<uint32_t>(p[2]) << 16 |
               static_cast<uint32_t>(p[3]) << 24;
        crc = kTables.t[3][crc & 0xFFu] ^
              kTables.t[2][(crc >> 8) & 0xFFu] ^
              kTables.t[1][(crc >> 16) & 0xFFu] ^
              kTables.t[0][crc >> 24];
        p += 4;
        len -= 4;
    }
    while (len-- > 0)
        crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
    return ~crc;
}

} // namespace sleuth::durable
