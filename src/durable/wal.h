#pragma once

/**
 * @file
 * Write-ahead log: append-only segments of length-prefixed CRC32C
 * frames (DESIGN.md §3.15).
 *
 * Frame layout on disk:
 *
 *     [u32 bodyLen][u32 crc32c(body)][body = u8 kind + payload]
 *
 * all little-endian. A segment is a sequence of frames named
 * `wal-<index>.log`; the serving layer rotates to a new segment
 * whenever it writes a snapshot, so recovery replays only the
 * segments at or after the newest valid snapshot's index.
 *
 * Reading is strictly prefix-valid: scanSegment() walks frames until
 * the first violation — a header that does not fit, a body length
 * exceeding the remaining bytes or the sanity cap, a CRC mismatch, an
 * unknown record kind — and reports everything before it as the valid
 * prefix plus the reason the walk stopped. A torn tail (the normal
 * crash artifact) and a flipped byte are indistinguishable by design:
 * both truncate the log at the last intact frame, and the replay layer
 * above additionally discards any trailing frames that were not sealed
 * by a PollMarker (poll-atomic recovery).
 *
 * Durability policy: Always fsyncs after every append (one syscall per
 * record), Group fsyncs only on sync() — the serving layer calls it
 * once per poll commit — and Off never fsyncs (tests, tmpfs CI legs,
 * throughput ablations).
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sleuth::durable {

/** WAL record kinds (the body's leading byte). */
enum class RecordKind : uint8_t {
    /**
     * Segment epoch marker: first record of every segment. Carries the
     * format version, the segment index, and the serving-layer
     * configuration a config-free reader (CLI inspect/compact) needs
     * to replay the log.
     */
    Epoch = 1,
    /** Strings newly interned since the last commit, in id order. */
    InternerDelta = 2,
    /** Trace records admitted to the store this poll, in id order. */
    SpanBatch = 3,
    /** Record ids evicted by retention this poll (one summarized
        record per poll, not one per eviction). */
    Eviction = 4,
    /** Full serialized incident (index + state) after a change. */
    IncidentUpdate = 5,
    /** Poll commit seal: watermark, high-water record id, counters.
        Replay applies a poll's records atomically when it arrives. */
    PollMarker = 6,
};

/** Render a record kind name ("epoch", "span-batch", ...). */
const char *toString(RecordKind kind);

/** True when the byte names a known record kind. */
bool validRecordKind(uint8_t kind);

/** When appended frames reach the disk. */
enum class FsyncPolicy { Always, Group, Off };

/** Render a policy name ("always" / "group" / "off"). */
const char *toString(FsyncPolicy policy);

/** Parse a policy name; false when unrecognized. */
bool fsyncPolicyFromString(std::string_view name, FsyncPolicy *out);

/** One decoded frame. */
struct WalFrame
{
    RecordKind kind = RecordKind::Epoch;
    std::string payload;
    /** Byte offset of the frame header within its segment. */
    uint64_t offset = 0;
};

/** Result of walking one segment's valid prefix. */
struct SegmentScan
{
    std::vector<WalFrame> frames;
    /** Length of the clean frame prefix (a safe truncation point). */
    uint64_t validBytes = 0;
    /** Total file length. */
    uint64_t fileBytes = 0;
    /** True when bytes past validBytes exist (torn or corrupt tail). */
    bool torn = false;
    /** Why the walk stopped early (empty on a clean EOF). */
    std::string tornReason;
};

/** Decode a segment's valid frame prefix (missing file = empty ok). */
SegmentScan scanSegment(const std::string &path);

/** Canonical file names: "wal-%010u.log" / "snap-%010u.snap". */
std::string segmentFileName(uint64_t index);
std::string snapshotFileName(uint64_t index);

/** (index, path) of every WAL segment in a directory, index order. */
std::vector<std::pair<uint64_t, std::string>>
listSegments(const std::string &dir);

/** (index, path) of every snapshot in a directory, index order. */
std::vector<std::pair<uint64_t, std::string>>
listSnapshots(const std::string &dir);

/** Encode one frame (header + body) as it would land on disk. */
std::string encodeFrame(RecordKind kind, std::string_view payload);

/** Appends frames to one segment at a time under an fsync policy. */
class WalWriter
{
  public:
    WalWriter(std::string dir, FsyncPolicy policy);
    ~WalWriter();

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /**
     * Open segment `index` for appending, creating it if missing. An
     * existing file is truncated to `truncateTo` first (recovery passes
     * the scanned valid prefix so a torn tail never precedes fresh
     * frames). Closes any previously open segment.
     */
    bool openSegment(uint64_t index, uint64_t truncateTo,
                     std::string *err);

    /** Append one frame; fsyncs when the policy is Always. */
    bool append(RecordKind kind, std::string_view payload);

    /** Group-commit point: fsync unless the policy is Off. */
    bool sync();

    /** Close the current segment (final fsync per policy). */
    void close();

    bool isOpen() const { return fd_ >= 0; }
    uint64_t segmentIndex() const { return index_; }
    uint64_t segmentBytes() const { return bytes_; }
    FsyncPolicy policy() const { return policy_; }
    const std::string &dir() const { return dir_; }

  private:
    bool fsyncNow();

    std::string dir_;
    FsyncPolicy policy_;
    int fd_ = -1;
    uint64_t index_ = 0;
    uint64_t bytes_ = 0;
};

} // namespace sleuth::durable
