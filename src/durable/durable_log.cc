#include "durable_log.h"

#include <filesystem>

#include "obs/metrics.h"
#include "snapshot.h"
#include "util/logging.h"

namespace sleuth::durable {

namespace {

obs::Counter &
recoveryRuns()
{
    static obs::Counter &c = obs::counter(
        "sleuth_recovery_runs_total", "Durable-log recovery scans");
    return c;
}

obs::Counter &
recoveryFrames()
{
    static obs::Counter &c =
        obs::counter("sleuth_recovery_frames_total",
                     "WAL frames read back during recovery scans");
    return c;
}

obs::Counter &
recoveryTorn()
{
    static obs::Counter &c = obs::counter(
        "sleuth_recovery_torn_segments_total",
        "Segments truncated to a valid prefix during recovery");
    return c;
}

obs::Counter &
recoverySnapshotsSkipped()
{
    static obs::Counter &c = obs::counter(
        "sleuth_recovery_snapshots_skipped_total",
        "Corrupt snapshots passed over during recovery");
    return c;
}

} // namespace

DurableLog::DurableLog(DurableConfig cfg)
    : cfg_(std::move(cfg)), writer_(cfg_.dir, cfg_.fsyncPolicy)
{
    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);
    if (ec)
        util::fatal("cannot create data dir ", cfg_.dir, ": ",
                    ec.message());
}

RecoveredLog
DurableLog::recover()
{
    RecoveredLog out;
    recoveryRuns().add(1);

    // Newest valid snapshot wins; corrupt ones are skipped, not fatal.
    auto snapshots = listSnapshots(cfg_.dir);
    for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
        std::string err;
        if (readSnapshotFile(it->second, &out.snapshotPayload, &err)) {
            out.hasSnapshot = true;
            out.snapshotIndex = it->first;
            break;
        }
        util::warn("skipping snapshot ", it->second, ": ", err);
        ++out.snapshotsSkipped;
    }

    // Replay segments at or after the snapshot, stopping at the first
    // torn tail: frames after a gap are causally disconnected.
    bool stopped = false;
    for (const auto &[index, path] : listSegments(cfg_.dir)) {
        if (index < out.snapshotIndex)
            continue;
        if (stopped) {
            out.stalePaths.push_back(path);
            continue;
        }
        SegmentScan scan = scanSegment(path);
        for (WalFrame &frame : scan.frames)
            out.frames.push_back(std::move(frame));
        out.haveSegments = true;
        out.appendSegmentIndex = index;
        out.appendTruncateTo = scan.validBytes;
        if (scan.torn) {
            util::warn("wal segment ", path, " torn at byte ",
                       scan.validBytes, " (", scan.tornReason,
                       "); truncating");
            ++out.tornSegments;
            stopped = true;
        }
    }

    recoveryFrames().add(out.frames.size());
    recoveryTorn().add(out.tornSegments);
    recoverySnapshotsSkipped().add(out.snapshotsSkipped);
    return out;
}

bool
DurableLog::openForAppend(const RecoveredLog &recovered,
                          std::string_view epochPayload,
                          std::string *err)
{
    std::error_code ec;
    for (const std::string &path : recovered.stalePaths) {
        util::warn("removing stale wal segment ", path);
        std::filesystem::remove(path, ec);
    }

    if (recovered.haveSegments) {
        if (!writer_.openSegment(recovered.appendSegmentIndex,
                                 recovered.appendTruncateTo, err))
            return false;
        // A segment truncated all the way to zero lost its Epoch
        // record; rewrite it so every segment stays self-describing.
        if (recovered.appendTruncateTo == 0 &&
            !writer_.append(RecordKind::Epoch, epochPayload))
            return false;
    } else {
        if (!writer_.openSegment(recovered.snapshotIndex, 0, err))
            return false;
        if (!writer_.append(RecordKind::Epoch, epochPayload))
            return false;
    }
    if (!writer_.sync())
        return false;
    refreshGauges();
    return true;
}

bool
DurableLog::append(RecordKind kind, std::string_view payload)
{
    return writer_.append(kind, payload);
}

bool
DurableLog::commit()
{
    if (!writer_.sync())
        return false;
    refreshGauges();
    return true;
}

bool
DurableLog::rotateWithSnapshot(const std::string &snapshotPayload,
                               std::string_view epochPayload,
                               std::string *err)
{
    static obs::Histogram &snap_ms = obs::histogram(
        "sleuth_snapshot_write_ms", "Snapshot write latency (ms)");
    static obs::Counter &snaps_total = obs::counter(
        "sleuth_snapshots_written_total", "Snapshots written");

    uint64_t next = writer_.segmentIndex() + 1;
    std::string path = cfg_.dir + "/" + snapshotFileName(next);
    {
        obs::ScopedTimer timer(snap_ms);
        if (!writeSnapshotFile(path, snapshotPayload, err))
            return false;
    }
    snaps_total.add(1);

    if (!writer_.openSegment(next, 0, err))
        return false;
    if (!writer_.append(RecordKind::Epoch, epochPayload))
        return false;
    if (!writer_.sync())
        return false;

    // Compaction: everything older than the new snapshot is dead.
    std::error_code ec;
    for (const auto &[index, old] : listSegments(cfg_.dir))
        if (index < next)
            std::filesystem::remove(old, ec);
    for (const auto &[index, old] : listSnapshots(cfg_.dir))
        if (index < next)
            std::filesystem::remove(old, ec);
    refreshGauges();
    return true;
}

void
DurableLog::refreshGauges()
{
    static obs::Gauge &segments = obs::gauge(
        "sleuth_wal_segments", "WAL segments in the data directory");
    static obs::Gauge &snapshots = obs::gauge(
        "sleuth_durable_snapshots",
        "Snapshot files in the data directory");
    static obs::Gauge &open_bytes = obs::gauge(
        "sleuth_wal_open_segment_bytes",
        "Bytes in the currently open WAL segment");
    segments.set(static_cast<int64_t>(listSegments(cfg_.dir).size()));
    snapshots.set(static_cast<int64_t>(listSnapshots(cfg_.dir).size()));
    open_bytes.set(static_cast<int64_t>(writer_.segmentBytes()));
}

} // namespace sleuth::durable
