#pragma once

/**
 * @file
 * JSON import/export for traces.
 *
 * The on-disk shape is a flattened OpenTelemetry-like document:
 * {"traceId": "...", "spans": [{"spanId": ..., "parentSpanId": ...,
 *  "service": ..., "name": ..., "kind": ..., "startUs": ..., "endUs": ...,
 *  "status": ..., "container": ..., "pod": ..., "node": ...}, ...]}.
 */

#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/json.h"

namespace sleuth::trace {

/** Serialize one trace to a JSON value. */
util::Json toJson(const Trace &trace);

/** Deserialize one trace; fatal() on malformed documents. */
Trace traceFromJson(const util::Json &doc);

/** Serialize a corpus as a JSON array. */
util::Json toJson(const std::vector<Trace> &traces);

/** Deserialize a corpus from a JSON array. */
std::vector<Trace> tracesFromJson(const util::Json &doc);

} // namespace sleuth::trace
