#include "columnar.h"

#include "util/logging.h"

namespace sleuth::trace {

StrRef
SpanColumns::arenaAdd(std::string_view s)
{
    SLEUTH_ASSERT(arena_.size() + s.size() <= UINT32_MAX,
                  "span id arena exceeds 4 GiB");
    StrRef r;
    r.off = static_cast<uint32_t>(arena_.size());
    r.len = static_cast<uint32_t>(s.size());
    arena_.append(s.data(), s.size());
    return r;
}

void
SpanColumns::append(const Span &s, StringInterner &interner)
{
    span_id_.push_back(arenaAdd(s.spanId));
    parent_id_.push_back(arenaAdd(s.parentSpanId));
    service_.push_back(interner.intern(s.service));
    name_.push_back(interner.intern(s.name));
    container_.push_back(interner.intern(s.container));
    pod_.push_back(interner.intern(s.pod));
    node_.push_back(interner.intern(s.node));
    kind_.push_back(static_cast<uint8_t>(s.kind));
    status_.push_back(static_cast<uint8_t>(s.status));
    start_.push_back(s.startUs);
    end_.push_back(s.endUs);
}

Span
SpanColumns::materialize(size_t i, const StringInterner &interner) const
{
    SLEUTH_ASSERT(i < size(), "span column index out of range");
    Span s;
    s.spanId = std::string(spanId(i));
    s.parentSpanId = std::string(parentSpanId(i));
    s.service = interner.name(service_[i]);
    s.name = interner.name(name_[i]);
    s.container = interner.name(container_[i]);
    s.pod = interner.name(pod_[i]);
    s.node = interner.name(node_[i]);
    s.kind = kind(i);
    s.status = status(i);
    s.startUs = start_[i];
    s.endUs = end_[i];
    return s;
}

void
SpanColumns::clear()
{
    arena_.clear();
    span_id_.clear();
    parent_id_.clear();
    service_.clear();
    name_.clear();
    container_.clear();
    pod_.clear();
    node_.clear();
    kind_.clear();
    status_.clear();
    start_.clear();
    end_.clear();
}

void
SpanColumns::shrinkToFit()
{
    arena_.shrink_to_fit();
    span_id_.shrink_to_fit();
    parent_id_.shrink_to_fit();
    service_.shrink_to_fit();
    name_.shrink_to_fit();
    container_.shrink_to_fit();
    pod_.shrink_to_fit();
    node_.shrink_to_fit();
    kind_.shrink_to_fit();
    status_.shrink_to_fit();
    start_.shrink_to_fit();
    end_.shrink_to_fit();
}

namespace {

/** Write a trivially-copyable vector as one contiguous raw block. */
template <typename T>
void
encodeColumn(util::BinaryWriter &w, const std::vector<T> &v)
{
    w.bytes(std::string_view(reinterpret_cast<const char *>(v.data()),
                             v.size() * sizeof(T)));
}

/** Read n elements of a raw column block into v; false when short. */
template <typename T>
bool
decodeColumn(util::BinaryReader &r, std::vector<T> &v, size_t n)
{
    std::string_view raw = r.view(n * sizeof(T));
    if (!r.ok())
        return false;
    v.resize(n);
    std::memcpy(v.data(), raw.data(), raw.size());
    return true;
}

} // namespace

void
SpanColumns::encode(util::BinaryWriter &w) const
{
    w.u32(static_cast<uint32_t>(size()));
    w.str(arena_);
    encodeColumn(w, span_id_);
    encodeColumn(w, parent_id_);
    encodeColumn(w, service_);
    encodeColumn(w, name_);
    encodeColumn(w, container_);
    encodeColumn(w, pod_);
    encodeColumn(w, node_);
    encodeColumn(w, kind_);
    encodeColumn(w, status_);
    encodeColumn(w, start_);
    encodeColumn(w, end_);
}

bool
SpanColumns::decode(util::BinaryReader &r)
{
    clear();
    size_t n = r.u32();
    arena_ = r.str();
    bool ok = r.ok() && decodeColumn(r, span_id_, n) &&
              decodeColumn(r, parent_id_, n) &&
              decodeColumn(r, service_, n) &&
              decodeColumn(r, name_, n) &&
              decodeColumn(r, container_, n) &&
              decodeColumn(r, pod_, n) && decodeColumn(r, node_, n) &&
              decodeColumn(r, kind_, n) && decodeColumn(r, status_, n) &&
              decodeColumn(r, start_, n) && decodeColumn(r, end_, n);
    if (!ok)
        clear();
    return ok;
}

size_t
SpanColumns::memoryBytes() const
{
    size_t bytes = sizeof(*this);
    if (arena_.capacity() > 15)
        bytes += arena_.capacity() + 1;
    bytes += span_id_.capacity() * sizeof(StrRef);
    bytes += parent_id_.capacity() * sizeof(StrRef);
    bytes += service_.capacity() * sizeof(uint32_t);
    bytes += name_.capacity() * sizeof(uint32_t);
    bytes += container_.capacity() * sizeof(uint32_t);
    bytes += pod_.capacity() * sizeof(uint32_t);
    bytes += node_.capacity() * sizeof(uint32_t);
    bytes += kind_.capacity() * sizeof(uint8_t);
    bytes += status_.capacity() * sizeof(uint8_t);
    bytes += start_.capacity() * sizeof(int64_t);
    bytes += end_.capacity() * sizeof(int64_t);
    return bytes;
}

ColumnarTrace::ColumnarTrace(const Trace &t,
                             std::shared_ptr<StringInterner> interner)
    : trace_id_(t.traceId), interner_(std::move(interner))
{
    SLEUTH_ASSERT(interner_ != nullptr,
                  "ColumnarTrace requires an interner");
    for (size_t i = 0; i < t.spans.size(); ++i) {
        cols_.append(t.spans[i], *interner_);
        if (root_ < 0 && t.spans[i].parentSpanId.empty())
            root_ = static_cast<int>(i);
    }
    cols_.shrinkToFit();
}

Trace
ColumnarTrace::toTrace() const
{
    Trace t;
    t.traceId = trace_id_;
    t.spans.reserve(cols_.size());
    for (size_t i = 0; i < cols_.size(); ++i)
        t.spans.push_back(cols_.materialize(i, *interner_));
    return t;
}

bool
ColumnarTrace::hasError() const
{
    for (size_t i = 0; i < cols_.size(); ++i)
        if (cols_.hasError(i))
            return true;
    return false;
}

bool
ColumnarTrace::touchesService(uint32_t service_id) const
{
    const uint32_t *svc = cols_.serviceData();
    for (size_t i = 0; i < cols_.size(); ++i)
        if (svc[i] == service_id)
            return true;
    return false;
}

void
ColumnarTrace::encode(util::BinaryWriter &w) const
{
    w.str(trace_id_);
    w.i64(root_);
    cols_.encode(w);
}

bool
ColumnarTrace::decode(util::BinaryReader &r,
                      std::shared_ptr<StringInterner> interner)
{
    SLEUTH_ASSERT(interner != nullptr,
                  "ColumnarTrace::decode requires an interner");
    trace_id_ = r.str();
    root_ = static_cast<int>(r.i64());
    interner_ = std::move(interner);
    return cols_.decode(r) && r.ok();
}

size_t
ColumnarTrace::memoryBytes() const
{
    size_t bytes = sizeof(*this) - sizeof(SpanColumns);
    bytes += cols_.memoryBytes();
    if (trace_id_.capacity() > 15)
        bytes += trace_id_.capacity() + 1;
    return bytes;
}

namespace {
size_t
strHeapBytes(const std::string &s)
{
    return s.capacity() > 15 ? s.capacity() + 1 : 0;
}
} // namespace

size_t
approxTraceMemoryBytes(const Trace &t)
{
    size_t bytes = sizeof(Trace) + strHeapBytes(t.traceId);
    bytes += t.spans.capacity() * sizeof(Span);
    for (const Span &s : t.spans) {
        bytes += strHeapBytes(s.spanId) + strHeapBytes(s.parentSpanId) +
                 strHeapBytes(s.service) + strHeapBytes(s.name) +
                 strHeapBytes(s.container) + strHeapBytes(s.pod) +
                 strHeapBytes(s.node);
    }
    return bytes;
}

} // namespace sleuth::trace
