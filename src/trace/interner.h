#pragma once

/**
 * @file
 * String interning for span identity and resource attributes.
 *
 * Sleuth traces draw service/operation/container/pod/node names from a
 * small vocabulary (hundreds of distinct strings across millions of
 * spans), so the columnar span layout (columnar.h) stores u32 ids and
 * shares one StringInterner per TraceStore / SpanAssembler. Ids are
 * dense and stable: the n-th distinct string ever interned gets id n-1,
 * and an id never changes or is reused for the interner's lifetime —
 * ROADMAP item 3 (encoding caches keyed by interned ids) depends on
 * that stability.
 *
 * Thread safety: intern/find/name/size may be called concurrently from
 * any number of threads (shared_mutex; lookups take the shared lock).
 */

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sleuth::trace {

class StringInterner
{
  public:
    StringInterner() = default;
    StringInterner(const StringInterner &) = delete;
    StringInterner &operator=(const StringInterner &) = delete;

    /** Id of `s`, interning it first if unseen. */
    uint32_t intern(std::string_view s);

    /** Id of `s` if already interned; does not insert. */
    std::optional<uint32_t> find(std::string_view s) const;

    /**
     * The string behind an id. The reference stays valid for the
     * interner's lifetime (strings live in a deque and are never
     * erased).
     */
    const std::string &name(uint32_t id) const;

    /** Number of distinct strings interned so far. */
    size_t size() const;

    /**
     * Copies of the strings with id >= from, in id order. The durable
     * layer serializes the vocabulary with this: a snapshot dumps
     * namesFrom(0) and a WAL commit dumps namesFrom(mark) for the
     * strings interned since the last commit. Re-interning the dump in
     * order on an interner of size `from` reproduces the exact ids,
     * which keeps raw u32 column encodings valid across recovery.
     */
    std::vector<std::string> namesFrom(size_t from) const;

    /** Estimated resident bytes (strings + hash index). */
    size_t memoryBytes() const;

  private:
    struct SvHash
    {
        using is_transparent = void;
        size_t operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct SvEq
    {
        using is_transparent = void;
        bool operator()(std::string_view a, std::string_view b) const
        {
            return a == b;
        }
    };

    mutable std::shared_mutex mu_;
    /** Owns the string bytes; deque keeps references stable. */
    std::deque<std::string> names_;
    /** Views into names_ -> id (no second copy of the bytes). */
    std::unordered_map<std::string_view, uint32_t, SvHash, SvEq> ids_;
};

} // namespace sleuth::trace
