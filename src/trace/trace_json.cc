#include "trace_json.h"

namespace sleuth::trace {

util::Json
toJson(const Trace &trace)
{
    util::Json doc = util::Json::object();
    doc.set("traceId", trace.traceId);
    util::Json spans = util::Json::array();
    for (const Span &s : trace.spans) {
        util::Json j = util::Json::object();
        j.set("spanId", s.spanId);
        j.set("parentSpanId", s.parentSpanId);
        j.set("service", s.service);
        j.set("name", s.name);
        j.set("kind", toString(s.kind));
        j.set("startUs", s.startUs);
        j.set("endUs", s.endUs);
        j.set("status", toString(s.status));
        j.set("container", s.container);
        j.set("pod", s.pod);
        j.set("node", s.node);
        spans.push(std::move(j));
    }
    doc.set("spans", std::move(spans));
    return doc;
}

Trace
traceFromJson(const util::Json &doc)
{
    Trace t;
    t.traceId = doc.at("traceId").asString();
    for (const util::Json &j : doc.at("spans").asArray()) {
        Span s;
        s.spanId = j.at("spanId").asString();
        s.parentSpanId = j.at("parentSpanId").asString();
        s.service = j.at("service").asString();
        s.name = j.at("name").asString();
        s.kind = spanKindFromString(j.at("kind").asString());
        s.startUs = j.at("startUs").asInt();
        s.endUs = j.at("endUs").asInt();
        s.status = statusCodeFromString(j.at("status").asString());
        if (j.has("container"))
            s.container = j.at("container").asString();
        if (j.has("pod"))
            s.pod = j.at("pod").asString();
        if (j.has("node"))
            s.node = j.at("node").asString();
        t.spans.push_back(std::move(s));
    }
    return t;
}

util::Json
toJson(const std::vector<Trace> &traces)
{
    util::Json arr = util::Json::array();
    for (const Trace &t : traces)
        arr.push(toJson(t));
    return arr;
}

std::vector<Trace>
tracesFromJson(const util::Json &doc)
{
    std::vector<Trace> out;
    for (const util::Json &j : doc.asArray())
        out.push_back(traceFromJson(j));
    return out;
}

} // namespace sleuth::trace
