#pragma once

/**
 * @file
 * Structure-of-arrays span storage (DESIGN.md §3.12).
 *
 * The row-oriented trace::Span carries seven heap std::strings per
 * span; at store scale that dominates memory and defeats hardware
 * prefetch in the hot loops. SpanColumns keeps one contiguous array
 * per field instead: u32 interned ids for the five vocabulary fields
 * (service/name/container/pod/node via StringInterner), u8 enums for
 * kind/status, i64 timestamps, and a shared char arena holding the
 * per-span unique strings (spanId/parentSpanId) referenced by
 * (offset,len) pairs.
 *
 * ColumnarTrace bundles the columns with a trace id and the interner
 * that owns the vocabulary; toTrace()/span(i) materialize rows back
 * into the legacy Span API for JSON, collector, and RCA code, and the
 * round trip is exact (same strings, same order).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/interner.h"
#include "trace/span.h"
#include "trace/trace.h"
#include "util/binary.h"

namespace sleuth::trace {

/** (offset, length) into SpanColumns' char arena. */
struct StrRef
{
    uint32_t off = 0;
    uint32_t len = 0;
};

/** Contiguous per-field arrays for a batch of spans. */
class SpanColumns
{
  public:
    /** Append one span, interning its vocabulary fields. */
    void append(const Span &s, StringInterner &interner);

    size_t size() const { return start_.size(); }
    bool empty() const { return start_.empty(); }

    std::string_view spanId(size_t i) const { return view(span_id_[i]); }
    std::string_view parentSpanId(size_t i) const
    {
        return view(parent_id_[i]);
    }
    uint32_t serviceId(size_t i) const { return service_[i]; }
    uint32_t nameId(size_t i) const { return name_[i]; }
    uint32_t containerId(size_t i) const { return container_[i]; }
    uint32_t podId(size_t i) const { return pod_[i]; }
    uint32_t nodeId(size_t i) const { return node_[i]; }
    SpanKind kind(size_t i) const
    {
        return static_cast<SpanKind>(kind_[i]);
    }
    StatusCode status(size_t i) const
    {
        return static_cast<StatusCode>(status_[i]);
    }
    int64_t startUs(size_t i) const { return start_[i]; }
    int64_t endUs(size_t i) const { return end_[i]; }
    int64_t durationUs(size_t i) const { return end_[i] - start_[i]; }
    bool hasError(size_t i) const
    {
        return status(i) == StatusCode::Error;
    }

    /** Materialize row i as a legacy Span (exact round trip). */
    Span materialize(size_t i, const StringInterner &interner) const;

    /** Raw column pointers for vectorized consumers. */
    const int64_t *startData() const { return start_.data(); }
    const int64_t *endData() const { return end_.data(); }
    const uint32_t *serviceData() const { return service_.data(); }
    const uint32_t *nameData() const { return name_.data(); }

    void clear();
    void shrinkToFit();

    /**
     * Raw-column dump for the durable store (DESIGN.md §3.15): the
     * arena plus every column as contiguous little-endian blocks.
     * Interned u32 ids are written as-is, so the encoding is only
     * meaningful against the same interner state (the durable layer
     * serializes the vocabulary alongside and re-interns in id order).
     */
    void encode(util::BinaryWriter &w) const;

    /** Inverse of encode(); false (and *this cleared) on short input. */
    bool decode(util::BinaryReader &r);

    /** Estimated resident bytes (excludes the shared interner). */
    size_t memoryBytes() const;

  private:
    std::string_view view(StrRef r) const
    {
        return std::string_view(arena_.data() + r.off, r.len);
    }
    StrRef arenaAdd(std::string_view s);

    std::string arena_;
    std::vector<StrRef> span_id_;
    std::vector<StrRef> parent_id_;
    std::vector<uint32_t> service_;
    std::vector<uint32_t> name_;
    std::vector<uint32_t> container_;
    std::vector<uint32_t> pod_;
    std::vector<uint32_t> node_;
    std::vector<uint8_t> kind_;
    std::vector<uint8_t> status_;
    std::vector<int64_t> start_;
    std::vector<int64_t> end_;
};

/** One trace encoded columnar, sharing an interner with its owner. */
class ColumnarTrace
{
  public:
    ColumnarTrace() = default;

    /** Encode a legacy trace (spans in the given order). */
    ColumnarTrace(const Trace &t,
                  std::shared_ptr<StringInterner> interner);

    const std::string &traceId() const { return trace_id_; }
    size_t spanCount() const { return cols_.size(); }
    const SpanColumns &columns() const { return cols_; }
    const StringInterner &interner() const { return *interner_; }
    const std::shared_ptr<StringInterner> &internerPtr() const
    {
        return interner_;
    }

    /** Materialize the full legacy trace (exact round trip). */
    Trace toTrace() const;

    /** Materialize one span. */
    Span span(size_t i) const
    {
        return cols_.materialize(i, *interner_);
    }

    /** Index of the first span with an empty parent id; -1 if none. */
    int rootIndex() const { return root_; }

    /** Root span start (0 when no root) — Record::startUs semantics. */
    int64_t rootStartUs() const
    {
        return root_ >= 0 ? cols_.startUs(static_cast<size_t>(root_))
                          : 0;
    }

    /** Root span duration (0 when no root) — Trace::rootDurationUs. */
    int64_t rootDurationUs() const
    {
        return root_ >= 0
                   ? cols_.durationUs(static_cast<size_t>(root_))
                   : 0;
    }

    /** True when the root span errored (false when no root). */
    bool rootError() const
    {
        return root_ >= 0 && cols_.hasError(static_cast<size_t>(root_));
    }

    /** True when any span errored — Trace::hasError semantics. */
    bool hasError() const;

    /** True when any span runs in the service with this interned id. */
    bool touchesService(uint32_t service_id) const;

    /** Columnar dump for the durable store (id + columns + root). */
    void encode(util::BinaryWriter &w) const;

    /**
     * Inverse of encode(), binding the result to `interner` (which
     * must hold the vocabulary the columns were encoded against).
     */
    bool decode(util::BinaryReader &r,
                std::shared_ptr<StringInterner> interner);

    /** Estimated resident bytes (excludes the shared interner). */
    size_t memoryBytes() const;

  private:
    std::string trace_id_;
    SpanColumns cols_;
    std::shared_ptr<StringInterner> interner_;
    int root_ = -1;
};

/**
 * Estimated resident bytes of a legacy row-oriented trace (SSO-aware).
 * Benchmarks report this next to ColumnarTrace::memoryBytes() as the
 * before/after `memory_bytes_per_span` comparison.
 */
size_t approxTraceMemoryBytes(const Trace &t);

} // namespace sleuth::trace
