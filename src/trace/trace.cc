#include "trace.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/logging.h"

namespace sleuth::trace {

int64_t
Trace::rootDurationUs() const
{
    for (const Span &s : spans)
        if (s.parentSpanId.empty())
            return s.durationUs();
    return 0;
}

bool
Trace::hasError() const
{
    return std::any_of(spans.begin(), spans.end(),
                       [](const Span &s) { return s.hasError(); });
}

bool
TraceGraph::tryBuild(const Trace &trace, TraceGraph *out, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    const size_t n = trace.spans.size();
    if (n == 0)
        return fail("trace has no spans");

    std::unordered_map<std::string, int> index;
    index.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const Span &s = trace.spans[i];
        if (s.spanId.empty())
            return fail("span with empty spanId");
        if (!index.emplace(s.spanId, static_cast<int>(i)).second)
            return fail("duplicate spanId '" + s.spanId + "'");
    }

    TraceGraph g;
    g.parent_.assign(n, -1);
    g.children_.assign(n, {});
    g.depth_.assign(n, 0);
    g.root_ = -1;
    for (size_t i = 0; i < n; ++i) {
        const Span &s = trace.spans[i];
        if (s.parentSpanId.empty()) {
            if (g.root_ >= 0)
                return fail("multiple root spans");
            g.root_ = static_cast<int>(i);
            continue;
        }
        auto it = index.find(s.parentSpanId);
        if (it == index.end())
            return fail("unresolved parentSpanId '" + s.parentSpanId + "'");
        if (it->second == static_cast<int>(i))
            return fail("span '" + s.spanId + "' is its own parent");
        g.parent_[i] = it->second;
        g.children_[static_cast<size_t>(it->second)].push_back(
            static_cast<int>(i));
    }
    if (g.root_ < 0)
        return fail("no root span");

    // Breadth-first walk from the root assigns depths and detects spans
    // disconnected from the root (which also covers parent cycles).
    std::vector<int> order;
    order.reserve(n);
    order.push_back(g.root_);
    g.depth_[static_cast<size_t>(g.root_)] = 1;
    for (size_t head = 0; head < order.size(); ++head) {
        int u = order[head];
        for (int v : g.children_[static_cast<size_t>(u)]) {
            g.depth_[static_cast<size_t>(v)] =
                g.depth_[static_cast<size_t>(u)] + 1;
            order.push_back(v);
        }
    }
    if (order.size() != n)
        return fail("spans unreachable from the root (cycle or orphan)");

    // Reversed BFS order places children before parents.
    g.bottom_up_.assign(order.rbegin(), order.rend());
    *out = std::move(g);
    if (error)
        error->clear();
    return true;
}

TraceGraph
TraceGraph::build(const Trace &trace)
{
    TraceGraph g;
    std::string error;
    if (!tryBuild(trace, &g, &error))
        util::fatal("malformed trace '", trace.traceId, "': ", error);
    return g;
}

int
TraceGraph::maxDepth() const
{
    int best = 0;
    for (int d : depth_)
        best = std::max(best, d);
    return best;
}

int
TraceGraph::maxOutDegree() const
{
    size_t best = 0;
    for (const auto &c : children_)
        best = std::max(best, c.size());
    return static_cast<int>(best);
}

ExclusiveMetrics
computeExclusive(const Trace &trace, const TraceGraph &graph)
{
    const size_t n = trace.spans.size();
    ExclusiveMetrics m;
    m.exclusiveUs.assign(n, 0);
    m.exclusiveError.assign(n, false);

    for (size_t i = 0; i < n; ++i) {
        const Span &s = trace.spans[i];
        const auto &kids = graph.children(static_cast<int>(i));

        // Exclusive duration: span interval minus the union of child
        // intervals (children clipped to the span's own interval).
        std::vector<std::pair<int64_t, int64_t>> ivs;
        ivs.reserve(kids.size());
        for (int c : kids) {
            const Span &k = trace.spans[static_cast<size_t>(c)];
            int64_t lo = std::max(k.startUs, s.startUs);
            int64_t hi = std::min(k.endUs, s.endUs);
            if (lo < hi)
                ivs.emplace_back(lo, hi);
        }
        std::sort(ivs.begin(), ivs.end());
        int64_t covered = 0;
        int64_t cursor = s.startUs;
        for (const auto &[lo, hi] : ivs) {
            int64_t from = std::max(lo, cursor);
            if (hi > from) {
                covered += hi - from;
                cursor = hi;
            }
        }
        m.exclusiveUs[i] = std::max<int64_t>(0, s.durationUs() - covered);

        // Exclusive error: the span errors while none of its children do.
        if (s.hasError()) {
            bool child_error = false;
            for (int c : kids)
                child_error |=
                    trace.spans[static_cast<size_t>(c)].hasError();
            m.exclusiveError[i] = !child_error;
        }
    }
    return m;
}

CorpusStats
summarize(const std::vector<Trace> &traces)
{
    CorpusStats st;
    std::set<std::string> services;
    std::set<std::pair<std::string, std::string>> operations;
    for (const Trace &t : traces) {
        TraceGraph g = TraceGraph::build(t);
        st.maxSpans = std::max(st.maxSpans, t.spans.size());
        st.maxDepth = std::max(st.maxDepth, g.maxDepth());
        st.maxOutDegree = std::max(st.maxOutDegree, g.maxOutDegree());
        for (const Span &s : t.spans) {
            services.insert(s.service);
            operations.emplace(s.service, s.name);
        }
    }
    st.services = services.size();
    st.operations = operations.size();
    return st;
}

} // namespace sleuth::trace
