#pragma once

/**
 * @file
 * Traces, the reconstructed RPC dependency graph, and the exclusive
 * duration / exclusive error computation of paper §3.2.2.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "trace/span.h"

namespace sleuth::trace {

/** A distributed trace: the spans of one end-to-end request. */
struct Trace
{
    /** Unique trace ID. */
    std::string traceId;
    /** All spans, in arbitrary order. */
    std::vector<Span> spans;

    /** End-to-end duration: the root span's duration (0 when empty). */
    int64_t rootDurationUs() const;

    /** True when any span carries an error status. */
    bool hasError() const;
};

/**
 * The RPC dependency graph of one trace, reconstructed from parent span
 * IDs. Indices refer into Trace::spans.
 */
class TraceGraph
{
  public:
    /**
     * Build the graph for a trace.
     *
     * Validates that the trace has exactly one root, that every
     * parentSpanId resolves, that span IDs are unique, and that the
     * parent relation is acyclic. fatal() on malformed input.
     */
    static TraceGraph build(const Trace &trace);

    /**
     * As build(), but returns false instead of dying on malformed input.
     *
     * @param error receives a description of the first defect
     */
    static bool tryBuild(const Trace &trace, TraceGraph *out,
                         std::string *error);

    /** Number of spans. */
    size_t size() const { return parent_.size(); }

    /** Index of the root span. */
    int root() const { return root_; }

    /** Parent index of a span; -1 for the root. */
    int parent(int i) const { return parent_[static_cast<size_t>(i)]; }

    /** Children indices of a span. */
    const std::vector<int> &
    children(int i) const
    {
        return children_[static_cast<size_t>(i)];
    }

    /**
     * Indices ordered bottom-up: every span appears after all of its
     * children. The natural order for propagating predictions from leaf
     * spans toward the root.
     */
    const std::vector<int> &bottomUpOrder() const { return bottom_up_; }

    /** Depth of a span (root depth is 1). */
    int depth(int i) const { return depth_[static_cast<size_t>(i)]; }

    /** Maximum depth over all spans. */
    int maxDepth() const;

    /** Maximum number of children of any span. */
    int maxOutDegree() const;

  private:
    std::vector<int> parent_;
    std::vector<std::vector<int>> children_;
    std::vector<int> bottom_up_;
    std::vector<int> depth_;
    int root_ = -1;
};

/** Per-span exclusive metrics (paper §3.2.2). */
struct ExclusiveMetrics
{
    /**
     * Exclusive duration per span: the total time during which the span
     * does not overlap any of its child spans.
     */
    std::vector<int64_t> exclusiveUs;
    /**
     * Exclusive error per span: the span has an error of its own rather
     * than one inherited from a child (i.e. it errors while no child
     * does).
     */
    std::vector<bool> exclusiveError;
};

/**
 * Compute exclusive durations and exclusive errors for every span.
 *
 * Child intervals are clipped to the parent interval before the overlap
 * union is subtracted, so malformed timestamps cannot produce negative
 * exclusive durations.
 */
ExclusiveMetrics computeExclusive(const Trace &trace,
                                  const TraceGraph &graph);

/** Summary statistics of a trace corpus (used for Table 1). */
struct CorpusStats
{
    size_t services = 0;     ///< number of distinct services
    size_t operations = 0;   ///< number of distinct (service, name) pairs
    size_t maxSpans = 0;     ///< spans in the largest trace
    int maxDepth = 0;        ///< deepest call path
    int maxOutDegree = 0;    ///< widest fanout of a single span
};

/** Scan a corpus of traces and summarize its shape. */
CorpusStats summarize(const std::vector<Trace> &traces);

} // namespace sleuth::trace
