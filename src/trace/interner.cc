#include "interner.h"

#include <mutex>

#include "util/logging.h"

namespace sleuth::trace {

uint32_t
StringInterner::intern(std::string_view s)
{
    {
        std::shared_lock lock(mu_);
        auto it = ids_.find(s);
        if (it != ids_.end())
            return it->second;
    }
    std::unique_lock lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end())
        return it->second;
    const uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(s);
    ids_.emplace(std::string_view(names_.back()), id);
    return id;
}

std::optional<uint32_t>
StringInterner::find(std::string_view s) const
{
    std::shared_lock lock(mu_);
    auto it = ids_.find(s);
    if (it == ids_.end())
        return std::nullopt;
    return it->second;
}

const std::string &
StringInterner::name(uint32_t id) const
{
    std::shared_lock lock(mu_);
    SLEUTH_ASSERT(id < names_.size(), "interner id out of range");
    return names_[id];
}

size_t
StringInterner::size() const
{
    std::shared_lock lock(mu_);
    return names_.size();
}

std::vector<std::string>
StringInterner::namesFrom(size_t from) const
{
    std::shared_lock lock(mu_);
    std::vector<std::string> out;
    if (from >= names_.size())
        return out;
    out.reserve(names_.size() - from);
    for (size_t i = from; i < names_.size(); ++i)
        out.push_back(names_[i]);
    return out;
}

size_t
StringInterner::memoryBytes() const
{
    std::shared_lock lock(mu_);
    size_t bytes = sizeof(*this);
    for (const std::string &s : names_) {
        bytes += sizeof(std::string);
        if (s.capacity() > 15) // libstdc++ SSO threshold
            bytes += s.capacity() + 1;
    }
    // Hash index: bucket array + one node per entry (estimate).
    bytes += ids_.bucket_count() * sizeof(void *);
    bytes += ids_.size() *
             (sizeof(std::string_view) + sizeof(uint32_t) + 2 * sizeof(void *));
    return bytes;
}

} // namespace sleuth::trace
