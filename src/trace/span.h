#pragma once

/**
 * @file
 * The span data model (OpenTelemetry-conformant subset).
 *
 * Sleuth deliberately consumes only the attributes required by the
 * OpenTelemetry tracing convention (paper §3.2.1): identity (service,
 * operation name, kind), timing (start, end), and status. Resource
 * attributes (container/pod/node) locate where the span ran so root-cause
 * services can be mapped to root-cause pods and nodes.
 */

#include <cstdint>
#include <string>

namespace sleuth::trace {

/** OpenTelemetry span kind. */
enum class SpanKind {
    Client,    ///< synchronous RPC caller side
    Server,    ///< synchronous RPC callee side
    Producer,  ///< asynchronous message publisher
    Consumer,  ///< asynchronous message subscriber
    Local,     ///< local function call
};

/** OpenTelemetry status code. */
enum class StatusCode {
    Unset,
    Ok,
    Error,
};

/** Render a span kind as its OpenTelemetry string. */
const char *toString(SpanKind kind);

/** Render a status code as its OpenTelemetry string. */
const char *toString(StatusCode code);

/** Parse a span kind string; fatal() on unknown input. */
SpanKind spanKindFromString(const std::string &s);

/** Parse a status code string; fatal() on unknown input. */
StatusCode statusCodeFromString(const std::string &s);

/** One operation within a trace. */
struct Span
{
    /** Unique ID of this span within the trace. */
    std::string spanId;
    /** ID of the parent span; empty for the root span. */
    std::string parentSpanId;
    /** Service in which the operation ran. */
    std::string service;
    /** Operation name. */
    std::string name;
    /** Role of this span in the RPC. */
    SpanKind kind = SpanKind::Server;
    /** Start timestamp in microseconds. */
    int64_t startUs = 0;
    /** End timestamp in microseconds. */
    int64_t endUs = 0;
    /** Completion status. */
    StatusCode status = StatusCode::Unset;
    /** Container instance that executed the span. */
    std::string container;
    /** Pod hosting the container. */
    std::string pod;
    /** Node hosting the pod. */
    std::string node;

    /** Wall-clock duration in microseconds. */
    int64_t durationUs() const { return endUs - startUs; }

    /** True when the span completed with an error. */
    bool hasError() const { return status == StatusCode::Error; }
};

} // namespace sleuth::trace
