#include "span.h"

#include "util/logging.h"

namespace sleuth::trace {

const char *
toString(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Client: return "client";
      case SpanKind::Server: return "server";
      case SpanKind::Producer: return "producer";
      case SpanKind::Consumer: return "consumer";
      case SpanKind::Local: return "local";
    }
    util::panic("invalid span kind");
}

const char *
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::Unset: return "unset";
      case StatusCode::Ok: return "ok";
      case StatusCode::Error: return "error";
    }
    util::panic("invalid status code");
}

SpanKind
spanKindFromString(const std::string &s)
{
    if (s == "client")
        return SpanKind::Client;
    if (s == "server")
        return SpanKind::Server;
    if (s == "producer")
        return SpanKind::Producer;
    if (s == "consumer")
        return SpanKind::Consumer;
    if (s == "local")
        return SpanKind::Local;
    util::fatal("unknown span kind '", s, "'");
}

StatusCode
statusCodeFromString(const std::string &s)
{
    if (s == "unset")
        return StatusCode::Unset;
    if (s == "ok")
        return StatusCode::Ok;
    if (s == "error")
        return StatusCode::Error;
    util::fatal("unknown status code '", s, "'");
}

} // namespace sleuth::trace
