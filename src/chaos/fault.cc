#include "fault.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace sleuth::chaos {

const char *
toString(FaultType t)
{
    switch (t) {
      case FaultType::CpuStress: return "cpu-stress";
      case FaultType::MemoryStress: return "memory-stress";
      case FaultType::DiskStress: return "disk-stress";
      case FaultType::NetworkDelay: return "network-delay";
      case FaultType::NetworkError: return "network-error";
    }
    util::panic("invalid fault type");
}

const char *
toString(FaultScope s)
{
    switch (s) {
      case FaultScope::Container: return "container";
      case FaultScope::Pod: return "pod";
      case FaultScope::Node: return "node";
    }
    util::panic("invalid fault scope");
}

namespace {

FaultType
randomFaultType(util::Rng &rng)
{
    switch (rng.uniformInt(0, 4)) {
      case 0: return FaultType::CpuStress;
      case 1: return FaultType::MemoryStress;
      case 2: return FaultType::DiskStress;
      case 3: return FaultType::NetworkDelay;
      default: return FaultType::NetworkError;
    }
}

FaultSpec
makeFault(FaultScope scope, const std::string &target,
          const ChaosParams &params, util::Rng &rng)
{
    FaultSpec f;
    f.type = randomFaultType(rng);
    f.scope = scope;
    f.target = target;
    f.latencyMultiplier =
        rng.uniform(params.minMultiplier, params.maxMultiplier);
    if (f.type == FaultType::NetworkError ||
        f.type == FaultType::DiskStress) {
        f.errorProb = rng.uniform(params.minErrorProb,
                                  params.maxErrorProb);
    }
    if (f.type == FaultType::NetworkError)
        f.latencyMultiplier = 1.0;  // pure error fault
    return f;
}

} // namespace

FaultPlan
planFaults(const std::vector<Instance> &instances,
           const ChaosParams &params, util::Rng &rng)
{
    FaultPlan plan;
    std::set<std::string> pods, nodes;
    for (const Instance &inst : instances) {
        pods.insert(inst.pod);
        nodes.insert(inst.node);
        if (rng.bernoulli(params.containerProb))
            plan.faults.push_back(makeFault(
                FaultScope::Container, inst.container, params, rng));
    }
    for (const std::string &p : pods)
        if (rng.bernoulli(params.podProb))
            plan.faults.push_back(
                makeFault(FaultScope::Pod, p, params, rng));
    for (const std::string &n : nodes)
        if (rng.bernoulli(params.nodeProb))
            plan.faults.push_back(
                makeFault(FaultScope::Node, n, params, rng));
    return plan;
}

FaultPlan
planFixedFaults(const std::vector<Instance> &instances, size_t count,
                FaultScope scope, const ChaosParams &params,
                util::Rng &rng)
{
    std::vector<std::string> targets;
    {
        std::set<std::string> uniq;
        for (const Instance &inst : instances) {
            switch (scope) {
              case FaultScope::Container:
                uniq.insert(inst.container);
                break;
              case FaultScope::Pod:
                uniq.insert(inst.pod);
                break;
              case FaultScope::Node:
                uniq.insert(inst.node);
                break;
            }
        }
        targets.assign(uniq.begin(), uniq.end());
    }
    SLEUTH_ASSERT(count <= targets.size(), "asked for ", count,
                  " faults but only ", targets.size(), " targets exist");
    rng.shuffle(targets);
    FaultPlan plan;
    for (size_t i = 0; i < count; ++i)
        plan.faults.push_back(
            makeFault(scope, targets[i], params, rng));
    return plan;
}

FaultIndex::FaultIndex(const FaultPlan &plan)
{
    for (const FaultSpec &f : plan.faults) {
        empty_ = false;
        switch (f.scope) {
          case FaultScope::Container:
            by_container_[f.target].push_back(f);
            break;
          case FaultScope::Pod:
            by_pod_[f.target].push_back(f);
            break;
          case FaultScope::Node:
            by_node_[f.target].push_back(f);
            break;
        }
    }
}

std::vector<const FaultSpec *>
FaultIndex::faultsOn(const Instance &inst) const
{
    std::vector<const FaultSpec *> out;
    auto collect = [&](const std::unordered_map<
                           std::string, std::vector<FaultSpec>> &map,
                       const std::string &key) {
        auto it = map.find(key);
        if (it == map.end())
            return;
        for (const FaultSpec &f : it->second)
            out.push_back(&f);
    };
    collect(by_container_, inst.container);
    collect(by_pod_, inst.pod);
    collect(by_node_, inst.node);
    return out;
}

const FaultPlan &
FaultSchedule::activeAt(int64_t t_us) const
{
    static const FaultPlan kNone;
    const FaultPlan *active = &kNone;
    for (const FaultPhase &phase : phases) {
        if (phase.startUs > t_us)
            break;
        active = &phase.plan;
    }
    return *active;
}

bool
FaultSchedule::empty() const
{
    for (const FaultPhase &phase : phases)
        if (!phase.plan.empty())
            return false;
    return true;
}

} // namespace sleuth::chaos
