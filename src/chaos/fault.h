#pragma once

/**
 * @file
 * Chaosblade-style fault injection (paper §6.1.4).
 *
 * Faults stress CPU, network, memory, or disk at container, pod, or
 * node scope. Whether each instance receives a fault is decided by
 * independent Bernoulli draws with small probabilities, mimicking
 * real-world failure incidence. The resulting FaultPlan is both the
 * input to the trace simulator and the ground truth for accuracy
 * evaluation.
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "synth/config.h"
#include "util/rng.h"

namespace sleuth::chaos {

/** What the fault stresses. */
enum class FaultType {
    CpuStress,      ///< inflates cpu kernels
    MemoryStress,   ///< inflates memory kernels
    DiskStress,     ///< inflates disk kernels, may fail I/O
    NetworkDelay,   ///< inflates RPC network hops
    NetworkError,   ///< drops/fails RPCs at the client side
};

/** Render a fault type. */
const char *toString(FaultType t);

/** Blast radius of a fault. */
enum class FaultScope { Container, Pod, Node };

/** Render a fault scope. */
const char *toString(FaultScope s);

/** A deployed instance (one container of one pod on one node). */
struct Instance
{
    int serviceId = 0;
    std::string container;
    std::string pod;
    std::string node;
};

/** One injected fault. */
struct FaultSpec
{
    FaultType type = FaultType::CpuStress;
    FaultScope scope = FaultScope::Container;
    /** Container, pod, or node name depending on scope. */
    std::string target;
    /** Latency multiplier applied to affected kernels/hops. */
    double latencyMultiplier = 1.0;
    /** Probability an affected span/call errors. */
    double errorProb = 0.0;
};

/** The set of active faults — the experiment's ground truth. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    /** True when no fault is active. */
    bool empty() const { return faults.empty(); }
};

/** Bernoulli incidence and severity knobs for fault planning. */
struct ChaosParams
{
    /** P(fault) per container. */
    double containerProb = 0.0;
    /** P(fault) per pod. */
    double podProb = 0.0;
    /** P(fault) per node. */
    double nodeProb = 0.0;
    /** Latency multiplier range for stress faults. */
    double minMultiplier = 5.0;
    double maxMultiplier = 20.0;
    /** Error probability range for error-prone faults. */
    double minErrorProb = 0.3;
    double maxErrorProb = 0.9;
};

/**
 * Decide faults for a deployment by independent Bernoulli draws per
 * instance/pod/node (paper §6.1.4). Fault types are drawn uniformly.
 */
FaultPlan planFaults(const std::vector<Instance> &instances,
                     const ChaosParams &params, util::Rng &rng);

/**
 * Plan exactly `count` faults on distinct uniformly chosen targets
 * (used by experiments that need a fixed number of root causes).
 */
FaultPlan planFixedFaults(const std::vector<Instance> &instances,
                          size_t count, FaultScope scope,
                          const ChaosParams &params, util::Rng &rng);

/**
 * A timed chaos schedule: phases of fault activity over event time,
 * e.g. healthy → faulty → healthy. Drives the online serving layer's
 * live load (sleuth_serviced, BENCH_online) where storms must start
 * and stop mid-run.
 */
struct FaultPhase
{
    /** Event time at which this phase becomes active (inclusive). */
    int64_t startUs = 0;
    FaultPlan plan;
};

/** Phases sorted by start time; before the first phase, no faults. */
struct FaultSchedule
{
    std::vector<FaultPhase> phases;

    /** Active plan at t: the latest phase with startUs <= t. */
    const FaultPlan &activeAt(int64_t t_us) const;

    /** True when no phase carries any fault. */
    bool empty() const;
};

/**
 * Fast lookup from instance coordinates to the faults affecting them.
 */
class FaultIndex
{
  public:
    /** Build an index over a plan. */
    explicit FaultIndex(const FaultPlan &plan);

    /** Faults affecting an instance (any scope matching). */
    std::vector<const FaultSpec *> faultsOn(const Instance &inst) const;

    /** True when the plan contains no faults. */
    bool empty() const { return empty_; }

  private:
    std::unordered_map<std::string, std::vector<FaultSpec>> by_container_;
    std::unordered_map<std::string, std::vector<FaultSpec>> by_pod_;
    std::unordered_map<std::string, std::vector<FaultSpec>> by_node_;
    bool empty_ = true;
};

} // namespace sleuth::chaos
