#include "dbscan.h"

#include <deque>

namespace sleuth::cluster {

std::vector<size_t>
ClusterResult::members(int cluster) const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == cluster)
            out.push_back(i);
    return out;
}

ClusterResult
dbscan(const distance::DistanceMatrix &dist, const DbscanParams &params)
{
    const size_t n = dist.size();
    ClusterResult res;
    res.labels.assign(n, -2);  // -2 = unvisited, -1 = noise

    auto neighbors = [&](size_t i) {
        std::vector<size_t> out;
        for (size_t j = 0; j < n; ++j)
            if (dist.at(i, j) <= params.eps)
                out.push_back(j);
        return out;
    };

    int next_cluster = 0;
    for (size_t i = 0; i < n; ++i) {
        if (res.labels[i] != -2)
            continue;
        std::vector<size_t> nb = neighbors(i);
        if (nb.size() < params.minPts) {
            res.labels[i] = -1;
            continue;
        }
        int c = next_cluster++;
        res.labels[i] = c;
        std::deque<size_t> frontier(nb.begin(), nb.end());
        while (!frontier.empty()) {
            size_t q = frontier.front();
            frontier.pop_front();
            if (res.labels[q] == -1)
                res.labels[q] = c;  // border point adopted
            if (res.labels[q] != -2)
                continue;
            res.labels[q] = c;
            std::vector<size_t> qn = neighbors(q);
            if (qn.size() >= params.minPts)
                for (size_t x : qn)
                    frontier.push_back(x);
        }
    }
    res.numClusters = next_cluster;
    return res;
}

ClusterResult
dbscan(size_t n, const DistanceFn &dist, const DbscanParams &params)
{
    return dbscan(distance::DistanceMatrix::compute(n, dist), params);
}

} // namespace sleuth::cluster
