#pragma once

/**
 * @file
 * HDBSCAN hierarchical density clustering (paper §3.3.2).
 *
 * The full pipeline: core distances -> mutual-reachability graph ->
 * minimum spanning tree -> single-linkage dendrogram -> condensed tree
 * (min_cluster_size) -> stability-based (excess-of-mass) cluster
 * selection with cluster_selection_epsilon, as in McInnes et al.
 */

#include "cluster/dbscan.h"
#include "distance/distance_matrix.h"

namespace sleuth::cluster {

/** HDBSCAN parameters (paper defaults: 10 / 5 / 1). */
struct HdbscanParams
{
    /** Smallest group of items considered a cluster. */
    size_t minClusterSize = 10;
    /** Neighborhood size for core-distance estimation. */
    size_t minSamples = 5;
    /**
     * Clusters splitting at a distance below this threshold are not
     * split further (0 disables the epsilon constraint).
     */
    double clusterSelectionEpsilon = 0.0;
};

/**
 * Run HDBSCAN over a precomputed pairwise distance matrix — the fast
 * path: every distance is read straight from the packed array.
 *
 * @param dist pairwise distances (defines the item count)
 * @param params algorithm parameters
 */
ClusterResult hdbscan(const distance::DistanceMatrix &dist,
                      const HdbscanParams &params);

/**
 * Run HDBSCAN on n items addressed through a distance oracle. Thin
 * adapter: materializes a DistanceMatrix (exactly n(n-1)/2 oracle
 * calls) and runs the matrix path.
 *
 * @param n item count
 * @param dist symmetric distance oracle
 * @param params algorithm parameters
 */
ClusterResult hdbscan(size_t n, const DistanceFn &dist,
                      const HdbscanParams &params);

} // namespace sleuth::cluster
