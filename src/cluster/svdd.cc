#include "svdd.h"

#include <cmath>

#include "nn/optim.h"
#include "util/stats.h"

namespace sleuth::cluster {

namespace {

nn::Tensor
rowsToTensor(const std::vector<std::vector<double>> &xs)
{
    SLEUTH_ASSERT(!xs.empty());
    size_t cols = xs[0].size();
    nn::Tensor t(xs.size(), cols);
    for (size_t i = 0; i < xs.size(); ++i) {
        SLEUTH_ASSERT(xs[i].size() == cols, "ragged input rows");
        for (size_t j = 0; j < cols; ++j)
            t.at(i, j) = xs[i][j];
    }
    return t;
}

} // namespace

DeepSvdd::DeepSvdd(size_t input_dim, size_t embed_dim, util::Rng &rng)
    : encoder_({input_dim, 2 * embed_dim, embed_dim},
               nn::Activation::Tanh, rng)
{
}

nn::Var
DeepSvdd::encode(const nn::Var &x) const
{
    return encoder_.forward(x);
}

double
DeepSvdd::train(const std::vector<std::vector<double>> &xs, int epochs,
                double lr)
{
    nn::Var input = nn::constant(rowsToTensor(xs));
    size_t embed_dim = encoder_.outFeatures();

    // Fix the hypersphere center at the mean initial embedding (the
    // Deep SVDD recipe; a trainable center admits the trivial collapse).
    nn::Tensor first = encode(input)->value();
    center_.assign(embed_dim, 0.0);
    for (size_t i = 0; i < first.rows(); ++i)
        for (size_t j = 0; j < embed_dim; ++j)
            center_[j] += first.at(i, j);
    for (double &c : center_)
        c /= static_cast<double>(first.rows());

    nn::Tensor center_row(1, embed_dim);
    for (size_t j = 0; j < embed_dim; ++j)
        center_row.at(0, j) = -center_[j];
    nn::Var neg_center = nn::constant(center_row);

    nn::Adam opt(encoder_.parameters(), lr);
    double objective = 0.0;
    for (int e = 0; e < epochs; ++e) {
        nn::Var diff = nn::addRow(encode(input), neg_center);
        nn::Var loss = nn::meanAll(nn::mul(diff, diff));
        nn::backward(loss);
        opt.step();
        objective = loss->value().item();
    }

    // Radius at the 95th percentile of training distances.
    std::vector<double> dists;
    dists.reserve(xs.size());
    for (const auto &x : xs)
        dists.push_back(std::sqrt(squaredDistanceToCenter(x)));
    radius_ = util::percentile(dists, 95.0);
    return objective;
}

std::vector<double>
DeepSvdd::embedVector(const std::vector<double> &x) const
{
    nn::Tensor t(1, x.size());
    for (size_t j = 0; j < x.size(); ++j)
        t.at(0, j) = x[j];
    nn::Tensor out = encode(nn::constant(t))->value();
    return out.data();
}

double
DeepSvdd::squaredDistanceToCenter(const std::vector<double> &x) const
{
    SLEUTH_ASSERT(!center_.empty(), "svdd not trained");
    std::vector<double> e = embedVector(x);
    double sq = 0.0;
    for (size_t j = 0; j < e.size(); ++j)
        sq += (e[j] - center_[j]) * (e[j] - center_[j]);
    return sq;
}

double
DeepSvdd::embeddingDistance(const std::vector<double> &a,
                            const std::vector<double> &b) const
{
    std::vector<double> ea = embedVector(a);
    std::vector<double> eb = embedVector(b);
    double sq = 0.0;
    for (size_t j = 0; j < ea.size(); ++j)
        sq += (ea[j] - eb[j]) * (ea[j] - eb[j]);
    return std::sqrt(sq);
}

namespace {

/** Geometric-median scan shared by the matrix and oracle overloads. */
template <typename DistAt>
std::vector<size_t>
selectRepresentativesImpl(const std::vector<int> &labels,
                          int num_clusters, DistAt &&dist)
{
    std::vector<size_t> reps;
    for (int c = 0; c < num_clusters; ++c) {
        std::vector<size_t> members;
        for (size_t i = 0; i < labels.size(); ++i)
            if (labels[i] == c)
                members.push_back(i);
        SLEUTH_ASSERT(!members.empty(), "empty cluster ", c);
        size_t best = members[0];
        double best_sum = std::numeric_limits<double>::infinity();
        for (size_t i : members) {
            double sum = 0.0;
            for (size_t j : members)
                if (i != j)
                    sum += dist(i, j);
            if (sum < best_sum) {
                best_sum = sum;
                best = i;
            }
        }
        reps.push_back(best);
    }
    return reps;
}

} // namespace

std::vector<size_t>
selectRepresentatives(const std::vector<int> &labels, int num_clusters,
                      const distance::DistanceMatrix &dist)
{
    return selectRepresentativesImpl(labels, num_clusters,
                                     [&dist](size_t i, size_t j) {
        return dist.at(i, j);
    });
}

std::vector<size_t>
selectRepresentatives(const std::vector<int> &labels, int num_clusters,
                      const std::function<double(size_t, size_t)> &dist)
{
    return selectRepresentativesImpl(labels, num_clusters, dist);
}

} // namespace sleuth::cluster
