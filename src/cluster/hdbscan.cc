#include "hdbscan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace sleuth::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMinDist = 1e-12;  // floor before inverting to lambda

/** Dendrogram node of the single-linkage hierarchy. */
struct DendroNode
{
    int left = -1;    ///< child id (leaf < n, internal >= n)
    int right = -1;
    double dist = 0;  ///< merge distance
    int size = 1;
};

/** Condensed-tree cluster. */
struct CondCluster
{
    int parent = -1;             ///< parent cluster id, -1 for root
    double birthLambda = 0.0;    ///< lambda at which this cluster formed
    double birthDist = kInf;     ///< distance at which it formed (1/lambda)
    std::vector<int> childClusters;
    std::vector<std::pair<int, double>> points;  ///< (point, exit lambda)
    double stability = 0.0;
    double score = 0.0;
    bool selected = false;
};

/** Union-find with path compression. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : root_(n)
    {
        std::iota(root_.begin(), root_.end(), 0);
    }

    int
    find(int x)
    {
        while (root_[static_cast<size_t>(x)] != x) {
            root_[static_cast<size_t>(x)] =
                root_[static_cast<size_t>(root_[static_cast<size_t>(x)])];
            x = root_[static_cast<size_t>(x)];
        }
        return x;
    }

    /** Attach both roots under a fresh id (the new dendrogram node). */
    void
    merge(int a, int b, int fresh)
    {
        if (static_cast<size_t>(fresh) >= root_.size())
            root_.resize(static_cast<size_t>(fresh) + 1);
        root_[static_cast<size_t>(fresh)] = fresh;
        root_[static_cast<size_t>(a)] = fresh;
        root_[static_cast<size_t>(b)] = fresh;
    }

  private:
    std::vector<int> root_;
};

/** All leaf points below a dendrogram node. */
void
collectLeaves(const std::vector<DendroNode> &dendro, int node, int n,
              std::vector<int> *out)
{
    if (node < n) {
        out->push_back(node);
        return;
    }
    std::vector<int> stack = {node};
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        if (cur < n) {
            out->push_back(cur);
            continue;
        }
        const DendroNode &d = dendro[static_cast<size_t>(cur - n)];
        stack.push_back(d.left);
        stack.push_back(d.right);
    }
}

int
nodeSize(const std::vector<DendroNode> &dendro, int node, int n)
{
    return node < n ? 1 : dendro[static_cast<size_t>(node - n)].size;
}

} // namespace

ClusterResult
hdbscan(const distance::DistanceMatrix &dist,
        const HdbscanParams &params)
{
    const size_t n = dist.size();
    ClusterResult res;
    res.labels.assign(n, -1);
    if (n == 0)
        return res;
    const size_t mcs = std::max<size_t>(2, params.minClusterSize);
    if (n < 2 || n < mcs)
        return res;  // nothing can form a cluster: all noise

    // --- Core distances straight off the memoized matrix. ---
    size_t k = std::max<size_t>(1, params.minSamples);
    std::vector<double> core(n, 0.0);
    {
        std::vector<double> row(n - 1);
        for (size_t i = 0; i < n; ++i) {
            size_t w = 0;
            for (size_t j = 0; j < n; ++j)
                if (j != i)
                    row[w++] = dist.at(i, j);
            size_t kk = std::min(k, w) - 1;
            std::nth_element(row.begin(),
                             row.begin() + static_cast<ptrdiff_t>(kk),
                             row.begin() + static_cast<ptrdiff_t>(w));
            core[i] = row[kk];
        }
    }
    auto mreach = [&](size_t i, size_t j) {
        return std::max({core[i], core[j], dist.at(i, j)});
    };

    // --- Prim MST over the mutual-reachability graph. ---
    std::vector<double> best(n, kInf);
    std::vector<int> from(n, -1);
    std::vector<bool> in_tree(n, false);
    best[0] = 0.0;
    struct Edge { int u, v; double w; };
    std::vector<Edge> mst;
    mst.reserve(n - 1);
    for (size_t step = 0; step < n; ++step) {
        size_t u = n;
        double bu = kInf;
        for (size_t i = 0; i < n; ++i)
            if (!in_tree[i] && best[i] < bu) {
                bu = best[i];
                u = i;
            }
        SLEUTH_ASSERT(u < n, "mst disconnect");
        in_tree[u] = true;
        if (from[u] >= 0)
            mst.push_back({from[u], static_cast<int>(u), best[u]});
        for (size_t vtx = 0; vtx < n; ++vtx) {
            if (in_tree[vtx])
                continue;
            double w = mreach(u, vtx);
            if (w < best[vtx]) {
                best[vtx] = w;
                from[vtx] = static_cast<int>(u);
            }
        }
    }
    std::sort(mst.begin(), mst.end(),
              [](const Edge &a, const Edge &b) { return a.w < b.w; });

    // --- Single-linkage dendrogram via union-find. ---
    std::vector<DendroNode> dendro;
    dendro.reserve(n - 1);
    UnionFind uf(2 * n - 1);
    int next_id = static_cast<int>(n);
    for (const Edge &e : mst) {
        int ra = uf.find(e.u);
        int rb = uf.find(e.v);
        SLEUTH_ASSERT(ra != rb, "mst edge within one component");
        DendroNode node;
        node.left = ra;
        node.right = rb;
        node.dist = e.w;
        node.size = nodeSize(dendro, ra, static_cast<int>(n)) +
                    nodeSize(dendro, rb, static_cast<int>(n));
        dendro.push_back(node);
        uf.merge(ra, rb, next_id);
        ++next_id;
    }
    const int root_node = next_id - 1;

    // --- Condense the hierarchy. ---
    std::vector<CondCluster> clusters;
    clusters.push_back(CondCluster{});  // root cluster 0
    clusters[0].birthLambda = 0.0;
    clusters[0].birthDist = kInf;

    const int in = static_cast<int>(n);

    // Walk (dendrogram node, condensed cluster) pairs top-down.
    std::vector<std::pair<int, int>> work = {{root_node, 0}};
    while (!work.empty()) {
        auto [node, cl] = work.back();
        work.pop_back();
        if (node < in) {
            // A bare point inherits the cluster until lambda = inf;
            // it never leaves by splitting.
            clusters[static_cast<size_t>(cl)].points.emplace_back(
                node, kInf);
            continue;
        }
        const DendroNode &dn = dendro[static_cast<size_t>(node - in)];
        double lambda = 1.0 / std::max(dn.dist, kMinDist);
        int ls = nodeSize(dendro, dn.left, in);
        int rs = nodeSize(dendro, dn.right, in);
        bool left_big = static_cast<size_t>(ls) >= mcs;
        bool right_big = static_cast<size_t>(rs) >= mcs;
        if (left_big && right_big) {
            // True split: two new clusters are born at this lambda.
            for (int child : {dn.left, dn.right}) {
                CondCluster c;
                c.parent = cl;
                c.birthLambda = lambda;
                c.birthDist = dn.dist;
                clusters.push_back(c);
                int id = static_cast<int>(clusters.size()) - 1;
                clusters[static_cast<size_t>(cl)].childClusters.push_back(
                    id);
                work.emplace_back(child, id);
            }
        } else if (!left_big && !right_big) {
            // Both sides dissolve: all points leave the cluster here.
            std::vector<int> pts;
            collectLeaves(dendro, dn.left, in, &pts);
            collectLeaves(dendro, dn.right, in, &pts);
            for (int p : pts)
                clusters[static_cast<size_t>(cl)].points.emplace_back(
                    p, lambda);
        } else {
            // The cluster survives through the big side; the small side
            // sheds its points at this lambda.
            int small = left_big ? dn.right : dn.left;
            int big = left_big ? dn.left : dn.right;
            std::vector<int> pts;
            collectLeaves(dendro, small, in, &pts);
            for (int p : pts)
                clusters[static_cast<size_t>(cl)].points.emplace_back(
                    p, lambda);
            work.emplace_back(big, cl);
        }
    }

    // --- Stability. ---
    for (CondCluster &c : clusters) {
        double s = 0.0;
        for (const auto &[p, lam] : c.points) {
            (void)p;
            double l = std::isinf(lam) ? 1.0 / kMinDist : lam;
            s += l - c.birthLambda;
        }
        // Children that survive past this cluster's life contribute the
        // span between birth lambdas for their whole mass.
        c.stability = s;
    }
    for (const CondCluster &c : clusters) {
        if (c.parent >= 0) {
            // Points that continued into child clusters still counted
            // toward the parent from the parent's birth to the split.
            // Account for them via the child's mass.
            size_t mass = 0;
            std::vector<int> stack = {
                static_cast<int>(&c - clusters.data())};
            while (!stack.empty()) {
                int id = stack.back();
                stack.pop_back();
                const CondCluster &cc =
                    clusters[static_cast<size_t>(id)];
                mass += cc.points.size();
                for (int ch : cc.childClusters)
                    stack.push_back(ch);
            }
            clusters[static_cast<size_t>(c.parent)].stability +=
                static_cast<double>(mass) *
                (c.birthLambda -
                 clusters[static_cast<size_t>(c.parent)].birthLambda);
        }
    }

    // --- Excess-of-mass selection (children processed before parents;
    // clusters were appended top-down so reverse order suffices). ---
    for (size_t idx = clusters.size(); idx-- > 0;) {
        CondCluster &c = clusters[idx];
        if (c.childClusters.empty()) {
            c.score = c.stability;
            c.selected = true;
            continue;
        }
        double child_sum = 0.0;
        for (int ch : c.childClusters)
            child_sum += clusters[static_cast<size_t>(ch)].score;
        if (c.stability > child_sum) {
            c.score = c.stability;
            c.selected = true;
        } else {
            c.score = child_sum;
            c.selected = false;
        }
    }
    // The root is never selected on its own (no single-cluster result).
    clusters[0].selected = false;

    // Deselect descendants of selected clusters (top-down sweep).
    for (size_t idx = 0; idx < clusters.size(); ++idx) {
        if (!clusters[idx].selected)
            continue;
        std::vector<int> stack(clusters[idx].childClusters);
        while (!stack.empty()) {
            int id = stack.back();
            stack.pop_back();
            CondCluster &cc = clusters[static_cast<size_t>(id)];
            cc.selected = false;
            for (int ch : cc.childClusters)
                stack.push_back(ch);
        }
    }

    // --- cluster_selection_epsilon: lift selections that split below
    // the epsilon distance up to the first ancestor at or above it. ---
    if (params.clusterSelectionEpsilon > 0.0) {
        std::vector<int> lifted;
        for (size_t idx = 0; idx < clusters.size(); ++idx) {
            if (!clusters[idx].selected)
                continue;
            int cur = static_cast<int>(idx);
            while (clusters[static_cast<size_t>(cur)].parent > 0 &&
                   clusters[static_cast<size_t>(cur)].birthDist <
                       params.clusterSelectionEpsilon) {
                cur = clusters[static_cast<size_t>(cur)].parent;
            }
            clusters[idx].selected = false;
            lifted.push_back(cur);
        }
        for (int id : lifted)
            if (id != 0)
                clusters[static_cast<size_t>(id)].selected = true;
        // Re-run the descendant deselection.
        for (size_t idx = 0; idx < clusters.size(); ++idx) {
            if (!clusters[idx].selected)
                continue;
            std::vector<int> stack(clusters[idx].childClusters);
            while (!stack.empty()) {
                int id = stack.back();
                stack.pop_back();
                CondCluster &cc = clusters[static_cast<size_t>(id)];
                cc.selected = false;
                for (int ch : cc.childClusters)
                    stack.push_back(ch);
            }
        }
    }

    // --- Label assignment: each point joins the nearest selected
    // ancestor of the cluster it fell out of. ---
    std::vector<int> final_label(clusters.size(), -1);
    int next_label = 0;
    for (size_t idx = 0; idx < clusters.size(); ++idx)
        if (clusters[idx].selected)
            final_label[idx] = next_label++;
    for (size_t idx = 0; idx < clusters.size(); ++idx) {
        const CondCluster &c = clusters[idx];
        int owner = -1;
        for (int cur = static_cast<int>(idx); cur >= 0;
             cur = clusters[static_cast<size_t>(cur)].parent) {
            if (clusters[static_cast<size_t>(cur)].selected) {
                owner = final_label[static_cast<size_t>(cur)];
                break;
            }
        }
        if (owner < 0)
            continue;
        for (const auto &[p, lam] : c.points) {
            (void)lam;
            res.labels[static_cast<size_t>(p)] = owner;
        }
    }
    res.numClusters = next_label;
    return res;
}

ClusterResult
hdbscan(size_t n, const DistanceFn &dist, const HdbscanParams &params)
{
    return hdbscan(distance::DistanceMatrix::compute(n, dist), params);
}

} // namespace sleuth::cluster
