#pragma once

/**
 * @file
 * DBSCAN density clustering over a pairwise distance callback.
 */

#include <cstddef>
#include <functional>
#include <vector>

#include "distance/distance_matrix.h"

namespace sleuth::cluster {

/** Pairwise distance oracle over item indices. */
using DistanceFn = std::function<double(size_t, size_t)>;

/** Result of a clustering run. Label -1 marks noise. */
struct ClusterResult
{
    /** Cluster label per item; -1 for noise. */
    std::vector<int> labels;
    /** Number of clusters found. */
    int numClusters = 0;

    /** Item indices of one cluster. */
    std::vector<size_t> members(int cluster) const;
};

/** DBSCAN parameters. */
struct DbscanParams
{
    double eps = 0.1;       ///< neighborhood radius
    size_t minPts = 5;      ///< neighbors (incl. self) to be a core point
};

/**
 * Run DBSCAN over a precomputed pairwise distance matrix — the fast
 * path: neighborhood queries scan the packed array, no oracle calls.
 *
 * @param dist pairwise distances (defines the item count)
 * @param params eps / minPts
 */
ClusterResult dbscan(const distance::DistanceMatrix &dist,
                     const DbscanParams &params);

/**
 * Run DBSCAN on n items addressed through a distance oracle. Thin
 * adapter: materializes a DistanceMatrix (exactly n(n-1)/2 oracle
 * calls) and runs the matrix path.
 *
 * @param n item count
 * @param dist symmetric distance oracle
 * @param params eps / minPts
 */
ClusterResult dbscan(size_t n, const DistanceFn &dist,
                     const DbscanParams &params);

} // namespace sleuth::cluster
