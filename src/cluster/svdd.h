#pragma once

/**
 * @file
 * Deep support vector data description (SVDD) over fixed-length vectors.
 *
 * This is the clustering-side substitute for DeepTraLog (Zhang et al.,
 * ICSE'22), which the paper uses as a baseline trace distance: a neural
 * encoder is trained so that embeddings of traces fall inside a minimum
 * hypersphere, and the Euclidean distance between embeddings serves as
 * the trace distance. The paper observes (and our benches reproduce)
 * that this objective pulls traces with different root causes toward the
 * same center, degrading clustering-based RCA.
 */

#include <vector>

#include "distance/distance_matrix.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace sleuth::cluster {

/** Deep SVDD model: an MLP encoder trained to contract around a center. */
class DeepSvdd
{
  public:
    /**
     * Build an encoder.
     *
     * @param input_dim input vector width
     * @param embed_dim embedding width
     * @param rng initialization randomness
     */
    DeepSvdd(size_t input_dim, size_t embed_dim, util::Rng &rng);

    /**
     * Train on a set of vectors: fixes the center to the mean initial
     * embedding, then minimizes the mean squared distance to it.
     *
     * @return final objective value
     */
    double train(const std::vector<std::vector<double>> &xs, int epochs,
                 double lr);

    /** Embed one vector. */
    std::vector<double> embedVector(const std::vector<double> &x) const;

    /** Squared distance of a vector's embedding to the learned center. */
    double squaredDistanceToCenter(const std::vector<double> &x) const;

    /** Euclidean distance between the embeddings of two vectors. */
    double embeddingDistance(const std::vector<double> &a,
                             const std::vector<double> &b) const;

    /** Hypersphere radius covering a quantile of the training set. */
    double radius() const { return radius_; }

  private:
    nn::Var encode(const nn::Var &x) const;

    nn::Mlp encoder_;
    std::vector<double> center_;
    double radius_ = 0.0;
};

/**
 * Pick each cluster's geometric-median representative: the member with
 * the minimum total distance to all other members (paper §3.3.2).
 * Fast path: the O(cluster²) scan reads the memoized matrix instead of
 * re-invoking a distance oracle per pair.
 *
 * @param labels cluster label per item (-1 = noise, ignored)
 * @param num_clusters number of clusters
 * @param dist precomputed pairwise distances
 * @return representative item index per cluster
 */
std::vector<size_t> selectRepresentatives(
    const std::vector<int> &labels, int num_clusters,
    const distance::DistanceMatrix &dist);

/**
 * As above, addressed through a distance oracle (kept for callers that
 * never materialize a matrix; each member pair costs one oracle call).
 */
std::vector<size_t> selectRepresentatives(
    const std::vector<int> &labels, int num_clusters,
    const std::function<double(size_t, size_t)> &dist);

} // namespace sleuth::cluster
