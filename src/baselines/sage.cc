#include "sage.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>

#include "baselines/op_stats.h"

namespace sleuth::baselines {

SageRca::SageRca(Config config)
    : config_(config), rng_(config.seed ^ 0x5a6eu)
{
}

std::array<double, 5>
SageRca::inputRow(double max_child_dur, double sum_child_dur,
                  double max_child_err, double excl_dur_scaled,
                  double excl_err)
{
    return {max_child_dur, sum_child_dur, max_child_err,
            excl_dur_scaled, excl_err};
}

void
SageRca::fit(const std::vector<trace::Trace> &corpus)
{
    SLEUTH_ASSERT(!corpus.empty());
    models_.clear();
    profile_ = core::NormalProfile();

    // --- Collect per-operation training rows. ---
    for (const trace::Trace &t : corpus) {
        profile_.add(t);
        trace::TraceGraph g = trace::TraceGraph::build(t);
        trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
        for (size_t i = 0; i < t.spans.size(); ++i) {
            const trace::Span &s = t.spans[i];
            double max_d = -5.0, sum_d = 0.0, max_e = 0.0;
            for (int c : g.children(static_cast<int>(i))) {
                const trace::Span &k =
                    t.spans[static_cast<size_t>(c)];
                double d = scale_.scaleUs(
                    static_cast<double>(k.durationUs()));
                max_d = std::max(max_d, d);
                sum_d += std::pow(10.0, d);  // sum in 10^scaled space
                max_e = std::max(max_e, k.hasError() ? 1.0 : 0.0);
            }
            double sum_scaled =
                sum_d > 0.0 ? std::log10(sum_d) : -5.0;
            NodeModel &model =
                models_[OperationStats::key(s.service, s.name,
                                            s.kind)];
            // The duration target is the residual over the structural
            // base (children sum + exclusive), which keeps the learned
            // model calibrated under counterfactual interventions.
            double excl_scaled = scale_.scaleUs(
                static_cast<double>(m.exclusiveUs[i]));
            double base = baseScaled(sum_d, excl_scaled);
            model.rows.push_back(
                {max_d, sum_scaled, max_e, excl_scaled,
                 m.exclusiveError[i] ? 1.0 : 0.0,
                 scale_.scaleUs(static_cast<double>(s.durationUs())) -
                     base,
                 s.hasError() ? 1.0 : 0.0});
        }
    }
    profile_.finalize();

    // --- Train one model per operation (this is what makes Sage's
    // cost scale with the application size). ---
    for (auto &[key, model] : models_) {
        (void)key;
        model.mlp = std::make_unique<nn::Mlp>(
            std::vector<size_t>{5, config_.hidden, 2},
            nn::Activation::Tanh, rng_);
        nn::Tensor x(model.rows.size(), 5);
        nn::Tensor td(model.rows.size(), 1);
        nn::Tensor te(model.rows.size(), 1);
        for (size_t r = 0; r < model.rows.size(); ++r) {
            for (size_t c = 0; c < 5; ++c)
                x.at(r, c) = model.rows[r][c];
            td.at(r, 0) = model.rows[r][5];
            te.at(r, 0) = model.rows[r][6];
        }
        nn::Var input = nn::constant(std::move(x));
        nn::Var target_d = nn::constant(std::move(td));
        nn::Var target_e = nn::constant(std::move(te));
        nn::Adam opt(model.mlp->parameters(), config_.learningRate);
        for (int e = 0; e < config_.epochs; ++e) {
            nn::Var out = model.mlp->forward(input);
            nn::Var pd = nn::sliceCols(out, 0, 1);
            nn::Var pe = nn::clamp(
                nn::sigmoid(nn::sliceCols(out, 1, 2)), 1e-6,
                1.0 - 1e-6);
            nn::Var diff = nn::sub(pd, target_d);
            nn::Var one_minus_t =
                nn::scale(nn::addScalar(target_e, -1.0), -1.0);
            nn::Var one_minus_p =
                nn::scale(nn::addScalar(pe, -1.0), -1.0);
            nn::Var bce = nn::scale(
                nn::meanAll(
                    nn::add(nn::mul(target_e, nn::logOp(pe)),
                            nn::mul(one_minus_t,
                                    nn::logOp(one_minus_p)))),
                -1.0);
            nn::Var loss =
                nn::add(nn::meanAll(nn::mul(diff, diff)), bce);
            nn::backward(loss);
            opt.step();
        }
        model.rows.clear();
        model.rows.shrink_to_fit();
    }
    fitted_ = true;
}

double
SageRca::baseScaled(double children_sum_pow10, double excl_scaled) const
{
    // Structural base: children-sum plus exclusive time, in scaled
    // (log10-standardized) space. children_sum_pow10 is the sum of
    // 10^scaled child durations (0 for leaves).
    double children_us = children_sum_pow10 > 0.0
        ? std::pow(10.0,
                   scale_.sigma * std::log10(children_sum_pow10) +
                       scale_.mu)
        : 0.0;
    double excl_us = scale_.unscale(excl_scaled);
    return scale_.scaleUs(children_us + excl_us);
}

std::pair<double, double>
SageRca::predict(const std::string &key,
                 const std::array<double, 5> &in) const
{
    double children_sum_pow10 =
        in[1] <= -4.9 ? 0.0 : std::pow(10.0, in[1]);
    double base = baseScaled(children_sum_pow10, in[3]);
    auto it = models_.find(key);
    if (it == models_.end() || !it->second.mlp) {
        // Unseen operation (e.g. after a service update): Sage has no
        // model for it — only the structural identity remains.
        return {base, std::max(in[2], in[4])};
    }
    nn::Tensor row(1, 5);
    for (size_t c = 0; c < 5; ++c)
        row.at(0, c) = in[c];
    nn::Tensor out =
        it->second.mlp->forward(nn::constant(std::move(row)))->value();
    double err = 1.0 / (1.0 + std::exp(-out.at(0, 1)));
    double correction = std::clamp(out.at(0, 0), -0.3, 0.3);
    return {base + correction, err};
}

size_t
SageRca::parameterCount() const
{
    size_t total = 0;
    for (const auto &[key, model] : models_) {
        (void)key;
        if (model.mlp)
            total += model.mlp->parameterCount();
    }
    return total;
}

std::vector<std::string>
SageRca::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    SLEUTH_ASSERT(fitted_, "sage not fitted");
    trace::TraceGraph g = trace::TraceGraph::build(anomaly);
    trace::ExclusiveMetrics m = trace::computeExclusive(anomaly, g);
    const size_t n = anomaly.spans.size();

    // Candidate ranking: excess exclusive duration + exclusive errors
    // (same scheme as Sleuth's counterfactual front end).
    double err_weight = static_cast<double>(std::max<int64_t>(
        slo_us, 1));
    std::map<std::string, double> score;
    for (size_t i = 0; i < n; ++i) {
        const trace::Span &s = anomaly.spans[i];
        double excess = std::max(
            0.0, static_cast<double>(m.exclusiveUs[i]) -
                     profile_.medianExclusiveUs(s.service, s.name,
                                                s.kind));
        score[s.service] +=
            excess + (m.exclusiveError[i] ? err_weight : 0.0);
    }
    std::vector<std::pair<std::string, double>> ranked(score.begin(),
                                                       score.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    while (!ranked.empty() && ranked.back().second <= 0.0)
        ranked.pop_back();
    if (ranked.empty())
        return {};

    auto propagate = [&](const std::set<std::string> &restored) {
        std::vector<double> dur_us(n, 0.0), err(n, 0.0);
        for (int node : g.bottomUpOrder()) {
            size_t i = static_cast<size_t>(node);
            const trace::Span &s = anomaly.spans[i];
            bool fix = restored.count(s.service) > 0;
            double excl = fix
                ? std::min(static_cast<double>(m.exclusiveUs[i]),
                           profile_.medianExclusiveUs(
                               s.service, s.name, s.kind))
                : static_cast<double>(m.exclusiveUs[i]);
            double excl_err =
                fix ? 0.0 : (m.exclusiveError[i] ? 1.0 : 0.0);
            double max_d = -5.0, sum_pow10 = 0.0, max_e = 0.0;
            for (int c : g.children(node)) {
                double dsc =
                    scale_.scaleUs(dur_us[static_cast<size_t>(c)]);
                max_d = std::max(max_d, dsc);
                sum_pow10 += std::pow(10.0, dsc);
                max_e =
                    std::max(max_e, err[static_cast<size_t>(c)]);
            }
            double sum_scaled =
                sum_pow10 > 0.0 ? std::log10(sum_pow10) : -5.0;
            auto [pd, pe] = predict(
                OperationStats::key(s.service, s.name, s.kind),
                inputRow(max_d, sum_scaled, max_e,
                         scale_.scaleUs(excl), excl_err));
            if (g.children(node).empty()) {
                // Leaves reduce to their exclusive state.
                dur_us[i] = excl;
                err[i] = excl_err;
            } else {
                dur_us[i] =
                    std::min(scale_.unscale(pd), 1e8);  // <= 100 s
                err[i] = std::max(pe, excl_err);
            }
        }
        size_t root = static_cast<size_t>(g.root());
        return std::make_pair(dur_us[root], err[root]);
    };

    // Bias-corrected counterfactual test (same scheme as Sleuth): the
    // model's reconstruction bias on this trace scales the SLO.
    auto [base_dur, base_err] = propagate({});
    double actual_root = static_cast<double>(
        std::max<int64_t>(anomaly.rootDurationUs(), 1));
    double bias = std::clamp(base_dur / actual_root, 0.05, 20.0);
    double adjusted_slo = static_cast<double>(std::max<int64_t>(
                              slo_us, 1)) *
                          bias * 1.15;

    std::set<std::string> restored;
    std::vector<std::string> out;
    size_t limit = std::min(config_.maxRootCauses, ranked.size());
    for (size_t k = 0; k < limit; ++k) {
        restored.insert(ranked[k].first);
        out.push_back(ranked[k].first);
        auto [root_dur, root_err] = propagate(restored);
        bool error_ok = root_err < config_.errorThreshold ||
                        root_err < 0.5 * base_err;
        if (root_dur <= adjusted_slo && error_ok)
            break;
    }
    return out;
}

} // namespace sleuth::baselines
