#pragma once

/**
 * @file
 * Realtime RCA baseline (Cai et al., IEEE Access'19; paper §6.1.2).
 *
 * Compares an anomalous trace against historical normal behavior:
 * spans outside the 95% confidence interval of their operation are
 * flagged, each flagged span's contribution to end-to-end latency
 * variance is estimated with a per-operation linear regression, and
 * the service with the most significant contribution is reported.
 */

#include <unordered_map>

#include "baselines/op_stats.h"
#include "baselines/rca_algorithm.h"

namespace sleuth::baselines {

/** Realtime trace-level RCA. */
class RealtimeRca : public RcaAlgorithm
{
  public:
    std::string name() const override { return "realtime-rca"; }
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;

  private:
    struct Regression
    {
        double meanX = 0.0;
        double beta = 0.0;  ///< slope of root duration on span duration
    };

    OperationStats stats_;
    std::unordered_map<std::string, Regression> regressions_;
};

} // namespace sleuth::baselines
