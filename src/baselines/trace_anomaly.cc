#include "trace_anomaly.h"

#include <algorithm>
#include <cmath>

namespace sleuth::baselines {

namespace {

// Slot value for call paths absent from a trace.
constexpr double kAbsent = -3.0;

} // namespace

TraceAnomalyRca::TraceAnomalyRca(Config config)
    : config_(config), rng_(config.seed ^ 0x7a0eu)
{
}

std::string
TraceAnomalyRca::pathKey(const trace::Trace &t,
                         const trace::TraceGraph &g, size_t i)
{
    // service/name/kind chain up to the root (capped at 4 hops).
    std::string key;
    int cur = static_cast<int>(i);
    for (int hop = 0; cur >= 0 && hop < 4;
         cur = g.parent(cur), ++hop) {
        const trace::Span &s = t.spans[static_cast<size_t>(cur)];
        key += s.service + "/" + s.name + "/" + toString(s.kind) + "|";
    }
    return key;
}

std::vector<double>
TraceAnomalyRca::encodeVector(const trace::Trace &t) const
{
    std::vector<double> v(config_.maxDims, kAbsent);
    trace::TraceGraph g = trace::TraceGraph::build(t);
    for (size_t i = 0; i < t.spans.size(); ++i) {
        auto it = paths_.find(pathKey(t, g, i));
        if (it == paths_.end())
            continue;  // unseen path: not representable
        v[it->second.dim] = scale_.scaleUs(
            static_cast<double>(t.spans[i].durationUs()));
    }
    return v;
}

void
TraceAnomalyRca::fit(const std::vector<trace::Trace> &corpus)
{
    SLEUTH_ASSERT(!corpus.empty());
    // --- Path vocabulary. ---
    paths_.clear();
    for (const trace::Trace &t : corpus) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        for (size_t i = 0; i < t.spans.size(); ++i) {
            std::string key = pathKey(t, g, i);
            auto it = paths_.find(key);
            if (it == paths_.end()) {
                PathInfo info;
                info.dim = paths_.size() % config_.maxDims;
                info.depth = g.depth(static_cast<int>(i));
                paths_.emplace(std::move(key), info);
            }
        }
    }

    // --- Train the VAE. ---
    const size_t dims = config_.maxDims;
    encoder_ = std::make_unique<nn::Mlp>(
        std::vector<size_t>{dims, config_.hidden, 2 * config_.latent},
        nn::Activation::Tanh, rng_);
    decoder_ = std::make_unique<nn::Mlp>(
        std::vector<size_t>{config_.latent, config_.hidden, dims},
        nn::Activation::Tanh, rng_);

    nn::Tensor data(corpus.size(), dims);
    for (size_t r = 0; r < corpus.size(); ++r) {
        std::vector<double> v = encodeVector(corpus[r]);
        for (size_t c = 0; c < dims; ++c)
            data.at(r, c) = v[c];
    }
    nn::Var x = nn::constant(data);

    std::vector<nn::Var> params = encoder_->parameters();
    for (const nn::Var &p : decoder_->parameters())
        params.push_back(p);
    nn::Adam opt(params, config_.learningRate);

    for (int e = 0; e < config_.epochs; ++e) {
        nn::Var enc = encoder_->forward(x);
        nn::Var mu = nn::sliceCols(enc, 0, config_.latent);
        nn::Var logvar = nn::clamp(
            nn::sliceCols(enc, config_.latent, 2 * config_.latent),
            -6.0, 6.0);
        // Reparameterization with fresh Gaussian noise per epoch.
        nn::Tensor eps(corpus.size(), config_.latent);
        for (double &v : eps.data())
            v = rng_.normal();
        nn::Var z = nn::add(
            mu, nn::mul(nn::expOp(nn::scale(logvar, 0.5)),
                        nn::constant(eps)));
        nn::Var recon = decoder_->forward(z);
        nn::Var diff = nn::sub(recon, x);
        nn::Var mse = nn::meanAll(nn::mul(diff, diff));
        // KL(q || N(0,1)) = -0.5 * (1 + logvar - mu^2 - e^logvar).
        nn::Var kl = nn::scale(
            nn::meanAll(nn::sub(
                nn::addScalar(logvar, 1.0),
                nn::add(nn::mul(mu, mu), nn::expOp(logvar)))),
            -0.5);
        nn::Var loss =
            nn::add(mse, nn::scale(kl, config_.klWeight));
        nn::backward(loss);
        opt.step();
    }

    // --- Per-dimension residual scale for the three-sigma rule. ---
    nn::Var enc = encoder_->forward(x);
    nn::Var mu = nn::sliceCols(enc, 0, config_.latent);
    nn::Tensor recon = decoder_->forward(mu)->value();
    residualStd_.assign(dims, 1e-9);
    std::vector<double> mean(dims, 0.0);
    for (size_t r = 0; r < corpus.size(); ++r)
        for (size_t c = 0; c < dims; ++c)
            mean[c] += recon.at(r, c) - data.at(r, c);
    for (double &m : mean)
        m /= static_cast<double>(corpus.size());
    for (size_t r = 0; r < corpus.size(); ++r)
        for (size_t c = 0; c < dims; ++c) {
            double d = recon.at(r, c) - data.at(r, c) - mean[c];
            residualStd_[c] += d * d;
        }
    for (double &s : residualStd_)
        s = std::sqrt(s / static_cast<double>(corpus.size())) + 1e-6;
}

std::vector<std::string>
TraceAnomalyRca::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    (void)slo_us;
    SLEUTH_ASSERT(encoder_, "trace-anomaly not fitted");
    std::vector<double> v = encodeVector(anomaly);
    nn::Tensor row(1, v.size());
    for (size_t c = 0; c < v.size(); ++c)
        row.at(0, c) = v[c];
    nn::Var enc = encoder_->forward(nn::constant(row));
    nn::Var mu = nn::sliceCols(enc, 0, config_.latent);
    nn::Tensor recon = decoder_->forward(mu)->value();

    // Anomalous dims by the three-sigma rule on residuals (one-sided:
    // the observed duration exceeds the reconstructed normal).
    std::vector<bool> anomalous(v.size(), false);
    for (size_t c = 0; c < v.size(); ++c)
        anomalous[c] = v[c] - recon.at(0, c) > 3.0 * residualStd_[c];

    // Root cause: deepest anomalous span on the longest anomalous
    // path; when the three-sigma rule flags nothing, fall back to the
    // span with the largest positive residual.
    trace::TraceGraph g = trace::TraceGraph::build(anomaly);
    int best = -1;
    int best_depth = 0;
    int fallback = -1;
    double fallback_resid = 0.0;
    for (size_t i = 0; i < anomaly.spans.size(); ++i) {
        auto it = paths_.find(pathKey(anomaly, g, i));
        if (it == paths_.end())
            continue;
        size_t dim = it->second.dim;
        double resid = v[dim] - recon.at(0, dim);
        if (resid > fallback_resid) {
            fallback_resid = resid;
            fallback = static_cast<int>(i);
        }
        if (!anomalous[dim])
            continue;
        int depth = g.depth(static_cast<int>(i));
        if (depth > best_depth) {
            best_depth = depth;
            best = static_cast<int>(i);
        }
    }
    if (best < 0)
        best = fallback;
    if (best < 0)
        return {};
    return {anomaly.spans[static_cast<size_t>(best)].service};
}

} // namespace sleuth::baselines
