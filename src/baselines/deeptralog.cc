#include "deeptralog.h"

#include <cmath>

namespace sleuth::baselines {

DeepTraLogDistance::DeepTraLogDistance(Config config)
    : config_(config), encoder_(config.embedDim),
      rng_(config.seed ^ 0xd77au)
{
}

std::vector<double>
DeepTraLogDistance::traceVector(const trace::Trace &trace)
{
    core::TraceBatch batch = encoder_.encode(trace);
    size_t dim = batch.featureDim();
    std::vector<double> pooled(dim, 0.0);
    for (size_t r = 0; r < batch.numNodes; ++r)
        for (size_t c = 0; c < dim; ++c)
            pooled[c] += batch.x.at(r, c);
    for (double &v : pooled)
        v /= static_cast<double>(std::max<size_t>(1, batch.numNodes));
    return pooled;
}

void
DeepTraLogDistance::fit(const std::vector<trace::Trace> &corpus)
{
    SLEUTH_ASSERT(!corpus.empty());
    std::vector<std::vector<double>> xs;
    xs.reserve(corpus.size());
    for (const trace::Trace &t : corpus)
        xs.push_back(traceVector(t));
    svdd_ = std::make_unique<cluster::DeepSvdd>(
        encoder_.featureDim(), config_.svddDim, rng_);
    svdd_->train(xs, config_.epochs, config_.learningRate);
}

double
DeepTraLogDistance::distance(const trace::Trace &a,
                             const trace::Trace &b)
{
    SLEUTH_ASSERT(svdd_, "deeptralog not fitted");
    return svdd_->embeddingDistance(traceVector(a), traceVector(b));
}

double
DeepTraLogDistance::distanceToCenter(const trace::Trace &t)
{
    SLEUTH_ASSERT(svdd_, "deeptralog not fitted");
    return std::sqrt(svdd_->squaredDistanceToCenter(traceVector(t)));
}

} // namespace sleuth::baselines
