#pragma once

/**
 * @file
 * Common interface of every trace RCA algorithm evaluated in the paper
 * (§6.1.2), so the benchmark harness can sweep algorithms uniformly.
 */

#include <string>
#include <vector>

#include "trace/trace.h"

namespace sleuth::baselines {

/** A root cause analysis algorithm. */
class RcaAlgorithm
{
  public:
    virtual ~RcaAlgorithm() = default;

    /** Human-readable algorithm name (table row label). */
    virtual std::string name() const = 0;

    /**
     * Learn normal behavior from a (mostly fault-free) corpus.
     * Unsupervised: no fault labels are available.
     */
    virtual void fit(const std::vector<trace::Trace> &corpus) = 0;

    /**
     * Locate the root-cause services of an anomalous trace.
     *
     * @param anomaly the SLO-violating trace
     * @param slo_us the trace's latency SLO
     * @return predicted root-cause service set
     */
    virtual std::vector<std::string>
    locate(const trace::Trace &anomaly, int64_t slo_us) = 0;
};

} // namespace sleuth::baselines
