#include "simple_rules.h"

#include <algorithm>
#include <map>
#include <set>

namespace sleuth::baselines {

std::vector<std::string>
errorRootServices(const trace::Trace &trace)
{
    trace::TraceGraph graph = trace::TraceGraph::build(trace);
    trace::ExclusiveMetrics m = trace::computeExclusive(trace, graph);
    std::set<std::string> out;
    // DFS from the root following error spans; spans with an error of
    // their own (no erroring child) are the origins.
    std::vector<int> stack = {graph.root()};
    while (!stack.empty()) {
        int i = stack.back();
        stack.pop_back();
        if (!trace.spans[static_cast<size_t>(i)].hasError())
            continue;
        if (m.exclusiveError[static_cast<size_t>(i)])
            out.insert(trace.spans[static_cast<size_t>(i)].service);
        for (int c : graph.children(i))
            stack.push_back(c);
    }
    return {out.begin(), out.end()};
}

std::string
NSigmaRule::name() const
{
    return "n-sigma";
}

void
NSigmaRule::fit(const std::vector<trace::Trace> &corpus)
{
    stats_ = OperationStats();
    for (const trace::Trace &t : corpus)
        stats_.add(t);
    stats_.finalize();
}

std::vector<std::string>
NSigmaRule::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    (void)slo_us;
    if (anomaly.hasError()) {
        std::vector<std::string> err = errorRootServices(anomaly);
        if (!err.empty())
            return err;
    }
    trace::TraceGraph graph = trace::TraceGraph::build(anomaly);
    trace::ExclusiveMetrics m = trace::computeExclusive(anomaly, graph);
    std::set<std::string> out;
    for (size_t i = 0; i < anomaly.spans.size(); ++i) {
        const trace::Span &s = anomaly.spans[i];
        const OpSummary &st = stats_.get(s.service, s.name, s.kind);
        if (static_cast<double>(m.exclusiveUs[i]) >
            st.mean + n_ * st.stddev)
            out.insert(s.service);
    }
    return {out.begin(), out.end()};
}

void
MaxDurationRca::fit(const std::vector<trace::Trace> &corpus)
{
    (void)corpus;  // purely structural: nothing to learn
}

std::vector<std::string>
MaxDurationRca::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    (void)slo_us;
    if (anomaly.hasError()) {
        std::vector<std::string> err = errorRootServices(anomaly);
        if (!err.empty())
            return err;
    }
    trace::TraceGraph graph = trace::TraceGraph::build(anomaly);
    trace::ExclusiveMetrics m = trace::computeExclusive(anomaly, graph);
    std::map<std::string, int64_t> per_service;
    for (size_t i = 0; i < anomaly.spans.size(); ++i)
        per_service[anomaly.spans[i].service] += m.exclusiveUs[i];
    if (per_service.empty())
        return {};
    auto best = std::max_element(
        per_service.begin(), per_service.end(),
        [](const auto &a, const auto &b) { return a.second < b.second; });
    return {best->first};
}

void
ThresholdRca::fit(const std::vector<trace::Trace> &corpus)
{
    stats_ = OperationStats();
    for (const trace::Trace &t : corpus)
        stats_.add(t);
    stats_.finalize();
}

std::vector<std::string>
ThresholdRca::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    (void)slo_us;
    if (anomaly.hasError()) {
        std::vector<std::string> err = errorRootServices(anomaly);
        if (!err.empty())
            return err;
    }
    trace::TraceGraph graph = trace::TraceGraph::build(anomaly);
    trace::ExclusiveMetrics m = trace::computeExclusive(anomaly, graph);
    std::set<std::string> out;
    for (size_t i = 0; i < anomaly.spans.size(); ++i) {
        const trace::Span &s = anomaly.spans[i];
        const OpSummary &st = stats_.get(s.service, s.name, s.kind);
        double threshold = pct_ >= 99.0   ? st.p99
                           : pct_ >= 95.0 ? st.p95
                           : pct_ >= 90.0 ? st.p90
                                          : st.p50;
        if (static_cast<double>(m.exclusiveUs[i]) > threshold)
            out.insert(s.service);
    }
    return {out.begin(), out.end()};
}

} // namespace sleuth::baselines
