#include "realtime_rca.h"

#include <algorithm>
#include <map>

namespace sleuth::baselines {

void
RealtimeRca::fit(const std::vector<trace::Trace> &corpus)
{
    stats_ = OperationStats();
    regressions_.clear();

    // Per-operation samples of (exclusive duration, root duration).
    std::unordered_map<std::string,
                       std::vector<std::pair<double, double>>> samples;
    for (const trace::Trace &t : corpus) {
        stats_.add(t);
        trace::TraceGraph g = trace::TraceGraph::build(t);
        trace::ExclusiveMetrics m = trace::computeExclusive(t, g);
        double root = static_cast<double>(t.rootDurationUs());
        for (size_t i = 0; i < t.spans.size(); ++i) {
            const trace::Span &s = t.spans[i];
            samples[OperationStats::key(s.service, s.name, s.kind)]
                .emplace_back(static_cast<double>(m.exclusiveUs[i]),
                              root);
        }
    }
    stats_.finalize();

    for (const auto &[key, xs] : samples) {
        Regression reg;
        double mx = 0, my = 0;
        for (const auto &[x, y] : xs) {
            mx += x;
            my += y;
        }
        mx /= static_cast<double>(xs.size());
        my /= static_cast<double>(xs.size());
        double cov = 0, var = 0;
        for (const auto &[x, y] : xs) {
            cov += (x - mx) * (y - my);
            var += (x - mx) * (x - mx);
        }
        reg.meanX = mx;
        reg.beta = var > 1e-9 ? cov / var : 0.0;
        regressions_.emplace(key, reg);
    }
}

std::vector<std::string>
RealtimeRca::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    (void)slo_us;
    trace::TraceGraph g = trace::TraceGraph::build(anomaly);
    trace::ExclusiveMetrics m = trace::computeExclusive(anomaly, g);

    std::map<std::string, double> contribution;
    for (size_t i = 0; i < anomaly.spans.size(); ++i) {
        const trace::Span &s = anomaly.spans[i];
        const OpSummary &st = stats_.get(s.service, s.name, s.kind);
        double x = static_cast<double>(m.exclusiveUs[i]);
        // 95% CI of the operation's exclusive duration.
        double hi = st.mean + 1.96 * st.stddev;
        bool flagged = x > hi ||
                       (s.hasError() &&
                        m.exclusiveError[i]);
        if (!flagged)
            continue;
        auto it = regressions_.find(
            OperationStats::key(s.service, s.name, s.kind));
        double beta = it == regressions_.end() ? 1.0 : it->second.beta;
        double mean_x =
            it == regressions_.end() ? st.mean : it->second.meanX;
        contribution[s.service] +=
            std::max(0.0, beta * (x - mean_x)) +
            (m.exclusiveError[i] ? 1e6 : 0.0);
    }
    if (contribution.empty())
        return {};
    auto best = std::max_element(
        contribution.begin(), contribution.end(),
        [](const auto &a, const auto &b) { return a.second < b.second; });
    return {best->first};
}

} // namespace sleuth::baselines
