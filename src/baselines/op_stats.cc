#include "op_stats.h"

#include "util/logging.h"
#include "util/stats.h"

namespace sleuth::baselines {

std::string
OperationStats::key(const std::string &service, const std::string &name,
                    trace::SpanKind kind)
{
    return service + "\x1f" + name + "\x1f" + toString(kind);
}

void
OperationStats::add(const trace::Trace &trace)
{
    SLEUTH_ASSERT(!finalized_, "stats already finalized");
    trace::TraceGraph graph = trace::TraceGraph::build(trace);
    trace::ExclusiveMetrics m = trace::computeExclusive(trace, graph);
    for (size_t i = 0; i < trace.spans.size(); ++i) {
        const trace::Span &s = trace.spans[i];
        samples_[key(s.service, s.name, s.kind)].push_back(
            static_cast<double>(m.exclusiveUs[i]));
    }
}

void
OperationStats::finalize()
{
    SLEUTH_ASSERT(!finalized_, "stats already finalized");
    std::vector<double> pooled;
    for (auto &[k, xs] : samples_) {
        OpSummary s;
        s.mean = util::mean(xs);
        s.stddev = util::stddev(xs);
        s.p50 = util::percentile(xs, 50.0);
        s.p90 = util::percentile(xs, 90.0);
        s.p95 = util::percentile(xs, 95.0);
        s.p99 = util::percentile(xs, 99.0);
        s.count = xs.size();
        summaries_.emplace(k, s);
        pooled.insert(pooled.end(), xs.begin(), xs.end());
        xs.clear();
        xs.shrink_to_fit();
    }
    if (!pooled.empty()) {
        global_.mean = util::mean(pooled);
        global_.stddev = util::stddev(pooled);
        global_.p50 = util::percentile(pooled, 50.0);
        global_.p90 = util::percentile(pooled, 90.0);
        global_.p95 = util::percentile(pooled, 95.0);
        global_.p99 = util::percentile(pooled, 99.0);
        global_.count = pooled.size();
    }
    samples_.clear();
    finalized_ = true;
}

const OpSummary &
OperationStats::get(const std::string &service, const std::string &name,
                    trace::SpanKind kind) const
{
    SLEUTH_ASSERT(finalized_, "stats not finalized");
    auto it = summaries_.find(key(service, name, kind));
    return it == summaries_.end() ? global_ : it->second;
}

} // namespace sleuth::baselines
