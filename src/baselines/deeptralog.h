#pragma once

/**
 * @file
 * DeepTraLog baseline (Zhang et al., ICSE'22; paper §6.1.2 / §6.2).
 *
 * DeepTraLog learns a graph embedding of each trace with a gated GNN
 * and encloses normal embeddings in a minimum hypersphere (deep SVDD);
 * the Euclidean distance between two traces' embeddings acts as a
 * trace distance. The paper shows that clustering anomalous traces
 * with this distance collapses traces with *different* root causes
 * into one cluster (they all sit near the hypersphere center), hurting
 * clustered RCA — our benches reproduce that comparison against the
 * weighted-Jaccard metric.
 */

#include "cluster/svdd.h"
#include "core/features.h"

namespace sleuth::baselines {

/** Trace distance via deep-SVDD graph embeddings. */
class DeepTraLogDistance
{
  public:
    /** Training knobs. */
    struct Config
    {
        size_t embedDim = 8;   ///< feature encoder embedding width
        size_t svddDim = 4;    ///< hypersphere embedding width
        int epochs = 120;
        double learningRate = 1e-2;
        uint64_t seed = 19;
    };

    explicit DeepTraLogDistance(Config config);

    /** Construct with default configuration. */
    DeepTraLogDistance() : DeepTraLogDistance(Config()) {}

    /** Train the encoder + hypersphere on a (mostly normal) corpus. */
    void fit(const std::vector<trace::Trace> &corpus);

    /**
     * Pooled input vector of a trace: mean over span rows of
     * [semantic embedding | scaled duration | error].
     */
    std::vector<double> traceVector(const trace::Trace &trace);

    /** Euclidean distance in the SVDD embedding space. */
    double distance(const trace::Trace &a, const trace::Trace &b);

    /** Distance of a trace's embedding to the hypersphere center. */
    double distanceToCenter(const trace::Trace &t);

  private:
    Config config_;
    core::FeatureEncoder encoder_;
    std::unique_ptr<cluster::DeepSvdd> svdd_;
    util::Rng rng_;
};

} // namespace sleuth::baselines
