#pragma once

/**
 * @file
 * Per-operation statistics over exclusive durations — the shared
 * substrate of the rule-based baselines (n-sigma, thresholds, 95% CI).
 */

#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace sleuth::baselines {

/** Summary of one operation's exclusive-duration distribution. */
struct OpSummary
{
    double mean = 0.0;
    double stddev = 0.0;
    /** Percentile ladder: p50, p90, p95, p99. */
    double p50 = 0.0, p90 = 0.0, p95 = 0.0, p99 = 0.0;
    size_t count = 0;
};

/** Aggregates exclusive-duration statistics per (service, name, kind). */
class OperationStats
{
  public:
    /** Fold one trace into the statistics. */
    void add(const trace::Trace &trace);

    /** Finalize summaries; call once after all add()s. */
    void finalize();

    /**
     * Summary for an operation; unseen operations return the global
     * (pooled) summary.
     */
    const OpSummary &get(const std::string &service,
                         const std::string &name,
                         trace::SpanKind kind) const;

    /** Number of distinct operations. */
    size_t size() const { return summaries_.size(); }

    /** Stable key used internally (exposed for diagnostics). */
    static std::string key(const std::string &service,
                           const std::string &name,
                           trace::SpanKind kind);

  private:
    std::unordered_map<std::string, std::vector<double>> samples_;
    std::unordered_map<std::string, OpSummary> summaries_;
    OpSummary global_;
    bool finalized_ = false;
};

} // namespace sleuth::baselines
