#pragma once

/**
 * @file
 * Rule-based RCA baselines (paper §6.1.2 and the Fig. 1 motivation):
 *
 *  - NSigmaRule: a span is anomalous when its exclusive duration
 *    exceeds mean + n * stddev of its operation; root causes are the
 *    services owning anomalous spans (the "rule of thumb" whose
 *    accuracy collapses as the system scales — Fig. 1).
 *  - MaxDurationRca: the service with the highest aggregated exclusive
 *    duration for latency anomalies; exclusive-error spans found by
 *    DFS for error anomalies.
 *  - ThresholdRca: like MaxDuration, but flags every span whose
 *    exclusive duration exceeds a per-operation percentile threshold.
 */

#include "baselines/op_stats.h"
#include "baselines/rca_algorithm.h"

namespace sleuth::baselines {

/** The n-sigma rule of thumb. */
class NSigmaRule : public RcaAlgorithm
{
  public:
    /** @param n number of standard deviations (3 is the magic number) */
    explicit NSigmaRule(double n = 3.0) : n_(n) {}

    std::string name() const override;
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;

    /** Change n without re-fitting (used by the Fig. 1 sweep). */
    void setN(double n) { n_ = n; }

  private:
    double n_;
    OperationStats stats_;
};

/** Maximum-exclusive-duration heuristic. */
class MaxDurationRca : public RcaAlgorithm
{
  public:
    std::string name() const override { return "max-duration"; }
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;
};

/** Per-operation percentile-threshold heuristic. */
class ThresholdRca : public RcaAlgorithm
{
  public:
    /** @param pct percentile used as the anomaly threshold */
    explicit ThresholdRca(double pct = 99.0) : pct_(pct) {}

    std::string name() const override { return "threshold"; }
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;

  private:
    double pct_;
    OperationStats stats_;
};

/**
 * Shared error handling of the rule baselines: services of spans whose
 * error does not originate from a child (found by DFS over the RPC
 * dependency graph).
 */
std::vector<std::string> errorRootServices(const trace::Trace &trace);

} // namespace sleuth::baselines
