#pragma once

/**
 * @file
 * TraceAnomaly baseline (Liu et al., ISSRE'20; paper §6.1.2).
 *
 * Traces are encoded as fixed-length service-trace vectors (one slot
 * per distinct call path, valued with the scaled span duration), a
 * variational autoencoder learns the normal pattern, anomalous slots
 * are flagged with the three-sigma rule on reconstruction residuals,
 * and the root cause is read off the longest call path containing
 * anomalous spans.
 */

#include <unordered_map>

#include "baselines/rca_algorithm.h"
#include "core/features.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace sleuth::baselines {

/** TraceAnomaly: VAE + three-sigma localization. */
class TraceAnomalyRca : public RcaAlgorithm
{
  public:
    /** Training / architecture knobs. */
    struct Config
    {
        size_t maxDims = 256;   ///< vector width cap (paths fold over)
        size_t hidden = 32;
        size_t latent = 8;
        int epochs = 40;
        double learningRate = 5e-3;
        double klWeight = 1e-3;
        uint64_t seed = 13;
    };

    explicit TraceAnomalyRca(Config config);

    /** Construct with default configuration. */
    TraceAnomalyRca() : TraceAnomalyRca(Config()) {}

    std::string name() const override { return "trace-anomaly"; }
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;

  private:
    struct PathInfo
    {
        size_t dim = 0;   ///< vector slot
        int depth = 0;    ///< call depth of the path
    };

    /** Stable call-path key of a span. */
    static std::string pathKey(const trace::Trace &t,
                               const trace::TraceGraph &g, size_t i);

    std::vector<double> encodeVector(const trace::Trace &t) const;

    Config config_;
    core::DurationScale scale_;
    std::unordered_map<std::string, PathInfo> paths_;
    std::unique_ptr<nn::Mlp> encoder_;  // dims -> 2*latent (mu, logvar)
    std::unique_ptr<nn::Mlp> decoder_;  // latent -> dims
    std::vector<double> residualStd_;   // per-dim three-sigma basis
    util::Rng rng_;
};

} // namespace sleuth::baselines
