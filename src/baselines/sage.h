#pragma once

/**
 * @file
 * Sage baseline (Gan et al., ASPLOS'21; paper §6.1.2).
 *
 * Sage builds a causal Bayesian network from the RPC dependency graph
 * and trains a *separate* generative model per node (operation) to
 * produce counterfactuals. This faithfully reproduces the properties
 * the paper contrasts Sleuth against:
 *
 *  - the total model size grows linearly with the application (one
 *    network per operation), so training/inference time scales with
 *    the number of RPCs (Fig. 5);
 *  - operations unseen at training time have no model, so service
 *    updates and cross-application transfer degrade accuracy until a
 *    full retrain (Figs. 6-7).
 *
 * Per-operation model: a small MLP that predicts the span's duration
 * and error from its children's aggregated state plus its own
 * exclusive state. RCA uses the same counterfactual restoration loop
 * as Sleuth, but driven by the per-node models.
 */

#include <memory>
#include <unordered_map>

#include "baselines/rca_algorithm.h"
#include "core/features.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace sleuth::baselines {

/** Sage: per-node counterfactual generative models. */
class SageRca : public RcaAlgorithm
{
  public:
    /** Training / architecture knobs. */
    struct Config
    {
        size_t hidden = 8;
        int epochs = 60;
        double learningRate = 1e-2;
        size_t maxRootCauses = 5;
        double errorThreshold = 0.5;
        uint64_t seed = 17;
    };

    explicit SageRca(Config config);

    /** Construct with default configuration. */
    SageRca() : SageRca(Config()) {}

    std::string name() const override { return "sage"; }
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;

    /** Number of per-operation models (grows with the application). */
    size_t numModels() const { return models_.size(); }

    /** Total scalar parameter count across all per-node models. */
    size_t parameterCount() const;

  private:
    struct NodeModel
    {
        std::unique_ptr<nn::Mlp> mlp;  // 5 inputs -> hidden -> 2
        std::vector<std::array<double, 7>> rows;  // 5 in + 2 targets
    };

    /** Per-node feature row for span i given child predictions. */
    static std::array<double, 5>
    inputRow(double max_child_dur, double sum_child_dur,
             double max_child_err, double excl_dur_scaled,
             double excl_err);

    /** Structural duration base in scaled space. */
    double baseScaled(double children_sum_pow10,
                      double excl_scaled) const;

    /** Predict (durScaled, errProb) for an operation. */
    std::pair<double, double> predict(const std::string &key,
                                      const std::array<double, 5> &in)
        const;

    Config config_;
    core::DurationScale scale_;
    core::NormalProfile profile_;
    std::unordered_map<std::string, NodeModel> models_;
    util::Rng rng_;
    bool fitted_ = false;
};

} // namespace sleuth::baselines
