#pragma once

/**
 * @file
 * Trace feature engineering (paper §3.2): semantic-aware span encoding,
 * the global base-10-log duration transform, graph batch construction
 * for the GNN, and the per-operation normal profile used to phrase
 * counterfactual "restore to normal" interventions.
 */

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "embed/text_embedder.h"
#include "nn/tensor.h"
#include "trace/trace.h"

namespace sleuth::core {

/**
 * Global duration scaling constants (paper §3.2.2): durations are
 * base-10-log transformed, then standardized with a global mean of 4.0
 * and standard deviation 1.0 so one model applies to all datasets.
 */
struct DurationScale
{
    double mu = 4.0;
    double sigma = 1.0;

    /** Microseconds -> scaled feature. */
    double scaleUs(double us) const;

    /** Scaled feature -> microseconds. */
    double unscale(double scaled) const;
};

/**
 * Per-operation latency profile learned from (mostly) normal traffic;
 * supplies the "normal state" for counterfactual interventions: the
 * median exclusive duration of each (service, name, kind) operation.
 */
class NormalProfile
{
  public:
    /** Fold one trace into the profile. */
    void add(const trace::Trace &trace);

    /** Finalize medians; call once after all add()s. */
    void finalize();

    /**
     * Median exclusive duration of an operation in microseconds.
     * Falls back to the global median for unseen operations.
     */
    double medianExclusiveUs(const std::string &service,
                             const std::string &name,
                             trace::SpanKind kind) const;

    /** Median full duration of an operation in microseconds. */
    double medianDurationUs(const std::string &service,
                            const std::string &name,
                            trace::SpanKind kind) const;

    /** Number of distinct operations profiled. */
    size_t size() const { return stats_.size(); }

  private:
    struct OpStats
    {
        std::vector<double> exclusive;
        std::vector<double> duration;
        double medianExclusive = 0.0;
        double medianDuration = 0.0;
    };

    /** Transparent hash so lookups can pass a string_view over a
        reused buffer instead of allocating a key per span. */
    struct KeyHash
    {
        using is_transparent = void;
        size_t operator()(std::string_view s) const noexcept
        {
            return std::hash<std::string_view>{}(s);
        }
    };

    static std::string key(const std::string &service,
                           const std::string &name,
                           trace::SpanKind kind);

    std::unordered_map<std::string, OpStats, KeyHash, std::equal_to<>>
        stats_;
    double global_exclusive_ = 100.0;
    double global_duration_ = 100.0;
    bool finalized_ = false;
};

/**
 * A batch of traces encoded as one disjoint-union graph ready for the
 * GNN. Node features follow the paper's selection: the semantic
 * embedding of (service, name, kind) plus scaled duration and error
 * status; exclusive features swap in exclusive duration / error.
 */
struct TraceBatch
{
    /** Node features [embedding | scaled duration | error]. */
    nn::Tensor x;
    /** Exclusive node features [embedding | scaled excl dur | excl err]. */
    nn::Tensor xExcl;
    /** Edge child node index (one edge per non-root span). */
    std::vector<size_t> edgeChild;
    /** Edge parent node index. */
    std::vector<size_t> edgeParent;
    /** Node count. */
    size_t numNodes = 0;
    /** First node index of each trace in the batch. */
    std::vector<size_t> traceOffset;
    /** Root node index of each trace. */
    std::vector<size_t> traceRoot;

    /** Feature width (embedding dim + 2). */
    size_t featureDim() const { return x.cols(); }
};

/** Encodes traces into TraceBatches with a shared embedding cache. */
class FeatureEncoder
{
  public:
    /**
     * @param embed_dim semantic embedding width (the paper uses 768-d
     *        sentence-BERT; the hash embedder makes this configurable)
     * @param scale global duration scaling constants
     */
    explicit FeatureEncoder(size_t embed_dim = 16,
                            DurationScale scale = {});

    /** Encode a batch of traces into one disjoint-union graph. */
    TraceBatch encode(const std::vector<const trace::Trace *> &traces);

    /** Encode a single trace. */
    TraceBatch encode(const trace::Trace &trace);

    /** Width of the node feature vectors. */
    size_t featureDim() const { return embedder_.dim() + 2; }

    /** The duration scaling constants in use. */
    const DurationScale &scale() const { return scale_; }

    /** Access to the shared embedder (cache statistics, etc.). */
    embed::TextEmbedder &embedder() { return embedder_; }

  private:
    embed::TextEmbedder embedder_;
    DurationScale scale_;
};

} // namespace sleuth::core
