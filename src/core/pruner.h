#pragma once

/**
 * @file
 * Cheap interpretable pre-pruning ahead of the heavy pipeline
 * (TraceDiag-style; DESIGN.md §3.14). Before any span is embedded or
 * any distance computed, the pruner shrinks the candidate service/span
 * graph of an incident storm using only interpretable signals:
 *
 *  - per-trace candidate scoring: the exact exclusive-error /
 *    excess-exclusive-duration ranking the counterfactual RCA itself
 *    iterates (rankCandidateServices — shared code, not a re-
 *    implementation, which is what makes the conservative guarantee
 *    structural);
 *  - per-endpoint anomaly signals from the online StormDetector's
 *    already-maintained window sketches (anomalous fraction, error
 *    count, latency quantiles), when the caller has them;
 *  - graph-reachability filtering: services unreachable from any
 *    anomalous root endpoint in the storm's union call graph cannot
 *    lie on a causal path from a symptom and are dropped from
 *    candidacy (aggressive mode only).
 *
 * Two modes. Conservative keeps every trace and, per trace, every
 * positively-scored candidate — a guaranteed superset of anything the
 * RCA restoration loop could pick, so the pruned result is identical
 * to the full result (pinned by the pruned-vs-full campaign
 * invariant). Aggressive additionally thresholds the global candidate
 * set and deduplicates traces by interpretable signature (root
 * endpoint, top candidate, error flag), analyzing a capped number of
 * exemplars per group; pruned traces inherit their exemplar's verdict.
 */

#include <map>
#include <string>
#include <vector>

#include "core/counterfactual.h"

namespace sleuth::core {

/** Pre-pruning knobs (PipelineConfig::prune). */
struct PruneConfig
{
    enum class Mode
    {
        /** No pruning (the default pipeline). */
        Off,
        /**
         * Guaranteed-superset mode: every trace is kept and each
         * trace's candidate set contains every service the RCA could
         * restore, so verdicts are bit-for-bit those of the full run.
         */
        Conservative,
        /**
         * Thresholded mode: the global candidate set is cut to the
         * top-scored reachable services and near-duplicate traces are
         * collapsed onto exemplars. Verdicts may differ from the full
         * run (the ablation row in EXPERIMENTS.md measures by how
         * much).
         */
        Aggressive,
    };

    Mode mode = Mode::Off;
    /**
     * Aggressive-mode knob in [0, 1): fraction of the positively
     * scored candidate services pruned, and of each signature group's
     * traces collapsed onto its exemplars. 0 keeps everything
     * (aggressive ≈ conservative); values near 1 keep only the top
     * candidates and one exemplar per group.
     */
    double aggressiveness = 0.5;
    /** Aggressive mode: exemplar floor per trace signature group. */
    size_t minExemplarsPerGroup = 2;
};

/**
 * Per-endpoint anomaly signal, as maintained by the online
 * StormDetector window sketches (online::WindowStats shape). The
 * batch pipeline can also run signal-free; every root endpoint is
 * then treated as anomalous.
 */
struct EndpointSignal
{
    double anomalousFraction = 0.0;
    uint64_t errors = 0;
    double p50Us = 0.0;
    double p99Us = 0.0;
};

/** Endpoint ("service/operation") -> window signal. */
using PruneSignals = std::map<std::string, EndpointSignal>;

/** The pruner's decision over one storm batch. */
struct PrunePlan
{
    /** Per trace: analyze through the full pipeline (1) or inherit. */
    std::vector<char> keep;
    /** For pruned traces, the exemplar index whose verdict they
        inherit; -1 for kept traces. */
    std::vector<int> inheritFrom;
    /**
     * Per trace: 1 when the RCA candidate set is restricted to
     * candidates[i] (sorted). Unrestricted traces (malformed input the
     * pipeline skips anyway) carry 0 and an empty list.
     */
    std::vector<char> restricted;
    std::vector<std::vector<std::string>> candidates;

    /** Prune-ratio accounting (bench + obs rows). */
    size_t tracesTotal = 0;
    size_t tracesKept = 0;
    size_t servicesTotal = 0;
    size_t servicesKept = 0;

    double traceKeepRatio() const
    {
        return tracesTotal == 0
                   ? 1.0
                   : static_cast<double>(tracesKept) /
                         static_cast<double>(tracesTotal);
    }
    double serviceKeepRatio() const
    {
        return servicesTotal == 0
                   ? 1.0
                   : static_cast<double>(servicesKept) /
                         static_cast<double>(servicesTotal);
    }
};

/** The interpretable pre-pruning stage. */
class RcaPruner
{
  public:
    /** The profile is held by reference and must outlive the pruner. */
    RcaPruner(const NormalProfile &profile, PruneConfig config,
              RcaParams rca);

    /**
     * Decide the prune plan for one storm batch. Deterministic: a pure
     * function of (traces, slos, signals, config). Malformed traces
     * (TraceGraph::tryBuild rejects) are always kept and unrestricted;
     * the pipeline skips them exactly as without pruning.
     */
    PrunePlan plan(const std::vector<trace::Trace> &traces,
                   const std::vector<int64_t> &slos,
                   const PruneSignals &signals = {}) const;

  private:
    const NormalProfile &profile_;
    PruneConfig config_;
    RcaParams rca_;
};

} // namespace sleuth::core
