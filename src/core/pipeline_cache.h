#pragma once

/**
 * @file
 * Cross-poll incremental pipeline cache (DESIGN.md §3.14). The online
 * service re-analyzes an open incident on every poll as the detection
 * window slides; most of the snapshot persists between polls, so the
 * cache memoizes the pure per-trace and per-pair functions the
 * pipeline computes — extending PR 1's propagateFrom idea from the
 * GNN to the whole pipeline:
 *
 *  - span-set encodings, keyed by (traceId, content fingerprint);
 *  - weighted-Jaccard distances, keyed by the encoding-id pair;
 *  - RCA verdicts, keyed by (fingerprint, SLO, candidate-filter hash);
 *  - whole batch results, keyed by the fingerprint+SLO sequence (the
 *    unchanged-snapshot fast path; cluster assignments are only
 *    reusable wholesale, because clustering is a function of the full
 *    matrix).
 *
 * Because every cached value is the output of a pure function of the
 * fingerprinted inputs, a warm analysis is bitwise-identical to a full
 * recompute (pinned by the incremental-repoll campaign invariant).
 * Invalidation is by content: a trace that mutated between polls (new
 * span, changed error flag, shifted timestamp) changes its fingerprint
 * and falls back to full recompute; entries unused for
 * Config::maxGenerations batches age out (covering store-retention
 * eviction), and Config::maxTraces bounds memory.
 *
 * Not thread-safe: the pipeline performs lookups and inserts only on
 * the calling thread, before/after its parallel sections.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "distance/distance_matrix.h"
#include "distance/trace_distance.h"

namespace sleuth::core {

/** Keyed cross-poll cache of encodings, distances, and verdicts. */
class PipelineCache
{
  public:
    struct Config
    {
        /** Max cached traces (oldest-generation evicted beyond). */
        size_t maxTraces = 8192;
        /** Batches an untouched entry survives before aging out. */
        size_t maxGenerations = 8;
        /** Largest batch whose distance matrix is retained for the
            prefix fast path (the packed triangle is O(n^2) doubles, so
            storm-scale batches are not worth pinning in memory). */
        size_t maxMatrixTraces = 1024;
    };

    /** Cumulative counters (also mirrored as obs counters). */
    struct Stats
    {
        size_t encodingHits = 0;
        size_t encodingMisses = 0;
        size_t distanceHits = 0;
        size_t distanceMisses = 0;
        size_t verdictHits = 0;
        size_t verdictMisses = 0;
        size_t batchHits = 0;
        /** Previous distance matrix reused wholesale as a prefix. */
        size_t matrixPrefixHits = 0;
        /** Entries dropped because the trace content changed. */
        size_t invalidations = 0;
        /** Entries dropped by age/capacity retention. */
        size_t evictions = 0;
    };

    PipelineCache();
    explicit PipelineCache(Config config);

    /** Content fingerprint over the trace id and every span field. */
    static uint64_t fingerprint(const trace::Trace &t);

    /**
     * Start a new batch generation: ages out entries untouched for
     * maxGenerations batches and enforces maxTraces (their distance
     * pairs go too). The pipeline calls this once per cached analyze.
     */
    void beginBatch();

    /**
     * Look up a cached span-set encoding. On hit returns the set and
     * writes its stable encoding id. A fingerprint mismatch counts an
     * invalidation, drops the stale entry (and its pairs), and misses.
     */
    const distance::WeightedSpanSet *
    lookupEncoding(const std::string &traceId, uint64_t fp,
                   uint32_t *encId);

    /** Insert a freshly computed encoding; writes its encoding id. */
    void storeEncoding(const std::string &traceId, uint64_t fp,
                       distance::WeightedSpanSet set, uint32_t *encId);

    /** Cached pairwise distance between two encoding ids. */
    bool lookupDistance(uint32_t a, uint32_t b, double *out);
    void storeDistance(uint32_t a, uint32_t b, double d);

    /**
     * Growing-window matrix reuse: if the previous batch's encoding-id
     * sequence is a prefix of this batch's, its packed lower-triangular
     * matrix is a literal prefix of the new one (row i occupies the
     * contiguous packed slice i(i-1)/2 .. i(i+1)/2), so the caller can
     * bulk-copy it and compute only the appended rows. Encoding ids
     * are assigned monotonically and never reused, so a mutated,
     * evicted, or re-encoded trace changes its id and breaks the
     * prefix — there is no aliasing to invalidate.
     *
     * On hit, returns the stored matrix and writes its item count.
     */
    const distance::DistanceMatrix *
    lookupMatrixPrefix(const std::vector<uint32_t> &encIds,
                       size_t *prefixLen);

    /** Retain a batch's matrix for the next poll's prefix lookup
        (skipped above Config::maxMatrixTraces items). */
    void storeMatrix(const std::vector<uint32_t> &encIds,
                     const distance::DistanceMatrix &m);

    /** Cached RCA verdict (key includes SLO + candidate-filter hash). */
    const RcaResult *lookupVerdict(const std::string &traceId,
                                   uint64_t fp, int64_t sloUs,
                                   uint64_t candidatesHash);
    void storeVerdict(const std::string &traceId, uint64_t fp,
                      int64_t sloUs, uint64_t candidatesHash,
                      RcaResult verdict);

    /** Unchanged-snapshot fast path: the whole previous result. */
    const PipelineResult *lookupBatch(uint64_t batchKey);
    void storeBatch(uint64_t batchKey, const PipelineResult &result);

    Stats stats() const { return stats_; }
    /** Cached trace entries currently held. */
    size_t size() const { return entries_.size(); }
    /** Cached distance pairs currently held. */
    size_t pairCount() const { return pairs_.size(); }
    /** Current batch generation (starts at 0, bumped by beginBatch). */
    uint64_t generation() const { return generation_; }

  private:
    struct Entry
    {
        uint64_t fp = 0;
        uint32_t encId = 0;
        uint64_t lastGen = 0;
        bool hasSet = false;
        distance::WeightedSpanSet set;
        /** (sloUs, candidatesHash) -> verdict. */
        std::map<std::pair<int64_t, uint64_t>, RcaResult> verdicts;
    };

    static uint64_t pairKey(uint32_t a, uint32_t b);

    void eraseEntry(const std::string &traceId, bool invalidated);
    void dropPairsOf(const std::vector<uint32_t> &encIds);

    Config config_;
    Stats stats_;
    uint64_t generation_ = 0;
    uint32_t nextEncId_ = 1;
    std::unordered_map<std::string, Entry> entries_;
    std::unordered_map<uint64_t, double> pairs_;
    uint64_t batchKey_ = 0;
    std::unique_ptr<PipelineResult> batchResult_;
    /** Last batch's encoding-id sequence + distance matrix. */
    std::vector<uint32_t> matrixEncIds_;
    distance::DistanceMatrix matrix_;
};

} // namespace sleuth::core
