#pragma once

/**
 * @file
 * The Sleuth trace GNN (paper §3.4).
 *
 * One message-passing layer suffices by the Markov property of the
 * causal DAG. For every edge child j -> parent i, a shared MLP f_Theta
 * computes a parameter vector h_j from the parent's exclusive features
 * and a GIN aggregation of j with its siblings (Eq. 4). The duration
 * head (Eq. 2) sums clipped-ReLU contributions of unscaled child
 * durations between learned thresholds u'_j <= v'_j plus the parent's
 * exclusive duration; the error head (Eq. 3) max-combines gated child
 * error and duration signals with the parent's exclusive error.
 *
 * Because the network's shape is independent of the RPC graph, one
 * model serves traces of any topology and transfers across
 * applications (paper §6.5). A GCN aggregation variant (Sleuth-GCN,
 * the paper's ablation baseline) is selectable in the config.
 *
 * Implementation note: Eq. 3 as printed uses sigmoid(h_{j,2} * e_j),
 * which is pinned to 0.5 whenever a child has no error (e_j = 0). We
 * use the equivalent-intent formulation sigmoid(h_{j,2}) * e_j for the
 * error-propagation gate and add a learned bias h_{j,4} to the
 * duration-induced (timeout) gate sigmoid(h_{j,3} * d_j + h_{j,4}),
 * so an error-free child can actually predict a zero error
 * probability. The MLP therefore emits five values per edge.
 */

#include <vector>

#include "core/features.h"
#include "nn/layers.h"
#include "util/json.h"
#include "util/rng.h"

namespace sleuth::core {

/** Message aggregation variant. */
enum class Aggregator { Gin, Gcn };

/** Render an aggregator name. */
const char *toString(Aggregator a);

/** Model hyperparameters. */
struct GnnConfig
{
    /** Semantic embedding width (must match the FeatureEncoder). */
    size_t embedDim = 16;
    /** Hidden width of f_Theta. */
    size_t hidden = 32;
    /** GIN (the Sleuth design) or GCN (the ablation baseline). */
    Aggregator aggregator = Aggregator::Gin;
    /** GIN self-loop weight (1 + epsilon). */
    double epsilon = 0.1;
    /**
     * Offset shaping the clipping window's initialization: the lower
     * threshold u' starts at 10^(mu - offset*sigma) (near zero) and
     * the window width v' - u' at 10^(mu + offset*sigma) (very wide),
     * so child durations initially pass through and clipping must be
     * actively learned. Without it the window collapses onto the
     * normal-duration band and counterfactual interventions saturate.
     */
    double thresholdOffset = 3.0;
    /** Global duration scaling (paper: mu = 4, sigma = 1). */
    DurationScale scale;
    /** Initialization seed. */
    uint64_t seed = 1;
};

/** Predicted state of every span in a batch. */
struct GnnPrediction
{
    /** Predicted scaled duration per node. */
    std::vector<double> durScaled;
    /** Predicted error probability per node. */
    std::vector<double> errProb;
};

/** Predicted state of one trace under (optional) interventions. */
struct TracePrediction
{
    double rootDurationUs = 0.0;
    double rootErrorProb = 0.0;
    /** Bottom-up propagated duration per node, microseconds. */
    std::vector<double> nodeDurUs;
    /** Bottom-up propagated error probability per node. */
    std::vector<double> nodeErrProb;
};

/** Per-node intervention state for counterfactual queries. */
struct NodeState
{
    /** Exclusive duration in microseconds (possibly restored). */
    double exclusiveUs = 0.0;
    /** Exclusive error indicator (possibly cleared). */
    double exclusiveErr = 0.0;
};

/** The Sleuth GNN model. */
class SleuthGnn
{
  public:
    /** Build a randomly initialized model. */
    explicit SleuthGnn(const GnnConfig &config);

    /** Training objective (Eq. 5) over a batch; differentiable. */
    nn::Var loss(const TraceBatch &batch) const;

    /**
     * One-hop reconstruction: predict every span's duration and error
     * from its children's observed states. Used for model evaluation.
     */
    GnnPrediction reconstruct(const TraceBatch &batch) const;

    /**
     * Counterfactual propagation over a single trace: children's
     * predicted (not observed) states feed their parents, so deep
     * interventions surface at the root (paper §3.5).
     *
     * @param batch single-trace encoding (node order = span order)
     * @param graph the trace's dependency graph
     * @param states per-node exclusive durations/errors, already
     *        restored for intervened spans
     */
    TracePrediction propagate(const TraceBatch &batch,
                              const trace::TraceGraph &graph,
                              const std::vector<NodeState> &states) const;

    /**
     * Incremental counterfactual propagation: recompute only the nodes
     * whose predictions can change under the given intervention and
     * reuse the memoized baseline for everything else.
     *
     * An intervention on node i can only alter the predictions of i
     * and its ancestors (a sibling subtree's inputs are untouched), so
     * each counterfactual candidate costs O(depth · fanout) MLP
     * forwards instead of re-running the whole trace. The result is
     * bitwise identical to propagate(batch, graph, states) because
     * clean nodes' predictions are a deterministic function of their
     * unchanged subtrees.
     *
     * @param batch single-trace encoding (node order = span order)
     * @param graph the trace's dependency graph
     * @param states per-node exclusive states, already intervened
     * @param baseline propagate() output for the pre-intervention
     *        states (every node's memoized prediction)
     * @param dirtyNodes indices whose NodeState differs from the
     *        baseline's states (callers must list every changed node)
     */
    TracePrediction propagateFrom(
        const TraceBatch &batch, const trace::TraceGraph &graph,
        const std::vector<NodeState> &states,
        const TracePrediction &baseline,
        const std::vector<int> &dirtyNodes) const;

    /** Trainable parameters. */
    std::vector<nn::Var> parameters() const { return mlp_.parameters(); }

    /** Scalar parameter count (the model size is topology-independent). */
    size_t parameterCount() const { return mlp_.parameterCount(); }

    /** Model configuration. */
    const GnnConfig &config() const { return config_; }

    /** Serialize configuration + weights. */
    util::Json save() const;

    /** Restore weights from save() output; config must match. */
    void load(const util::Json &doc);

    /** Construct a model directly from save() output. */
    static SleuthGnn fromJson(const util::Json &doc);

  private:
    struct Forward
    {
        nn::Var durScaled;  // n x 1
        nn::Var errProb;    // n x 1
    };

    Forward forward(const TraceBatch &batch) const;

    /**
     * Recompute one node's propagated prediction from its children's
     * already-propagated values in out->nodeDurUs / out->nodeErrProb
     * (bottom-up invariant: children are finalized before parents).
     */
    void propagateNode(const TraceBatch &batch,
                       const trace::TraceGraph &graph,
                       const std::vector<NodeState> &states, int node,
                       TracePrediction *out) const;

    /** Clamp-then-unscale: 10^(clamp(sigma*x + mu)). */
    nn::Var unscaleVar(const nn::Var &scaled) const;

    GnnConfig config_;
    nn::Mlp mlp_;
};

} // namespace sleuth::core
