#pragma once

/**
 * @file
 * Mini-batch training and fine-tuning of the Sleuth GNN (Eq. 5).
 *
 * Training is unsupervised: the objective is reconstruction of every
 * span's duration and error status from its children, so no fault
 * labels are needed (paper design principle 1). Fine-tuning is the
 * same loop warm-started from a pre-trained model with fewer samples
 * and a smaller learning rate (paper §6.5).
 */

#include <vector>

#include "core/gnn.h"
#include "nn/optim.h"

namespace sleuth::core {

/** Training-loop knobs. */
struct TrainConfig
{
    int epochs = 5;
    /** Traces merged into one training batch. */
    size_t tracesPerBatch = 16;
    double learningRate = 3e-3;
    double gradClip = 5.0;
    uint64_t seed = 7;
};

/** Runs the unsupervised reconstruction objective over a corpus. */
class Trainer
{
  public:
    /**
     * @param model model to optimize (held by reference)
     * @param encoder feature encoder shared with inference
     * @param config loop knobs
     */
    Trainer(SleuthGnn &model, FeatureEncoder &encoder,
            TrainConfig config);

    /**
     * Train over a corpus for config.epochs epochs.
     *
     * @return the mean batch loss of the final epoch
     */
    double train(const std::vector<trace::Trace> &corpus);

    /** One epoch over the corpus; returns the mean batch loss. */
    double trainEpoch(const std::vector<trace::Trace> &corpus);

    /** Mean loss over a corpus without updating weights. */
    double evaluate(const std::vector<trace::Trace> &corpus);

  private:
    SleuthGnn &model_;
    FeatureEncoder &encoder_;
    TrainConfig config_;
    nn::Adam optimizer_;
    util::Rng rng_;
};

} // namespace sleuth::core
