#include "anomaly.h"

#include <cmath>

#include "util/stats.h"

namespace sleuth::core {

bool
SloDetector::isAnomalous(const trace::Trace &trace, int64_t slo_us)
{
    if (slo_us > 0 && trace.rootDurationUs() > slo_us)
        return true;
    for (const trace::Span &s : trace.spans)
        if (s.parentSpanId.empty())
            return s.hasError();
    return false;
}

ModelDetector::ModelDetector(const SleuthGnn &model,
                             FeatureEncoder &encoder,
                             const NormalProfile &profile)
    : model_(model), encoder_(encoder), profile_(profile)
{
}

double
ModelDetector::score(const trace::Trace &trace)
{
    trace::TraceGraph graph = trace::TraceGraph::build(trace);
    TraceBatch batch = encoder_.encode(trace);

    // All-normal counterfactual: every span at its operation's median
    // exclusive duration, no exclusive errors.
    std::vector<NodeState> normal(trace.spans.size());
    for (size_t i = 0; i < trace.spans.size(); ++i) {
        const trace::Span &s = trace.spans[i];
        normal[i].exclusiveUs =
            profile_.medianExclusiveUs(s.service, s.name, s.kind);
        normal[i].exclusiveErr = 0.0;
    }
    TracePrediction pred = model_.propagate(batch, graph, normal);

    double observed = static_cast<double>(
        std::max<int64_t>(trace.rootDurationUs(), 1));
    double expected = std::max(pred.rootDurationUs, 1.0);
    double score = std::log10(observed / expected);
    for (const trace::Span &s : trace.spans)
        if (s.parentSpanId.empty() && s.hasError())
            score += 1.0;
    return score;
}

void
ModelDetector::calibrate(const std::vector<trace::Trace> &normal,
                         double pct)
{
    SLEUTH_ASSERT(!normal.empty(), "calibration corpus empty");
    std::vector<double> scores;
    scores.reserve(normal.size());
    for (const trace::Trace &t : normal)
        scores.push_back(score(t));
    threshold_ = util::percentile(scores, pct);
    calibrated_ = true;
}

bool
ModelDetector::isAnomalous(const trace::Trace &trace)
{
    SLEUTH_ASSERT(calibrated_, "detector not calibrated");
    return score(trace) > threshold_;
}

} // namespace sleuth::core
