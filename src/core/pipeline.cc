#include "pipeline.h"

#include "cluster/svdd.h"

namespace sleuth::core {

SleuthPipeline::SleuthPipeline(const SleuthGnn &model,
                               FeatureEncoder &encoder,
                               const NormalProfile &profile,
                               PipelineConfig config)
    : model_(model), encoder_(encoder), profile_(profile),
      config_(config)
{
}

PipelineResult
SleuthPipeline::analyze(const std::vector<trace::Trace> &traces,
                        const std::vector<int64_t> &slos) const
{
    if (!config_.clustering)
        return analyzeIndividually(traces, slos);
    // Default distance: weighted-Jaccard over encoded span sets,
    // pre-encoded once per trace, then memoized into one packed matrix
    // per batch (n(n-1)/2 merge passes, paper Eq. 1).
    std::vector<distance::WeightedSpanSet> sets;
    sets.reserve(traces.size());
    for (const trace::Trace &t : traces) {
        trace::TraceGraph g = trace::TraceGraph::build(t);
        sets.push_back(
            distance::encodeSpanSet(t, g, config_.distanceOpts));
    }
    return analyzeWithMatrix(traces, slos,
                             distance::DistanceMatrix::fromSpanSets(sets));
}

PipelineResult
SleuthPipeline::analyzeWithDistance(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos,
    const std::function<double(size_t, size_t)> &dist) const
{
    if (!config_.clustering)
        return analyzeIndividually(traces, slos);
    return analyzeWithMatrix(
        traces, slos,
        distance::DistanceMatrix::compute(traces.size(), dist));
}

PipelineResult
SleuthPipeline::analyzeIndividually(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    PipelineResult out;
    out.perTrace.resize(traces.size());
    out.clusterLabels.assign(traces.size(), -1);
    CounterfactualRca rca(model_, encoder_, profile_, config_.rca);
    for (size_t i = 0; i < traces.size(); ++i) {
        out.perTrace[i] = rca.analyze(traces[i], slos[i]);
        ++out.rcaInvocations;
    }
    return out;
}

PipelineResult
SleuthPipeline::analyzeWithMatrix(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos,
    const distance::DistanceMatrix &dist) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    SLEUTH_ASSERT(dist.size() == traces.size(),
                  "distance matrix / trace count mismatch");
    PipelineResult out;
    out.perTrace.resize(traces.size());
    out.clusterLabels.assign(traces.size(), -1);
    if (traces.empty())
        return out;
    out.distanceEvaluations = traces.size() * (traces.size() - 1) / 2;

    CounterfactualRca rca(model_, encoder_, profile_, config_.rca);

    cluster::ClusterResult clusters =
        config_.algorithm == PipelineConfig::Algorithm::Hdbscan
            ? cluster::hdbscan(dist, config_.hdbscan)
            : cluster::dbscan(dist, config_.dbscan);
    out.clusterLabels = clusters.labels;
    out.numClusters = clusters.numClusters;

    // One RCA per cluster representative (geometric median), then the
    // verdict generalizes to every member.
    std::vector<size_t> reps = cluster::selectRepresentatives(
        clusters.labels, clusters.numClusters, dist);
    std::vector<bool> assigned(traces.size(), false);
    for (int c = 0; c < clusters.numClusters; ++c) {
        size_t rep = reps[static_cast<size_t>(c)];
        RcaResult verdict = rca.analyze(traces[rep], slos[rep]);
        ++out.rcaInvocations;
        for (size_t i = 0; i < traces.size(); ++i) {
            if (clusters.labels[i] != c)
                continue;
            // Far-from-representative members do not inherit the
            // verdict; they fall through to individual analysis.
            if (config_.maxRepresentativeDistance > 0.0 && i != rep &&
                dist.at(i, rep) > config_.maxRepresentativeDistance)
                continue;
            out.perTrace[i] = verdict;
            assigned[i] = true;
        }
    }
    // Noise traces and far members are analyzed individually.
    for (size_t i = 0; i < traces.size(); ++i) {
        if (!assigned[i]) {
            out.perTrace[i] = rca.analyze(traces[i], slos[i]);
            ++out.rcaInvocations;
        }
    }
    return out;
}

} // namespace sleuth::core
