#include "pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "cluster/svdd.h"
#include "core/pipeline_cache.h"
#include "obs/metrics.h"
#include "util/simd.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sleuth::core {

namespace {

/** Per-stage wall-clock histogram for sleuth_pipeline_stage_ms. */
enum class Stage { Encode, Distance, Cluster, Rca };

obs::Histogram &
stageHistogram(Stage stage)
{
    static const char *name = "sleuth_pipeline_stage_ms";
    static const char *help =
        "Wall-clock milliseconds per pipeline stage per batch";
    static obs::Histogram &encode =
        obs::histogram(name, help, {{"stage", "encode"}});
    static obs::Histogram &distance =
        obs::histogram(name, help, {{"stage", "distance"}});
    static obs::Histogram &cluster =
        obs::histogram(name, help, {{"stage", "cluster"}});
    static obs::Histogram &rca =
        obs::histogram(name, help, {{"stage", "rca"}});
    switch (stage) {
      case Stage::Encode: return encode;
      case Stage::Distance: return distance;
      case Stage::Cluster: return cluster;
      case Stage::Rca: return rca;
    }
    util::panic("invalid pipeline stage");
}

/** Batch entry accounting shared by the analyze* entry points. */
void
countBatch(size_t traces)
{
    static obs::Counter &batches = obs::counter(
        "sleuth_pipeline_batches_total", "Analysis batches started");
    static obs::Counter &traceCount = obs::counter(
        "sleuth_pipeline_traces_total",
        "Traces submitted for analysis");
    batches.add();
    traceCount.add(traces);
}

/** The verdict recorded for a trace the graph builder rejected. */
RcaResult
errorVerdict(const std::string &why)
{
    RcaResult r;
    r.error = "malformed trace: " + why;
    return r;
}

uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

/** Verdict-cache key component for a candidate filter. The non-zero
    seed keeps an empty filter distinct from no filter at all. */
uint64_t
candidateHash(const std::vector<std::string> &list)
{
    uint64_t h = 0xca4d1da7e5ull;
    for (const std::string &s : list)
        h = hashCombine(h, util::fnv1a(s));
    return h;
}

/**
 * Int8 trace signature for the quantization ablation: the L2-normalized
 * sum of each span's semantic embedding, quantized to int8. The sum and
 * normalization use only elementwise kernels (bitwise-stable under any
 * SIMD dispatch) and a strictly sequential norm reduction, so the
 * signature — and every distance derived from it, being an exact
 * integer dot — is independent of ISA and thread count.
 */
embed::QuantizedEmbedding
traceSignature(const trace::Trace &t, FeatureEncoder &enc)
{
    embed::TextEmbedder &emb = enc.embedder();
    const size_t dim = emb.dim();
    std::vector<double> acc(dim, 0.0);
    for (const trace::Span &s : t.spans) {
        const std::vector<double> &e =
            emb.embed(s.service + " " + s.name + " " + toString(s.kind));
        simd::add(acc.data(), e.data(), dim);
    }
    double norm2 = 0.0;
    for (double v : acc)
        norm2 += v * v;
    if (norm2 > 0.0)
        simd::div(acc.data(), std::sqrt(norm2), dim);
    return embed::TextEmbedder::quantize(acc);
}

/** Packed 1 − cosine matrix over int8 signatures (exact integer math). */
distance::DistanceMatrix
int8DistanceMatrix(const std::vector<embed::QuantizedEmbedding> &sigs)
{
    return distance::DistanceMatrix::compute(
        sigs.size(), [&](size_t i, size_t j) {
            return std::max(0.0, 1.0 - embed::TextEmbedder::cosineQuantized(
                                           sigs[i], sigs[j]));
        });
}

/**
 * Weighted-Jaccard matrix over encoded span sets, assembled through the
 * incremental cache when one is present. Three tiers, fastest first:
 * the previous poll's whole matrix reused as a packed prefix (growing
 * incident windows), then the per-pair cache, then — for mostly-cold
 * batches (under 25% pair hits) — the grouped SIMD kernel. Every tier
 * shares jaccardDistance as the per-pair bitwise reference (pinned by
 * simd_test), so all assembly paths produce identical doubles.
 */
distance::DistanceMatrix
cachedDistanceMatrix(const std::vector<distance::WeightedSpanSet> &sets,
                     const std::vector<uint32_t> &encIds,
                     PipelineCache *cache, util::ThreadPool &pool)
{
    if (cache == nullptr)
        return distance::DistanceMatrix::fromSpanSets(sets, &pool);
    const size_t m = sets.size();
    const size_t total = m < 2 ? 0 : m * (m - 1) / 2;
    distance::DistanceMatrix out(m);
    // On a re-poll of an open incident the previous batch's traces
    // come back first and new ones append, so the stored triangle is a
    // byte prefix of this one: copy it wholesale and compute only the
    // appended rows (each owns a disjoint packed slice, so the
    // parallel fill is race-free and thread-count independent).
    size_t prefix = 0;
    if (const distance::DistanceMatrix *prev =
            cache->lookupMatrixPrefix(encIds, &prefix)) {
        out.assignPrefix(*prev);
        pool.parallelFor(m - prefix, [&](size_t k, size_t) {
            size_t i = prefix + k;
            for (size_t j = 0; j < i; ++j)
                out.set(i, j,
                        distance::jaccardDistance(sets[i], sets[j]));
        });
        cache->storeMatrix(encIds, out);
        return out;
    }
    std::vector<std::pair<size_t, size_t>> missing;
    for (size_t i = 1; i < m; ++i)
        for (size_t j = 0; j < i; ++j) {
            double d;
            if (cache->lookupDistance(encIds[i], encIds[j], &d))
                out.set(i, j, d);
            else
                missing.push_back({i, j});
        }
    if (missing.size() * 4 > total * 3) {
        out = distance::DistanceMatrix::fromSpanSets(sets, &pool);
        for (auto [i, j] : missing)
            cache->storeDistance(encIds[i], encIds[j], out.at(i, j));
        cache->storeMatrix(encIds, out);
        return out;
    }
    pool.parallelFor(missing.size(), [&](size_t k, size_t) {
        auto [i, j] = missing[k];
        out.set(i, j, distance::jaccardDistance(sets[i], sets[j]));
    });
    for (auto [i, j] : missing)
        cache->storeDistance(encIds[i], encIds[j], out.at(i, j));
    cache->storeMatrix(encIds, out);
    return out;
}

} // namespace

/**
 * Per-batch parallel engine. Worker 0 (the calling thread) reuses the
 * pipeline's shared FeatureEncoder so its embedding cache stays warm
 * across batches; every additional worker owns a private encoder —
 * the token-hash embedding is a pure function of the input string, so
 * a cold cache changes cost, never results — because the cache inside
 * TextEmbedder is the one piece of shared mutable state the
 * const-correctness audit found on the RCA path (NormalProfile and
 * SleuthGnn are read-only after construction and safely shared).
 */
struct SleuthPipeline::Engine
{
    /** Private encoder + RCA for one spawned worker. */
    struct PerWorker
    {
        FeatureEncoder encoder;
        CounterfactualRca rca;

        explicit PerWorker(const SleuthPipeline &p)
            : encoder(p.encoder_.embedder().dim(), p.encoder_.scale()),
              rca(p.model_, encoder, p.profile_, p.config_.rca)
        {
        }
    };

    util::ThreadPool pool;
    FeatureEncoder &encoder0;
    CounterfactualRca rca0;
    std::vector<std::unique_ptr<PerWorker>> extra;

    explicit Engine(const SleuthPipeline &p)
        : pool(util::ThreadPool::resolveThreads(p.config_.numThreads)),
          encoder0(p.encoder_),
          rca0(p.model_, p.encoder_, p.profile_, p.config_.rca)
    {
        extra.reserve(pool.size() - 1);
        for (size_t w = 1; w < pool.size(); ++w)
            extra.push_back(std::make_unique<PerWorker>(p));
    }

    CounterfactualRca &
    rcaFor(size_t worker)
    {
        return worker == 0 ? rca0 : extra[worker - 1]->rca;
    }

    FeatureEncoder &
    encoderFor(size_t worker)
    {
        return worker == 0 ? encoder0 : extra[worker - 1]->encoder;
    }
};

SleuthPipeline::SleuthPipeline(const SleuthGnn &model,
                               FeatureEncoder &encoder,
                               const NormalProfile &profile,
                               PipelineConfig config)
    : model_(model), encoder_(encoder), profile_(profile),
      config_(config)
{
}

PipelineResult
SleuthPipeline::analyze(const std::vector<trace::Trace> &traces,
                        const std::vector<int64_t> &slos) const
{
    return analyze(traces, slos, nullptr, nullptr);
}

PipelineResult
SleuthPipeline::analyze(const std::vector<trace::Trace> &traces,
                        const std::vector<int64_t> &slos,
                        const PruneSignals *signals,
                        PipelineCache *cache) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    if (config_.prune.mode != PruneConfig::Mode::Off) {
        RcaPruner pruner(profile_, config_.prune, config_.rca);
        PrunePlan plan = pruner.plan(
            traces, slos, signals != nullptr ? *signals : PruneSignals{});
        return analyzeWithPlan(traces, slos, plan, cache);
    }
    countBatch(traces.size());
    std::vector<const trace::Trace *> ptrs(traces.size());
    for (size_t i = 0; i < traces.size(); ++i)
        ptrs[i] = &traces[i];
    return analyzeImpl(ptrs, slos, nullptr, cache);
}

PipelineResult
SleuthPipeline::analyzeWithPlan(const std::vector<trace::Trace> &traces,
                                const std::vector<int64_t> &slos,
                                const PrunePlan &plan,
                                PipelineCache *cache) const
{
    const size_t n = traces.size();
    SLEUTH_ASSERT(slos.size() == n, "trace/slo count mismatch");
    SLEUTH_ASSERT(plan.keep.size() == n && plan.inheritFrom.size() == n &&
                      plan.restricted.size() == n &&
                      plan.candidates.size() == n,
                  "prune plan / trace count mismatch");
    countBatch(n);

    std::vector<size_t> kept;
    kept.reserve(n);
    for (size_t i = 0; i < n; ++i)
        if (plan.keep[i])
            kept.push_back(i);

    std::vector<const trace::Trace *> ptrs;
    std::vector<int64_t> sub_slos;
    AllowedLists sub_allowed;
    ptrs.reserve(kept.size());
    sub_slos.reserve(kept.size());
    sub_allowed.reserve(kept.size());
    bool any_restricted = false;
    for (size_t i : kept) {
        ptrs.push_back(&traces[i]);
        sub_slos.push_back(slos[i]);
        sub_allowed.push_back(plan.restricted[i] ? &plan.candidates[i]
                                                 : nullptr);
        any_restricted |= plan.restricted[i] != 0;
    }
    PipelineResult sub = analyzeImpl(
        ptrs, sub_slos, any_restricted ? &sub_allowed : nullptr, cache);

    PipelineResult out;
    out.perTrace.resize(n);
    out.clusterLabels.assign(n, -1);
    out.numClusters = sub.numClusters;
    out.rcaInvocations = sub.rcaInvocations;
    out.distanceEvaluations = sub.distanceEvaluations;
    out.skippedTraces = sub.skippedTraces;
    for (size_t k = 0; k < kept.size(); ++k) {
        out.perTrace[kept[k]] = std::move(sub.perTrace[k]);
        out.clusterLabels[kept[k]] = sub.clusterLabels[k];
    }
    for (size_t i = 0; i < n; ++i) {
        if (plan.keep[i])
            continue;
        int ex = plan.inheritFrom[i];
        SLEUTH_ASSERT(ex >= 0 && static_cast<size_t>(ex) < n &&
                          plan.keep[static_cast<size_t>(ex)],
                      "pruned trace must inherit from a kept exemplar");
        out.perTrace[i] = out.perTrace[static_cast<size_t>(ex)];
        out.clusterLabels[i] = out.clusterLabels[static_cast<size_t>(ex)];
        ++out.prunedTraces;
    }
    out.pruneTraceKeepRatio = plan.traceKeepRatio();
    out.pruneServiceKeepRatio = plan.serviceKeepRatio();
    static obs::Counter &pruned = obs::counter(
        "sleuth_pipeline_pruned_traces_total",
        "Traces whose verdict was inherited from a prune exemplar");
    pruned.add(out.prunedTraces);
    return out;
}

PipelineResult
SleuthPipeline::analyzeImpl(
    const std::vector<const trace::Trace *> &traces,
    const std::vector<int64_t> &slos, const AllowedLists *allowed,
    PipelineCache *cache) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    SLEUTH_ASSERT(allowed == nullptr || allowed->size() == traces.size(),
                  "candidate filter / trace count mismatch");
    const size_t n = traces.size();
    const bool int8dist =
        config_.traceDistance ==
        PipelineConfig::TraceDistanceKind::EmbeddingCosineInt8;
    if (int8dist)
        cache = nullptr; // pair cache keys require span-set encodings
    Engine engine(*this);

    std::vector<uint64_t> candHashes(n, 0);
    if (allowed != nullptr)
        for (size_t i = 0; i < n; ++i)
            if ((*allowed)[i] != nullptr)
                candHashes[i] = candidateHash(*(*allowed)[i]);

    // Content fingerprints drive every cache key; the whole-batch fast
    // path makes an unchanged snapshot cost one hash pass + one lookup.
    std::vector<uint64_t> fps;
    uint64_t batchKey = 0;
    if (cache != nullptr) {
        fps.resize(n);
        engine.pool.parallelFor(n, [&](size_t i, size_t) {
            fps[i] = PipelineCache::fingerprint(*traces[i]);
        });
        cache->beginBatch();
        batchKey = hashCombine(0x5ba7c45eull, n);
        for (size_t i = 0; i < n; ++i) {
            batchKey = hashCombine(batchKey, fps[i]);
            batchKey =
                hashCombine(batchKey, static_cast<uint64_t>(slos[i]));
            batchKey = hashCombine(batchKey, candHashes[i]);
        }
        if (const PipelineResult *hit = cache->lookupBatch(batchKey))
            return *hit;
    }

    PipelineResult out = [&]() -> PipelineResult {
        if (!config_.clustering)
            return analyzeIndividualImpl(traces, slos, allowed, cache,
                                         fps, candHashes, engine);

        // Default distance: weighted-Jaccard over encoded span sets,
        // pre-encoded once per trace, then memoized into one packed
        // matrix per batch (paper Eq. 1). Encoding validates each
        // trace; malformed ones are compacted out so they neither
        // crash the batch nor distort clustering. A cached encoding
        // implies the trace was well-formed last time it was seen, so
        // hits skip validation too.
        std::vector<std::string> errors(n);
        std::vector<distance::WeightedSpanSet> sets(int8dist ? 0 : n);
        std::vector<embed::QuantizedEmbedding> sigs(int8dist ? n : 0);
        std::vector<uint32_t> encIds(cache != nullptr ? n : 0);
        std::vector<char> needEncode(n, 1);
        if (cache != nullptr) {
            for (size_t i = 0; i < n; ++i) {
                const distance::WeightedSpanSet *hit =
                    cache->lookupEncoding(traces[i]->traceId, fps[i],
                                          &encIds[i]);
                if (hit != nullptr) {
                    sets[i] = *hit;
                    needEncode[i] = 0;
                }
            }
        }
        {
            obs::ScopedTimer timer(stageHistogram(Stage::Encode));
            engine.pool.parallelFor(n, [&](size_t i, size_t w) {
                if (!needEncode[i])
                    return;
                trace::TraceGraph g;
                std::string err;
                if (!trace::TraceGraph::tryBuild(*traces[i], &g,
                                                 &err)) {
                    errors[i] = err;
                    return;
                }
                // Per-worker encoders: the embedding is a pure
                // function of the string, so private caches change
                // cost, not results.
                if (int8dist)
                    sigs[i] =
                        traceSignature(*traces[i], engine.encoderFor(w));
                else
                    sets[i] = distance::encodeSpanSet(
                        *traces[i], g, config_.distanceOpts);
            });
        }
        if (cache != nullptr)
            for (size_t i = 0; i < n; ++i)
                if (needEncode[i] && errors[i].empty())
                    cache->storeEncoding(traces[i]->traceId, fps[i],
                                         sets[i], &encIds[i]);

        std::vector<size_t> valid;
        valid.reserve(n);
        for (size_t i = 0; i < n; ++i)
            if (errors[i].empty())
                valid.push_back(i);

        if (valid.size() == n) {
            distance::DistanceMatrix dist = [&] {
                obs::ScopedTimer timer(stageHistogram(Stage::Distance));
                return int8dist
                           ? int8DistanceMatrix(sigs)
                           : cachedDistanceMatrix(sets, encIds, cache,
                                                  engine.pool);
            }();
            return analyzeCore(traces, slos, dist, errors, engine,
                               allowed, cache, fps, candHashes);
        }

        // Compact the well-formed subset, analyze it, scatter back.
        std::vector<const trace::Trace *> ptrs;
        std::vector<int64_t> sub_slos;
        std::vector<distance::WeightedSpanSet> sub_sets;
        std::vector<embed::QuantizedEmbedding> sub_sigs;
        AllowedLists sub_allowed;
        std::vector<uint64_t> sub_fps;
        std::vector<uint64_t> sub_ch;
        std::vector<uint32_t> sub_enc;
        ptrs.reserve(valid.size());
        sub_slos.reserve(valid.size());
        sub_sets.reserve(int8dist ? 0 : valid.size());
        sub_sigs.reserve(int8dist ? valid.size() : 0);
        for (size_t i : valid) {
            ptrs.push_back(traces[i]);
            sub_slos.push_back(slos[i]);
            if (int8dist)
                sub_sigs.push_back(std::move(sigs[i]));
            else
                sub_sets.push_back(std::move(sets[i]));
            if (allowed != nullptr)
                sub_allowed.push_back((*allowed)[i]);
            if (cache != nullptr) {
                sub_fps.push_back(fps[i]);
                sub_ch.push_back(candHashes[i]);
                sub_enc.push_back(encIds[i]);
            }
        }
        distance::DistanceMatrix sub_dist = [&] {
            obs::ScopedTimer timer(stageHistogram(Stage::Distance));
            return int8dist ? int8DistanceMatrix(sub_sigs)
                            : cachedDistanceMatrix(sub_sets, sub_enc,
                                                   cache, engine.pool);
        }();
        PipelineResult sub = analyzeCore(
            ptrs, sub_slos, sub_dist,
            std::vector<std::string>(valid.size()), engine,
            allowed != nullptr ? &sub_allowed : nullptr, cache,
            sub_fps, sub_ch);

        PipelineResult scattered;
        scattered.perTrace.resize(n);
        scattered.clusterLabels.assign(n, -1);
        scattered.numClusters = sub.numClusters;
        scattered.rcaInvocations = sub.rcaInvocations;
        scattered.distanceEvaluations = sub.distanceEvaluations;
        scattered.skippedTraces = n - valid.size();
        for (size_t k = 0; k < valid.size(); ++k) {
            scattered.perTrace[valid[k]] = std::move(sub.perTrace[k]);
            scattered.clusterLabels[valid[k]] = sub.clusterLabels[k];
        }
        for (size_t i = 0; i < n; ++i)
            if (!errors[i].empty())
                scattered.perTrace[i] = errorVerdict(errors[i]);
        return scattered;
    }();
    if (cache != nullptr)
        cache->storeBatch(batchKey, out);
    return out;
}

PipelineResult
SleuthPipeline::analyzeWithDistance(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos,
    const std::function<double(size_t, size_t)> &dist) const
{
    if (!config_.clustering) {
        countBatch(traces.size());
        std::vector<const trace::Trace *> ptrs(traces.size());
        for (size_t i = 0; i < traces.size(); ++i)
            ptrs[i] = &traces[i];
        Engine engine(*this);
        return analyzeIndividualImpl(ptrs, slos, nullptr, nullptr, {},
                                     {}, engine);
    }
    return analyzeWithMatrix(
        traces, slos,
        distance::DistanceMatrix::compute(traces.size(), dist));
}

PipelineResult
SleuthPipeline::analyzeIndividualImpl(
    const std::vector<const trace::Trace *> &traces,
    const std::vector<int64_t> &slos, const AllowedLists *allowed,
    PipelineCache *cache, const std::vector<uint64_t> &fps,
    const std::vector<uint64_t> &candHashes, Engine &engine) const
{
    const size_t n = traces.size();
    PipelineResult out;
    out.perTrace.resize(n);
    out.clusterLabels.assign(n, -1);

    // Cached verdicts first: a stored verdict with a matching
    // fingerprint implies the trace was well-formed, so hits also skip
    // re-validation.
    std::vector<char> done(n, 0);
    if (cache != nullptr) {
        for (size_t i = 0; i < n; ++i) {
            const RcaResult *hit = cache->lookupVerdict(
                traces[i]->traceId, fps[i], slos[i], candHashes[i]);
            if (hit != nullptr) {
                out.perTrace[i] = *hit;
                done[i] = 1;
            }
        }
    }
    std::vector<size_t> todo;
    todo.reserve(n);
    for (size_t i = 0; i < n; ++i)
        if (!done[i])
            todo.push_back(i);
    std::vector<std::string> errors(todo.size());
    engine.pool.parallelFor(todo.size(), [&](size_t k, size_t) {
        trace::TraceGraph g;
        std::string err;
        if (!trace::TraceGraph::tryBuild(*traces[todo[k]], &g, &err))
            errors[k] = err;
    });
    std::vector<size_t> runnable;
    runnable.reserve(todo.size());
    for (size_t k = 0; k < todo.size(); ++k) {
        if (errors[k].empty()) {
            runnable.push_back(todo[k]);
        } else {
            out.perTrace[todo[k]] = errorVerdict(errors[k]);
            ++out.skippedTraces;
        }
    }
    {
        obs::ScopedTimer timer(stageHistogram(Stage::Rca));
        engine.pool.parallelFor(runnable.size(), [&](size_t k,
                                                     size_t w) {
            size_t i = runnable[k];
            out.perTrace[i] = engine.rcaFor(w).analyze(
                *traces[i], slos[i],
                allowed != nullptr ? (*allowed)[i] : nullptr);
        });
    }
    if (cache != nullptr)
        for (size_t i : runnable)
            cache->storeVerdict(traces[i]->traceId, fps[i], slos[i],
                                candHashes[i], out.perTrace[i]);
    out.rcaInvocations = n - out.skippedTraces;
    return out;
}

PipelineResult
SleuthPipeline::analyzeWithMatrix(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos,
    const distance::DistanceMatrix &dist) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    SLEUTH_ASSERT(dist.size() == traces.size(),
                  "distance matrix / trace count mismatch");
    countBatch(traces.size());
    Engine engine(*this);
    std::vector<const trace::Trace *> ptrs(traces.size());
    std::vector<std::string> errors(traces.size());
    for (size_t i = 0; i < traces.size(); ++i)
        ptrs[i] = &traces[i];
    engine.pool.parallelFor(traces.size(), [&](size_t i, size_t) {
        trace::TraceGraph g;
        std::string err;
        if (!trace::TraceGraph::tryBuild(traces[i], &g, &err))
            errors[i] = err;
    });
    return analyzeCore(ptrs, slos, dist, errors, engine);
}

PipelineResult
SleuthPipeline::analyzeCore(
    const std::vector<const trace::Trace *> &traces,
    const std::vector<int64_t> &slos,
    const distance::DistanceMatrix &dist,
    const std::vector<std::string> &errors, Engine &engine,
    const AllowedLists *allowed, PipelineCache *cache,
    const std::vector<uint64_t> &fps,
    const std::vector<uint64_t> &candHashes) const
{
    SLEUTH_ASSERT(dist.size() == traces.size(),
                  "distance matrix / trace count mismatch");
    const size_t n = traces.size();
    PipelineResult out;
    out.perTrace.resize(n);
    out.clusterLabels.assign(n, -1);
    if (n == 0)
        return out;
    // Distance work is accounted over the well-formed traces only, so
    // the analyzeWithMatrix path (whose caller-provided matrix covers
    // malformed rows too) reports the same m(m-1)/2 the compacted
    // analyze() path does for the same batch.
    size_t well_formed = 0;
    for (size_t i = 0; i < n; ++i)
        if (errors[i].empty())
            ++well_formed;
    out.distanceEvaluations =
        well_formed * (well_formed > 0 ? well_formed - 1 : 0) / 2;

    cluster::ClusterResult clusters = [&] {
        obs::ScopedTimer timer(stageHistogram(Stage::Cluster));
        return config_.algorithm == PipelineConfig::Algorithm::Hdbscan
                   ? cluster::hdbscan(dist, config_.hdbscan)
                   : cluster::dbscan(dist, config_.dbscan);
    }();

    // Malformed traces (analyzeWithMatrix path: the caller's matrix
    // covers them) are forced out of their clusters; cluster IDs are
    // then compacted so no cluster is left empty.
    std::vector<bool> assigned(n, false);
    for (size_t i = 0; i < n; ++i) {
        if (!errors[i].empty()) {
            clusters.labels[i] = -1;
            out.perTrace[i] = errorVerdict(errors[i]);
            assigned[i] = true;
            ++out.skippedTraces;
        }
    }
    if (out.skippedTraces > 0) {
        std::vector<int> remap(
            static_cast<size_t>(clusters.numClusters), -1);
        int next = 0;
        for (size_t i = 0; i < n; ++i) {
            int c = clusters.labels[i];
            if (c < 0)
                continue;
            if (remap[static_cast<size_t>(c)] < 0)
                remap[static_cast<size_t>(c)] = next++;
            clusters.labels[i] = remap[static_cast<size_t>(c)];
        }
        clusters.numClusters = next;
    }
    out.clusterLabels = clusters.labels;
    out.numClusters = clusters.numClusters;

    // Candidate filter / verdict-cache plumbing for one trace.
    auto allowedFor = [&](size_t i) {
        return allowed != nullptr ? (*allowed)[i] : nullptr;
    };
    auto cachedVerdict = [&](size_t i) -> const RcaResult * {
        return cache != nullptr
                   ? cache->lookupVerdict(traces[i]->traceId, fps[i],
                                          slos[i], candHashes[i])
                   : nullptr;
    };

    // One RCA per cluster representative (geometric median), run in
    // parallel — one verdict slot per cluster is preallocated and each
    // worker writes only its own clusters, so the output is identical
    // at any thread count. The verdict then generalizes to every
    // member. Verdicts memoized by the incremental cache are filled in
    // serially first; only misses run the model.
    obs::ScopedTimer rca_timer(stageHistogram(Stage::Rca));
    std::vector<size_t> reps = cluster::selectRepresentatives(
        clusters.labels, clusters.numClusters, dist);
    const size_t num_clusters = static_cast<size_t>(clusters.numClusters);
    std::vector<RcaResult> verdicts(num_clusters);
    std::vector<size_t> miss_clusters;
    miss_clusters.reserve(num_clusters);
    for (size_t c = 0; c < num_clusters; ++c) {
        if (const RcaResult *hit = cachedVerdict(reps[c]))
            verdicts[c] = *hit;
        else
            miss_clusters.push_back(c);
    }
    engine.pool.parallelFor(miss_clusters.size(), [&](size_t k,
                                                      size_t w) {
        size_t c = miss_clusters[k];
        verdicts[c] = engine.rcaFor(w).analyze(
            *traces[reps[c]], slos[reps[c]], allowedFor(reps[c]));
    });
    if (cache != nullptr)
        for (size_t c : miss_clusters) {
            size_t i = reps[c];
            cache->storeVerdict(traces[i]->traceId, fps[i], slos[i],
                                candHashes[i], verdicts[c]);
        }
    out.rcaInvocations += num_clusters;
    for (int c = 0; c < clusters.numClusters; ++c) {
        size_t rep = reps[static_cast<size_t>(c)];
        for (size_t i = 0; i < n; ++i) {
            if (clusters.labels[i] != c)
                continue;
            // Far-from-representative members do not inherit the
            // verdict; they fall through to individual analysis.
            if (config_.maxRepresentativeDistance > 0.0 && i != rep &&
                dist.at(i, rep) > config_.maxRepresentativeDistance)
                continue;
            out.perTrace[i] = verdicts[static_cast<size_t>(c)];
            assigned[i] = true;
        }
    }
    // Noise traces and far members are analyzed individually, again
    // into preallocated per-trace slots (cache hits first, as above).
    std::vector<size_t> rest;
    for (size_t i = 0; i < n; ++i)
        if (!assigned[i])
            rest.push_back(i);
    std::vector<size_t> miss_rest;
    miss_rest.reserve(rest.size());
    for (size_t i : rest) {
        if (const RcaResult *hit = cachedVerdict(i))
            out.perTrace[i] = *hit;
        else
            miss_rest.push_back(i);
    }
    engine.pool.parallelFor(miss_rest.size(), [&](size_t k, size_t w) {
        size_t i = miss_rest[k];
        out.perTrace[i] = engine.rcaFor(w).analyze(
            *traces[i], slos[i], allowedFor(i));
    });
    if (cache != nullptr)
        for (size_t i : miss_rest)
            cache->storeVerdict(traces[i]->traceId, fps[i], slos[i],
                                candHashes[i], out.perTrace[i]);
    out.rcaInvocations += rest.size();
    static obs::Counter &rcaRuns = obs::counter(
        "sleuth_pipeline_rca_invocations_total",
        "Counterfactual RCA analyses run");
    static obs::Counter &skipped = obs::counter(
        "sleuth_pipeline_skipped_traces_total",
        "Malformed traces skipped by analysis batches");
    rcaRuns.add(miss_clusters.size() + miss_rest.size());
    skipped.add(out.skippedTraces);
    return out;
}

std::vector<std::pair<std::string, size_t>>
aggregateRootCauses(const PipelineResult &result)
{
    // std::map keeps services sorted, so equal vote counts resolve
    // lexicographically after the stable sort below.
    std::map<std::string, size_t> votes;
    for (const RcaResult &r : result.perTrace)
        for (const std::string &svc : r.services)
            ++votes[svc];
    std::vector<std::pair<std::string, size_t>> ranked(votes.begin(),
                                                       votes.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return ranked;
}

} // namespace sleuth::core
