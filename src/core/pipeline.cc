#include "pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "cluster/svdd.h"
#include "obs/metrics.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace sleuth::core {

namespace {

/** Per-stage wall-clock histogram for sleuth_pipeline_stage_ms. */
enum class Stage { Encode, Distance, Cluster, Rca };

obs::Histogram &
stageHistogram(Stage stage)
{
    static const char *name = "sleuth_pipeline_stage_ms";
    static const char *help =
        "Wall-clock milliseconds per pipeline stage per batch";
    static obs::Histogram &encode =
        obs::histogram(name, help, {{"stage", "encode"}});
    static obs::Histogram &distance =
        obs::histogram(name, help, {{"stage", "distance"}});
    static obs::Histogram &cluster =
        obs::histogram(name, help, {{"stage", "cluster"}});
    static obs::Histogram &rca =
        obs::histogram(name, help, {{"stage", "rca"}});
    switch (stage) {
      case Stage::Encode: return encode;
      case Stage::Distance: return distance;
      case Stage::Cluster: return cluster;
      case Stage::Rca: return rca;
    }
    util::panic("invalid pipeline stage");
}

/** Batch entry accounting shared by the analyze* entry points. */
void
countBatch(size_t traces)
{
    static obs::Counter &batches = obs::counter(
        "sleuth_pipeline_batches_total", "Analysis batches started");
    static obs::Counter &traceCount = obs::counter(
        "sleuth_pipeline_traces_total",
        "Traces submitted for analysis");
    batches.add();
    traceCount.add(traces);
}

/** The verdict recorded for a trace the graph builder rejected. */
RcaResult
errorVerdict(const std::string &why)
{
    RcaResult r;
    r.error = "malformed trace: " + why;
    return r;
}

/**
 * Validate every trace with TraceGraph::tryBuild; errors[i] is empty
 * for well-formed traces and holds the first defect otherwise.
 */
std::vector<std::string>
validateTraces(const std::vector<trace::Trace> &traces,
               util::ThreadPool &pool)
{
    std::vector<std::string> errors(traces.size());
    pool.parallelFor(traces.size(), [&](size_t i, size_t) {
        trace::TraceGraph g;
        std::string err;
        if (!trace::TraceGraph::tryBuild(traces[i], &g, &err))
            errors[i] = err;
    });
    return errors;
}

/**
 * Int8 trace signature for the quantization ablation: the L2-normalized
 * sum of each span's semantic embedding, quantized to int8. The sum and
 * normalization use only elementwise kernels (bitwise-stable under any
 * SIMD dispatch) and a strictly sequential norm reduction, so the
 * signature — and every distance derived from it, being an exact
 * integer dot — is independent of ISA and thread count.
 */
embed::QuantizedEmbedding
traceSignature(const trace::Trace &t, FeatureEncoder &enc)
{
    embed::TextEmbedder &emb = enc.embedder();
    const size_t dim = emb.dim();
    std::vector<double> acc(dim, 0.0);
    for (const trace::Span &s : t.spans) {
        const std::vector<double> &e =
            emb.embed(s.service + " " + s.name + " " + toString(s.kind));
        simd::add(acc.data(), e.data(), dim);
    }
    double norm2 = 0.0;
    for (double v : acc)
        norm2 += v * v;
    if (norm2 > 0.0)
        simd::div(acc.data(), std::sqrt(norm2), dim);
    return embed::TextEmbedder::quantize(acc);
}

/** Packed 1 − cosine matrix over int8 signatures (exact integer math). */
distance::DistanceMatrix
int8DistanceMatrix(const std::vector<embed::QuantizedEmbedding> &sigs)
{
    return distance::DistanceMatrix::compute(
        sigs.size(), [&](size_t i, size_t j) {
            return std::max(0.0, 1.0 - embed::TextEmbedder::cosineQuantized(
                                           sigs[i], sigs[j]));
        });
}

} // namespace

/**
 * Per-batch parallel engine. Worker 0 (the calling thread) reuses the
 * pipeline's shared FeatureEncoder so its embedding cache stays warm
 * across batches; every additional worker owns a private encoder —
 * the token-hash embedding is a pure function of the input string, so
 * a cold cache changes cost, never results — because the cache inside
 * TextEmbedder is the one piece of shared mutable state the
 * const-correctness audit found on the RCA path (NormalProfile and
 * SleuthGnn are read-only after construction and safely shared).
 */
struct SleuthPipeline::Engine
{
    /** Private encoder + RCA for one spawned worker. */
    struct PerWorker
    {
        FeatureEncoder encoder;
        CounterfactualRca rca;

        explicit PerWorker(const SleuthPipeline &p)
            : encoder(p.encoder_.embedder().dim(), p.encoder_.scale()),
              rca(p.model_, encoder, p.profile_, p.config_.rca)
        {
        }
    };

    util::ThreadPool pool;
    FeatureEncoder &encoder0;
    CounterfactualRca rca0;
    std::vector<std::unique_ptr<PerWorker>> extra;

    explicit Engine(const SleuthPipeline &p)
        : pool(util::ThreadPool::resolveThreads(p.config_.numThreads)),
          encoder0(p.encoder_),
          rca0(p.model_, p.encoder_, p.profile_, p.config_.rca)
    {
        extra.reserve(pool.size() - 1);
        for (size_t w = 1; w < pool.size(); ++w)
            extra.push_back(std::make_unique<PerWorker>(p));
    }

    CounterfactualRca &
    rcaFor(size_t worker)
    {
        return worker == 0 ? rca0 : extra[worker - 1]->rca;
    }

    FeatureEncoder &
    encoderFor(size_t worker)
    {
        return worker == 0 ? encoder0 : extra[worker - 1]->encoder;
    }
};

SleuthPipeline::SleuthPipeline(const SleuthGnn &model,
                               FeatureEncoder &encoder,
                               const NormalProfile &profile,
                               PipelineConfig config)
    : model_(model), encoder_(encoder), profile_(profile),
      config_(config)
{
}

PipelineResult
SleuthPipeline::analyze(const std::vector<trace::Trace> &traces,
                        const std::vector<int64_t> &slos) const
{
    if (!config_.clustering)
        return analyzeIndividually(traces, slos);
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    Engine engine(*this);
    const size_t n = traces.size();

    // Default distance: weighted-Jaccard over encoded span sets,
    // pre-encoded once per trace, then memoized into one packed matrix
    // per batch (paper Eq. 1). Encoding validates each trace;
    // malformed ones are compacted out so they neither crash the batch
    // nor distort clustering.
    countBatch(n);
    const bool int8dist =
        config_.traceDistance ==
        PipelineConfig::TraceDistanceKind::EmbeddingCosineInt8;
    std::vector<std::string> errors(n);
    std::vector<distance::WeightedSpanSet> sets(int8dist ? 0 : n);
    std::vector<embed::QuantizedEmbedding> sigs(int8dist ? n : 0);
    {
        obs::ScopedTimer timer(stageHistogram(Stage::Encode));
        engine.pool.parallelFor(n, [&](size_t i, size_t w) {
            trace::TraceGraph g;
            std::string err;
            if (!trace::TraceGraph::tryBuild(traces[i], &g, &err)) {
                errors[i] = err;
                return;
            }
            // Per-worker encoders: the embedding is a pure function of
            // the string, so private caches change cost, not results.
            if (int8dist)
                sigs[i] =
                    traceSignature(traces[i], engine.encoderFor(w));
            else
                sets[i] = distance::encodeSpanSet(
                    traces[i], g, config_.distanceOpts);
        });
    }

    std::vector<size_t> valid;
    valid.reserve(n);
    for (size_t i = 0; i < n; ++i)
        if (errors[i].empty())
            valid.push_back(i);

    if (valid.size() == n) {
        std::vector<const trace::Trace *> ptrs(n);
        for (size_t i = 0; i < n; ++i)
            ptrs[i] = &traces[i];
        distance::DistanceMatrix dist = [&] {
            obs::ScopedTimer timer(stageHistogram(Stage::Distance));
            return int8dist ? int8DistanceMatrix(sigs)
                            : distance::DistanceMatrix::fromSpanSets(
                                  sets, &engine.pool);
        }();
        return analyzeCore(ptrs, slos, dist, errors, engine);
    }

    // Compact the well-formed subset, analyze it, scatter back.
    std::vector<const trace::Trace *> ptrs;
    std::vector<int64_t> sub_slos;
    std::vector<distance::WeightedSpanSet> sub_sets;
    std::vector<embed::QuantizedEmbedding> sub_sigs;
    ptrs.reserve(valid.size());
    sub_slos.reserve(valid.size());
    sub_sets.reserve(int8dist ? 0 : valid.size());
    sub_sigs.reserve(int8dist ? valid.size() : 0);
    for (size_t i : valid) {
        ptrs.push_back(&traces[i]);
        sub_slos.push_back(slos[i]);
        if (int8dist)
            sub_sigs.push_back(std::move(sigs[i]));
        else
            sub_sets.push_back(std::move(sets[i]));
    }
    distance::DistanceMatrix sub_dist = [&] {
        obs::ScopedTimer timer(stageHistogram(Stage::Distance));
        return int8dist ? int8DistanceMatrix(sub_sigs)
                        : distance::DistanceMatrix::fromSpanSets(
                              sub_sets, &engine.pool);
    }();
    PipelineResult sub =
        analyzeCore(ptrs, sub_slos, sub_dist,
                    std::vector<std::string>(valid.size()), engine);

    PipelineResult out;
    out.perTrace.resize(n);
    out.clusterLabels.assign(n, -1);
    out.numClusters = sub.numClusters;
    out.rcaInvocations = sub.rcaInvocations;
    out.distanceEvaluations = sub.distanceEvaluations;
    out.skippedTraces = n - valid.size();
    for (size_t k = 0; k < valid.size(); ++k) {
        out.perTrace[valid[k]] = std::move(sub.perTrace[k]);
        out.clusterLabels[valid[k]] = sub.clusterLabels[k];
    }
    for (size_t i = 0; i < n; ++i)
        if (!errors[i].empty())
            out.perTrace[i] = errorVerdict(errors[i]);
    return out;
}

PipelineResult
SleuthPipeline::analyzeWithDistance(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos,
    const std::function<double(size_t, size_t)> &dist) const
{
    if (!config_.clustering)
        return analyzeIndividually(traces, slos);
    return analyzeWithMatrix(
        traces, slos,
        distance::DistanceMatrix::compute(traces.size(), dist));
}

PipelineResult
SleuthPipeline::analyzeIndividually(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    countBatch(traces.size());
    PipelineResult out;
    const size_t n = traces.size();
    out.perTrace.resize(n);
    out.clusterLabels.assign(n, -1);
    Engine engine(*this);
    std::vector<std::string> errors =
        validateTraces(traces, engine.pool);
    std::vector<size_t> valid;
    valid.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (errors[i].empty())
            valid.push_back(i);
        else
            out.perTrace[i] = errorVerdict(errors[i]);
    }
    {
        obs::ScopedTimer timer(stageHistogram(Stage::Rca));
        engine.pool.parallelFor(valid.size(), [&](size_t k, size_t w) {
            size_t i = valid[k];
            out.perTrace[i] =
                engine.rcaFor(w).analyze(traces[i], slos[i]);
        });
    }
    out.rcaInvocations = valid.size();
    out.skippedTraces = n - valid.size();
    return out;
}

PipelineResult
SleuthPipeline::analyzeWithMatrix(
    const std::vector<trace::Trace> &traces,
    const std::vector<int64_t> &slos,
    const distance::DistanceMatrix &dist) const
{
    SLEUTH_ASSERT(traces.size() == slos.size(),
                  "trace/slo count mismatch");
    SLEUTH_ASSERT(dist.size() == traces.size(),
                  "distance matrix / trace count mismatch");
    countBatch(traces.size());
    Engine engine(*this);
    std::vector<const trace::Trace *> ptrs(traces.size());
    for (size_t i = 0; i < traces.size(); ++i)
        ptrs[i] = &traces[i];
    return analyzeCore(ptrs, slos, dist,
                       validateTraces(traces, engine.pool), engine);
}

PipelineResult
SleuthPipeline::analyzeCore(
    const std::vector<const trace::Trace *> &traces,
    const std::vector<int64_t> &slos,
    const distance::DistanceMatrix &dist,
    const std::vector<std::string> &errors, Engine &engine) const
{
    SLEUTH_ASSERT(dist.size() == traces.size(),
                  "distance matrix / trace count mismatch");
    const size_t n = traces.size();
    PipelineResult out;
    out.perTrace.resize(n);
    out.clusterLabels.assign(n, -1);
    if (n == 0)
        return out;
    // Distance work is accounted over the well-formed traces only, so
    // the analyzeWithMatrix path (whose caller-provided matrix covers
    // malformed rows too) reports the same m(m-1)/2 the compacted
    // analyze() path does for the same batch.
    size_t well_formed = 0;
    for (size_t i = 0; i < n; ++i)
        if (errors[i].empty())
            ++well_formed;
    out.distanceEvaluations =
        well_formed * (well_formed > 0 ? well_formed - 1 : 0) / 2;

    cluster::ClusterResult clusters = [&] {
        obs::ScopedTimer timer(stageHistogram(Stage::Cluster));
        return config_.algorithm == PipelineConfig::Algorithm::Hdbscan
                   ? cluster::hdbscan(dist, config_.hdbscan)
                   : cluster::dbscan(dist, config_.dbscan);
    }();

    // Malformed traces (analyzeWithMatrix path: the caller's matrix
    // covers them) are forced out of their clusters; cluster IDs are
    // then compacted so no cluster is left empty.
    std::vector<bool> assigned(n, false);
    for (size_t i = 0; i < n; ++i) {
        if (!errors[i].empty()) {
            clusters.labels[i] = -1;
            out.perTrace[i] = errorVerdict(errors[i]);
            assigned[i] = true;
            ++out.skippedTraces;
        }
    }
    if (out.skippedTraces > 0) {
        std::vector<int> remap(
            static_cast<size_t>(clusters.numClusters), -1);
        int next = 0;
        for (size_t i = 0; i < n; ++i) {
            int c = clusters.labels[i];
            if (c < 0)
                continue;
            if (remap[static_cast<size_t>(c)] < 0)
                remap[static_cast<size_t>(c)] = next++;
            clusters.labels[i] = remap[static_cast<size_t>(c)];
        }
        clusters.numClusters = next;
    }
    out.clusterLabels = clusters.labels;
    out.numClusters = clusters.numClusters;

    // One RCA per cluster representative (geometric median), run in
    // parallel — one verdict slot per cluster is preallocated and each
    // worker writes only its own clusters, so the output is identical
    // at any thread count. The verdict then generalizes to every
    // member.
    obs::ScopedTimer rca_timer(stageHistogram(Stage::Rca));
    std::vector<size_t> reps = cluster::selectRepresentatives(
        clusters.labels, clusters.numClusters, dist);
    const size_t num_clusters = static_cast<size_t>(clusters.numClusters);
    std::vector<RcaResult> verdicts(num_clusters);
    engine.pool.parallelFor(num_clusters, [&](size_t c, size_t w) {
        verdicts[c] =
            engine.rcaFor(w).analyze(*traces[reps[c]], slos[reps[c]]);
    });
    out.rcaInvocations += num_clusters;
    for (int c = 0; c < clusters.numClusters; ++c) {
        size_t rep = reps[static_cast<size_t>(c)];
        for (size_t i = 0; i < n; ++i) {
            if (clusters.labels[i] != c)
                continue;
            // Far-from-representative members do not inherit the
            // verdict; they fall through to individual analysis.
            if (config_.maxRepresentativeDistance > 0.0 && i != rep &&
                dist.at(i, rep) > config_.maxRepresentativeDistance)
                continue;
            out.perTrace[i] = verdicts[static_cast<size_t>(c)];
            assigned[i] = true;
        }
    }
    // Noise traces and far members are analyzed individually, again
    // into preallocated per-trace slots.
    std::vector<size_t> rest;
    for (size_t i = 0; i < n; ++i)
        if (!assigned[i])
            rest.push_back(i);
    engine.pool.parallelFor(rest.size(), [&](size_t k, size_t w) {
        size_t i = rest[k];
        out.perTrace[i] =
            engine.rcaFor(w).analyze(*traces[i], slos[i]);
    });
    out.rcaInvocations += rest.size();
    static obs::Counter &rcaRuns = obs::counter(
        "sleuth_pipeline_rca_invocations_total",
        "Counterfactual RCA analyses run");
    static obs::Counter &skipped = obs::counter(
        "sleuth_pipeline_skipped_traces_total",
        "Malformed traces skipped by analysis batches");
    rcaRuns.add(out.rcaInvocations);
    skipped.add(out.skippedTraces);
    return out;
}

std::vector<std::pair<std::string, size_t>>
aggregateRootCauses(const PipelineResult &result)
{
    // std::map keeps services sorted, so equal vote counts resolve
    // lexicographically after the stable sort below.
    std::map<std::string, size_t> votes;
    for (const RcaResult &r : result.perTrace)
        for (const std::string &svc : r.services)
            ++votes[svc];
    std::vector<std::pair<std::string, size_t>> ranked(votes.begin(),
                                                       votes.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return ranked;
}

} // namespace sleuth::core
