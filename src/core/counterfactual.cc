#include "counterfactual.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace sleuth::core {

CounterfactualRca::CounterfactualRca(const SleuthGnn &model,
                                     FeatureEncoder &encoder,
                                     const NormalProfile &profile,
                                     RcaParams params)
    : model_(model), encoder_(encoder), profile_(profile),
      params_(params)
{
}

std::vector<CandidateScore>
rankCandidateServices(const trace::Trace &trace,
                      const trace::TraceGraph &graph,
                      const trace::ExclusiveMetrics &metrics,
                      const NormalProfile &profile, double err_weight)
{
    // Rank candidate services by exclusive errors + excess exclusive
    // duration of their affiliated spans (§3.5). A client span
    // affiliates with the callee's service too, because network faults
    // in the child service surface on the client side only.
    const size_t n = trace.spans.size();
    // Hashed accumulation: per-service sums are added in span order
    // either way, and the final sort below is a strict total order, so
    // the container choice cannot change the result — only the cost
    // (this runs per trace in the pruner's planning pass).
    std::unordered_map<std::string, double> score;
    score.reserve(n);
    auto add_score = [&](const std::string &svc, double excess,
                         bool excl_err) {
        score[svc] += excess + (excl_err ? err_weight : 0.0);
    };
    for (size_t i = 0; i < n; ++i) {
        const trace::Span &s = trace.spans[i];
        double excess = std::max(
            0.0, static_cast<double>(metrics.exclusiveUs[i]) -
                     profile.medianExclusiveUs(s.service, s.name,
                                               s.kind));
        add_score(s.service, excess, metrics.exclusiveError[i]);
        if (s.kind == trace::SpanKind::Client ||
            s.kind == trace::SpanKind::Producer) {
            for (int c : graph.children(static_cast<int>(i))) {
                const trace::Span &child =
                    trace.spans[static_cast<size_t>(c)];
                if (child.service != s.service)
                    add_score(child.service, excess,
                              metrics.exclusiveError[i]);
            }
        }
    }
    std::vector<CandidateScore> ranked;
    ranked.reserve(score.size());
    for (const auto &[svc, sc] : score)
        ranked.push_back({svc, sc});
    std::sort(ranked.begin(), ranked.end(),
              [](const CandidateScore &a, const CandidateScore &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.service < b.service;
    });
    while (!ranked.empty() && ranked.back().score <= 0.0)
        ranked.pop_back();
    return ranked;
}

RcaResult
CounterfactualRca::analyze(const trace::Trace &trace, int64_t slo_us,
                           const std::vector<std::string> *allowed) const
{
    RcaResult result;
    trace::TraceGraph graph = trace::TraceGraph::build(trace);
    trace::ExclusiveMetrics metrics =
        trace::computeExclusive(trace, graph);
    TraceBatch batch = encoder_.encode(trace);
    const size_t n = trace.spans.size();

    double err_weight = params_.errorWeightUs > 0.0
        ? params_.errorWeightUs
        : static_cast<double>(std::max<int64_t>(slo_us, 1));
    std::vector<CandidateScore> ranked =
        rankCandidateServices(trace, graph, metrics, profile_,
                              err_weight);
    // Candidate pre-pruning (DESIGN.md §3.14): the restoration loop
    // only considers allowed services. The relative order of survivors
    // is untouched, so a filter covering every ranked candidate leaves
    // the verdict bit-for-bit unchanged.
    if (allowed != nullptr) {
        ranked.erase(
            std::remove_if(ranked.begin(), ranked.end(),
                           [&](const CandidateScore &c) {
                               return !std::binary_search(
                                   allowed->begin(), allowed->end(),
                                   c.service);
                           }),
            ranked.end());
    }
    if (ranked.empty())
        return result;

    // --- Iteratively restore services and ask the counterfactual. ---
    std::vector<NodeState> observed(n);
    for (size_t i = 0; i < n; ++i) {
        observed[i].exclusiveUs =
            static_cast<double>(metrics.exclusiveUs[i]);
        observed[i].exclusiveErr =
            metrics.exclusiveError[i] ? 1.0 : 0.0;
    }

    // Bias correction: compare counterfactual predictions against the
    // SLO scaled by the model's own reconstruction bias on this trace,
    // so a systematic over/under-prediction cancels out of the test.
    TracePrediction baseline = model_.propagate(batch, graph, observed);
    double actual_root = static_cast<double>(
        std::max<int64_t>(trace.rootDurationUs(), 1));
    double bias = params_.biasCorrection
        ? std::clamp(baseline.rootDurationUs / actual_root, 0.2, 5.0)
        : 1.0;
    double adjusted_slo = static_cast<double>(std::max<int64_t>(
                              slo_us, 1)) *
                          bias * params_.sloSlack;

    size_t limit = std::min(params_.maxRootCauses, ranked.size());
    std::set<std::string> restored;
    for (size_t k = 0; k < limit; ++k) {
        restored.insert(ranked[k].service);
        result.services.push_back(ranked[k].service);

        std::vector<NodeState> states = observed;
        std::vector<int> dirty;
        for (size_t i = 0; i < n; ++i) {
            const trace::Span &s = trace.spans[i];
            bool restore = restored.count(s.service) > 0;
            if (!restore && (s.kind == trace::SpanKind::Client ||
                             s.kind == trace::SpanKind::Producer)) {
                // Client-side symptoms clear when the callee recovers.
                for (int c : graph.children(static_cast<int>(i)))
                    restore |= restored.count(
                        trace.spans[static_cast<size_t>(c)].service) >
                        0;
            }
            if (!restore)
                continue;
            double normal = profile_.medianExclusiveUs(
                s.service, s.name, s.kind);
            states[i].exclusiveUs =
                std::min(states[i].exclusiveUs, normal);
            states[i].exclusiveErr = 0.0;
            if (states[i].exclusiveUs != observed[i].exclusiveUs ||
                states[i].exclusiveErr != observed[i].exclusiveErr)
                dirty.push_back(static_cast<int>(i));
        }

        TracePrediction pred = params_.incrementalPropagation
            ? model_.propagateFrom(batch, graph, states, baseline,
                                   dirty)
            : model_.propagate(batch, graph, states);
        ++result.iterations;
        bool latency_ok = pred.rootDurationUs <= adjusted_slo;
        // Error check: model-predicted recovery, or — analytically —
        // no exclusive error remains anywhere after the restoration,
        // so the trace has no error origin left.
        bool residual_excl_err = false;
        for (const NodeState &st : states)
            residual_excl_err |= st.exclusiveErr > 0.5;
        bool error_ok =
            pred.rootErrorProb < params_.errorThreshold ||
            pred.rootErrorProb < 0.5 * baseline.rootErrorProb ||
            !residual_excl_err;
        if (latency_ok && error_ok) {
            result.resolved = true;
            break;
        }
    }

    // --- Locate pods/nodes/containers of the implicated services. ---
    std::set<std::string> svc_set(result.services.begin(),
                                  result.services.end());
    for (const trace::Span &s : trace.spans) {
        if (!svc_set.count(s.service))
            continue;
        if (!s.pod.empty())
            result.pods.insert(s.pod);
        if (!s.node.empty())
            result.nodes.insert(s.node);
        if (!s.container.empty())
            result.containers.insert(s.container);
    }
    return result;
}

} // namespace sleuth::core
