#pragma once

/**
 * @file
 * Root cause analysis with counterfactual queries (paper §3.5).
 *
 * A counterfactual query asks: would this trace still violate its SLO
 * if a chosen set of services were restored to their normal state
 * (exclusive durations at their medians, exclusive errors cleared)?
 * Sleuth ranks candidate services by their aggregate exclusive error
 * count and excess exclusive duration, then iteratively restores them —
 * re-running the GNN bottom-up each time — until the trace is predicted
 * normal; the restored services are the root causes. Root-cause pods,
 * nodes, and containers follow from the span resource attributes of the
 * implicated services.
 */

#include <set>
#include <string>
#include <vector>

#include "core/gnn.h"

namespace sleuth::core {

/** RCA knobs. */
struct RcaParams
{
    /** Predicted root error probability treated as anomalous. */
    double errorThreshold = 0.5;
    /**
     * Scale the SLO test by the model's reconstruction bias on the
     * analyzed trace (off = compare raw predictions against the SLO;
     * kept as a switch for the ablation study).
     */
    bool biasCorrection = true;
    /** Give up after restoring this many services. */
    size_t maxRootCauses = 5;
    /**
     * Multiplicative slack on the bias-corrected SLO test: residual
     * model error after bias correction would otherwise keep marginal
     * traces "abnormal" forever and pile up false positives.
     */
    double sloSlack = 1.15;
    /**
     * Weight of one exclusive error in the candidate ranking,
     * expressed as equivalent microseconds of excess duration; 0 uses
     * the trace's SLO.
     */
    double errorWeightUs = 0.0;
    /**
     * Answer each counterfactual with SleuthGnn::propagateFrom —
     * re-evaluating only the restored spans and their ancestor chains
     * against the memoized baseline — instead of re-running the full
     * bottom-up pass per candidate. Numerically identical verdicts
     * (the recomputed closure is exact); kept as a switch for the
     * perf ablation.
     */
    bool incrementalPropagation = true;
};

/** Output of one RCA query. */
struct RcaResult
{
    /** Predicted root-cause services, in restoration order. */
    std::vector<std::string> services;
    /** Pods hosting the implicated services in this trace. */
    std::set<std::string> pods;
    /** Nodes hosting the implicated services in this trace. */
    std::set<std::string> nodes;
    /** Containers hosting the implicated services in this trace. */
    std::set<std::string> containers;
    /** Counterfactual iterations executed. */
    size_t iterations = 0;
    /** True when restoring the services made the trace normal. */
    bool resolved = false;
    /**
     * Non-empty when the trace could not be analyzed at all (malformed
     * input skipped by the pipeline: cycle, missing root, unresolved
     * parentSpanId, ...). All other fields are empty/false then.
     */
    std::string error;
};

/** One candidate service and its interpretable suspicion score. */
struct CandidateScore
{
    std::string service;
    double score = 0.0;
};

/**
 * Rank a trace's candidate root-cause services by aggregate exclusive
 * error count and excess exclusive duration (§3.5) — the exact list
 * the counterfactual restoration loop iterates, nonpositive scores
 * dropped, ties broken lexicographically. Exposed so the RcaPruner can
 * compute a candidate set that is by construction a superset of every
 * service the RCA could restore (the conservative-mode guarantee,
 * DESIGN.md §3.14).
 *
 * @param err_weight microseconds of excess duration one exclusive
 *        error is worth (RcaParams::errorWeightUs resolution applied
 *        by the caller)
 */
std::vector<CandidateScore>
rankCandidateServices(const trace::Trace &trace,
                      const trace::TraceGraph &graph,
                      const trace::ExclusiveMetrics &metrics,
                      const NormalProfile &profile, double err_weight);

/** Counterfactual root cause analyzer. */
class CounterfactualRca
{
  public:
    /**
     * @param model trained Sleuth GNN (held by reference)
     * @param encoder feature encoder (shared embedding cache)
     * @param profile normal-state profile for interventions
     * @param params RCA knobs
     */
    CounterfactualRca(const SleuthGnn &model, FeatureEncoder &encoder,
                      const NormalProfile &profile,
                      RcaParams params = {});

    /**
     * Locate the root causes of an anomalous trace.
     *
     * @param trace the anomalous trace
     * @param slo_us the latency SLO the trace is held against
     * @param allowed optional sorted candidate filter (RcaPruner): the
     *        restoration loop only considers services in the list.
     *        nullptr = every ranked candidate is eligible. A filter
     *        containing every positively-scored candidate reproduces
     *        the unfiltered verdict exactly (DESIGN.md §3.14).
     */
    RcaResult analyze(const trace::Trace &trace, int64_t slo_us,
                      const std::vector<std::string> *allowed =
                          nullptr) const;

  private:
    const SleuthGnn &model_;
    FeatureEncoder &encoder_;
    const NormalProfile &profile_;
    RcaParams params_;
};

} // namespace sleuth::core
