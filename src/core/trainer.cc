#include "trainer.h"

#include <numeric>

namespace sleuth::core {

Trainer::Trainer(SleuthGnn &model, FeatureEncoder &encoder,
                 TrainConfig config)
    : model_(model), encoder_(encoder), config_(config),
      optimizer_(model.parameters(), config.learningRate),
      rng_(config.seed ^ 0x7e41u)
{
    SLEUTH_ASSERT(config_.tracesPerBatch >= 1);
}

double
Trainer::trainEpoch(const std::vector<trace::Trace> &corpus)
{
    SLEUTH_ASSERT(!corpus.empty(), "empty training corpus");
    std::vector<size_t> order(corpus.size());
    std::iota(order.begin(), order.end(), 0);
    rng_.shuffle(order);

    double total = 0.0;
    size_t batches = 0;
    for (size_t at = 0; at < order.size();
         at += config_.tracesPerBatch) {
        std::vector<const trace::Trace *> batch_traces;
        for (size_t k = at;
             k < std::min(order.size(), at + config_.tracesPerBatch);
             ++k)
            batch_traces.push_back(&corpus[order[k]]);
        TraceBatch batch = encoder_.encode(batch_traces);
        nn::Var loss = model_.loss(batch);
        nn::backward(loss);
        nn::clipGradNorm(model_.parameters(), config_.gradClip);
        optimizer_.step();
        total += loss->value().item();
        ++batches;
    }
    return total / static_cast<double>(batches);
}

double
Trainer::train(const std::vector<trace::Trace> &corpus)
{
    double last = 0.0;
    for (int e = 0; e < config_.epochs; ++e)
        last = trainEpoch(corpus);
    return last;
}

double
Trainer::evaluate(const std::vector<trace::Trace> &corpus)
{
    SLEUTH_ASSERT(!corpus.empty(), "empty evaluation corpus");
    double total = 0.0;
    size_t batches = 0;
    for (size_t at = 0; at < corpus.size();
         at += config_.tracesPerBatch) {
        std::vector<const trace::Trace *> batch_traces;
        for (size_t k = at;
             k < std::min(corpus.size(), at + config_.tracesPerBatch);
             ++k)
            batch_traces.push_back(&corpus[k]);
        TraceBatch batch = encoder_.encode(batch_traces);
        total += model_.loss(batch)->value().item();
        ++batches;
    }
    return total / static_cast<double>(batches);
}

} // namespace sleuth::core
