#include "pipeline_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/strings.h"

namespace sleuth::core {

namespace {

/** Cache-traffic counter, labelled by layer and outcome. */
obs::Counter &
cacheCounter(const char *layer, const char *outcome)
{
    return obs::counter("sleuth_pipeline_cache_events_total",
                        "Incremental pipeline cache traffic",
                        {{"layer", layer}, {"outcome", outcome}});
}

uint64_t
mix(uint64_t h, uint64_t v)
{
    // splitmix64-style combine: cheap, well-distributed, stable.
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

uint64_t
mixString(uint64_t h, const std::string &s)
{
    return mix(h, util::fnv1a(s));
}

} // namespace

PipelineCache::PipelineCache() : PipelineCache(Config{})
{
}

PipelineCache::PipelineCache(Config config) : config_(config)
{
}

uint64_t
PipelineCache::fingerprint(const trace::Trace &t)
{
    uint64_t h = mixString(0x5175e1a7ull, t.traceId);
    h = mix(h, t.spans.size());
    for (const trace::Span &s : t.spans) {
        h = mixString(h, s.spanId);
        h = mixString(h, s.parentSpanId);
        h = mixString(h, s.service);
        h = mixString(h, s.name);
        h = mix(h, static_cast<uint64_t>(s.kind));
        h = mix(h, static_cast<uint64_t>(s.startUs));
        h = mix(h, static_cast<uint64_t>(s.endUs));
        h = mix(h, static_cast<uint64_t>(s.status));
        h = mixString(h, s.container);
        h = mixString(h, s.pod);
        h = mixString(h, s.node);
    }
    return h;
}

uint64_t
PipelineCache::pairKey(uint32_t a, uint32_t b)
{
    uint32_t lo = std::min(a, b);
    uint32_t hi = std::max(a, b);
    return (static_cast<uint64_t>(hi) << 32) | lo;
}

void
PipelineCache::beginBatch()
{
    ++generation_;
    // Age-based retention: entries untouched for maxGenerations
    // batches (store-evicted traces stop appearing in snapshots and
    // age out here), then capacity retention oldest-generation first.
    std::vector<std::string> stale;
    for (const auto &[id, e] : entries_)
        if (e.lastGen + config_.maxGenerations < generation_)
            stale.push_back(id);
    std::vector<uint32_t> dropped;
    for (const std::string &id : stale) {
        dropped.push_back(entries_[id].encId);
        entries_.erase(id);
        ++stats_.evictions;
        cacheCounter("entry", "evicted").add();
    }
    if (entries_.size() > config_.maxTraces) {
        // Deterministic victim order: (lastGen, traceId).
        std::vector<std::pair<uint64_t, std::string>> order;
        order.reserve(entries_.size());
        for (const auto &[id, e] : entries_)
            order.push_back({e.lastGen, id});
        std::sort(order.begin(), order.end());
        size_t excess = entries_.size() - config_.maxTraces;
        for (size_t i = 0; i < excess; ++i) {
            dropped.push_back(entries_[order[i].second].encId);
            entries_.erase(order[i].second);
            ++stats_.evictions;
            cacheCounter("entry", "evicted").add();
        }
    }
    dropPairsOf(dropped);
}

void
PipelineCache::dropPairsOf(const std::vector<uint32_t> &encIds)
{
    if (encIds.empty() || pairs_.empty())
        return;
    std::vector<char> gone; // dense membership by encoding id
    uint32_t max_id = 0;
    for (uint32_t id : encIds)
        max_id = std::max(max_id, id);
    gone.assign(static_cast<size_t>(max_id) + 1, 0);
    for (uint32_t id : encIds)
        gone[id] = 1;
    auto is_gone = [&](uint32_t id) {
        return id < gone.size() && gone[id];
    };
    for (auto it = pairs_.begin(); it != pairs_.end();) {
        uint32_t lo = static_cast<uint32_t>(it->first);
        uint32_t hi = static_cast<uint32_t>(it->first >> 32);
        if (is_gone(lo) || is_gone(hi))
            it = pairs_.erase(it);
        else
            ++it;
    }
}

void
PipelineCache::eraseEntry(const std::string &traceId, bool invalidated)
{
    auto it = entries_.find(traceId);
    if (it == entries_.end())
        return;
    std::vector<uint32_t> dropped{it->second.encId};
    entries_.erase(it);
    if (invalidated) {
        ++stats_.invalidations;
        cacheCounter("entry", "invalidated").add();
    }
    dropPairsOf(dropped);
}

const distance::WeightedSpanSet *
PipelineCache::lookupEncoding(const std::string &traceId, uint64_t fp,
                              uint32_t *encId)
{
    auto it = entries_.find(traceId);
    if (it != entries_.end() && it->second.fp != fp) {
        // The trace mutated between polls (new span, changed error
        // flag, ...): everything derived from it is stale.
        eraseEntry(traceId, /*invalidated=*/true);
        it = entries_.end();
    }
    if (it == entries_.end() || !it->second.hasSet) {
        ++stats_.encodingMisses;
        cacheCounter("encoding", "miss").add();
        return nullptr;
    }
    it->second.lastGen = generation_;
    ++stats_.encodingHits;
    cacheCounter("encoding", "hit").add();
    *encId = it->second.encId;
    return &it->second.set;
}

void
PipelineCache::storeEncoding(const std::string &traceId, uint64_t fp,
                             distance::WeightedSpanSet set,
                             uint32_t *encId)
{
    Entry &e = entries_[traceId];
    if (e.encId == 0)
        e.encId = nextEncId_++;
    e.fp = fp;
    e.lastGen = generation_;
    e.hasSet = true;
    e.set = std::move(set);
    *encId = e.encId;
}

bool
PipelineCache::lookupDistance(uint32_t a, uint32_t b, double *out)
{
    auto it = pairs_.find(pairKey(a, b));
    if (it == pairs_.end()) {
        ++stats_.distanceMisses;
        return false;
    }
    ++stats_.distanceHits;
    *out = it->second;
    return true;
}

void
PipelineCache::storeDistance(uint32_t a, uint32_t b, double d)
{
    pairs_[pairKey(a, b)] = d;
}

const distance::DistanceMatrix *
PipelineCache::lookupMatrixPrefix(const std::vector<uint32_t> &encIds,
                                  size_t *prefixLen)
{
    const size_t k = matrixEncIds_.size();
    if (k < 2 || k > encIds.size() ||
        !std::equal(matrixEncIds_.begin(), matrixEncIds_.end(),
                    encIds.begin())) {
        cacheCounter("matrix", "miss").add();
        return nullptr;
    }
    ++stats_.matrixPrefixHits;
    cacheCounter("matrix", "hit").add();
    *prefixLen = k;
    return &matrix_;
}

void
PipelineCache::storeMatrix(const std::vector<uint32_t> &encIds,
                           const distance::DistanceMatrix &m)
{
    if (encIds.size() < 2 || encIds.size() > config_.maxMatrixTraces)
        return;
    matrixEncIds_ = encIds;
    matrix_ = m;
}

const RcaResult *
PipelineCache::lookupVerdict(const std::string &traceId, uint64_t fp,
                             int64_t sloUs, uint64_t candidatesHash)
{
    auto it = entries_.find(traceId);
    if (it != entries_.end() && it->second.fp != fp) {
        eraseEntry(traceId, /*invalidated=*/true);
        it = entries_.end();
    }
    if (it == entries_.end()) {
        ++stats_.verdictMisses;
        cacheCounter("verdict", "miss").add();
        return nullptr;
    }
    auto v = it->second.verdicts.find({sloUs, candidatesHash});
    if (v == it->second.verdicts.end()) {
        ++stats_.verdictMisses;
        cacheCounter("verdict", "miss").add();
        return nullptr;
    }
    it->second.lastGen = generation_;
    ++stats_.verdictHits;
    cacheCounter("verdict", "hit").add();
    return &v->second;
}

void
PipelineCache::storeVerdict(const std::string &traceId, uint64_t fp,
                            int64_t sloUs, uint64_t candidatesHash,
                            RcaResult verdict)
{
    Entry &e = entries_[traceId];
    if (e.encId == 0)
        e.encId = nextEncId_++;
    e.fp = fp;
    e.lastGen = generation_;
    e.verdicts[{sloUs, candidatesHash}] = std::move(verdict);
}

const PipelineResult *
PipelineCache::lookupBatch(uint64_t batchKey)
{
    if (batchResult_ == nullptr || batchKey_ != batchKey) {
        cacheCounter("batch", "miss").add();
        return nullptr;
    }
    ++stats_.batchHits;
    cacheCounter("batch", "hit").add();
    return batchResult_.get();
}

void
PipelineCache::storeBatch(uint64_t batchKey,
                          const PipelineResult &result)
{
    batchKey_ = batchKey;
    batchResult_ = std::make_unique<PipelineResult>(result);
}

} // namespace sleuth::core
