#pragma once

/**
 * @file
 * Anomaly detection front end (paper §3.1: Sleuth "fetches abnormal
 * traces from the database" before clustering + RCA).
 *
 * Two detectors are provided:
 *  - SloDetector: the operational definition — a trace is anomalous
 *    when its end-to-end latency breaches the flow's SLO or its root
 *    span errors;
 *  - ModelDetector: model-based detection — the observed end-to-end
 *    duration is compared against the GNN's all-normal counterfactual
 *    prediction, thresholded at a quantile calibrated on normal
 *    traffic (useful when no SLO is configured).
 */

#include <vector>

#include "core/gnn.h"

namespace sleuth::core {

/** SLO-based anomaly detection. */
class SloDetector
{
  public:
    /**
     * @param trace the trace to classify
     * @param slo_us latency SLO (0 = latency unconstrained)
     * @return true when the trace is anomalous
     */
    static bool isAnomalous(const trace::Trace &trace, int64_t slo_us);
};

/** Model-based anomaly detection via counterfactual baselining. */
class ModelDetector
{
  public:
    /**
     * @param model trained Sleuth GNN (held by reference)
     * @param encoder shared feature encoder
     * @param profile per-operation normal medians
     */
    ModelDetector(const SleuthGnn &model, FeatureEncoder &encoder,
                  const NormalProfile &profile);

    /**
     * Anomaly score of a trace: the log10 ratio of the observed
     * end-to-end duration to the duration the GNN predicts when every
     * span is restored to its normal state (the all-normal
     * counterfactual), plus 1 when the root span errors. Normal
     * traces score near zero; inflated or erroring traces score high.
     */
    double score(const trace::Trace &trace);

    /**
     * Calibrate the detection threshold at a quantile of normal
     * traffic's scores.
     *
     * @param normal normal traces
     * @param pct threshold percentile (default 99)
     */
    void calibrate(const std::vector<trace::Trace> &normal,
                   double pct = 99.0);

    /** True when the trace's score exceeds the calibrated threshold. */
    bool isAnomalous(const trace::Trace &trace);

    /** The calibrated threshold (0 before calibrate()). */
    double threshold() const { return threshold_; }

  private:
    const SleuthGnn &model_;
    FeatureEncoder &encoder_;
    const NormalProfile &profile_;
    double threshold_ = 0.0;
    bool calibrated_ = false;
};

} // namespace sleuth::core
