#include "model_registry.h"

#include <fstream>
#include <sstream>

namespace sleuth::core {

std::string
ModelRegistry::add(const std::string &name, const SleuthGnn &model,
                   const std::string &parent)
{
    SLEUTH_ASSERT(!name.empty(), "model name required");
    if (!parent.empty())
        SLEUTH_ASSERT(models_.count(parent), "unknown parent '", parent,
                      "'");
    int version = ++next_version_[name];
    std::string id = name + ":v" + std::to_string(version);
    Entry entry;
    entry.meta.name = name;
    entry.meta.version = version;
    entry.meta.parent = parent;
    entry.blob = model.save();
    models_.emplace(id, std::move(entry));
    order_.push_back(id);
    return id;
}

SleuthGnn
ModelRegistry::instantiate(const std::string &id) const
{
    auto it = models_.find(id);
    if (it == models_.end())
        util::fatal("unknown model '", id, "'");
    if (it->second.meta.retired)
        util::fatal("model '", id, "' is retired");
    return SleuthGnn::fromJson(it->second.blob);
}

void
ModelRegistry::retire(const std::string &id)
{
    auto it = models_.find(id);
    if (it == models_.end())
        util::fatal("unknown model '", id, "'");
    it->second.meta.retired = true;
}

std::vector<ModelMeta>
ModelRegistry::list() const
{
    std::vector<ModelMeta> out;
    for (const std::string &id : order_)
        out.push_back(models_.at(id).meta);
    return out;
}

std::string
ModelRegistry::latest(const std::string &name) const
{
    std::string best;
    int best_version = 0;
    for (const auto &[id, entry] : models_) {
        if (entry.meta.name == name && !entry.meta.retired &&
            entry.meta.version > best_version) {
            best = id;
            best_version = entry.meta.version;
        }
    }
    return best;
}

void
ModelRegistry::saveToFile(const std::string &path) const
{
    util::Json doc = util::Json::array();
    for (const std::string &id : order_) {
        const Entry &e = models_.at(id);
        util::Json j = util::Json::object();
        j.set("id", id);
        j.set("name", e.meta.name);
        j.set("version", e.meta.version);
        j.set("parent", e.meta.parent);
        j.set("retired", e.meta.retired);
        j.set("model", e.blob);
        doc.push(std::move(j));
    }
    std::ofstream out(path);
    if (!out)
        util::fatal("cannot write registry to ", path);
    out << doc.dump();
}

ModelRegistry
ModelRegistry::loadFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot read registry from ", path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    util::Json doc = util::Json::parse(buf.str(), &err);
    if (!err.empty())
        util::fatal("registry parse error: ", err);

    ModelRegistry reg;
    for (const util::Json &j : doc.asArray()) {
        Entry e;
        e.meta.name = j.at("name").asString();
        e.meta.version = static_cast<int>(j.at("version").asInt());
        e.meta.parent = j.at("parent").asString();
        e.meta.retired = j.at("retired").asBool();
        e.blob = j.at("model");
        std::string id = j.at("id").asString();
        reg.models_.emplace(id, std::move(e));
        reg.order_.push_back(id);
        int &next = reg.next_version_[reg.models_.at(id).meta.name];
        next = std::max(next, reg.models_.at(id).meta.version);
    }
    return reg;
}

} // namespace sleuth::core
