#include "features.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace sleuth::core {

double
DurationScale::scaleUs(double us) const
{
    return (std::log10(std::max(us, 1.0)) - mu) / sigma;
}

double
DurationScale::unscale(double scaled) const
{
    return std::pow(10.0, sigma * scaled + mu);
}

std::string
NormalProfile::key(const std::string &service, const std::string &name,
                   trace::SpanKind kind)
{
    return service + "\x1f" + name + "\x1f" + toString(kind);
}

void
NormalProfile::add(const trace::Trace &trace)
{
    SLEUTH_ASSERT(!finalized_, "profile already finalized");
    trace::TraceGraph graph = trace::TraceGraph::build(trace);
    trace::ExclusiveMetrics m = trace::computeExclusive(trace, graph);
    for (size_t i = 0; i < trace.spans.size(); ++i) {
        const trace::Span &s = trace.spans[i];
        OpStats &st = stats_[key(s.service, s.name, s.kind)];
        st.exclusive.push_back(static_cast<double>(m.exclusiveUs[i]));
        st.duration.push_back(static_cast<double>(s.durationUs()));
    }
}

void
NormalProfile::finalize()
{
    SLEUTH_ASSERT(!finalized_, "profile already finalized");
    std::vector<double> all_excl, all_dur;
    for (auto &[k, st] : stats_) {
        (void)k;
        st.medianExclusive = util::median(st.exclusive);
        st.medianDuration = util::median(st.duration);
        all_excl.push_back(st.medianExclusive);
        all_dur.push_back(st.medianDuration);
        st.exclusive.clear();
        st.exclusive.shrink_to_fit();
        st.duration.clear();
        st.duration.shrink_to_fit();
    }
    if (!all_excl.empty()) {
        global_exclusive_ = util::median(all_excl);
        global_duration_ = util::median(all_dur);
    }
    finalized_ = true;
}

namespace {

/** Compose the lookup key into a reused per-thread buffer: these
    lookups run once per span in the RCA and pruner hot loops, where a
    fresh std::string per call is measurable. */
std::string_view
keyView(const std::string &service, const std::string &name,
        trace::SpanKind kind)
{
    thread_local std::string buf;
    buf.assign(service);
    buf += '\x1f';
    buf += name;
    buf += '\x1f';
    buf += toString(kind);
    return buf;
}

} // namespace

double
NormalProfile::medianExclusiveUs(const std::string &service,
                                 const std::string &name,
                                 trace::SpanKind kind) const
{
    SLEUTH_ASSERT(finalized_, "profile not finalized");
    auto it = stats_.find(keyView(service, name, kind));
    return it == stats_.end() ? global_exclusive_
                              : it->second.medianExclusive;
}

double
NormalProfile::medianDurationUs(const std::string &service,
                                const std::string &name,
                                trace::SpanKind kind) const
{
    SLEUTH_ASSERT(finalized_, "profile not finalized");
    auto it = stats_.find(keyView(service, name, kind));
    return it == stats_.end() ? global_duration_
                              : it->second.medianDuration;
}

FeatureEncoder::FeatureEncoder(size_t embed_dim, DurationScale scale)
    : embedder_(embed_dim), scale_(scale)
{
}

TraceBatch
FeatureEncoder::encode(const std::vector<const trace::Trace *> &traces)
{
    size_t total = 0;
    for (const trace::Trace *t : traces)
        total += t->spans.size();

    TraceBatch batch;
    batch.numNodes = total;
    const size_t dim = featureDim();
    const size_t ecols = embedder_.dim();
    batch.x = nn::Tensor(total, dim);
    batch.xExcl = nn::Tensor(total, dim);

    size_t base = 0;
    for (const trace::Trace *t : traces) {
        trace::TraceGraph graph = trace::TraceGraph::build(*t);
        trace::ExclusiveMetrics m = trace::computeExclusive(*t, graph);
        batch.traceOffset.push_back(base);
        batch.traceRoot.push_back(base +
                                  static_cast<size_t>(graph.root()));
        for (size_t i = 0; i < t->spans.size(); ++i) {
            const trace::Span &s = t->spans[i];
            size_t row = base + i;
            // Semantic embedding of service + operation + kind, cached
            // per distinct string (paper's pointer optimization).
            const std::vector<double> &emb = embedder_.embed(
                s.service + " " + s.name + " " + toString(s.kind));
            // Contiguous row copies instead of per-element at(): the
            // embedding block dominates the feature row.
            double *xrow = batch.x.data().data() + row * dim;
            double *erow = batch.xExcl.data().data() + row * dim;
            std::copy(emb.begin(), emb.begin() + ecols, xrow);
            std::copy(emb.begin(), emb.begin() + ecols, erow);
            batch.x.at(row, ecols) = scale_.scaleUs(
                static_cast<double>(s.durationUs()));
            batch.x.at(row, ecols + 1) = s.hasError() ? 1.0 : 0.0;
            batch.xExcl.at(row, ecols) = scale_.scaleUs(
                static_cast<double>(m.exclusiveUs[i]));
            batch.xExcl.at(row, ecols + 1) =
                m.exclusiveError[i] ? 1.0 : 0.0;

            int p = graph.parent(static_cast<int>(i));
            if (p >= 0) {
                batch.edgeChild.push_back(row);
                batch.edgeParent.push_back(base +
                                           static_cast<size_t>(p));
            }
        }
        base += t->spans.size();
    }
    return batch;
}

TraceBatch
FeatureEncoder::encode(const trace::Trace &trace)
{
    return encode(std::vector<const trace::Trace *>{&trace});
}

} // namespace sleuth::core
