#pragma once

/**
 * @file
 * The end-to-end Sleuth pipeline (paper §3.1): cluster the incoming
 * anomalous traces with the weighted-Jaccard distance + HDBSCAN, run
 * the counterfactual RCA once per cluster representative (geometric
 * median), and generalize each representative's root causes to the
 * whole cluster. Noise traces are analyzed individually. Clustering
 * cuts ML inference by orders of magnitude during incident storms.
 *
 * Two adaptive layers sit around the core pipeline (DESIGN.md §3.14):
 * an interpretable pre-pruning stage (RcaPruner) that shrinks the
 * candidate service/span graph before anything is encoded, and a
 * cross-poll incremental cache (PipelineCache) that memoizes per-trace
 * encodings, per-pair distances, and per-trace verdicts between
 * analyses of overlapping snapshots.
 */

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/hdbscan.h"
#include "core/counterfactual.h"
#include "core/pruner.h"
#include "distance/distance_matrix.h"
#include "distance/trace_distance.h"

namespace sleuth::core {

class PipelineCache;

/** Pipeline knobs. */
struct PipelineConfig
{
    /** Clustering algorithm choice. */
    enum class Algorithm { Hdbscan, Dbscan };

    /** Trace-distance choice for the default analyze() clustering. */
    enum class TraceDistanceKind
    {
        /** Weighted Jaccard over encoded span sets (paper Eq. 1). */
        WeightedJaccard,
        /**
         * Quantization ablation: 1 − cosine over int8 per-trace
         * embeddings (the L2-normalized sum of each span's semantic
         * embedding, quantized to int8). Distances track the float
         * cosine within ~0.02 absolute (DESIGN.md §3.12) at a quarter
         * of the bytes per trace signature. Only affects analyze();
         * analyzeWithDistance/analyzeWithMatrix use their caller's
         * distance as before. The incremental cache is bypassed in
         * this mode (it keys pairwise distances by span-set encoding).
         */
        EmbeddingCosineInt8,
    };

    /** Cluster before RCA (disable to analyze every trace). */
    bool clustering = true;
    /** HDBSCAN (paper §3.3.2) or plain DBSCAN (paper §3.1). */
    Algorithm algorithm = Algorithm::Hdbscan;
    /** HDBSCAN parameters (paper defaults 10 / 5 / epsilon). */
    cluster::HdbscanParams hdbscan{10, 5, 0.05};
    /** DBSCAN parameters (used when algorithm == Dbscan). */
    cluster::DbscanParams dbscan{0.3, 4};
    /** Span-identifier options for the trace distance. */
    distance::SpanSetOptions distanceOpts;
    /** Distance used by analyze() (Jaccard default; int8 ablation). */
    TraceDistanceKind traceDistance = TraceDistanceKind::WeightedJaccard;
    /** RCA knobs. */
    RcaParams rca;
    /** Pre-pruning stage (off by default; DESIGN.md §3.14). */
    PruneConfig prune;
    /**
     * Members farther than this from their cluster's representative
     * fall back to individual RCA instead of inheriting its verdict
     * (bounds the damage of an impure cluster; 0 disables).
     */
    double maxRepresentativeDistance = 0.6;
    /**
     * Worker threads for span-set encoding, distance-matrix
     * construction, and the RCA loops. 0 = hardware concurrency,
     * 1 = fully serial (no threads spawned). Results are bitwise
     * identical at every setting (DESIGN.md §3.8).
     */
    size_t numThreads = 1;
};

/** Result of a pipeline run over a batch of anomalous traces. */
struct PipelineResult
{
    /** Per-input-trace RCA verdicts (cluster members share one). */
    std::vector<RcaResult> perTrace;
    /** Cluster label per trace; -1 = analyzed individually. */
    std::vector<int> clusterLabels;
    /** Number of clusters formed. */
    int numClusters = 0;
    /**
     * Counterfactual RCA verdicts the batch logically required
     * (representatives + individually analyzed traces). A warm
     * incremental cache satisfies some from memory without running the
     * model — PipelineCache::Stats holds the executed/hit split — so
     * this count is identical between a cold and a warm run of the
     * same batch (part of the incremental-repoll ≡ guarantee).
     */
    size_t rcaInvocations = 0;
    /**
     * Pairwise distance evaluations performed for this batch: exactly
     * m(m-1)/2 over the m well-formed traces when clustering ran (the
     * matrix is computed once and memoized), 0 when clustering was
     * disabled. Malformed traces never count, on any analyze path —
     * including analyzeWithMatrix, whose caller-provided matrix covers
     * their rows.
     */
    size_t distanceEvaluations = 0;
    /**
     * Traces skipped because TraceGraph::tryBuild rejected them
     * (cycle, missing/duplicate root, unresolved parentSpanId, ...).
     * Each carries an RcaResult with a non-empty error and cluster
     * label -1; well-formed traces in the same batch are unaffected.
     */
    size_t skippedTraces = 0;
    /** Traces not analyzed (verdict inherited from a prune exemplar). */
    size_t prunedTraces = 0;
    /** Fraction of traces that went through the full pipeline. */
    double pruneTraceKeepRatio = 1.0;
    /** Fraction of candidate services that survived pruning. */
    double pruneServiceKeepRatio = 1.0;
};

/**
 * Rank root-cause services across a batch result by verdict votes: a
 * service earns one vote per trace whose verdict lists it. Ties break
 * lexicographically, so the ranking is a deterministic function of the
 * result. Used by the online serving layer to headline incidents.
 */
std::vector<std::pair<std::string, size_t>>
aggregateRootCauses(const PipelineResult &result);

/** The trace-storm-scale RCA front end. */
class SleuthPipeline
{
  public:
    /** All components are held by reference and must outlive this. */
    SleuthPipeline(const SleuthGnn &model, FeatureEncoder &encoder,
                   const NormalProfile &profile, PipelineConfig config);

    /**
     * Analyze a batch of anomalous traces.
     *
     * @param traces the anomalous traces
     * @param slos per-trace latency SLO in microseconds
     */
    PipelineResult analyze(const std::vector<trace::Trace> &traces,
                           const std::vector<int64_t> &slos) const;

    /**
     * As analyze(), with the adaptive layers: when config.prune.mode is
     * not Off a prune plan is computed first (fed by the optional
     * per-endpoint detector signals) and applied as by
     * analyzeWithPlan(); when cache is non-null, encodings, distances,
     * and verdicts memoized from previous polls are reused and fresh
     * ones inserted (the cache must always be paired with the same
     * pipeline configuration). Results are bitwise identical to the
     * cache-free run of the same batch.
     */
    PipelineResult analyze(const std::vector<trace::Trace> &traces,
                           const std::vector<int64_t> &slos,
                           const PruneSignals *signals,
                           PipelineCache *cache) const;

    /**
     * Analyze under an explicit prune plan (normally produced by
     * RcaPruner over this batch): pruned traces skip the pipeline and
     * inherit their exemplar's verdict and cluster label; restricted
     * traces run the RCA over their reduced candidate set.
     */
    PipelineResult analyzeWithPlan(
        const std::vector<trace::Trace> &traces,
        const std::vector<int64_t> &slos, const PrunePlan &plan,
        PipelineCache *cache = nullptr) const;

    /**
     * As analyze(), but clustering uses a caller-provided distance
     * (e.g. the DeepTraLog SVDD embedding distance for comparison).
     * The oracle is invoked exactly n(n-1)/2 times to memoize a
     * DistanceMatrix; every downstream consumer reads the matrix.
     */
    PipelineResult analyzeWithDistance(
        const std::vector<trace::Trace> &traces,
        const std::vector<int64_t> &slos,
        const std::function<double(size_t, size_t)> &dist) const;

    /**
     * As analyze(), over an already-materialized distance matrix
     * (clustering, representative selection, and the far-member guard
     * all read it directly; no distance is ever recomputed).
     */
    PipelineResult analyzeWithMatrix(
        const std::vector<trace::Trace> &traces,
        const std::vector<int64_t> &slos,
        const distance::DistanceMatrix &dist) const;

  private:
    /**
     * Per-batch parallel engine: a thread pool plus one
     * CounterfactualRca (and FeatureEncoder, whose embedding cache is
     * the only shared mutable state) per worker. Defined in the .cc.
     */
    struct Engine;

    /** Per-trace candidate filter (nullptr entry = unrestricted). */
    using AllowedLists = std::vector<const std::vector<std::string> *>;

    /**
     * The shared batch implementation behind every analyze flavor:
     * honors the clustering flag, the optional per-trace candidate
     * filters, and the optional incremental cache.
     */
    PipelineResult analyzeImpl(
        const std::vector<const trace::Trace *> &traces,
        const std::vector<int64_t> &slos, const AllowedLists *allowed,
        PipelineCache *cache) const;

    /** Per-trace RCA for every input (the clustering-off path). */
    PipelineResult analyzeIndividualImpl(
        const std::vector<const trace::Trace *> &traces,
        const std::vector<int64_t> &slos, const AllowedLists *allowed,
        PipelineCache *cache, const std::vector<uint64_t> &fps,
        const std::vector<uint64_t> &candHashes, Engine &engine) const;

    /**
     * Clustered analysis over a batch addressed by pointer, with
     * malformed traces pre-marked (errors[i] non-empty): they get an
     * error verdict, label -1, and never reach the RCA. dist must
     * cover all of traces (malformed rows included, as provided by
     * the caller of analyzeWithMatrix). allowed/cache/fps/candHashes
     * follow analyzeImpl (empty fps/candHashes when cache is null).
     */
    PipelineResult analyzeCore(
        const std::vector<const trace::Trace *> &traces,
        const std::vector<int64_t> &slos,
        const distance::DistanceMatrix &dist,
        const std::vector<std::string> &errors, Engine &engine,
        const AllowedLists *allowed = nullptr,
        PipelineCache *cache = nullptr,
        const std::vector<uint64_t> &fps = {},
        const std::vector<uint64_t> &candHashes = {}) const;

    const SleuthGnn &model_;
    FeatureEncoder &encoder_;
    const NormalProfile &profile_;
    PipelineConfig config_;
};

} // namespace sleuth::core
