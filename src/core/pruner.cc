#include "pruner.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace sleuth::core {

namespace {

const trace::Span *
rootSpan(const trace::Trace &t)
{
    for (const trace::Span &s : t.spans)
        if (s.parentSpanId.empty())
            return &s;
    return nullptr;
}

/** Union call graph + service universe, collected with hashed
    containers: this pass touches every span of every storm trace, and
    only set membership is consumed downstream, so iteration order
    never reaches an output. */
using EdgeMap =
    std::unordered_map<std::string, std::unordered_set<std::string>>;

/** Services reachable from the anomalous roots in the union call
    graph (BFS; the reachable SET is independent of visit order, so a
    hashed frontier stays deterministic). */
std::unordered_set<std::string>
reachableFrom(const std::set<std::string> &roots, const EdgeMap &edges)
{
    std::unordered_set<std::string> seen(roots.begin(), roots.end());
    std::vector<std::string> frontier(roots.begin(), roots.end());
    while (!frontier.empty()) {
        std::string svc = std::move(frontier.back());
        frontier.pop_back();
        auto it = edges.find(svc);
        if (it == edges.end())
            continue;
        for (const std::string &callee : it->second)
            if (seen.insert(callee).second)
                frontier.push_back(callee);
    }
    return seen;
}

} // namespace

RcaPruner::RcaPruner(const NormalProfile &profile, PruneConfig config,
                     RcaParams rca)
    : profile_(profile), config_(config), rca_(rca)
{
}

PrunePlan
RcaPruner::plan(const std::vector<trace::Trace> &traces,
                const std::vector<int64_t> &slos,
                const PruneSignals &signals) const
{
    const size_t n = traces.size();
    PrunePlan p;
    p.keep.assign(n, 1);
    p.inheritFrom.assign(n, -1);
    p.restricted.assign(n, 0);
    p.candidates.resize(n);
    p.tracesTotal = n;
    p.tracesKept = n;
    if (config_.mode == PruneConfig::Mode::Off || n == 0) {
        p.servicesKept = p.servicesTotal;
        return p;
    }

    // Interpretable per-trace scoring (the RCA's own candidate
    // ranking) plus the storm's union call graph and anomalous roots.
    std::vector<std::vector<CandidateScore>> ranked(n);
    std::vector<std::string> endpoint(n);
    std::vector<char> well_formed(n, 0);
    std::vector<char> root_error(n, 0);
    std::unordered_set<std::string> all_services;
    EdgeMap callees;
    std::set<std::string> anomalous_roots;
    for (size_t i = 0; i < n; ++i) {
        trace::TraceGraph graph;
        std::string err;
        if (!trace::TraceGraph::tryBuild(traces[i], &graph, &err))
            continue; // malformed: kept + unrestricted, pipeline skips
        well_formed[i] = 1;
        trace::ExclusiveMetrics metrics =
            trace::computeExclusive(traces[i], graph);
        double err_weight = rca_.errorWeightUs > 0.0
            ? rca_.errorWeightUs
            : static_cast<double>(std::max<int64_t>(slos[i], 1));
        ranked[i] = rankCandidateServices(traces[i], graph, metrics,
                                          profile_, err_weight);
        const trace::Span *root = rootSpan(traces[i]);
        if (root != nullptr) {
            endpoint[i] = root->service + "/" + root->name;
            root_error[i] = root->hasError() ? 1 : 0;
            // With detector signals, a root is anomalous when its
            // endpoint's window shows anomalies or errors (unknown
            // endpoints stay anomalous — never prune blind); signal-
            // free batches treat every storm root as anomalous.
            auto sig = signals.find(endpoint[i]);
            bool anomalous = sig == signals.end() ||
                             sig->second.anomalousFraction > 0.0 ||
                             sig->second.errors > 0;
            if (anomalous)
                anomalous_roots.insert(root->service);
        }
        const size_t m = traces[i].spans.size();
        for (size_t s = 0; s < m; ++s)
            all_services.insert(traces[i].spans[s].service);
        for (size_t s = 0; s < m; ++s)
            for (int c : graph.children(static_cast<int>(s))) {
                const trace::Span &child =
                    traces[i].spans[static_cast<size_t>(c)];
                if (child.service != traces[i].spans[s].service)
                    callees[traces[i].spans[s].service].insert(
                        child.service);
            }
    }
    p.servicesTotal = all_services.size();

    if (config_.mode == PruneConfig::Mode::Conservative) {
        // Guaranteed superset: per trace, every positively-scored
        // candidate — exactly the list the RCA restoration loop walks
        // (shared rankCandidateServices), so the filtered verdict is
        // bit-for-bit the unfiltered one. No reachability or signal
        // thresholding is applied in this mode.
        std::unordered_set<std::string> kept;
        for (size_t i = 0; i < n; ++i) {
            if (!well_formed[i])
                continue;
            p.restricted[i] = 1;
            p.candidates[i].reserve(ranked[i].size());
            for (const CandidateScore &c : ranked[i]) {
                p.candidates[i].push_back(c.service);
                kept.insert(c.service);
            }
            std::sort(p.candidates[i].begin(), p.candidates[i].end());
        }
        p.servicesKept = kept.size();
        return p;
    }

    // --- Aggressive mode ---
    // Global candidate set: positively-scored services reachable from
    // an anomalous root, thresholded to the top (1 - aggressiveness)
    // fraction by aggregate score (ties lexicographic).
    std::unordered_set<std::string> reachable =
        reachableFrom(anomalous_roots, callees);
    // Hashed aggregation is safe here: per-service sums accumulate in
    // the same (i, rank) order either way, and positives are re-sorted
    // under a strict total order before any thresholding.
    std::unordered_map<std::string, double> global;
    for (size_t i = 0; i < n; ++i)
        for (const CandidateScore &c : ranked[i])
            global[c.service] += c.score;
    std::vector<CandidateScore> positives;
    for (const auto &[svc, score] : global)
        if (score > 0.0 && reachable.count(svc))
            positives.push_back({svc, score});
    std::sort(positives.begin(), positives.end(),
              [](const CandidateScore &a, const CandidateScore &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.service < b.service;
              });
    double keep_fraction =
        std::clamp(1.0 - config_.aggressiveness, 0.0, 1.0);
    size_t keep_count = std::max<size_t>(
        positives.empty() ? 0 : 1,
        static_cast<size_t>(std::ceil(
            keep_fraction * static_cast<double>(positives.size()))));
    keep_count = std::min(keep_count, positives.size());
    std::unordered_set<std::string> kept_global;
    for (size_t k = 0; k < keep_count; ++k)
        kept_global.insert(positives[k].service);
    p.servicesKept = kept_global.size();

    // Per-trace candidate filter + interpretable trace signature:
    // (root endpoint, top surviving candidate, root error flag).
    // Traces sharing a signature collapse onto the group's leading
    // exemplars; the rest inherit the first exemplar's verdict.
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < n; ++i) {
        if (!well_formed[i])
            continue;
        p.restricted[i] = 1;
        std::string top;
        for (const CandidateScore &c : ranked[i]) {
            if (kept_global.count(c.service)) {
                if (top.empty())
                    top = c.service;
                p.candidates[i].push_back(c.service);
            }
        }
        std::sort(p.candidates[i].begin(), p.candidates[i].end());
        groups[endpoint[i] + "|" + top +
               (root_error[i] ? "|err" : "|ok")]
            .push_back(i);
    }
    for (const auto &[sig, members] : groups) {
        size_t budget = std::max(
            config_.minExemplarsPerGroup,
            static_cast<size_t>(std::ceil(
                keep_fraction * static_cast<double>(members.size()))));
        if (budget >= members.size())
            continue;
        for (size_t k = budget; k < members.size(); ++k) {
            p.keep[members[k]] = 0;
            p.inheritFrom[members[k]] =
                static_cast<int>(members.front());
        }
    }
    p.tracesKept = 0;
    for (size_t i = 0; i < n; ++i)
        p.tracesKept += p.keep[i] ? 1 : 0;
    return p;
}

} // namespace sleuth::core
