#pragma once

/**
 * @file
 * Model lifecycle management (paper §4): a registry that stores
 * serialized Sleuth models with versioning, inheritance (fine-tuned
 * children record their parent), retirement, and disk persistence, as
 * the centralized model server in the production deployment does.
 */

#include <map>
#include <string>
#include <vector>

#include "core/gnn.h"

namespace sleuth::core {

/** Metadata of one registered model version. */
struct ModelMeta
{
    std::string name;
    int version = 1;
    /** "name:vN" of the model this one was fine-tuned from, or "". */
    std::string parent;
    bool retired = false;
};

/** In-memory (and optionally on-disk) model store. */
class ModelRegistry
{
  public:
    /**
     * Register a model snapshot under a name; versions auto-increment.
     *
     * @param name model family name
     * @param model model to snapshot
     * @param parent id of the pre-trained parent ("" for from-scratch)
     * @return the new model id "name:vN"
     */
    std::string add(const std::string &name, const SleuthGnn &model,
                    const std::string &parent = "");

    /** Reconstruct a stored model; fatal() on unknown or retired id. */
    SleuthGnn instantiate(const std::string &id) const;

    /** Mark a model retired; retired models cannot be instantiated. */
    void retire(const std::string &id);

    /** Metadata of every stored model, insertion-ordered. */
    std::vector<ModelMeta> list() const;

    /** Latest non-retired version id of a family ("" if none). */
    std::string latest(const std::string &name) const;

    /** Persist the registry as one JSON file. */
    void saveToFile(const std::string &path) const;

    /** Load a registry persisted with saveToFile(). */
    static ModelRegistry loadFromFile(const std::string &path);

    /** Number of stored versions. */
    size_t size() const { return order_.size(); }

  private:
    struct Entry
    {
        ModelMeta meta;
        util::Json blob;
    };

    std::map<std::string, Entry> models_;  // id -> entry
    std::vector<std::string> order_;
    std::map<std::string, int> next_version_;
};

} // namespace sleuth::core
