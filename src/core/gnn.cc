#include "gnn.h"

#include <algorithm>
#include <cmath>

namespace sleuth::core {

namespace {

// Unscaled durations are clamped into [1us, 100s] in log10 space before
// exponentiation to keep the forward pass finite early in training.
constexpr double kLogLo = 0.0;
constexpr double kLogHi = 8.0;
constexpr double kProbEps = 1e-6;

util::Rng
seedRng(const GnnConfig &config)
{
    return util::Rng(config.seed ^ 0x6e6eu);
}

} // namespace

const char *
toString(Aggregator a)
{
    switch (a) {
      case Aggregator::Gin: return "gin";
      case Aggregator::Gcn: return "gcn";
    }
    util::panic("invalid aggregator");
}

SleuthGnn::SleuthGnn(const GnnConfig &config)
    : config_(config),
      mlp_([&] {
          util::Rng rng = seedRng(config);
          size_t d = config.embedDim + 2;
          return nn::Mlp({2 * d, config.hidden, config.hidden, 5},
                         nn::Activation::Relu, rng);
      }())
{
}

nn::Var
SleuthGnn::unscaleVar(const nn::Var &scaled) const
{
    return nn::pow10(nn::clamp(
        nn::addScalar(nn::scale(scaled, config_.scale.sigma),
                      config_.scale.mu),
        kLogLo, kLogHi));
}

SleuthGnn::Forward
SleuthGnn::forward(const TraceBatch &batch) const
{
    SLEUTH_ASSERT(batch.featureDim() == config_.embedDim + 2,
                  "batch feature width does not match the model");
    const size_t n = batch.numNodes;
    const size_t ecol = config_.embedDim;

    nn::Var x = nn::constant(batch.x);
    nn::Var xe = nn::constant(batch.xExcl);

    nn::Var child_x = nn::gatherRows(x, batch.edgeChild);     // E x d
    nn::Var sums = nn::segmentSum(child_x, batch.edgeParent, n);
    nn::Var sum_for_edge = nn::gatherRows(sums, batch.edgeParent);

    nn::Var agg;
    if (config_.aggregator == Aggregator::Gin) {
        // (1+eps) x_j + sum over siblings = full child sum + eps x_j.
        agg = nn::add(sum_for_edge,
                      nn::scale(child_x, config_.epsilon));
    } else {
        // GCN: degree-normalized mean over the parent's children.
        std::vector<double> degree(n, 0.0);
        for (size_t p : batch.edgeParent)
            degree[p] += 1.0;
        std::vector<double> inv(batch.edgeParent.size(), 1.0);
        for (size_t e = 0; e < batch.edgeParent.size(); ++e)
            inv[e] = 1.0 / std::max(1.0, degree[batch.edgeParent[e]]);
        agg = nn::rowScale(sum_for_edge, inv);
    }

    nn::Var parent_xe = nn::gatherRows(xe, batch.edgeParent);
    nn::Var h = mlp_.forward(nn::concatCols(parent_xe, agg));  // E x 5

    nn::Var h0 = nn::sliceCols(h, 0, 1);
    nn::Var h1 = nn::sliceCols(h, 1, 2);
    nn::Var h2 = nn::sliceCols(h, 2, 3);
    nn::Var h3 = nn::sliceCols(h, 3, 4);
    nn::Var h4 = nn::sliceCols(h, 4, 5);

    // --- Duration head (Eq. 2). ---
    // Stable reparameterization of the paper's u' = h'1 - h'0,
    // v' = h'1 + h'0: the lower threshold starts near zero, the window
    // width starts wide (pass-through), and v' >= u' >= 0 always holds
    // without a difference of large exponentials.
    nn::Var u = unscaleVar(nn::addScalar(h0, -config_.thresholdOffset));
    nn::Var v = nn::add(
        u, unscaleVar(nn::addScalar(h1, config_.thresholdOffset)));
    nn::Var d_child = nn::sliceCols(child_x, ecol, ecol + 1);
    nn::Var d_child_us = unscaleVar(d_child);
    nn::Var contrib = nn::sub(nn::relu(nn::sub(d_child_us, u)),
                              nn::relu(nn::sub(d_child_us, v)));
    nn::Var excl_dur =
        unscaleVar(nn::sliceCols(xe, ecol, ecol + 1));        // n x 1
    nn::Var dur_us = nn::add(
        nn::segmentSum(contrib, batch.edgeParent, n), excl_dur);
    nn::Var dur_scaled = nn::scale(
        nn::addScalar(nn::log10Op(dur_us), -config_.scale.mu),
        1.0 / config_.scale.sigma);

    // --- Error head (Eq. 3, see the header's implementation note). ---
    nn::Var e_child = nn::sliceCols(child_x, ecol + 1, ecol + 2);
    nn::Var term_err = nn::mul(nn::sigmoid(h2), e_child);
    nn::Var term_dur = nn::sigmoid(nn::add(nn::mul(h3, d_child), h4));
    nn::Var edge_term = nn::maxElem(term_err, term_dur);
    nn::Var node_max =
        nn::segmentMax(edge_term, batch.edgeParent, n, 0.0);
    nn::Var excl_err = nn::sliceCols(xe, ecol + 1, ecol + 2);
    nn::Var err = nn::maxElem(node_max, excl_err);

    return {dur_scaled, err};
}

nn::Var
SleuthGnn::loss(const TraceBatch &batch) const
{
    Forward f = forward(batch);
    const size_t ecol = config_.embedDim;
    nn::Var x = nn::constant(batch.x);
    nn::Var target_d = nn::sliceCols(x, ecol, ecol + 1);
    nn::Var target_e = nn::sliceCols(x, ecol + 1, ecol + 2);

    nn::Var diff = nn::sub(f.durScaled, target_d);
    nn::Var mse = nn::meanAll(nn::mul(diff, diff));

    nn::Var p = nn::clamp(f.errProb, kProbEps, 1.0 - kProbEps);
    nn::Var one_minus_t = nn::scale(nn::addScalar(target_e, -1.0), -1.0);
    nn::Var one_minus_p = nn::scale(nn::addScalar(p, -1.0), -1.0);
    nn::Var bce = nn::scale(
        nn::meanAll(nn::add(nn::mul(target_e, nn::logOp(p)),
                            nn::mul(one_minus_t,
                                    nn::logOp(one_minus_p)))),
        -1.0);
    return nn::add(mse, bce);
}

GnnPrediction
SleuthGnn::reconstruct(const TraceBatch &batch) const
{
    Forward f = forward(batch);
    GnnPrediction out;
    out.durScaled = f.durScaled->value().data();
    out.errProb = f.errProb->value().data();
    return out;
}

void
SleuthGnn::propagateNode(const TraceBatch &batch,
                         const trace::TraceGraph &graph,
                         const std::vector<NodeState> &states, int node,
                         TracePrediction *out) const
{
    const size_t ecol = config_.embedDim;
    const DurationScale &sc = config_.scale;
    size_t i = static_cast<size_t>(node);
    const std::vector<int> &kids = graph.children(node);
    double dur_us = states[i].exclusiveUs;
    double err = states[i].exclusiveErr;
    if (!kids.empty()) {
        // Edge inputs: parent exclusive features with intervened
        // values, children with their *predicted* states.
        const size_t d = ecol + 2;
        nn::Tensor input(kids.size(), 2 * d);
        // Sibling sum of child feature rows (predicted values).
        std::vector<double> sum(d, 0.0);
        auto child_feature = [&](size_t c, size_t col) {
            if (col < ecol)
                return batch.x.at(c, col);
            if (col == ecol)
                return sc.scaleUs(out->nodeDurUs[c]);
            return out->nodeErrProb[c];
        };
        for (int kid : kids)
            for (size_t col = 0; col < d; ++col)
                sum[col] +=
                    child_feature(static_cast<size_t>(kid), col);
        for (size_t k = 0; k < kids.size(); ++k) {
            size_t c = static_cast<size_t>(kids[k]);
            for (size_t col = 0; col < ecol; ++col)
                input.at(k, col) = batch.xExcl.at(i, col);
            input.at(k, ecol) = sc.scaleUs(states[i].exclusiveUs);
            input.at(k, ecol + 1) = states[i].exclusiveErr;
            for (size_t col = 0; col < d; ++col) {
                double self = child_feature(c, col);
                double agg;
                if (config_.aggregator == Aggregator::Gin)
                    agg = sum[col] + config_.epsilon * self;
                else
                    agg = sum[col] /
                          static_cast<double>(kids.size());
                input.at(k, d + col) = agg;
            }
        }
        nn::Tensor h =
            mlp_.forward(nn::constant(std::move(input)))->value();
        auto unscale_clamped = [&](double v) {
            double z = std::clamp(sc.sigma * v + sc.mu, kLogLo,
                                  kLogHi);
            return std::pow(10.0, z);
        };
        for (size_t k = 0; k < kids.size(); ++k) {
            size_t c = static_cast<size_t>(kids[k]);
            double hu = unscale_clamped(
                h.at(k, 0) - config_.thresholdOffset);
            double hv = hu + unscale_clamped(
                h.at(k, 1) + config_.thresholdOffset);
            double dc = out->nodeDurUs[c];
            dur_us += std::max(0.0, dc - hu) -
                      std::max(0.0, dc - hv);
            double sig2 = 1.0 / (1.0 + std::exp(-h.at(k, 2)));
            double gate_dur =
                1.0 / (1.0 + std::exp(-(h.at(k, 3) *
                                            sc.scaleUs(dc) +
                                        h.at(k, 4))));
            err = std::max(
                {err, sig2 * out->nodeErrProb[c], gate_dur});
        }
    }
    out->nodeDurUs[i] = std::max(dur_us, 1.0);
    out->nodeErrProb[i] = std::clamp(err, 0.0, 1.0);
}

TracePrediction
SleuthGnn::propagate(const TraceBatch &batch,
                     const trace::TraceGraph &graph,
                     const std::vector<NodeState> &states) const
{
    const size_t n = batch.numNodes;
    SLEUTH_ASSERT(batch.traceRoot.size() == 1,
                  "propagate expects a single-trace batch");
    SLEUTH_ASSERT(states.size() == n, "state count mismatch");
    SLEUTH_ASSERT(graph.size() == n, "graph size mismatch");

    TracePrediction out;
    out.nodeDurUs.assign(n, 0.0);
    out.nodeErrProb.assign(n, 0.0);

    for (int node : graph.bottomUpOrder())
        propagateNode(batch, graph, states, node, &out);

    size_t root = batch.traceRoot[0];
    out.rootDurationUs = out.nodeDurUs[root];
    out.rootErrorProb = out.nodeErrProb[root];
    return out;
}

TracePrediction
SleuthGnn::propagateFrom(const TraceBatch &batch,
                         const trace::TraceGraph &graph,
                         const std::vector<NodeState> &states,
                         const TracePrediction &baseline,
                         const std::vector<int> &dirtyNodes) const
{
    const size_t n = batch.numNodes;
    SLEUTH_ASSERT(batch.traceRoot.size() == 1,
                  "propagateFrom expects a single-trace batch");
    SLEUTH_ASSERT(states.size() == n, "state count mismatch");
    SLEUTH_ASSERT(graph.size() == n, "graph size mismatch");
    SLEUTH_ASSERT(baseline.nodeDurUs.size() == n &&
                      baseline.nodeErrProb.size() == n,
                  "baseline prediction size mismatch");

    // Start from the memoized baseline; only the dirty closure — the
    // intervened nodes and their root-ward ancestor chains — can
    // change, since every other node's subtree is untouched.
    TracePrediction out;
    out.nodeDurUs = baseline.nodeDurUs;
    out.nodeErrProb = baseline.nodeErrProb;

    std::vector<bool> recompute(n, false);
    for (int d : dirtyNodes) {
        SLEUTH_ASSERT(d >= 0 && static_cast<size_t>(d) < n,
                      "dirty node index");
        for (int a = d; a >= 0; a = graph.parent(a)) {
            if (recompute[static_cast<size_t>(a)])
                break;  // the rest of this chain is already marked
            recompute[static_cast<size_t>(a)] = true;
        }
    }

    for (int node : graph.bottomUpOrder())
        if (recompute[static_cast<size_t>(node)])
            propagateNode(batch, graph, states, node, &out);

    size_t root = batch.traceRoot[0];
    out.rootDurationUs = out.nodeDurUs[root];
    out.rootErrorProb = out.nodeErrProb[root];
    return out;
}

util::Json
SleuthGnn::save() const
{
    util::Json doc = util::Json::object();
    util::Json cfg = util::Json::object();
    cfg.set("embedDim", config_.embedDim);
    cfg.set("hidden", config_.hidden);
    cfg.set("aggregator", toString(config_.aggregator));
    cfg.set("epsilon", config_.epsilon);
    cfg.set("thresholdOffset", config_.thresholdOffset);
    cfg.set("scaleMu", config_.scale.mu);
    cfg.set("scaleSigma", config_.scale.sigma);
    cfg.set("seed", static_cast<int64_t>(config_.seed));
    doc.set("config", std::move(cfg));
    doc.set("parameters", nn::parametersToJson(parameters()));
    return doc;
}

void
SleuthGnn::load(const util::Json &doc)
{
    const util::Json &cfg = doc.at("config");
    if (static_cast<size_t>(cfg.at("embedDim").asInt()) !=
            config_.embedDim ||
        static_cast<size_t>(cfg.at("hidden").asInt()) != config_.hidden)
        util::fatal("model load: architecture mismatch");
    nn::parametersFromJson(doc.at("parameters"), parameters());
}

SleuthGnn
SleuthGnn::fromJson(const util::Json &doc)
{
    const util::Json &cfg = doc.at("config");
    GnnConfig config;
    config.embedDim = static_cast<size_t>(cfg.at("embedDim").asInt());
    config.hidden = static_cast<size_t>(cfg.at("hidden").asInt());
    config.aggregator = cfg.at("aggregator").asString() == "gcn"
        ? Aggregator::Gcn
        : Aggregator::Gin;
    config.epsilon = cfg.at("epsilon").asNumber();
    if (cfg.has("thresholdOffset"))
        config.thresholdOffset = cfg.at("thresholdOffset").asNumber();
    config.scale.mu = cfg.at("scaleMu").asNumber();
    config.scale.sigma = cfg.at("scaleSigma").asNumber();
    config.seed = static_cast<uint64_t>(cfg.at("seed").asInt());
    SleuthGnn model(config);
    model.load(doc);
    return model;
}

} // namespace sleuth::core
