#include "scenario.h"

#include <algorithm>

#include "sim/simulator.h"
#include "synth/catalog.h"
#include "synth/generator.h"
#include "util/logging.h"

namespace sleuth::campaign {

namespace {

const char *
scopeName(chaos::FaultScope s)
{
    return chaos::toString(s);
}

chaos::FaultScope
scopeFromString(const std::string &s)
{
    if (s == "container")
        return chaos::FaultScope::Container;
    if (s == "pod")
        return chaos::FaultScope::Pod;
    if (s == "node")
        return chaos::FaultScope::Node;
    util::fatal("unknown fault scope '", s, "'");
}

util::Json
indicesToJson(const std::vector<size_t> &xs)
{
    util::Json arr = util::Json::array();
    for (size_t x : xs)
        arr.push(util::Json(x));
    return arr;
}

std::vector<size_t>
indicesFromJson(const util::Json &doc)
{
    std::vector<size_t> out;
    for (const util::Json &x : doc.asArray())
        out.push_back(static_cast<size_t>(x.asInt()));
    return out;
}

} // namespace

core::PipelineConfig
Scenario::pipelineConfig() const
{
    core::PipelineConfig cfg;
    cfg.clustering = clustering;
    cfg.algorithm = algorithm;
    cfg.hdbscan = {static_cast<size_t>(minClusterSize),
                   static_cast<size_t>(minSamples),
                   clusterSelectionEpsilon};
    cfg.dbscan = {dbscanEps, static_cast<size_t>(dbscanMinPts)};
    cfg.maxRepresentativeDistance = maxRepresentativeDistance;
    cfg.numThreads = 1;
    return cfg;
}

bool
Scenario::operator==(const Scenario &other) const
{
    return seed == other.seed && numRpcs == other.numRpcs &&
           clusterNodes == other.clusterNodes &&
           catalogApp == other.catalogApp &&
           trainTraces == other.trainTraces &&
           trainEpochs == other.trainEpochs &&
           faultCount == other.faultCount &&
           faultScope == other.faultScope &&
           numQueries == other.numQueries &&
           clustering == other.clustering &&
           algorithm == other.algorithm &&
           minClusterSize == other.minClusterSize &&
           minSamples == other.minSamples &&
           clusterSelectionEpsilon == other.clusterSelectionEpsilon &&
           dbscanEps == other.dbscanEps &&
           dbscanMinPts == other.dbscanMinPts &&
           maxRepresentativeDistance ==
               other.maxRepresentativeDistance &&
           keptTraces == other.keptTraces &&
           droppedFaults == other.droppedFaults;
}

Scenario
drawScenario(util::Rng &rng)
{
    Scenario s;
    s.seed = static_cast<uint64_t>(rng.uniformInt(1, 1 << 30));
    // Small tiers keep a 20-scenario campaign inside tier-1 budgets;
    // the nightly mode sweeps more seeds rather than bigger apps.
    static const int kRpcTiers[] = {12, 16, 24, 32};
    s.numRpcs = kRpcTiers[rng.uniformInt(0, 3)];
    s.clusterNodes = static_cast<int>(rng.uniformInt(4, 10));
    s.trainTraces = static_cast<size_t>(rng.uniformInt(48, 80));
    s.trainEpochs = static_cast<int>(rng.uniformInt(2, 3));
    s.faultCount = static_cast<size_t>(rng.uniformInt(1, 3));
    switch (rng.uniformInt(0, 2)) {
      case 0: s.faultScope = chaos::FaultScope::Container; break;
      case 1: s.faultScope = chaos::FaultScope::Pod; break;
      default: s.faultScope = chaos::FaultScope::Node; break;
    }
    s.numQueries = static_cast<size_t>(rng.uniformInt(8, 16));
    s.clustering = !rng.bernoulli(0.1);
    s.algorithm = rng.bernoulli(0.25)
        ? core::PipelineConfig::Algorithm::Dbscan
        : core::PipelineConfig::Algorithm::Hdbscan;
    s.minClusterSize = static_cast<int>(rng.uniformInt(3, 5));
    s.minSamples = 2;
    s.clusterSelectionEpsilon = rng.bernoulli(0.3) ? 0.05 : 0.0;
    s.dbscanEps = rng.uniform(0.3, 0.5);
    s.dbscanMinPts = 3;
    s.maxRepresentativeDistance = rng.bernoulli(0.2) ? 0.0 : 0.6;
    return s;
}

util::Json
toJson(const Scenario &s)
{
    util::Json doc = util::Json::object();
    doc.set("seed", s.seed);
    doc.set("numRpcs", s.numRpcs);
    doc.set("clusterNodes", s.clusterNodes);
    if (!s.catalogApp.empty())
        doc.set("catalogApp", s.catalogApp);
    doc.set("trainTraces", s.trainTraces);
    doc.set("trainEpochs", s.trainEpochs);
    doc.set("faultCount", s.faultCount);
    doc.set("faultScope", scopeName(s.faultScope));
    doc.set("numQueries", s.numQueries);
    doc.set("clustering", s.clustering);
    doc.set("algorithm",
            s.algorithm == core::PipelineConfig::Algorithm::Hdbscan
                ? "hdbscan"
                : "dbscan");
    doc.set("minClusterSize", s.minClusterSize);
    doc.set("minSamples", s.minSamples);
    doc.set("clusterSelectionEpsilon", s.clusterSelectionEpsilon);
    doc.set("dbscanEps", s.dbscanEps);
    doc.set("dbscanMinPts", s.dbscanMinPts);
    doc.set("maxRepresentativeDistance", s.maxRepresentativeDistance);
    if (!s.keptTraces.empty())
        doc.set("keptTraces", indicesToJson(s.keptTraces));
    if (!s.droppedFaults.empty())
        doc.set("droppedFaults", indicesToJson(s.droppedFaults));
    return doc;
}

Scenario
scenarioFromJson(const util::Json &doc)
{
    Scenario s;
    s.seed = static_cast<uint64_t>(doc.at("seed").asInt());
    s.numRpcs = static_cast<int>(doc.at("numRpcs").asInt());
    s.clusterNodes = static_cast<int>(doc.at("clusterNodes").asInt());
    if (doc.has("catalogApp"))
        s.catalogApp = doc.at("catalogApp").asString();
    s.trainTraces = static_cast<size_t>(doc.at("trainTraces").asInt());
    s.trainEpochs = static_cast<int>(doc.at("trainEpochs").asInt());
    s.faultCount = static_cast<size_t>(doc.at("faultCount").asInt());
    s.faultScope = scopeFromString(doc.at("faultScope").asString());
    s.numQueries = static_cast<size_t>(doc.at("numQueries").asInt());
    s.clustering = doc.at("clustering").asBool();
    const std::string &algo = doc.at("algorithm").asString();
    if (algo == "hdbscan")
        s.algorithm = core::PipelineConfig::Algorithm::Hdbscan;
    else if (algo == "dbscan")
        s.algorithm = core::PipelineConfig::Algorithm::Dbscan;
    else
        util::fatal("unknown algorithm '", algo, "'");
    s.minClusterSize =
        static_cast<int>(doc.at("minClusterSize").asInt());
    s.minSamples = static_cast<int>(doc.at("minSamples").asInt());
    s.clusterSelectionEpsilon =
        doc.at("clusterSelectionEpsilon").asNumber();
    s.dbscanEps = doc.at("dbscanEps").asNumber();
    s.dbscanMinPts = static_cast<int>(doc.at("dbscanMinPts").asInt());
    s.maxRepresentativeDistance =
        doc.at("maxRepresentativeDistance").asNumber();
    if (doc.has("keptTraces"))
        s.keptTraces = indicesFromJson(doc.at("keptTraces"));
    if (doc.has("droppedFaults"))
        s.droppedFaults = indicesFromJson(doc.at("droppedFaults"));
    return s;
}

core::PipelineResult
ScenarioRun::analyze(const core::PipelineConfig &config) const
{
    return analyzeBatch(config, traces, slos);
}

core::PipelineResult
ScenarioRun::analyzeBatch(
    const core::PipelineConfig &config,
    const std::vector<trace::Trace> &batch,
    const std::vector<int64_t> &batch_slos) const
{
    core::SleuthPipeline pipeline(adapter->model(), adapter->encoder(),
                                  adapter->profile(), config);
    return pipeline.analyze(batch, batch_slos);
}

std::set<std::string>
ScenarioRun::serviceNames() const
{
    std::set<std::string> names;
    for (const synth::ServiceConfig &svc : app.services)
        names.insert(svc.name);
    return names;
}

std::unique_ptr<ScenarioRun>
buildScenario(const Scenario &s)
{
    auto run = std::make_unique<ScenarioRun>();
    run->scenario = s;
    if (s.catalogApp.empty())
        run->app = synth::generateApp(
            synth::syntheticParams(s.numRpcs, s.seed));
    else if (s.catalogApp == "sockshop")
        run->app = synth::sockShopConfig();
    else if (s.catalogApp == "socialnetwork")
        run->app = synth::socialNetworkConfig();
    else
        util::fatal("unknown catalog app '", s.catalogApp, "'");
    run->cluster = std::make_unique<sim::ClusterModel>(
        run->app, s.clusterNodes, s.seed ^ 0xc1u);
    sim::Simulator::calibrateSlos(run->app, *run->cluster, 120, 99.0,
                                  s.seed ^ 0xca1u);

    // Mostly-healthy training corpus with a faulty slice so the model
    // sees abnormal durations (mirrors eval::prepareExperiment; the
    // labels are never used).
    util::Rng rng(s.seed);
    size_t faulty_count = s.trainTraces / 7;
    sim::Simulator healthy(run->app, *run->cluster,
                           {.seed = s.seed ^ 0x41ee7u});
    run->trainCorpus.reserve(s.trainTraces);
    for (size_t i = faulty_count; i < s.trainTraces; ++i)
        run->trainCorpus.push_back(healthy.simulateOne().trace);
    if (faulty_count > 0) {
        util::Rng train_rng = rng.fork(0x7a11u);
        chaos::FaultPlan train_plan = chaos::planFixedFaults(
            run->cluster->allInstances(), 1,
            chaos::FaultScope::Container, {}, train_rng);
        sim::Simulator faulty(run->app, *run->cluster,
                              {.seed = s.seed ^ 0x8f00u}, train_plan);
        for (size_t i = 0; i < faulty_count; ++i)
            run->trainCorpus.push_back(faulty.simulateOne().trace);
    }

    eval::SleuthAdapter::Config cfg;
    cfg.gnn.embedDim = 8;
    cfg.gnn.hidden = 16;
    cfg.gnn.seed = s.seed ^ 0x6e5eedu;
    cfg.train.epochs = s.trainEpochs;
    cfg.train.seed = s.seed ^ 0x7a41u;
    run->adapter = std::make_unique<eval::SleuthAdapter>(cfg);
    run->adapter->fit(run->trainCorpus);

    // Chaos plan: exactly faultCount faults at the scenario's scope,
    // minus whatever the shrinker dropped.
    util::Rng plan_rng = rng.fork(0xfau);
    size_t targets = 0;
    {
        std::set<std::string> uniq;
        for (const chaos::Instance &i :
             run->cluster->allInstances()) {
            switch (s.faultScope) {
              case chaos::FaultScope::Container:
                uniq.insert(i.container);
                break;
              case chaos::FaultScope::Pod: uniq.insert(i.pod); break;
              case chaos::FaultScope::Node: uniq.insert(i.node); break;
            }
        }
        targets = uniq.size();
    }
    size_t count = std::min(s.faultCount, targets);
    run->plan = chaos::planFixedFaults(run->cluster->allInstances(),
                                       count, s.faultScope, {},
                                       plan_rng);
    std::vector<size_t> dropped = s.droppedFaults;
    std::sort(dropped.begin(), dropped.end(),
              std::greater<size_t>());
    dropped.erase(std::unique(dropped.begin(), dropped.end()),
                  dropped.end());
    for (size_t idx : dropped)
        if (idx < run->plan.faults.size())
            run->plan.faults.erase(
                run->plan.faults.begin() +
                static_cast<long>(idx));

    // Harvest the storm: SLO-violating traces the plan materially
    // touched, with scope-aware ground truth.
    sim::Simulator storm(run->app, *run->cluster,
                         {.seed = s.seed ^ 0x57a2u}, run->plan);
    std::vector<trace::Trace> harvested;
    std::vector<int64_t> harvested_slos;
    std::vector<std::set<std::string>> harvested_truth;
    std::vector<std::set<std::string>> harvested_containers;
    size_t budget = s.numQueries * 80 + 200;
    for (size_t attempt = 0;
         attempt < budget && harvested.size() < s.numQueries;
         ++attempt) {
        sim::SimResult r = storm.simulateOne();
        int64_t slo =
            run->app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
        if (!r.faultTouched() || !r.violatesSlo(slo))
            continue;
        harvested.push_back(std::move(r.trace));
        harvested_slos.push_back(slo);
        harvested_truth.push_back(std::move(r.rootCauseServices));
        harvested_containers.push_back(
            std::move(r.rootCauseContainers));
    }

    // Apply the shrinker's trace mask.
    std::vector<size_t> kept = s.keptTraces;
    if (kept.empty()) {
        kept.resize(harvested.size());
        for (size_t i = 0; i < harvested.size(); ++i)
            kept[i] = i;
    } else {
        std::sort(kept.begin(), kept.end());
        kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    }
    for (size_t idx : kept) {
        if (idx >= harvested.size())
            continue;
        run->traces.push_back(std::move(harvested[idx]));
        run->slos.push_back(harvested_slos[idx]);
        run->truthServices.push_back(std::move(harvested_truth[idx]));
        run->truthContainers.push_back(
            std::move(harvested_containers[idx]));
    }

    if (run->traces.empty()) {
        run->degenerate = true;
        run->degenerateReason = run->plan.faults.empty()
            ? "no faults left in the plan"
            : "no anomalous traces harvested";
    }
    return run;
}

} // namespace sleuth::campaign
